module crowdrank

go 1.22
