// Command crowdrankd is the long-running ranking daemon: it accepts vote
// batches over HTTP, journals them crash-safely, and serves rankings with
// deadline-aware degradation.
//
// Usage:
//
//	crowdrankd -n 100 -m 30 -journal votes.wal [-addr :8077] [-seed S]
//	           [-fsync always|os] [-parallelism P] [-exact-limit K]
//	           [-snapshot-every N] [-max-journal-bytes M] [-snapshot-keep K]
//	           [-drain 10s] [-addr-file path]
//	           [-pprof addr] [-slow-request 1s]
//	           [-read-timeout 1m] [-write-timeout 2m] [-idle-timeout 2m]
//	           [-idempotency-window N] [-chaos spec]
//	           [-replicate-from URL] [-epoch-dir path] [-advertise URL]
//	           [-max-lag N]
//
// Endpoints:
//
//	POST /votes      {"votes":[{"worker":0,"i":3,"j":7,"prefers_i":true}]}
//	GET  /rank       ?deadline_ms=50 bounds inference; degraded answers
//	                 still return 200 and name the algorithm used
//	POST /snapshot   take a state snapshot now and compact the journal
//	GET  /metrics    Prometheus text exposition: ingest/rank counters,
//	                 per-stage latency histograms, journal and snapshot
//	                 timings, queue depths, breaker state, replication
//	                 role/epoch/lag
//	GET  /healthz    operational stats (journal/snapshot disk usage,
//	                 segment count, last snapshot, last sync error, ack
//	                 window occupancy/capacity, replication status)
//	GET  /readyz     503 once shutdown has begun, a disk fault has
//	                 poisoned the journal, or — on a follower — the
//	                 replication stream is detached or more than
//	                 -max-lag records behind
//	GET  /replicate/stream    leader: journal records from ?from=, then
//	                          live appends and heartbeats (follower API)
//	GET  /replicate/snapshot  leader: current state snapshot, for
//	                          bootstrapping an empty follower
//	POST /promote    bump the fencing epoch durably and take over as
//	                 leader (operator failover action)
//
// Replication: start a warm standby with -replicate-from pointing at the
// leader's base URL. The follower bootstraps from the leader's snapshot
// when its own store is empty, tails the journal stream, serves reads,
// and answers ingest with 503 plus an X-Crowdrank-Leader hint. On leader
// loss, POST /promote on the survivor; the bumped epoch fences the old
// leader if it comes back. -advertise sets the URL handed out in hints
// (defaults to the bound address); -epoch-dir stores the fencing epoch
// (defaults to the journal directory).
//
// -pprof serves net/http/pprof on a SEPARATE listener (loopback it in
// production); profiling never shares the public API port. Requests
// slower than -slow-request are logged and counted in
// crowdrankd_http_slow_requests_total (negative disables).
//
// Retried POST /votes batches carrying an Idempotency-Key header are
// acknowledged exactly once: a repeated key inside the last
// -idempotency-window batches (default 65536, negative disables) returns
// the original acknowledgement without re-applying, before and after a
// restart.
//
// -chaos wraps the public listener in the internal/netfault
// fault-injection proxy (e.g. -chaos "seed=7,latency=2ms,reset=0.05") —
// a deterministic resilience harness for soak tests and drills, never for
// production. See netfault.ParseSpec for the full grammar.
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener stops, in-flight
// requests drain (bounded by -drain), and the journal is synced and closed.
// On restart the newest valid snapshot is loaded and only the journal
// segments past it replay; every acknowledged batch is recovered, and a
// torn tail from a crash is truncated and reported. A journal directory
// that is not writable refuses startup with a non-zero exit instead of
// failing on the first ingest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdrank"
	"crowdrank/internal/netfault"
	"crowdrank/internal/replica"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "crowdrankd: %v\n", err)
		os.Exit(1)
	}
}

// run is main under test: it parses flags, starts the daemon, and blocks
// until the listener fails or ctx-from-signals is cancelled.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crowdrankd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	n := fs.Int("n", 0, "number of objects being ranked (required)")
	m := fs.Int("m", 0, "worker-pool size (required)")
	journalPath := fs.String("journal", "", "write-ahead journal directory (empty: in-memory, NOT crash-safe)")
	seed := fs.Uint64("seed", 0, "pipeline seed (0: drawn at startup)")
	fsync := fs.String("fsync", "always", "journal durability: always (fsync per ack) | os (page cache)")
	snapshotEvery := fs.Int("snapshot-every", 0, "snapshot+compact after this many acked batches (0: default 1024, negative: disable)")
	maxJournalBytes := fs.Int64("max-journal-bytes", 0, "snapshot+compact when the journal exceeds this many bytes (0: default 64MiB, negative: disable)")
	parallelism := fs.Int("parallelism", 0, "inference parallelism (0: sequential)")
	exactLimit := fs.Int("exact-limit", 0, "largest n solved with Held-Karp (0: default)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain bound")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (empty: disabled)")
	slowReq := fs.Duration("slow-request", 0, "log requests slower than this (0: default 1s, negative: disable)")
	readTimeout := fs.Duration("read-timeout", time.Minute, "HTTP server read timeout (full request including body)")
	writeTimeout := fs.Duration("write-timeout", 2*time.Minute, "HTTP server write timeout (must exceed the rank deadline cap)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout")
	idemWindow := fs.Int("idempotency-window", 0, "batch acks remembered for exactly-once retries (0: default 65536, negative: disable)")
	chaosSpec := fs.String("chaos", "", "TESTING ONLY: netfault spec injecting faults on the public listener (e.g. \"seed=7,latency=2ms,reset=0.05\")")
	snapshotKeep := fs.Int("snapshot-keep", 2, "on-disk snapshots retained after compaction (minimum 1)")
	replicateFrom := fs.String("replicate-from", "", "leader base URL to follow as a warm standby (empty: this node leads)")
	epochDir := fs.String("epoch-dir", "", "directory for the durable fencing epoch (empty: the journal directory)")
	advertise := fs.String("advertise", "", "base URL handed to clients as the leader hint (empty: http://<bound address>)")
	maxLag := fs.Uint64("max-lag", 0, "follower readiness threshold in records behind the leader (0: default 16)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *m < 1 {
		return fmt.Errorf("-n and -m are required (got n=%d m=%d)", *n, *m)
	}
	if *snapshotKeep < 1 {
		return fmt.Errorf("-snapshot-keep must be >= 1 (the newest snapshot must survive pruning), got %d", *snapshotKeep)
	}
	var chaosCfg netfault.Config
	if *chaosSpec != "" {
		var err error
		if chaosCfg, err = netfault.ParseSpec(*chaosSpec); err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
	}

	cfg := crowdrank.DefaultServeConfig(*n, *m)
	cfg.JournalPath = *journalPath
	cfg.Seed = *seed
	cfg.SnapshotEveryBatches = *snapshotEvery
	cfg.SnapshotMaxJournalBytes = *maxJournalBytes
	cfg.Parallelism = *parallelism
	cfg.SlowRequestThreshold = *slowReq
	cfg.IdempotencyWindow = *idemWindow
	cfg.SnapshotKeep = *snapshotKeep
	if *writeTimeout > 0 && *writeTimeout <= cfg.MaxDeadline {
		return fmt.Errorf("-write-timeout %v must exceed the rank deadline cap %v, or responses get cut mid-flight", *writeTimeout, cfg.MaxDeadline)
	}
	if *exactLimit > 0 {
		cfg.ExactLimit = *exactLimit
	}
	switch *fsync {
	case "always":
		// cfg default
	case "os":
		cfg.JournalSync = crowdrank.JournalSyncOS
	default:
		return fmt.Errorf("-fsync must be always or os, got %q", *fsync)
	}
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(out, "crowdrankd: "+format+"\n", args...)
	}
	if *journalPath == "" {
		fmt.Fprintln(out, "crowdrankd: warning: no -journal; acknowledged votes will NOT survive a crash")
	}

	// An unwritable journal directory fails here — before the listener
	// binds — so the exit code, not the first acked ingest, is what breaks.
	if *journalPath != "" {
		if err := probeWritable(*journalPath); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *chaosSpec != "" {
		fln, err := netfault.Wrap(ln, chaosCfg)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		ln = fln
		fmt.Fprintf(out, "crowdrankd: CHAOS MODE: injecting faults on the public listener (%s)\n", *chaosSpec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rcfg := replica.Config{
		Self:     *advertise,
		Leader:   *replicateFrom,
		EpochDir: *epochDir,
		MaxLag:   *maxLag,
		Logf:     cfg.Logf,
	}
	if rcfg.Self == "" {
		rcfg.Self = "http://" + ln.Addr().String()
	}
	if rcfg.EpochDir == "" {
		// In-memory nodes (no journal) keep the epoch in memory too.
		rcfg.EpochDir = *journalPath
	}
	node, err := replica.Open(ctx, rcfg, cfg)
	if err != nil {
		//lint:ignore errcheck error-path cleanup of a listener nothing is serving yet
		_ = ln.Close()
		return err
	}
	srv := node.Server()
	if *journalPath != "" {
		fmt.Fprintf(out, "crowdrankd: recovery: %s (%d votes)\n", srv.Recovered(), srv.VoteCount())
	}
	if *addrFile != "" {
		// Written atomically so watchers never read a half-written address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "crowdrankd: serving n=%d m=%d seed=%d role=%s epoch=%d on %s\n", *n, *m, srv.Seed(), node.Role(), node.Epoch(), ln.Addr())
	if *replicateFrom != "" {
		fmt.Fprintf(out, "crowdrankd: replicating from %s (advertised as %s)\n", *replicateFrom, rcfg.Self)
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{
			Handler:           pmux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       *readTimeout,
			// Profile and trace streams run for their ?seconds= argument;
			// a write timeout sized for API responses would cut them off.
			WriteTimeout: 5 * time.Minute,
			IdleTimeout:  *idleTimeout,
		}
		defer func() {
			if err := pprofSrv.Close(); err != nil {
				fmt.Fprintf(out, "crowdrankd: closing pprof listener: %v\n", err)
			}
		}()
		//lint:ignore goroleak the pprof server's lifetime is the process: the deferred Close above reaps the goroutine on every run() exit path, and profiling must stay reachable through shutdown drains
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(out, "crowdrankd: pprof listener failed: %v\n", err)
			}
		}()
		fmt.Fprintf(out, "crowdrankd: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	httpSrv := &http.Server{
		Handler:           node.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("listener failed: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain
	fmt.Fprintln(out, "crowdrankd: shutting down (draining in-flight requests)")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(out, "crowdrankd: shutdown: %v\n", err)
	}
	// Close stops the replication loop, drains anything Shutdown abandoned,
	// and performs the final journal sync; after this every acknowledged
	// batch is on disk.
	if err := node.Close(); err != nil {
		return err
	}
	fmt.Fprintln(out, "crowdrankd: journal synced, bye")
	return nil
}

// probeWritable verifies the journal directory can be created and written
// before the listener binds, mirroring the journal's own startup check.
func probeWritable(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal directory %s is not writable: %w", dir, err)
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("journal directory %s is not writable: %w", dir, err)
	}
	name := f.Name()
	//lint:ignore errcheck the probe file carries no data worth flushing
	_ = f.Close()
	//lint:ignore errcheck best-effort cleanup of an empty probe file
	_ = os.Remove(name)
	return nil
}
