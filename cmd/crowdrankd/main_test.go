package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{},                                      // missing -n/-m
		{"-n", "5"},                             // missing -m
		{"-n", "5", "-m", "2", "-fsync", "ssd"}, // unknown policy
		{"-n", "5", "-m", "2", "-chaos", "bogus-spec"}, // unparseable fault spec
		{"-n", "5", "-m", "2", "-chaos", "reset=0.5"},  // chaos without a seed
		{"-n", "5", "-m", "2", "-write-timeout", "1s"}, // below the rank deadline cap
		{"-n", "5", "-m", "2", "-write-timeout", "1m"}, // equal to the cap is still unsafe
		{"-n", "5", "-m", "2", "-snapshot-keep", "0"},  // would prune the newest snapshot
		{"-n", "5", "-m", "2", "-addr", "127.0.0.1:0", // node following itself
			"-replicate-from", "http://x:1", "-advertise", "http://x:1"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// TestRunRefusesUnwritableJournalDir pins the startup contract: a journal
// directory the daemon cannot write to must fail run() (non-zero exit in
// main) before the listener ever binds, not on the first acked ingest.
func TestRunRefusesUnwritableJournalDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-n", "5", "-m", "2",
		"-addr", "127.0.0.1:0",
		"-journal", filepath.Join(dir, "wal"),
	}, &out)
	if err == nil {
		t.Fatal("run should refuse an unwritable journal directory")
	}
	if !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("error should name the unwritable directory, got: %v", err)
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, ingests and
// ranks over HTTP, then delivers SIGTERM and watches the graceful shutdown
// reach the final journal sync.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon lifecycle test skipped in -short")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-n", "5", "-m", "2",
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-journal", filepath.Join(dir, "wal"),
			"-seed", "7",
			"-drain", "5s",
			"-pprof", "127.0.0.1:0",
		}, out)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote %s; output:\n%s", addrFile, out.String())
		}
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = string(b)
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	base := "http://" + addr

	body := strings.NewReader(`{"votes":[{"worker":0,"i":0,"j":1,"prefers_i":true}]}`)
	resp, err := http.Post(base+"/votes", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp2, err := http.Get(base + "/rank?deadline_ms=500")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("rank status %d", resp2.StatusCode)
	}
	var rr struct {
		Ranking   []int  `json:"ranking"`
		Algorithm string `json:"algorithm"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Ranking) != 5 || rr.Algorithm == "" {
		t.Fatalf("unexpected rank response %+v", rr)
	}

	// The exposition is served from the API port and already carries the
	// traffic just generated.
	resp3, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metricsBody bytes.Buffer
	if _, err := metricsBody.ReadFrom(resp3.Body); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp3.Body.Close() }()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp3.StatusCode)
	}
	for _, want := range []string{
		"# TYPE crowdrankd_ingest_batches_total counter",
		"crowdrankd_ingest_votes_total{result=\"accepted\"} 1",
		"crowdrankd_rank_seconds_count 1",
		"crowdrankd_journal_appends_total 1",
	} {
		if !strings.Contains(metricsBody.String(), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, metricsBody.String())
		}
	}

	// pprof runs on its own ephemeral listener; its address is only known
	// from the startup log line.
	pprofBase := ""
	deadline = time.Now().Add(10 * time.Second)
	for pprofBase == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged the pprof address; output:\n%s", out.String())
		}
		if s := out.String(); strings.Contains(s, "pprof on http://") {
			rest := s[strings.Index(s, "pprof on ")+len("pprof on "):]
			pprofBase = strings.TrimSpace(strings.Split(rest, "\n")[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	resp4, err := http.Get(pprofBase)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp4.Body.Close() }()
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d at %s", resp4.StatusCode, pprofBase)
	}

	// run installed the handler via signal.NotifyContext, so a self-SIGTERM
	// exercises the real shutdown path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "journal synced") {
		t.Fatalf("shutdown should report the final journal sync; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "recovery: replayed 0 records from 1 segments (clean)") {
		t.Fatalf("startup should log ReplayStats; output:\n%s", out.String())
	}
}

// TestDaemonWarmStandbyLifecycle boots a leader and a follower daemon
// in-process, replicates ingest across them, promotes the follower over
// HTTP, and verifies the role change is visible on /healthz before both
// shut down on one self-delivered SIGTERM.
func TestDaemonWarmStandbyLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon lifecycle test skipped in -short")
	}
	dir := t.TempDir()
	out := &syncBuffer{}
	done := make(chan error, 2)
	startDaemon := func(name string, extra ...string) string {
		t.Helper()
		addrFile := filepath.Join(dir, name+".addr")
		args := append([]string{
			"-n", "5", "-m", "2",
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-journal", filepath.Join(dir, name+".wal"),
			"-seed", "7",
			"-drain", "5s",
		}, extra...)
		go func() { done <- run(args, out) }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if b, err := os.ReadFile(addrFile); err == nil {
				return "http://" + string(b)
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon %s never wrote %s; output:\n%s", name, addrFile, out.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitBody := func(url, want string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(url)
			if err == nil {
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body) //nolint:errcheck // retried below
				_ = resp.Body.Close()          //nolint:errcheck // test poll loop
				if strings.Contains(buf.String(), want) {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never contained %q; output:\n%s", url, want, out.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	leaderURL := startDaemon("leader")
	resp, err := http.Post(leaderURL+"/votes", "application/json",
		strings.NewReader(`{"votes":[{"worker":0,"i":0,"j":1,"prefers_i":true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	followerURL := startDaemon("follower", "-replicate-from", leaderURL)
	waitBody(followerURL+"/healthz", `"lag":0`)
	waitBody(followerURL+"/healthz", `"role":"follower"`)
	// The replicated vote is readable on the standby.
	waitBody(followerURL+"/rank?deadline_ms=500", `"ranking"`)

	// Operator failover: promote the standby over HTTP.
	promote, err := http.Post(followerURL+"/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = promote.Body.Close() }()
	if promote.StatusCode != http.StatusOK {
		t.Fatalf("promote status %d", promote.StatusCode)
	}
	waitBody(followerURL+"/healthz", `"role":"leader"`)
	waitBody(followerURL+"/healthz", `"epoch":1`)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("graceful shutdown failed: %v\noutput:\n%s", err, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("daemons did not shut down; output:\n%s", out.String())
		}
	}
}

// syncBuffer makes the daemon's log writes race-free against test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
