// Command benchdelta compares two `go test -bench` outputs and reports
// the per-benchmark change in ns/op, benchstat-style but dependency-free.
// It exists so scripts/check.sh can flag performance regressions on the
// hot inference paths (BenchmarkInfer, BenchmarkPlanTasks) without
// pulling golang.org/x/perf into the module.
//
// Usage:
//
//	benchdelta -old baseline.txt -new current.txt [-threshold 25]
//
// Each input is raw `go test -bench` output; when a benchmark appears
// several times (-count > 1) its runs are averaged, which damps scheduler
// noise the same way benchstat's mean does. The report lists every
// benchmark present in either file. With -threshold 0 (the default) the
// exit status is always 0 and the table is informational; with a positive
// threshold the command exits 1 when any benchmark present in both files
// slowed down by more than that percentage.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		os.Exit(1)
	}
}

// errRegression distinguishes "a benchmark got slower" from usage and
// parse failures; main maps every error to exit 1 either way, but tests
// assert on the message.
type errRegression struct{ msg string }

func (e errRegression) Error() string { return e.msg }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdelta", flag.ContinueOnError)
	fs.SetOutput(out)
	oldPath := fs.String("old", "", "baseline `go test -bench` output (required)")
	newPath := fs.String("new", "", "current `go test -bench` output (required)")
	threshold := fs.Float64("threshold", 0, "fail when any benchmark slows down more than this percent (0: report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("-old and -new are both required")
	}
	oldNs, err := parseBenchFile(*oldPath)
	if err != nil {
		return err
	}
	newNs, err := parseBenchFile(*newPath)
	if err != nil {
		return err
	}
	if len(oldNs) == 0 {
		return fmt.Errorf("%s contains no benchmark results", *oldPath)
	}
	if len(newNs) == 0 {
		return fmt.Errorf("%s contains no benchmark results", *newPath)
	}

	names := make(map[string]bool, len(oldNs)+len(newNs))
	for n := range oldNs {
		names[n] = true
	}
	for n := range newNs {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	w := bufio.NewWriter(out)
	fmt.Fprintf(w, "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var regressions []string
	for _, name := range sorted {
		o, haveOld := oldNs[name]
		n, haveNew := newNs[name]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%-40s %14s %14.0f %9s\n", name, "-", n, "new")
		case !haveNew:
			fmt.Fprintf(w, "%-40s %14.0f %14s %9s\n", name, o, "-", "gone")
		default:
			delta := (n - o) / o * 100
			fmt.Fprintf(w, "%-40s %14.0f %14.0f %+8.1f%%\n", name, o, n, delta)
			if *threshold > 0 && delta > *threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s slowed down %.1f%% (threshold %.1f%%)", name, delta, *threshold))
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(regressions) > 0 {
		return errRegression{strings.Join(regressions, "; ")}
	}
	return nil
}

// parseBenchFile extracts mean ns/op per benchmark from raw `go test
// -bench` output. Lines look like:
//
//	BenchmarkInfer/n=50-8   	     100	   2130789 ns/op
//
// The trailing -P GOMAXPROCS suffix is stripped so baselines recorded on
// machines with different core counts still compare.
func parseBenchFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		// Read-only descriptor: nothing to flush, nothing lost on error.
		//lint:ignore errcheck read-only close has no observable failure mode
		f.Close()
	}()

	sums := make(map[string]float64)
	counts := make(map[string]int)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// name, iterations, value, "ns/op", [more metric pairs...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		ns := -1.0
		for i := 3; i < len(fields); i += 2 {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op in %q: %w", path, sc.Text(), err)
				}
				ns = v
				break
			}
		}
		if ns < 0 {
			continue
		}
		name := stripProcSuffix(fields[0])
		sums[name] += ns
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	for name := range sums {
		sums[name] /= float64(counts[name])
	}
	return sums, nil
}

// stripProcSuffix removes the trailing -8 style GOMAXPROCS marker go
// test appends to benchmark names.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
