package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldBench = `goos: linux
goarch: amd64
pkg: crowdrank
BenchmarkInfer/n=50-8         	      10	   1000000 ns/op
BenchmarkInfer/n=50-8         	      10	   1200000 ns/op
BenchmarkPlanTasks/n=100-8    	     100	     50000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkRetired-8            	     100	     10000 ns/op
PASS
`

const newBench = `goos: linux
goarch: amd64
pkg: crowdrank
BenchmarkInfer/n=50-16        	      10	   1650000 ns/op
BenchmarkPlanTasks/n=100-16   	     100	     49000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkFresh-16             	     100	     10000 ns/op
PASS
`

func TestBenchdeltaReport(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	newPath := writeBench(t, "new.txt", newBench)
	var out bytes.Buffer
	if err := run([]string{"-old", oldPath, "-new", newPath}, &out); err != nil {
		t.Fatalf("report-only run failed: %v", err)
	}
	report := out.String()
	// Repeated runs average (1.0ms + 1.2ms -> 1.1ms) and the -P suffix is
	// stripped, so differing GOMAXPROCS still line up.
	if !strings.Contains(report, "BenchmarkInfer/n=50") || !strings.Contains(report, "+50.0%") {
		t.Fatalf("want averaged +50%% delta for BenchmarkInfer/n=50, got:\n%s", report)
	}
	if !strings.Contains(report, "-2.0%") {
		t.Fatalf("want -2.0%% delta for BenchmarkPlanTasks/n=100, got:\n%s", report)
	}
	if !strings.Contains(report, "gone") || !strings.Contains(report, "new") {
		t.Fatalf("want one-sided benchmarks marked, got:\n%s", report)
	}
}

func TestBenchdeltaThreshold(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	newPath := writeBench(t, "new.txt", newBench)

	var out bytes.Buffer
	err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "25"}, &out)
	if err == nil {
		t.Fatal("a 50% regression must fail a 25% threshold")
	}
	if !strings.Contains(err.Error(), "BenchmarkInfer/n=50") {
		t.Fatalf("regression error should name the benchmark, got: %v", err)
	}

	// A generous threshold passes; improvements never fail it.
	out.Reset()
	if err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "75"}, &out); err != nil {
		t.Fatalf("within-threshold run failed: %v", err)
	}
}

func TestBenchdeltaRejectsBadInput(t *testing.T) {
	empty := writeBench(t, "empty.txt", "PASS\n")
	good := writeBench(t, "good.txt", oldBench)
	var out bytes.Buffer
	if err := run([]string{"-old", empty, "-new", good}, &out); err == nil {
		t.Fatal("an empty baseline must be an error, not a silent pass")
	}
	if err := run([]string{"-old", good}, &out); err == nil {
		t.Fatal("missing -new must be an error")
	}
	if err := run([]string{"-old", good, "-new", filepath.Join(t.TempDir(), "absent.txt")}, &out); err == nil {
		t.Fatal("an unreadable input must be an error")
	}
}
