// Command crowdlint runs the repository's domain-specific static analyzer
// (internal/lint) over the module. Eight checks gate the tree: seeded
// randomness (globalrand), float comparison hygiene (floatcmp), context
// cancellation contracts (ctxloop), panic-free exported library code
// (panics), discarded and blank-discarded errors (errcheck), mutex
// discipline with a cross-package lock-ordering graph (lockcheck),
// goroutines without a shutdown path (goroleak), and the daemon's
// durable-before-ack dataflow invariant (ackflow). It needs nothing beyond
// the Go standard library.
//
// Usage:
//
//	crowdlint [-json] [-tags taglist] [-checks list] [packages]
//
// Packages are directories relative to the current module; the pattern
// "./..." (the default) lints every package. The exit status is 0 when the
// tree is clean, 1 when findings were reported, and 2 when the tree could
// not be loaded or type-checked (a build problem, never conflated with
// findings).
//
// Findings can be suppressed with a `//lint:ignore <check> <reason>`
// comment on, or directly above, the offending line; a directive without a
// reason string is ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"crowdrank/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crowdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	tags := fs.String("tags", "", "comma-separated build tags honored when selecting files (e.g. crowdrank_invariants)")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all of "+strings.Join(lint.AllChecks, ", ")+")")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := lint.Config{}
	if *tags != "" {
		cfg.BuildTags = splitList(*tags)
	}
	if *checks != "" {
		cfg.Checks = splitList(*checks)
		for _, c := range cfg.Checks {
			if !knownCheck(c) {
				fmt.Fprintf(stderr, "crowdlint: unknown check %q (have %s)\n", c, strings.Join(lint.AllChecks, ", "))
				return 2
			}
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "crowdlint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lintPatterns(root, patterns, cfg)
	if err != nil {
		// A package that fails to parse or type-check is a build problem,
		// not a finding: report it distinctly and exit 2 so CI can tell
		// "the tree is dirty" (1) from "the tool could not run" (2).
		fmt.Fprintf(stderr, "crowdlint: cannot load packages: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "crowdlint: encoding findings: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "crowdlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// lintPatterns resolves the CLI package patterns: "dir/..." recurses, a
// plain directory lints that one package.
func lintPatterns(root string, patterns []string, cfg lint.Config) ([]lint.Finding, error) {
	var dirs []string
	recurseAll := false
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			recurseAll = true
			continue
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			sub, err := subDirsWithGo(filepath.Join(root, filepath.FromSlash(rest)))
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, filepath.Join(root, filepath.FromSlash(p)))
	}
	if recurseAll {
		return lint.Module(root, cfg)
	}
	return lint.Dirs(root, dirs, cfg)
}

// subDirsWithGo lists every directory under base containing Go files.
func subDirsWithGo(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func knownCheck(name string) bool {
	for _, c := range lint.AllChecks {
		if c == name {
			return true
		}
	}
	return false
}
