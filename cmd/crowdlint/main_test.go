package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdrank/internal/lint"
)

// writeFixtureModule creates a throwaway module with one dirty package and
// chdirs into it for the duration of the test.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "p")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package p

func Same(a, b float64) bool { return a == b }
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)
	return root
}

func TestRunTextOutput(t *testing.T) {
	writeFixtureModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("dirty tree must exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "floatcmp") || !strings.Contains(out, filepath.Join("p", "a.go")+":3:") {
		t.Fatalf("text output missing finding: %q", out)
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Fatalf("stderr missing summary: %q", stderr.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	writeFixtureModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("dirty tree must exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 || findings[0].Check != "floatcmp" || findings[0].Line != 3 {
		t.Fatalf("unexpected JSON findings: %+v", findings)
	}
}

func TestRunJSONCleanTreeEmitsEmptyArray(t *testing.T) {
	writeFixtureModule(t)
	var stdout, stderr bytes.Buffer
	// Restrict to a check the fixture does not violate.
	code := run([]string{"-json", "-checks", "globalrand", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("clean run must exit 0, got %d (stderr: %s)", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean -json run must print [], got %q", got)
	}
}

func TestRunChecksFlagRejectsUnknown(t *testing.T) {
	writeFixtureModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuchcheck", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check must exit 2, got %d", code)
	}
	if !strings.Contains(stderr.String(), "nosuchcheck") {
		t.Fatalf("stderr should name the unknown check: %q", stderr.String())
	}
}

func TestRunLoadErrorExitsTwo(t *testing.T) {
	root := writeFixtureModule(t)
	// A type error makes the package un-analyzable: the tool must exit 2
	// with a load-specific message, print no findings, and never pretend
	// the tree was linted.
	src := `package p

func Broken() int { return "not an int" }
`
	if err := os.WriteFile(filepath.Join(root, "p", "b.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("type-check failure must exit 2 (distinct from findings' 1), got %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cannot load packages") {
		t.Fatalf("stderr should carry the load-error message: %q", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("a failed load must print no findings, got %q", stdout.String())
	}

	// The same failure under -json must not emit a bogus findings array.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-json load failure must exit 2, got %d", code)
	}
	if stdout.Len() != 0 {
		t.Fatalf("-json load failure must print nothing on stdout, got %q", stdout.String())
	}
}

func TestRunSinglePackagePattern(t *testing.T) {
	writeFixtureModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"p"}, &stdout, &stderr); code != 1 {
		t.Fatalf("explicit package dir must exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "floatcmp") {
		t.Fatalf("missing finding for explicit dir: %q", stdout.String())
	}
}
