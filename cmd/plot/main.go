// Command plot renders a TSV series file exported by
// `experiments -tsv <dir>` as a self-contained SVG line chart.
//
// Usage:
//
//	plot -in results_tsv/fig5.tsv -x n -y accuracy -series distribution -out fig5.svg
//	plot -in results_tsv/fig3.tsv -x n -y total_ms -series distribution -out fig3.svg
//
// The -x and -y flags name columns of the TSV (first non-comment row is the
// header). -series splits rows into one line per distinct value of that
// column; omit it for a single line. -filter col=value keeps only matching
// rows (repeatable), e.g. -filter method=SAPS for the baseline tables.
// Numeric parsing accepts plain floats and Go duration strings (reported as
// milliseconds).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"crowdrank/internal/plot"
)

// filters accumulates repeated -filter flags.
type filters map[string]string

func (f filters) String() string { return fmt.Sprint(map[string]string(f)) }
func (f filters) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" {
		return fmt.Errorf("filter must be col=value, got %q", v)
	}
	f[parts[0]] = parts[1]
	return nil
}

func main() {
	in := flag.String("in", "", "input TSV file (from experiments -tsv)")
	xCol := flag.String("x", "", "column for the x axis")
	yCol := flag.String("y", "", "column for the y axis")
	seriesCol := flag.String("series", "", "column splitting rows into one line per value (optional)")
	out := flag.String("out", "chart.svg", "output SVG file")
	title := flag.String("title", "", "chart title (defaults to the TSV's comment header)")
	where := filters{}
	flag.Var(where, "filter", "keep only rows with col=value (repeatable)")
	flag.Parse()

	if *in == "" || *xCol == "" || *yCol == "" {
		fmt.Fprintln(os.Stderr, "plot: -in, -x and -y are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *xCol, *yCol, *seriesCol, *out, *title, where); err != nil {
		fmt.Fprintf(os.Stderr, "plot: %v\n", err)
		os.Exit(1)
	}
}

func run(in, xCol, yCol, seriesCol, out, title string, where filters) error {
	header, comment, rows, err := readTSV(in)
	if err != nil {
		return err
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[name] = i
	}
	for _, need := range []string{xCol, yCol} {
		if _, ok := col[need]; !ok {
			return fmt.Errorf("column %q not in header %v", need, header)
		}
	}
	if seriesCol != "" {
		if _, ok := col[seriesCol]; !ok {
			return fmt.Errorf("series column %q not in header %v", seriesCol, header)
		}
	}
	for name := range where {
		if _, ok := col[name]; !ok {
			return fmt.Errorf("filter column %q not in header %v", name, header)
		}
	}

	type point struct{ x, y float64 }
	bySeries := make(map[string][]point)
	kept := 0
rows:
	for _, row := range rows {
		for name, want := range where {
			if row[col[name]] != want {
				continue rows
			}
		}
		x, err := parseNumeric(row[col[xCol]])
		if err != nil {
			return fmt.Errorf("x value %q: %w", row[col[xCol]], err)
		}
		y, err := parseNumeric(row[col[yCol]])
		if err != nil {
			return fmt.Errorf("y value %q: %w", row[col[yCol]], err)
		}
		name := ""
		if seriesCol != "" {
			name = row[col[seriesCol]]
		}
		bySeries[name] = append(bySeries[name], point{x: x, y: y})
		kept++
	}
	if kept == 0 {
		return fmt.Errorf("no rows matched the filters")
	}

	names := make([]string, 0, len(bySeries))
	for name := range bySeries {
		names = append(names, name)
	}
	sort.Strings(names)

	chart := plot.Chart{
		Title:  title,
		XLabel: xCol,
		YLabel: yCol,
	}
	if chart.Title == "" {
		chart.Title = comment
	}
	for _, name := range names {
		pts := bySeries[name]
		s := plot.Series{Name: name}
		if s.Name == "" {
			s.Name = yCol
		}
		for _, p := range pts {
			s.X = append(s.X, p.x)
			s.Y = append(s.Y, p.y)
		}
		chart.Series = append(chart.Series, s)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer closeQuietly(f)
	if err := chart.WriteSVG(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, %d series)\n", out, kept, len(chart.Series))
	return nil
}

// readTSV loads a harness TSV: optional leading `# comment` lines, a header
// row, then data rows.
func readTSV(path string) (header []string, comment string, rows [][]string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	defer closeQuietly(f)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if comment == "" {
				comment = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
			continue
		}
		fields := strings.Split(line, "\t")
		if header == nil {
			header = fields
			continue
		}
		if len(fields) != len(header) {
			return nil, "", nil, fmt.Errorf("row has %d fields, header has %d: %q", len(fields), len(header), line)
		}
		rows = append(rows, fields)
	}
	if err := sc.Err(); err != nil {
		return nil, "", nil, err
	}
	if header == nil {
		return nil, "", nil, fmt.Errorf("no header row in %s", path)
	}
	return header, comment, rows, nil
}

// parseNumeric accepts floats, trailing-x multipliers ("17x"), and Go
// durations (converted to milliseconds).
func parseNumeric(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if strings.HasSuffix(s, "x") {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64); err == nil {
			return v, nil
		}
	}
	if d, err := time.ParseDuration(s); err == nil {
		return float64(d) / float64(time.Millisecond), nil
	}
	return 0, fmt.Errorf("not numeric (float, Nx, or duration)")
}

// closeQuietly closes f ignoring the error: used only as a deferred
// double-close safety net after the success path has already checked an
// explicit Close, or on read-only files where a close error carries no
// information.
func closeQuietly(f *os.File) {
	//lint:ignore errcheck deferred double-close safety net; the success path checks an explicit Close and read-only closes carry no information
	_ = f.Close()
}
