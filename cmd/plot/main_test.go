package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTSV = `# Figure X: demo
n	distribution	accuracy	total
100	gaussian	0.90	4ms
200	gaussian	0.93	19ms
100	uniform	0.88	4ms
200	uniform	0.92	18ms
`

func writeSample(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fig.tsv")
	if err := os.WriteFile(path, []byte(sampleTSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersSeries(t *testing.T) {
	in := writeSample(t)
	out := filepath.Join(t.TempDir(), "fig.svg")
	if err := run(in, "n", "accuracy", "distribution", out, "", filters{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	for _, want := range []string{"<svg", "gaussian", "uniform", "Figure X: demo"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestRunFilterAndDuration(t *testing.T) {
	in := writeSample(t)
	out := filepath.Join(t.TempDir(), "fig.svg")
	err := run(in, "n", "total", "", out, "custom title", filters{"distribution": "gaussian"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "custom title") {
		t.Error("custom title missing")
	}
	if strings.Contains(string(data), "uniform") {
		t.Error("filtered series leaked into the chart")
	}
}

func TestRunErrors(t *testing.T) {
	in := writeSample(t)
	out := filepath.Join(t.TempDir(), "fig.svg")
	if err := run(in, "missing", "accuracy", "", out, "", filters{}); err == nil {
		t.Error("unknown x column should fail")
	}
	if err := run(in, "n", "accuracy", "nope", out, "", filters{}); err == nil {
		t.Error("unknown series column should fail")
	}
	if err := run(in, "n", "accuracy", "", out, "", filters{"nope": "x"}); err == nil {
		t.Error("unknown filter column should fail")
	}
	if err := run(in, "n", "accuracy", "", out, "", filters{"distribution": "martian"}); err == nil {
		t.Error("filter matching nothing should fail")
	}
	if err := run(in, "distribution", "accuracy", "", out, "", filters{}); err == nil {
		t.Error("non-numeric x column should fail")
	}
}

func TestParseNumeric(t *testing.T) {
	cases := map[string]float64{
		"1.5":   1.5,
		"17x":   17,
		"2s":    2000,
		"250ms": 250,
	}
	for in, want := range cases {
		got, err := parseNumeric(in)
		if err != nil || got != want {
			t.Errorf("parseNumeric(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseNumeric("banana"); err == nil {
		t.Error("garbage should fail")
	}
}

func TestFiltersFlag(t *testing.T) {
	f := filters{}
	if err := f.Set("a=b"); err != nil {
		t.Fatal(err)
	}
	if f["a"] != "b" {
		t.Errorf("filters = %v", f)
	}
	if err := f.Set("broken"); err == nil {
		t.Error("malformed filter should fail")
	}
	if f.String() == "" {
		t.Error("String should render")
	}
}
