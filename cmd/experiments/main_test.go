package main

import (
	"bytes"
	"strings"
	"testing"
)

// closableBuffer adapts bytes.Buffer to the tsvWriter destination.
type closableBuffer struct {
	bytes.Buffer
	closed bool
}

func (b *closableBuffer) Close() error {
	b.closed = true
	return nil
}

func TestTSVWriterConvertsTables(t *testing.T) {
	dst := &closableBuffer{}
	w := &tsvWriter{dst: dst}
	input := "" +
		"\n== Figure X: something ==\n" +
		"col1        col2        col3\n" +
		"a           1.5000      12ms\n" +
		"(footnote to drop)\n" +
		"b           2           3\n"
	// Feed in two chunks to exercise buffering across Write calls.
	half := len(input) / 2
	if _, err := w.Write([]byte(input[:half])); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(input[half:])); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !dst.closed {
		t.Error("destination not closed")
	}
	lines := strings.Split(strings.TrimSpace(dst.String()), "\n")
	want := []string{
		"# Figure X: something",
		"col1\tcol2\tcol3",
		"a\t1.5000\t12ms",
		"b\t2\t3",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestTSVWriterFlushesTrailingLine(t *testing.T) {
	dst := &closableBuffer{}
	w := &tsvWriter{dst: dst}
	if _, err := w.Write([]byte("x  y")); err != nil { // no trailing newline
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(dst.String()); got != "x\ty" {
		t.Errorf("trailing line = %q", got)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, name := range []string{
		"fig3", "fig4", "fig5", "fig6", "table1", "amt", "conv",
		"ablation", "makespan", "robustness", "workers",
	} {
		if _, ok := experiments[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
}
