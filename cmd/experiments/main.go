// Command experiments regenerates the paper's evaluation tables and
// figures on the simulated substrate (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments -exp fig3|fig4|fig5|fig6|table1|amt|conv|ablation|makespan|robustness|workers|topk|faults|all [-scale quick|paper]
//
// The paper scale uses the paper's sizes (n up to 1000) and can take
// minutes; the quick scale shrinks every grid to run in seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"crowdrank/internal/bench"
)

var experiments = map[string]func(io.Writer, bench.Scale) error{
	"fig3":       bench.Fig3,
	"fig4":       bench.Fig4,
	"fig5":       bench.Fig5,
	"fig6":       bench.Fig6,
	"table1":     bench.Table1,
	"amt":        bench.AMT,
	"conv":       bench.Convergence,
	"ablation":   bench.Ablation,
	"makespan":   bench.Makespan,
	"robustness": bench.Robustness,
	"workers":    bench.Workers,
	"topk":       bench.TopK,
	"faults":     bench.Faults,
}

func main() {
	exp := flag.String("exp", "all", "experiment id: fig3|fig4|fig5|fig6|table1|amt|conv|ablation|makespan|robustness|workers|topk|faults|all")
	scaleFlag := flag.String("scale", "paper", "experiment scale: quick|paper")
	tsvDir := flag.String("tsv", "", "also write each experiment's rows as <dir>/<exp>.tsv for plotting")
	flag.Parse()

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.ScaleQuick
	case "paper":
		scale = bench.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (quick|paper)\n", *scaleFlag)
		os.Exit(2)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = names[:0]
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
	}

	for _, name := range names {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		var out io.Writer = os.Stdout
		var tsv *tsvWriter
		if *tsvDir != "" {
			if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*tsvDir, name+".tsv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			tsv = &tsvWriter{dst: f}
			out = io.MultiWriter(os.Stdout, tsv)
		}
		if err := fn(out, scale); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if tsv != nil {
			if err := tsv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// tsvWriter converts the harness's fixed-width tables to tab-separated
// rows: columns are split on runs of two or more spaces; header lines
// (`== ... ==`) become comments; other narration is dropped.
type tsvWriter struct {
	dst interface {
		io.Writer
		Close() error
	}
	buf strings.Builder
}

var columnSplit = regexp.MustCompile(`\s{2,}`)

func (t *tsvWriter) Write(p []byte) (int, error) {
	t.buf.Write(p)
	for {
		text := t.buf.String()
		idx := strings.IndexByte(text, '\n')
		if idx < 0 {
			break
		}
		line := text[:idx]
		t.buf.Reset()
		t.buf.WriteString(text[idx+1:])
		if err := t.writeLine(line); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

func (t *tsvWriter) writeLine(line string) error {
	trimmed := strings.TrimSpace(line)
	switch {
	case trimmed == "":
		return nil
	case strings.HasPrefix(trimmed, "=="):
		_, err := fmt.Fprintf(t.dst, "# %s\n", strings.Trim(trimmed, "= "))
		return err
	case strings.HasPrefix(trimmed, "("):
		return nil // footnotes
	default:
		cols := columnSplit.Split(trimmed, -1)
		_, err := fmt.Fprintln(t.dst, strings.Join(cols, "\t"))
		return err
	}
}

func (t *tsvWriter) Close() error {
	if rest := strings.TrimSpace(t.buf.String()); rest != "" {
		if err := t.writeLine(rest); err != nil {
			return err
		}
	}
	return t.dst.Close()
}
