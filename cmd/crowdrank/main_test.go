package main

import (
	"os"
	"path/filepath"
	"testing"

	"crowdrank"
)

func TestJSONFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	in := PlanFile{
		N: 5, L: 6, Seed: 7, TargetDegree: 2,
		Pairs:    []crowdrank.Pair{{I: 0, J: 1}, {I: 1, J: 2}},
		SeedPath: []int{0, 1, 2, 3, 4},
	}
	if err := writeJSON(path, in); err != nil {
		t.Fatal(err)
	}
	var out PlanFile
	if err := readJSON(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != in.N || out.L != in.L || len(out.Pairs) != 2 || out.Pairs[1] != in.Pairs[1] {
		t.Errorf("round trip = %+v", out)
	}
	if err := readJSON(filepath.Join(dir, "missing.json"), &out); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := readJSON(bad, &out); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestVotesCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "votes.csv")
	votes := []crowdrank.Vote{
		{Worker: 2, I: 0, J: 1, PrefersI: true},
		{Worker: 7, I: 3, J: 4, PrefersI: false},
	}
	if err := writeVotesCSVFile(path, votes); err != nil {
		t.Fatal(err)
	}
	got, workers, err := readVotesCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if workers != 8 { // max worker id + 1
		t.Errorf("derived workers = %d, want 8", workers)
	}
	if len(got) != 2 || got[0] != votes[0] || got[1] != votes[1] {
		t.Errorf("votes = %+v", got)
	}
	if _, _, err := readVotesCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}
