package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdrank"
)

func TestJSONFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	in := PlanFile{
		N: 5, L: 6, Seed: 7, TargetDegree: 2,
		Pairs:    []crowdrank.Pair{{I: 0, J: 1}, {I: 1, J: 2}},
		SeedPath: []int{0, 1, 2, 3, 4},
	}
	if err := writeJSON(path, in); err != nil {
		t.Fatal(err)
	}
	var out PlanFile
	if err := readJSON(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != in.N || out.L != in.L || len(out.Pairs) != 2 || out.Pairs[1] != in.Pairs[1] {
		t.Errorf("round trip = %+v", out)
	}
	if err := readJSON(filepath.Join(dir, "missing.json"), &out); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := readJSON(bad, &out); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestVotesCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "votes.csv")
	votes := []crowdrank.Vote{
		{Worker: 2, I: 0, J: 1, PrefersI: true},
		{Worker: 7, I: 3, J: 4, PrefersI: false},
	}
	if err := writeVotesCSVFile(path, votes); err != nil {
		t.Fatal(err)
	}
	got, workers, err := readVotesCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if workers != 8 { // max worker id + 1
		t.Errorf("derived workers = %d, want 8", workers)
	}
	if len(got) != 2 || got[0] != votes[0] || got[1] != votes[1] {
		t.Errorf("votes = %+v", got)
	}
	if _, _, err := readVotesCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}

// writeFixtures plans a small round and writes plan + votes files, with the
// votes optionally corrupted by mutate.
func writeFixtures(t *testing.T, mutate func([]crowdrank.Vote) []crowdrank.Vote) (planPath, votesPath string) {
	t.Helper()
	dir := t.TempDir()
	plan, err := crowdrank.PlanTasksRatio(10, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := crowdrank.DefaultSimConfig(2)
	cfg.Workers = 8
	cfg.WorkersPerTask = 3
	round, err := crowdrank.SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := round.Votes
	if mutate != nil {
		votes = mutate(votes)
	}
	planPath = filepath.Join(dir, "plan.json")
	if err := writeJSON(planPath, PlanFile{N: plan.N, L: plan.L, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	votesPath = filepath.Join(dir, "votes.json")
	if err := writeJSON(votesPath, VotesFile{N: plan.N, Workers: cfg.Workers, Votes: votes}); err != nil {
		t.Fatal(err)
	}
	return planPath, votesPath
}

func TestRunInferRejectsMalformedVotes(t *testing.T) {
	cases := []struct {
		name string
		bad  crowdrank.Vote
	}{
		{"object id out of range", crowdrank.Vote{Worker: 0, I: 0, J: 99, PrefersI: true}},
		{"self pair", crowdrank.Vote{Worker: 0, I: 4, J: 4, PrefersI: true}},
		{"worker id out of range", crowdrank.Vote{Worker: 42, I: 0, J: 1, PrefersI: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			planPath, votesPath := writeFixtures(t, func(v []crowdrank.Vote) []crowdrank.Vote {
				return append(v, tc.bad)
			})
			err := runInfer([]string{"-plan", planPath, "-votes", votesPath, "-seed", "3"})
			if err == nil {
				t.Fatal("malformed votes file accepted")
			}
			if !strings.Contains(err.Error(), "-clean") {
				t.Errorf("error %q does not point at -clean", err)
			}
			// -clean drops the bad vote and proceeds.
			if err := runInfer([]string{"-plan", planPath, "-votes", votesPath, "-seed", "3", "-clean"}); err != nil {
				t.Errorf("-clean run failed: %v", err)
			}
		})
	}
}

func TestRunInferAcceptsCleanVotes(t *testing.T) {
	planPath, votesPath := writeFixtures(t, nil)
	if err := runInfer([]string{"-plan", planPath, "-votes", votesPath, "-seed", "3"}); err != nil {
		t.Fatalf("clean votes rejected: %v", err)
	}
}

func TestRunSimulateWithFaults(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	if err := runPlan([]string{"-n", "12", "-ratio", "0.5", "-seed", "1", "-out", planPath}); err != nil {
		t.Fatal(err)
	}
	votesPath := filepath.Join(dir, "votes.json")
	err := runSimulate([]string{"-plan", planPath, "-workers", "10", "-per-task", "3",
		"-dropout", "0.2", "-spam", "0.1", "-dup", "0.05", "-seed", "2", "-out", votesPath})
	if err != nil {
		t.Fatal(err)
	}
	var vf VotesFile
	if err := readJSON(votesPath, &vf); err != nil {
		t.Fatal(err)
	}
	if len(vf.Votes) == 0 {
		t.Fatal("no votes written")
	}
	// The raw faulty round must contain garbage for strict infer to reject.
	if err := crowdrank.ValidateVotes(vf.N, vf.Workers, vf.Votes); err == nil {
		t.Error("10% spam round passed validation; faults not injected?")
	}
	if err := runInfer([]string{"-plan", planPath, "-votes", votesPath, "-seed", "3"}); err == nil {
		t.Error("strict infer accepted spam votes")
	}
	if err := runInfer([]string{"-plan", planPath, "-votes", votesPath, "-seed", "3", "-clean"}); err != nil {
		t.Errorf("-clean infer failed: %v", err)
	}
}
