// Command crowdrank is the requester-side CLI: it plans budget-constrained
// pairwise comparison tasks, (optionally) simulates a crowd answering them,
// and infers the full ranking from collected votes.
//
// Usage:
//
//	crowdrank plan     -n 100 -ratio 0.1 -seed 1 -out plan.json
//	crowdrank simulate -plan plan.json -workers 30 -per-task 10 \
//	                   -dist gaussian -level medium -seed 2 -out votes.json
//	crowdrank infer    -plan plan.json -votes votes.json [-seed 3] [-search saps]
//
// Files are JSON; see the PlanFile and VotesFile types for the schemas.
// `infer` prints the inferred ranking and, when the votes file carries a
// simulated ground truth, the Kendall accuracy against it. Malformed votes
// files (out-of-range ids, self-pairs) are rejected; pass -clean to drop
// bad votes instead. `simulate -dropout/-spam/-dup` routes the round
// through an unreliable marketplace and prints the collection report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"crowdrank"
)

// PlanFile is the on-disk schema of a task plan.
type PlanFile struct {
	N            int              `json:"n"`
	L            int              `json:"l"`
	Seed         uint64           `json:"seed"`
	TargetDegree int              `json:"targetDegree"`
	Pairs        []crowdrank.Pair `json:"pairs"`
	SeedPath     []int            `json:"seedPath"`
}

// VotesFile is the on-disk schema of collected votes. GroundTruth is
// present only for simulated rounds.
type VotesFile struct {
	N           int              `json:"n"`
	Workers     int              `json:"workers"`
	Votes       []crowdrank.Vote `json:"votes"`
	GroundTruth []int            `json:"groundTruth,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "plan":
		err = runPlan(os.Args[2:])
	case "simulate":
		err = runSimulate(os.Args[2:])
	case "infer":
		err = runInfer(os.Args[2:])
	case "dot":
		err = runDOT(os.Args[2:])
	case "calibrate":
		err = runCalibrate(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "crowdrank: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdrank: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  crowdrank plan     -n <objects> (-ratio <r> | -l <tasks> | -budget <B> -reward <r> -per-task <w>) [-seed S] -out plan.json
  crowdrank simulate -plan plan.json -workers <m> -per-task <w> [-dist gaussian|uniform] [-level high|medium|low] [-dropout P] [-spam P] [-dup P] [-seed S] -out votes.json
  crowdrank infer    -plan plan.json -votes votes.json [-seed S] [-search auto|saps|taps|heldkarp|bruteforce] [-alpha A] [-hops H]
  crowdrank dot      -plan plan.json [-out graph.dot]
  crowdrank calibrate -n <objects> -target <accuracy> [-pilots P] [-level high|medium|low] [-seed S]`)
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	n := fs.Int("n", 0, "number of objects")
	ratio := fs.Float64("ratio", 0, "selection ratio of all pairs (0,1]")
	l := fs.Int("l", 0, "explicit number of comparison tasks")
	budget := fs.Float64("budget", 0, "money budget B")
	reward := fs.Float64("reward", 0.025, "reward per comparison per worker")
	perTask := fs.Int("per-task", 10, "workers answering each comparison")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "plan.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("plan: -n must be at least 2")
	}

	var plan *crowdrank.Plan
	var err error
	switch {
	case *l > 0:
		plan, err = crowdrank.PlanTasks(*n, *l, *seed)
	case *ratio > 0:
		plan, err = crowdrank.PlanTasksRatio(*n, *ratio, *seed)
	case *budget > 0:
		plan, err = crowdrank.PlanTasksBudget(*n, crowdrank.Budget{
			Total: *budget, Reward: *reward, WorkersPerTask: *perTask,
		}, *seed)
	default:
		return fmt.Errorf("plan: one of -ratio, -l, -budget is required")
	}
	if err != nil {
		return err
	}
	if err := plan.Validate(); err != nil {
		return err
	}

	file := PlanFile{
		N:            plan.N,
		L:            plan.L,
		Seed:         *seed,
		TargetDegree: plan.TargetDegree,
		Pairs:        plan.Pairs,
		SeedPath:     plan.SeedPath,
	}
	if err := writeJSON(*out, file); err != nil {
		return err
	}
	bound, err := plan.HPLikelihoodLowerBound()
	if err != nil {
		return err
	}
	fmt.Printf("planned %d comparison tasks over %d objects (target degree %d, HP-likelihood bound %.4f) -> %s\n",
		plan.L, plan.N, plan.TargetDegree, bound, *out)
	return nil
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	planPath := fs.String("plan", "plan.json", "plan file")
	workers := fs.Int("workers", 30, "worker pool size m")
	perTask := fs.Int("per-task", 10, "workers answering each comparison")
	dist := fs.String("dist", "gaussian", "worker quality distribution: gaussian|uniform")
	level := fs.String("level", "medium", "worker quality level: high|medium|low")
	seed := fs.Uint64("seed", 2, "random seed")
	out := fs.String("out", "votes.json", "output file")
	dropout := fs.Float64("dropout", 0, "probability a claimed HIT is never returned")
	spam := fs.Float64("spam", 0, "probability a delivered vote is malformed garbage")
	dup := fs.Float64("dup", 0, "probability a delivered vote is submitted twice")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pf PlanFile
	if err := readJSON(*planPath, &pf); err != nil {
		return err
	}
	plan, err := crowdrank.PlanTasks(pf.N, pf.L, pf.Seed)
	if err != nil {
		return fmt.Errorf("rebuilding plan: %w", err)
	}

	cfg := crowdrank.SimConfig{
		Workers:        *workers,
		WorkersPerTask: *perTask,
		PairsPerHIT:    1,
		Seed:           *seed,
	}
	switch *dist {
	case "gaussian":
		cfg.Distribution = crowdrank.GaussianWorkers
	case "uniform":
		cfg.Distribution = crowdrank.UniformWorkers
	default:
		return fmt.Errorf("simulate: unknown distribution %q", *dist)
	}
	switch *level {
	case "high":
		cfg.Level = crowdrank.HighQualityWorkers
	case "medium":
		cfg.Level = crowdrank.MediumQualityWorkers
	case "low":
		cfg.Level = crowdrank.LowQualityWorkers
	default:
		return fmt.Errorf("simulate: unknown level %q", *level)
	}

	fc := crowdrank.FaultConfig{
		DropoutRate:   *dropout,
		SpamRate:      *spam,
		DuplicateRate: *dup,
		Seed:          *seed ^ 0xfa11fa11,
	}
	var round *crowdrank.SimRound
	if fc.Zero() {
		round, err = crowdrank.SimulateVotes(plan, cfg)
	} else {
		// An unreliable marketplace: votes are collected through the
		// fault-tolerant protocol and written raw, garbage included.
		var report *crowdrank.CollectionReport
		round, report, err = crowdrank.SimulateUnreliableVotes(plan, cfg, fc, crowdrank.DefaultCollectConfig())
		if err == nil {
			fmt.Println("collection:", report)
		}
	}
	if err != nil {
		return err
	}
	if strings.HasSuffix(*out, ".csv") {
		if err := writeVotesCSVFile(*out, round.Votes); err != nil {
			return err
		}
	} else {
		file := VotesFile{
			N:           plan.N,
			Workers:     cfg.Workers,
			Votes:       round.Votes,
			GroundTruth: round.GroundTruth,
		}
		if err := writeJSON(*out, file); err != nil {
			return err
		}
	}
	fmt.Printf("simulated %d votes from %d workers (%s/%s quality) -> %s\n",
		len(round.Votes), cfg.Workers, *dist, *level, *out)
	return nil
}

func runInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	planPath := fs.String("plan", "plan.json", "plan file (used for n)")
	votesPath := fs.String("votes", "votes.json", "votes file")
	seed := fs.Uint64("seed", 3, "random seed for smoothing and SAPS")
	searchName := fs.String("search", "auto", "searcher: auto|saps|taps|heldkarp|bruteforce|branchbound")
	alpha := fs.Float64("alpha", 0.5, "direct/indirect blend weight")
	hops := fs.Int("hops", 3, "propagation hop bound")
	workerReport := fs.Bool("worker-report", false, "print per-worker estimated quality")
	clean := fs.Bool("clean", false, "drop invalid votes and duplicate submissions before inference")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pf PlanFile
	if err := readJSON(*planPath, &pf); err != nil {
		return err
	}
	var vf VotesFile
	if strings.HasSuffix(*votesPath, ".csv") {
		votes, workers, err := readVotesCSVFile(*votesPath)
		if err != nil {
			return err
		}
		vf = VotesFile{N: pf.N, Workers: workers, Votes: votes}
	} else if err := readJSON(*votesPath, &vf); err != nil {
		return err
	}
	if vf.N != 0 && vf.N != pf.N {
		return fmt.Errorf("infer: votes file is for n=%d but plan has n=%d", vf.N, pf.N)
	}

	if *clean {
		cleaned, report := crowdrank.CleanVotes(vf.Votes, pf.N, vf.Workers, true)
		fmt.Println("cleaning:", report)
		vf.Votes = cleaned
	} else if err := crowdrank.ValidateVotes(pf.N, vf.Workers, vf.Votes); err != nil {
		// Malformed input is rejected up front; -clean opts into dropping
		// bad votes instead.
		return fmt.Errorf("infer: %w (rerun with -clean to drop bad votes)", err)
	}

	var alg crowdrank.SearchAlgorithm
	switch *searchName {
	case "auto":
		alg = crowdrank.SearchAuto
	case "saps":
		alg = crowdrank.SearchSAPS
	case "taps":
		alg = crowdrank.SearchTAPS
	case "heldkarp":
		alg = crowdrank.SearchHeldKarp
	case "bruteforce":
		alg = crowdrank.SearchBruteForce
	case "branchbound":
		alg = crowdrank.SearchBranchBound
	default:
		return fmt.Errorf("infer: unknown searcher %q", *searchName)
	}

	start := time.Now()
	res, err := crowdrank.Infer(pf.N, vf.Workers, vf.Votes,
		crowdrank.WithSeed(*seed),
		crowdrank.WithSearch(alg),
		crowdrank.WithAlpha(*alpha),
		crowdrank.WithMaxHops(*hops),
	)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("ranking (best first): %v\n", res.Ranking)
	if res.Coverage.Degraded() {
		fmt.Printf("warning: %d objects have no direct votes (mean coverage %.3f); their positions are propagation-only\n",
			len(res.Coverage.UncoveredObjects), res.Coverage.MeanCoverage)
	}
	fmt.Printf("inference: %v total (truth %v, smooth %v, propagate %v, search %v)\n",
		elapsed.Round(time.Millisecond),
		res.Timings.TruthDiscovery.Round(time.Millisecond),
		res.Timings.Smoothing.Round(time.Millisecond),
		res.Timings.Propagation.Round(time.Millisecond),
		res.Timings.Search.Round(time.Millisecond))
	fmt.Printf("diagnostics: %d one-edges smoothed, %d uninformed pairs, truth discovery %d iterations (converged=%v)\n",
		res.OneEdges, res.UninformedPairs, res.TruthIterations, res.TruthConverged)
	if *workerReport {
		printWorkerReport(res.WorkerQuality)
	}
	if len(vf.GroundTruth) == pf.N {
		acc, err := crowdrank.Accuracy(res.Ranking, vf.GroundTruth)
		if err != nil {
			return err
		}
		tau, err := crowdrank.KendallTau(res.Ranking, vf.GroundTruth)
		if err != nil {
			return err
		}
		fmt.Printf("vs simulated ground truth: accuracy %.4f, Kendall tau %.4f\n", acc, tau)
	}
	return nil
}

// runCalibrate searches for the smallest budget reaching a target accuracy
// with simulated pilot rounds (the paper's future-work objective of
// minimizing comparisons for acceptable accuracy).
func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	n := fs.Int("n", 0, "number of objects")
	target := fs.Float64("target", 0.9, "target ranking accuracy in (0.5, 1)")
	pilots := fs.Int("pilots", 2, "simulated pilot rounds per candidate budget")
	level := fs.String("level", "medium", "assumed worker quality: high|medium|low")
	seed := fs.Uint64("seed", 5, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("calibrate: -n must be at least 2")
	}
	cfg := crowdrank.DefaultSimConfig(*seed)
	switch *level {
	case "high":
		cfg.Level = crowdrank.HighQualityWorkers
	case "medium":
		cfg.Level = crowdrank.MediumQualityWorkers
	case "low":
		cfg.Level = crowdrank.LowQualityWorkers
	default:
		return fmt.Errorf("calibrate: unknown level %q", *level)
	}
	res, err := crowdrank.CalibrateBudget(*n, *target, cfg, *pilots)
	if res != nil {
		fmt.Printf("evaluated curve (ratio -> tasks -> mean pilot accuracy):\n")
		for _, p := range res.Curve {
			fmt.Printf("  %.4f  %6d  %.4f\n", p.Ratio, p.Tasks, p.Accuracy)
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("smallest budget reaching %.3f: ratio %.4f (%d comparisons, estimated accuracy %.4f)\n",
		*target, res.Ratio, res.Tasks, res.EstimatedAccuracy)
	return nil
}

// runDOT exports the plan's task graph as Graphviz DOT.
func runDOT(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	planPath := fs.String("plan", "plan.json", "plan file")
	out := fs.String("out", "", "output file (stdout when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pf PlanFile
	if err := readJSON(*planPath, &pf); err != nil {
		return err
	}
	plan, err := crowdrank.PlanTasks(pf.N, pf.L, pf.Seed)
	if err != nil {
		return fmt.Errorf("rebuilding plan: %w", err)
	}
	if *out == "" {
		return plan.WriteDOT(os.Stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("creating %s: %w", *out, err)
	}
	defer closeQuietly(f)
	if err := plan.WriteDOT(f); err != nil {
		return err
	}
	return f.Close()
}

// printWorkerReport lists workers by descending estimated quality.
func printWorkerReport(quality []float64) {
	type wq struct {
		worker  int
		quality float64
	}
	rows := make([]wq, 0, len(quality))
	for w, q := range quality {
		if q > 0 { // workers with no votes have quality 0
			rows = append(rows, wq{worker: w, quality: q})
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].quality > rows[b].quality })
	fmt.Println("worker quality (best first):")
	for _, r := range rows {
		fmt.Printf("  worker %-5d %.4f\n", r.worker, r.quality)
	}
}

// writeVotesCSVFile writes votes in the crowdrank CSV schema.
func writeVotesCSVFile(path string, votes []crowdrank.Vote) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	defer closeQuietly(f)
	if err := crowdrank.WriteVotesCSV(f, votes); err != nil {
		return err
	}
	return f.Close()
}

// readVotesCSVFile reads CSV votes and derives the worker-pool size from
// the largest worker id seen.
func readVotesCSVFile(path string) ([]crowdrank.Vote, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("opening %s: %w", path, err)
	}
	defer closeQuietly(f)
	votes, err := crowdrank.ReadVotesCSV(f)
	if err != nil {
		return nil, 0, err
	}
	workers := 0
	for _, v := range votes {
		if v.Worker+1 > workers {
			workers = v.Worker + 1
		}
	}
	return votes, workers, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	return nil
}

// closeQuietly closes f ignoring the error: used only as a deferred
// double-close safety net after the success path has already checked an
// explicit Close, or on read-only files where a close error carries no
// information.
func closeQuietly(f *os.File) {
	//lint:ignore errcheck deferred double-close safety net; the success path checks an explicit Close and read-only closes carry no information
	_ = f.Close()
}
