package crowdrank

import (
	"fmt"
	"sort"
)

// VoteError is the typed error returned by strict vote validation: it names
// the first offending vote by its index in the input slice and explains
// what is wrong with it.
type VoteError struct {
	// Index is the position of the offending vote in the input slice.
	Index int
	// Vote is the offending vote itself.
	Vote Vote
	// Reason describes the violation.
	Reason string
}

// Error renders the offense with enough context to find it in the input.
func (e *VoteError) Error() string {
	return fmt.Sprintf("crowdrank: vote %d (worker %d, pair %d vs %d): %s",
		e.Index, e.Vote.Worker, e.Vote.I, e.Vote.J, e.Reason)
}

// SanitizeReport summarizes what lenient sanitization dropped. A zero
// Dropped() means the input was already clean.
type SanitizeReport struct {
	// Input and Kept count votes before and after sanitization.
	Input int
	Kept  int
	// OutOfRangePairs counts votes whose object ids fall outside [0, n);
	// SelfPairs votes comparing an object with itself; InvalidWorkers votes
	// from worker ids outside [0, m); Duplicates exact re-submissions (same
	// worker, same pair, same answer) beyond the first.
	OutOfRangePairs int
	SelfPairs       int
	InvalidWorkers  int
	Duplicates      int
}

// Dropped returns how many votes sanitization removed.
func (r SanitizeReport) Dropped() int { return r.Input - r.Kept }

// Clean reports whether the input needed no repairs.
func (r SanitizeReport) Clean() bool { return r.Dropped() == 0 }

// String renders the report compactly for logs and CLI output.
func (r SanitizeReport) String() string {
	return fmt.Sprintf("kept %d of %d (dropped %d out-of-range pair, %d self-pair, %d invalid-worker, %d duplicate)",
		r.Kept, r.Input, r.OutOfRangePairs, r.SelfPairs, r.InvalidWorkers, r.Duplicates)
}

// submissionKey canonicalizes one (worker, pair, answer) submission so that
// a vote and its re-submission with swapped object order still collide.
type submissionKey struct {
	worker     int
	lo, hi     int
	prefersLow bool
}

func (v Vote) submissionKey() submissionKey {
	lo, hi, prefersLow := v.I, v.J, v.PrefersI
	if lo > hi {
		lo, hi = hi, lo
		prefersLow = !prefersLow
	}
	return submissionKey{worker: v.Worker, lo: lo, hi: hi, prefersLow: prefersLow}
}

// checkVote classifies one vote against the object universe [0, n) and the
// worker universe [0, m), returning a reason string for invalid votes.
func checkVote(v Vote, n, m int) (reason string, counts func(*SanitizeReport)) {
	switch {
	case v.I < 0 || v.I >= n || v.J < 0 || v.J >= n:
		return fmt.Sprintf("object id outside [0,%d)", n),
			func(r *SanitizeReport) { r.OutOfRangePairs++ }
	case v.I == v.J:
		return "object compared with itself",
			func(r *SanitizeReport) { r.SelfPairs++ }
	case v.Worker < 0 || v.Worker >= m:
		return fmt.Sprintf("worker id outside [0,%d)", m),
			func(r *SanitizeReport) { r.InvalidWorkers++ }
	}
	return "", nil
}

// ValidateVotes checks every vote against n objects and m workers and
// returns a *VoteError naming the first offense: an out-of-range object id,
// a self-pair i==j, an out-of-range worker id, or an exact duplicate
// submission (same worker, same pair, same answer). Conflicting repeat
// answers by the same worker are legal — they are genuine observations for
// truth discovery. This is the strict counterpart of SanitizeVotes; Infer
// applies it under WithStrictVotes.
func ValidateVotes(n, m int, votes []Vote) error {
	seen := make(map[submissionKey]int, len(votes))
	for i, v := range votes {
		if reason, _ := checkVote(v, n, m); reason != "" {
			return &VoteError{Index: i, Vote: v, Reason: reason}
		}
		key := v.submissionKey()
		if first, dup := seen[key]; dup {
			return &VoteError{Index: i, Vote: v,
				Reason: fmt.Sprintf("duplicate of vote %d (same worker, pair, and answer)", first)}
		}
		seen[key] = i
	}
	return nil
}

// SanitizeVotes drops every vote ValidateVotes would reject — out-of-range
// object ids, self-pairs, out-of-range worker ids, and exact duplicate
// submissions — and reports what was removed. The input is not modified;
// conflicting repeat answers by the same worker are kept. This is the
// lenient mode Infer applies by default, recording the report in
// Result.Sanitization.
func SanitizeVotes(n, m int, votes []Vote) ([]Vote, SanitizeReport) {
	report := SanitizeReport{Input: len(votes)}
	out := make([]Vote, 0, len(votes))
	seen := make(map[submissionKey]bool, len(votes))
	for _, v := range votes {
		if _, count := checkVote(v, n, m); count != nil {
			count(&report)
			continue
		}
		key := v.submissionKey()
		if seen[key] {
			report.Duplicates++
			continue
		}
		seen[key] = true
		out = append(out, v)
	}
	report.Kept = len(out)
	return out, report
}

// CoverageReport describes how well the delivered votes cover the object
// universe — the degradation-aware companion to a ranking inferred from
// incomplete data. Objects without direct evidence are placed by the
// uninformed 0.5 prior alone, so their positions carry no signal.
type CoverageReport struct {
	// ObjectVotes[i] counts delivered votes touching object i.
	ObjectVotes []int
	// ObjectCoverage[i] is the fraction of the other n-1 objects that i
	// was directly compared against at least once — a per-object
	// confidence proxy in [0, 1].
	ObjectCoverage []float64
	// UncoveredObjects lists objects with no votes at all, ascending.
	UncoveredObjects []int
	// MeanCoverage averages ObjectCoverage over all objects.
	MeanCoverage float64
}

// Degraded reports whether any object lacks direct evidence entirely.
func (c CoverageReport) Degraded() bool { return len(c.UncoveredObjects) > 0 }

// MeasureCoverage computes the per-object coverage of a vote set over n
// objects. Votes must already be sanitized (object ids in range).
func MeasureCoverage(n int, votes []Vote) CoverageReport {
	counts := make([]int, n)
	partners := make([]map[int]bool, n)
	for _, v := range votes {
		counts[v.I]++
		counts[v.J]++
		if partners[v.I] == nil {
			partners[v.I] = make(map[int]bool)
		}
		if partners[v.J] == nil {
			partners[v.J] = make(map[int]bool)
		}
		partners[v.I][v.J] = true
		partners[v.J][v.I] = true
	}
	rep := CoverageReport{
		ObjectVotes:    counts,
		ObjectCoverage: make([]float64, n),
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		if n > 1 {
			rep.ObjectCoverage[i] = float64(len(partners[i])) / float64(n-1)
		} else {
			rep.ObjectCoverage[i] = 1
		}
		sum += rep.ObjectCoverage[i]
		if counts[i] == 0 {
			rep.UncoveredObjects = append(rep.UncoveredObjects, i)
		}
	}
	sort.Ints(rep.UncoveredObjects)
	if n > 0 {
		rep.MeanCoverage = sum / float64(n)
	}
	return rep
}
