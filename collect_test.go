package crowdrank

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// unreliableRound simulates the acceptance scenario: 20% HIT dropout plus
// 5% malformed (spam) votes, fully seeded.
func unreliableRound(t *testing.T, cc CollectConfig) (*Plan, *SimRound, *CollectionReport) {
	t.Helper()
	plan, err := PlanTasksRatio(20, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(2)
	cfg.Workers = 15
	cfg.WorkersPerTask = 5
	fc := FaultConfig{DropoutRate: 0.2, SpamRate: 0.05, DuplicateRate: 0.02, Seed: 3}
	round, report, err := SimulateUnreliableVotes(plan, cfg, fc, cc)
	if err != nil {
		t.Fatal(err)
	}
	return plan, round, report
}

func TestSimulateUnreliableVotesLossAndRepair(t *testing.T) {
	_, round, report := unreliableRound(t, DefaultCollectConfig())
	if report.PlannedVotes == 0 {
		t.Fatal("no planned votes")
	}
	if report.LostToDropout == 0 {
		t.Error("20% dropout lost nothing")
	}
	if report.Repaired == 0 || report.Reposts == 0 {
		t.Errorf("repair waves recovered nothing: %s", report)
	}
	if report.Malformed == 0 {
		t.Error("5% spam produced no malformed votes")
	}
	if report.Delivered+report.Lost != report.PlannedVotes {
		t.Errorf("delivery accounting mismatch: %s", report)
	}
	if report.ResidualCoverage <= 0 || report.ResidualCoverage > 1 {
		t.Errorf("residual coverage %v outside (0,1]", report.ResidualCoverage)
	}
	if report.Makespan <= 0 {
		t.Error("makespan should be positive")
	}
	if round.Spent != report.Spent+report.RepairSpent {
		t.Errorf("round spent %v != base %v + repair %v", round.Spent, report.Spent, report.RepairSpent)
	}
	if len(round.GroundTruth) != 20 {
		t.Errorf("ground truth has %d objects", len(round.GroundTruth))
	}
	if s := report.String(); s == "" {
		t.Error("empty report string")
	}
}

func TestSimulateUnreliableVotesDeterministic(t *testing.T) {
	_, a, ra := unreliableRound(t, DefaultCollectConfig())
	_, b, rb := unreliableRound(t, DefaultCollectConfig())
	if len(a.Votes) != len(b.Votes) {
		t.Fatalf("vote counts differ: %d vs %d", len(a.Votes), len(b.Votes))
	}
	for i := range a.Votes {
		if a.Votes[i] != b.Votes[i] {
			t.Fatalf("vote %d differs: %+v vs %+v", i, a.Votes[i], b.Votes[i])
		}
	}
	if ra.String() != rb.String() {
		t.Errorf("reports differ:\n%s\n%s", ra, rb)
	}
}

// TestLenientInferSurvivesUnreliableRound is the acceptance scenario:
// lenient Infer over the raw faulty votes returns a full ranking with
// populated sanitization and coverage reports, no panic.
func TestLenientInferSurvivesUnreliableRound(t *testing.T) {
	plan, round, report := unreliableRound(t, DefaultCollectConfig())
	res, err := Infer(plan.N, 15, round.Votes, WithSeed(7))
	if err != nil {
		t.Fatalf("lenient Infer failed on faulty votes: %v", err)
	}
	if len(res.Ranking) != plan.N {
		t.Fatalf("ranking has %d of %d objects", len(res.Ranking), plan.N)
	}
	if res.Sanitization.Clean() {
		t.Errorf("sanitization dropped nothing despite %d malformed votes: %s",
			report.Malformed, res.Sanitization)
	}
	if res.Sanitization.Kept+res.Sanitization.Dropped() != res.Sanitization.Input {
		t.Errorf("sanitize accounting mismatch: %s", res.Sanitization)
	}
	if len(res.Coverage.ObjectCoverage) != plan.N {
		t.Errorf("coverage has %d objects", len(res.Coverage.ObjectCoverage))
	}
	if res.Coverage.MeanCoverage <= 0 {
		t.Error("mean coverage should be positive with delivered votes")
	}
	// The inferred ranking should still beat a coin flip comfortably.
	acc, err := Accuracy(res.Ranking, round.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("accuracy %.3f under 20%% loss; degradation too steep", acc)
	}
}

// TestStrictInferRejectsUnreliableRound: strict mode names the first
// offending vote as a typed *VoteError.
func TestStrictInferRejectsUnreliableRound(t *testing.T) {
	plan, round, _ := unreliableRound(t, DefaultCollectConfig())
	_, err := Infer(plan.N, 15, round.Votes, WithSeed(7), WithStrictVotes())
	if err == nil {
		t.Fatal("strict mode accepted malformed votes")
	}
	var ve *VoteError
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T, want *VoteError: %v", err, err)
	}
	if ve.Index < 0 || ve.Index >= len(round.Votes) {
		t.Errorf("offending index %d outside input", ve.Index)
	}
	if ve.Vote != round.Votes[ve.Index] {
		t.Errorf("reported vote %+v is not input[%d] = %+v", ve.Vote, ve.Index, round.Votes[ve.Index])
	}
	if ve.Reason == "" {
		t.Error("empty reason")
	}
}

func TestSimulateUnreliableVotesNoRepair(t *testing.T) {
	_, _, report := unreliableRound(t, CollectConfig{Deadline: 30 * time.Minute})
	if report.Reposts != 0 || report.Repaired != 0 || report.RepairSpent != 0 {
		t.Errorf("repair disabled but report shows repair: %s", report)
	}
	if report.Lost == 0 {
		t.Error("20% dropout with no repair should lose votes")
	}
}

func TestSimulateUnreliableVotesZeroFaults(t *testing.T) {
	plan, err := PlanTasksRatio(12, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(5)
	cfg.Workers = 10
	cfg.WorkersPerTask = 4
	round, report, err := SimulateUnreliableVotes(plan, cfg, FaultConfig{}, DefaultCollectConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !((FaultConfig{}).Zero()) {
		t.Error("zero FaultConfig should report Zero")
	}
	if report.Delivered != report.PlannedVotes || report.Lost != 0 {
		t.Errorf("fault-free round lost votes: %s", report)
	}
	if report.ResidualCoverage != 1 || len(report.UncoveredPairs) != 0 {
		t.Errorf("fault-free round left pairs uncovered: %s", report)
	}
	if len(round.Votes) != report.PlannedVotes {
		t.Errorf("votes %d != planned %d", len(round.Votes), report.PlannedVotes)
	}
}

func TestSimulateUnreliableVotesValidation(t *testing.T) {
	plan, err := PlanTasksRatio(10, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  SimConfig
		fc   FaultConfig
	}{
		{"no workers", SimConfig{WorkersPerTask: 1, PairsPerHIT: 1, Distribution: GaussianWorkers, Level: MediumQualityWorkers}, FaultConfig{}},
		{"per-task too large", SimConfig{Workers: 2, WorkersPerTask: 5, PairsPerHIT: 1, Distribution: GaussianWorkers, Level: MediumQualityWorkers}, FaultConfig{}},
		{"bad rate", DefaultSimConfig(1), FaultConfig{DropoutRate: 1.5}},
	}
	for _, tc := range cases {
		if _, _, err := SimulateUnreliableVotes(plan, tc.cfg, tc.fc, DefaultCollectConfig()); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, _, err := SimulateUnreliableVotes(nil, DefaultSimConfig(1), FaultConfig{}, DefaultCollectConfig()); err == nil {
		t.Error("nil plan: expected error")
	}
}

func TestCollectionReportString(t *testing.T) {
	r := CollectionReport{
		PlannedVotes: 100, Delivered: 80, Repaired: 5, Reposts: 7,
		Lost: 20, LostToDropout: 12, LostLate: 5, LostPartial: 3,
		Malformed: 2, Duplicates: 4,
		ResidualCoverage: 0.875, UncoveredPairs: []Pair{{I: 0, J: 1}, {I: 2, J: 3}},
		Spent: 50, RepairSpent: 3.5, Makespan: 90 * time.Second,
	}
	s := r.String()
	// The report is the round's one-line audit trail: every headline number
	// must survive into the rendered form.
	for _, want := range []string{
		"delivered 80 of 100 planned votes",
		"5 repaired in 7 reposts",
		"20 lost: 12 dropout / 5 late / 3 partial",
		"2 malformed", "4 duplicate",
		"coverage 0.875", "2 pairs uncovered",
		"spent 50 + 4 repair", "makespan 1m30s",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q is missing %q", s, want)
		}
	}
	var zero CollectionReport
	if zs := zero.String(); !strings.Contains(zs, "delivered 0 of 0 planned votes") {
		t.Errorf("zero report should render without panicking, got %q", zs)
	}
}

func TestResidualCoverageEdgeCases(t *testing.T) {
	plan, err := PlanTasksRatio(10, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	votes := []Vote{{Worker: 0, I: plan.Pairs[0].I, J: plan.Pairs[0].J, PrefersI: true}}

	// Zero workers: sanitization drops every vote, so nothing is covered
	// and every planned pair is reported uncovered.
	cov, uncovered := residualCoverage(plan, votes, 0)
	if cov != 0 {
		t.Errorf("zero workers should give coverage 0, got %v", cov)
	}
	if len(uncovered) != len(plan.Pairs) {
		t.Errorf("zero workers should leave all %d pairs uncovered, got %d", len(plan.Pairs), len(uncovered))
	}

	// Empty plan: vacuously fully covered, nothing uncovered — even with
	// votes present.
	empty := &Plan{N: plan.N}
	cov, uncovered = residualCoverage(empty, votes, 1)
	if cov != 1 || uncovered != nil {
		t.Errorf("empty plan should be vacuously covered, got %v / %v", cov, uncovered)
	}

	// One covered pair out of the plan: the ratio counts only planned
	// pairs, and a mirrored (hi, lo) vote still covers its pair.
	mirrored := []Vote{{Worker: 0, I: plan.Pairs[0].J, J: plan.Pairs[0].I, PrefersI: false}}
	cov, uncovered = residualCoverage(plan, mirrored, 1)
	want := 1 / float64(len(plan.Pairs))
	if math.Abs(cov-want) > 1e-12 {
		t.Errorf("coverage %v, want %v", cov, want)
	}
	if len(uncovered) != len(plan.Pairs)-1 {
		t.Errorf("want %d uncovered pairs, got %d", len(plan.Pairs)-1, len(uncovered))
	}
}
