package crowdrank

import (
	"testing"

	"crowdrank/internal/lint"
)

// TestCrowdlintAllChecksRegistered pins the check roster: the concurrency
// and durability checks added for the daemon must stay enabled by default,
// because `go run ./cmd/crowdlint ./...` (check.sh, CI) runs the default
// set. Dropping a name here is how a check would silently stop gating.
func TestCrowdlintAllChecksRegistered(t *testing.T) {
	want := []string{
		"globalrand", "floatcmp", "ctxloop", "panics", "errcheck",
		"lockcheck", "goroleak", "ackflow", "srvtimeout",
	}
	if len(lint.AllChecks) != len(want) {
		t.Fatalf("AllChecks = %v, want %v", lint.AllChecks, want)
	}
	for i, name := range want {
		if lint.AllChecks[i] != name {
			t.Fatalf("AllChecks[%d] = %q, want %q (full set %v)", i, lint.AllChecks[i], name, lint.AllChecks)
		}
	}
}

// TestCrowdlintSelf runs the domain linter over the whole module with the
// default configuration — the same invocation as `go run ./cmd/crowdlint
// ./...` in scripts/check.sh — and fails on any finding. Keeping the tree
// lint-clean is a tier-1 property: every check encodes a reproduction
// contract (seeded randomness, tolerant float comparison, cancellable
// searches, error-returning APIs), and a finding means a contract was
// broken, not just a style slip.
func TestCrowdlintSelf(t *testing.T) {
	findings, err := lint.Module(".", lint.Config{})
	if err != nil {
		t.Fatalf("lint.Module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("crowdlint reported %d finding(s); fix or add a reasoned //lint:ignore", len(findings))
	}
}

// TestCrowdlintSelfWithInvariantTag lints the crowdrank_invariants build
// variant too, so the tag-gated assertion layer (on.go) cannot hide
// violations from the untagged lint pass. The invariant package itself is
// panic-exempt by default; everything else must hold under both tag sets.
func TestCrowdlintSelfWithInvariantTag(t *testing.T) {
	findings, err := lint.Module(".", lint.Config{BuildTags: []string{"crowdrank_invariants"}})
	if err != nil {
		t.Fatalf("lint.Module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("crowdlint reported %d finding(s) under -tags crowdrank_invariants", len(findings))
	}
}
