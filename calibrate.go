package crowdrank

import (
	"fmt"
	"sort"
)

// CalibrationResult reports the outcome of a budget calibration.
type CalibrationResult struct {
	// Ratio is the smallest tested selection ratio whose mean simulated
	// accuracy reaches the target.
	Ratio float64
	// Tasks is the corresponding number of comparison tasks l.
	Tasks int
	// EstimatedAccuracy is the mean pilot accuracy at Ratio.
	EstimatedAccuracy float64
	// Curve records the (ratio, mean accuracy) points evaluated, sorted by
	// ratio, for inspection and plotting.
	Curve []CalibrationPoint
}

// CalibrationPoint is one evaluated budget.
type CalibrationPoint struct {
	Ratio    float64
	Tasks    int
	Accuracy float64
}

// CalibrateBudget addresses the paper's future-work objective of
// *minimizing the number of comparisons* needed for an acceptable ranking
// accuracy: it searches the selection-ratio axis with simulated pilot
// rounds (using the given worker model) and returns the smallest budget
// whose mean pilot accuracy reaches the target.
//
// The search runs a bisection over ratios in [minRatio, 1], evaluating
// `pilots` independent simulated rounds per candidate. Accuracy is not
// perfectly monotone in the budget (crowd noise), so the result is the
// smallest *evaluated* ratio meeting the target, with the whole evaluated
// curve returned for transparency.
func CalibrateBudget(n int, targetAccuracy float64, cfg SimConfig, pilots int) (*CalibrationResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("crowdrank: need at least two objects, got n=%d", n)
	}
	if targetAccuracy <= 0.5 || targetAccuracy >= 1 {
		return nil, fmt.Errorf("crowdrank: target accuracy %v outside (0.5, 1)", targetAccuracy)
	}
	if pilots < 1 {
		return nil, fmt.Errorf("crowdrank: need at least one pilot round, got %d", pilots)
	}

	// The spanning-path budget is the smallest meaningful ratio.
	minRatio := 2.0 / float64(n) // l = n-1 corresponds to r ~ 2/n
	if minRatio > 1 {
		minRatio = 1
	}

	evaluate := func(ratio float64) (CalibrationPoint, error) {
		var total float64
		var tasks int
		for p := 0; p < pilots; p++ {
			seed := cfg.Seed + uint64(p)*1000003 + uint64(ratio*1e6)
			plan, err := PlanTasksRatio(n, ratio, seed)
			if err != nil {
				return CalibrationPoint{}, err
			}
			tasks = plan.L
			pilotCfg := cfg
			pilotCfg.Seed = seed + 17
			round, err := SimulateVotes(plan, pilotCfg)
			if err != nil {
				return CalibrationPoint{}, err
			}
			res, err := Infer(plan.N, pilotCfg.Workers, round.Votes, WithSeed(seed+31))
			if err != nil {
				return CalibrationPoint{}, err
			}
			acc, err := Accuracy(res.Ranking, round.GroundTruth)
			if err != nil {
				return CalibrationPoint{}, err
			}
			total += acc
		}
		return CalibrationPoint{Ratio: ratio, Tasks: tasks, Accuracy: total / float64(pilots)}, nil
	}

	var curve []CalibrationPoint
	lo, hi := minRatio, 1.0

	// First check feasibility at the full budget.
	top, err := evaluate(hi)
	if err != nil {
		return nil, err
	}
	curve = append(curve, top)
	if top.Accuracy < targetAccuracy {
		sortCurve(curve)
		return &CalibrationResult{
			Ratio:             top.Ratio,
			Tasks:             top.Tasks,
			EstimatedAccuracy: top.Accuracy,
			Curve:             curve,
		}, fmt.Errorf("crowdrank: target accuracy %.3f unreachable even at the full budget (got %.3f); raise worker quality or lower the target", targetAccuracy, top.Accuracy)
	}

	best := top
	const iterations = 7
	for iter := 0; iter < iterations && hi-lo > 1e-3; iter++ {
		mid := (lo + hi) / 2
		point, err := evaluate(mid)
		if err != nil {
			return nil, err
		}
		curve = append(curve, point)
		if point.Accuracy >= targetAccuracy {
			hi = mid
			if point.Ratio < best.Ratio {
				best = point
			}
		} else {
			lo = mid
		}
	}

	sortCurve(curve)
	return &CalibrationResult{
		Ratio:             best.Ratio,
		Tasks:             best.Tasks,
		EstimatedAccuracy: best.Accuracy,
		Curve:             curve,
	}, nil
}

func sortCurve(curve []CalibrationPoint) {
	sort.Slice(curve, func(a, b int) bool { return curve[a].Ratio < curve[b].Ratio })
}

// TopK returns the first k objects of the inferred ranking — the paper's
// future-work extension to top-k ranking. The full pipeline already orders
// all objects, so the top-k is a prefix; TopKOverlap scores top-k quality.
func (r *Result) TopK(k int) ([]int, error) {
	if k < 1 || k > len(r.Ranking) {
		return nil, fmt.Errorf("crowdrank: k=%d outside [1,%d]", k, len(r.Ranking))
	}
	out := make([]int, k)
	copy(out, r.Ranking[:k])
	return out, nil
}
