package crowdrank

import "crowdrank/internal/kendall"

// KendallTauDistance returns the normalized Kendall tau distance in [0, 1]
// between two rankings (best-first permutations of the same objects): the
// fraction of object pairs the rankings order differently.
func KendallTauDistance(a, b []int) (float64, error) {
	return kendall.Distance(a, b)
}

// Accuracy returns 1 - KendallTauDistance, the paper's accuracy measure
// (Section VI-A5).
func Accuracy(a, b []int) (float64, error) {
	return kendall.Accuracy(a, b)
}

// KendallTau returns the Kendall tau rank-correlation coefficient in
// [-1, 1]: +1 for identical rankings, 0 in expectation for independent
// ones, -1 for exact reversal.
func KendallTau(a, b []int) (float64, error) {
	return kendall.Tau(a, b)
}

// SpearmanRho returns Spearman's rank correlation coefficient in [-1, 1].
func SpearmanRho(a, b []int) (float64, error) {
	return kendall.SpearmanRho(a, b)
}

// TopKOverlap returns the fraction of shared objects among the top k of the
// two rankings, a quality measure for top-k use cases.
func TopKOverlap(a, b []int, k int) (float64, error) {
	return kendall.TopKOverlap(a, b, k)
}
