package crowdrank

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestVotesCSVRoundTrip(t *testing.T) {
	votes := []Vote{
		{Worker: 0, I: 1, J: 2, PrefersI: true},
		{Worker: 3, I: 5, J: 4, PrefersI: false},
	}
	var buf bytes.Buffer
	if err := WriteVotesCSV(&buf, votes); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVotesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(votes) {
		t.Fatalf("got %d votes", len(got))
	}
	for i := range votes {
		if got[i] != votes[i] {
			t.Errorf("vote %d: %+v != %+v", i, got[i], votes[i])
		}
	}
}

func TestVotesCSVRoundTripQuick(t *testing.T) {
	f := func(raw []struct {
		Worker uint8
		I, J   uint8
		Pref   bool
	}) bool {
		votes := make([]Vote, len(raw))
		for i, r := range raw {
			votes[i] = Vote{Worker: int(r.Worker), I: int(r.I), J: int(r.J), PrefersI: r.Pref}
		}
		var buf bytes.Buffer
		if err := WriteVotesCSV(&buf, votes); err != nil {
			return false
		}
		got, err := ReadVotesCSV(&buf)
		if err != nil || len(got) != len(votes) {
			return false
		}
		for i := range votes {
			if got[i] != votes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadVotesCSVWithoutHeader(t *testing.T) {
	got, err := ReadVotesCSV(strings.NewReader("2,0,1,true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (Vote{Worker: 2, I: 0, J: 1, PrefersI: true}) {
		t.Errorf("got %+v", got)
	}
}

func TestReadVotesCSVErrors(t *testing.T) {
	cases := []string{
		"worker,i,j\n",                // wrong column count
		"a,0,1,true\n",                // bad worker
		"0,b,1,true\n",                // bad i
		"0,1,c,true\n",                // bad j
		"0,1,2,maybe\n",               // bad bool
		"worker,i,j,prefers_i\n0,1\n", // ragged row
	}
	for _, in := range cases {
		if _, err := ReadVotesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestPairsCSVRoundTrip(t *testing.T) {
	plan, err := PlanTasks(10, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePairsCSV(&buf, plan.Pairs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPairsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(plan.Pairs) {
		t.Fatalf("got %d pairs", len(got))
	}
	for i := range got {
		if got[i] != plan.Pairs[i] {
			t.Errorf("pair %d: %v != %v", i, got[i], plan.Pairs[i])
		}
	}
}

func TestReadPairsCSVErrors(t *testing.T) {
	for _, in := range []string{"i\n", "x,1\n", "1,y\n"} {
		if _, err := ReadPairsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestCSVInferInterop(t *testing.T) {
	// Votes surviving a CSV round trip must infer identically.
	plan, err := PlanTasksRatio(15, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	round, err := SimulateVotes(plan, DefaultSimConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVotesCSV(&buf, round.Votes); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadVotesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Infer(plan.N, 30, round.Votes, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(plan.N, 30, decoded, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranking {
		if a.Ranking[i] != b.Ranking[i] {
			t.Fatal("CSV round trip changed the inference result")
		}
	}
}

func TestCleanVotesFacade(t *testing.T) {
	votes := []Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 0, I: 0, J: 1, PrefersI: true}, // duplicate
		{Worker: 5, I: 0, J: 1, PrefersI: true}, // bad worker
		{Worker: 0, I: 0, J: 7, PrefersI: true}, // bad pair
	}
	clean, rep := CleanVotes(votes, 3, 2, true)
	if len(clean) != 1 || rep.Kept != 1 || rep.DroppedDuplicates != 1 ||
		rep.DroppedInvalidWorker != 1 || rep.DroppedInvalidPair != 1 {
		t.Fatalf("clean = %v, report = %+v", clean, rep)
	}
	if rep.String() == "" {
		t.Error("report string empty")
	}
}
