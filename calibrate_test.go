package crowdrank

import (
	"strings"
	"testing"
)

func TestCalibrateBudgetFindsSmallBudget(t *testing.T) {
	cfg := DefaultSimConfig(5)
	cfg.Level = HighQualityWorkers
	res, err := CalibrateBudget(60, 0.9, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 0 || res.Ratio > 1 {
		t.Errorf("ratio = %v", res.Ratio)
	}
	if res.EstimatedAccuracy < 0.9 {
		t.Errorf("estimated accuracy %v below target", res.EstimatedAccuracy)
	}
	// High-quality workers should not need anywhere near the full budget.
	if res.Ratio > 0.6 {
		t.Errorf("calibrated ratio %v suspiciously large for high-quality workers", res.Ratio)
	}
	if len(res.Curve) < 2 {
		t.Errorf("curve has %d points", len(res.Curve))
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].Ratio < res.Curve[i-1].Ratio {
			t.Error("curve not sorted by ratio")
		}
	}
}

func TestCalibrateBudgetUnreachableTarget(t *testing.T) {
	cfg := DefaultSimConfig(6)
	cfg.Level = LowQualityWorkers
	res, err := CalibrateBudget(30, 0.999, cfg, 1)
	if err == nil {
		t.Fatalf("expected unreachable-target error, got %+v", res)
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unexpected error: %v", err)
	}
	if res == nil || len(res.Curve) == 0 {
		t.Error("unreachable result should still report the evaluated curve")
	}
}

func TestCalibrateBudgetValidation(t *testing.T) {
	cfg := DefaultSimConfig(7)
	if _, err := CalibrateBudget(1, 0.9, cfg, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := CalibrateBudget(20, 0.4, cfg, 1); err == nil {
		t.Error("target <= 0.5 should fail")
	}
	if _, err := CalibrateBudget(20, 1.0, cfg, 1); err == nil {
		t.Error("target >= 1 should fail")
	}
	if _, err := CalibrateBudget(20, 0.9, cfg, 0); err == nil {
		t.Error("pilots=0 should fail")
	}
}

func TestResultTopK(t *testing.T) {
	plan, err := PlanTasksRatio(20, 0.5, 91)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(92)
	cfg.Level = HighQualityWorkers
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer(plan.N, cfg.Workers, round.Votes, WithSeed(93))
	if err != nil {
		t.Fatal(err)
	}
	top5, err := res.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top5) != 5 {
		t.Fatalf("TopK(5) = %v", top5)
	}
	for i := range top5 {
		if top5[i] != res.Ranking[i] {
			t.Error("TopK must be a prefix of the ranking")
		}
	}
	// Mutating the returned slice must not affect the result.
	top5[0] = -1
	if res.Ranking[0] == -1 {
		t.Error("TopK must copy")
	}
	overlap, err := TopKOverlap(res.Ranking, round.GroundTruth, 5)
	if err != nil {
		t.Fatal(err)
	}
	if overlap < 0.6 {
		t.Errorf("top-5 overlap with truth = %v", overlap)
	}
	if _, err := res.TopK(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := res.TopK(21); err == nil {
		t.Error("k>n should fail")
	}
}
