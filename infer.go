package crowdrank

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"crowdrank/internal/core"
	"crowdrank/internal/crowd"
	"crowdrank/internal/journal"
	"crowdrank/internal/search"
	"crowdrank/internal/serve"
)

// Vote records that Worker compared objects I and J and preferred I when
// PrefersI is true (I should rank before J).
type Vote struct {
	Worker   int
	I, J     int
	PrefersI bool
}

// SearchAlgorithm selects the Step 4 best-ranking searcher.
type SearchAlgorithm int

const (
	// SearchAuto uses an exact method up to 16 objects and simulated
	// annealing beyond.
	SearchAuto SearchAlgorithm = iota
	// SearchSAPS forces the paper's simulated-annealing path search.
	SearchSAPS
	// SearchTAPS forces the paper's exact threshold algorithm (n <= ~9).
	SearchTAPS
	// SearchHeldKarp forces the exact subset DP (n <= ~20).
	SearchHeldKarp
	// SearchBruteForce forces exhaustive enumeration (n <= ~10).
	SearchBruteForce
	// SearchBranchBound forces the exact all-pairs branch-and-bound,
	// effective on near-consistent closures well beyond Held-Karp's reach
	// (it returns an error on cycle-heavy instances instead of an unproven
	// answer).
	SearchBranchBound
)

func (s SearchAlgorithm) core() (core.Searcher, error) {
	switch s {
	case SearchAuto:
		return core.SearcherAuto, nil
	case SearchSAPS:
		return core.SearcherSAPS, nil
	case SearchTAPS:
		return core.SearcherTAPS, nil
	case SearchHeldKarp:
		return core.SearcherHeldKarp, nil
	case SearchBruteForce:
		return core.SearcherBruteForce, nil
	case SearchBranchBound:
		return core.SearcherBranchBound, nil
	default:
		return 0, fmt.Errorf("crowdrank: unknown search algorithm %d", int(s))
	}
}

// options carries the assembled inference configuration.
type options struct {
	core   core.Options
	seed   uint64
	strict bool
	err    error
}

// Option customizes Infer.
type Option func(*options)

// WithSeed fixes the random seed used by smoothing and SAPS, making
// inference reproducible. Without it a time-derived seed is used; either
// way the effective seed is recorded in Result.Seed so dependent calls
// (CertifyRanking in particular) can reuse it.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithStrictVotes makes Infer reject malformed input instead of repairing
// it: the first out-of-range object id, self-pair, out-of-range worker id,
// or exact duplicate submission aborts inference with a *VoteError naming
// the offending vote. Without this option Infer is lenient — it drops such
// votes and reports what was removed in Result.Sanitization.
func WithStrictVotes() Option {
	return func(o *options) { o.strict = true }
}

// WithAlpha sets the direct/indirect blend weight of Step 3
// (w = alpha*direct + (1-alpha)*indirect); alpha must lie in [0, 1].
func WithAlpha(alpha float64) Option {
	return func(o *options) { o.core.Propagate.Alpha = alpha }
}

// WithMaxHops bounds the transitive chains considered by Step 3's
// propagation (>= 1; 1 disables indirect evidence).
func WithMaxHops(hops int) Option {
	return func(o *options) { o.core.Propagate.MaxHops = hops }
}

// PathObjective selects what "preference probability of a ranking" means in
// the Step 4 search (the paper's Pr[P] over a Hamiltonian path of the
// transitive closure).
type PathObjective int

const (
	// AllPairsObjective scores a ranking by the product of preference
	// weights over all object pairs it implies — the sound reading used by
	// default (see DESIGN.md, "objective reading").
	AllPairsObjective PathObjective = iota
	// ConsecutiveObjective scores only the n-1 consecutive edges of the
	// path, the literal reading of the paper's formula; kept for fidelity
	// and ablations.
	ConsecutiveObjective
)

// WithObjective selects the Step 4 path-preference objective.
func WithObjective(obj PathObjective) Option {
	return func(o *options) {
		switch obj {
		case AllPairsObjective:
			o.core.Objective = search.ObjectiveAllPairs
		case ConsecutiveObjective:
			o.core.Objective = search.ObjectiveConsecutive
		default:
			o.err = fmt.Errorf("crowdrank: unknown objective %d", int(obj))
		}
	}
}

// WithSearch selects the Step 4 algorithm.
func WithSearch(alg SearchAlgorithm) Option {
	return func(o *options) {
		s, err := alg.core()
		if err != nil {
			o.err = err
			return
		}
		o.core.Searcher = s
	}
}

// WithSAPS tunes the simulated-annealing searcher: iterations per start,
// initial temperature, cooling rate in (0,1), and the number of start
// vertices (0 = all objects, the paper's setting).
func WithSAPS(iterations int, temperature, cooling float64, starts int) Option {
	return func(o *options) {
		o.core.SAPS.Iterations = iterations
		o.core.SAPS.Temperature = temperature
		o.core.SAPS.Cooling = cooling
		o.core.SAPS.Starts = starts
	}
}

// WithParallelism fans the pipeline's embarrassingly parallel stages —
// Step 3's per-source walk accumulation and SAPS's independent annealing
// starts — over the given number of goroutines. Results remain
// deterministic for a fixed seed; 0 or 1 means sequential.
func WithParallelism(workers int) Option {
	return func(o *options) {
		o.core.SAPS.Parallelism = workers
		o.core.Propagate.Parallelism = workers
	}
}

// WithPolish refines the Step 4 result with up to the given number of
// insertion-move local-search sweeps (a strictly larger neighborhood than
// the annealer's swaps; never worsens the objective). 0 disables.
func WithPolish(sweeps int) Option {
	return func(o *options) { o.core.PolishSweeps = sweeps }
}

// WithTruthDiscovery tunes Step 1: the chi-square confidence parameter
// alpha, the iteration cap, and the convergence tolerance.
func WithTruthDiscovery(alpha float64, maxIterations int, tolerance float64) Option {
	return func(o *options) {
		o.core.Truth.Alpha = alpha
		o.core.Truth.MaxIterations = maxIterations
		o.core.Truth.Tolerance = tolerance
	}
}

// WithSmoothing tunes Step 2's adjustment clamp [minDelta, maxDelta].
func WithSmoothing(minDelta, maxDelta float64) Option {
	return func(o *options) {
		o.core.Smooth.MinDelta = minDelta
		o.core.Smooth.MaxDelta = maxDelta
	}
}

// Result is the outcome of Infer.
type Result struct {
	// Ranking is the inferred full ranking, most-preferred object first.
	Ranking []int
	// LogProb is the log preference probability of the winning ranking.
	LogProb float64
	// WorkerQuality holds the estimated quality of each worker in (0, 1]
	// (0 for workers who cast no votes).
	WorkerQuality []float64
	// TruthIterations / TruthConverged describe the Step 1 loop.
	TruthIterations int
	TruthConverged  bool
	// OneEdges is the number of unanimous preferences Step 2 smoothed.
	OneEdges int
	// UninformedPairs counts object pairs with no direct or transitive
	// evidence (decided 50/50).
	UninformedPairs int
	// Seed is the effective random seed the pipeline ran with — the
	// WithSeed value, or the time-derived seed drawn when none was given.
	// Pass it to CertifyRanking (via WithSeed) so the certificate describes
	// the same smoothed closure as this ranking.
	Seed uint64
	// Sanitization reports what lenient input sanitization dropped before
	// inference; Sanitization.Clean() is true for well-formed input. Under
	// WithStrictVotes inference instead fails on the first offense.
	Sanitization SanitizeReport
	// Coverage describes how completely the (sanitized) votes cover the
	// object universe — the degradation report for rounds that lost HITs.
	// Objects in Coverage.UncoveredObjects are placed by the uninformed
	// 0.5 prior alone.
	Coverage CoverageReport
	// Timings breaks down inference time by step.
	Timings StepTimings
}

// SuspectWorkers returns the workers whose estimated quality is positive
// (they cast votes) but below threshold, sorted by ascending quality — a
// spam/adversary report derived purely from vote agreement, with no
// gold-standard questions. A threshold around 0.75 flags coin-flippers on
// typical workloads; see the workerquality example.
func (r *Result) SuspectWorkers(threshold float64) []int {
	var suspects []int
	for w, q := range r.WorkerQuality {
		if q > 0 && q < threshold {
			suspects = append(suspects, w)
		}
	}
	sort.Slice(suspects, func(a, b int) bool {
		return r.WorkerQuality[suspects[a]] < r.WorkerQuality[suspects[b]]
	})
	return suspects
}

// StepTimings records per-step wall-clock durations of the pipeline.
type StepTimings struct {
	TruthDiscovery time.Duration
	Smoothing      time.Duration
	Propagation    time.Duration
	Search         time.Duration
}

// Total returns the end-to-end inference time.
func (t StepTimings) Total() time.Duration {
	return t.TruthDiscovery + t.Smoothing + t.Propagation + t.Search
}

// Infer aggregates the crowd's votes into a full ranking of n objects using
// the paper's four-step pipeline. m is the worker-pool size (worker ids in
// votes must lie in [0, m)).
//
// Input handling is lenient by default: malformed votes (out-of-range ids,
// self-pairs, exact duplicate submissions) are dropped and reported in
// Result.Sanitization rather than corrupting the pipeline. WithStrictVotes
// turns the first such vote into a *VoteError instead.
func Infer(n, m int, votes []Vote, opts ...Option) (*Result, error) {
	return InferContext(context.Background(), n, m, votes, opts...)
}

// InferContext is Infer with cancellation: ctx is checked between pipeline
// steps and polled inside the long-running Step 4 searchers (SAPS and
// branch-and-bound), so an expired deadline or an explicit cancel abandons
// inference promptly with ctx's error.
func InferContext(ctx context.Context, n, m int, votes []Vote, opts ...Option) (*Result, error) {
	o := &options{core: core.DefaultOptions(), seed: uint64(time.Now().UnixNano())}
	for _, opt := range opts {
		opt(o)
	}
	if o.err != nil {
		return nil, o.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var report SanitizeReport
	if o.strict {
		if err := ValidateVotes(n, m, votes); err != nil {
			return nil, err
		}
		report = SanitizeReport{Input: len(votes), Kept: len(votes)}
	} else {
		votes, report = SanitizeVotes(n, m, votes)
	}
	coverage := MeasureCoverage(n, votes)

	internalVotes := make([]crowd.Vote, len(votes))
	for i, v := range votes {
		internalVotes[i] = crowd.Vote{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI}
	}
	rng := rand.New(rand.NewPCG(o.seed, o.seed^0xd1342543de82ef95))
	res, err := core.InferContext(ctx, n, m, internalVotes, o.core, rng)
	if err != nil {
		return nil, err
	}
	return &Result{
		Ranking:         res.Ranking,
		LogProb:         res.LogProb,
		WorkerQuality:   res.WorkerQuality,
		TruthIterations: res.TruthIterations,
		TruthConverged:  res.TruthConverged,
		OneEdges:        res.OneEdges,
		UninformedPairs: res.UninformedPairs,
		Seed:            o.seed,
		Sanitization:    report,
		Coverage:        coverage,
		Timings: StepTimings{
			TruthDiscovery: res.Timings.TruthDiscovery,
			Smoothing:      res.Timings.Smoothing,
			Propagation:    res.Timings.Propagation,
			Search:         res.Timings.Search,
		},
	}, nil
}

// String names the search algorithm for logs and CLI output.
func (s SearchAlgorithm) String() string {
	switch s {
	case SearchAuto:
		return "auto"
	case SearchSAPS:
		return "saps"
	case SearchTAPS:
		return "taps"
	case SearchHeldKarp:
		return "heldkarp"
	case SearchBruteForce:
		return "bruteforce"
	case SearchBranchBound:
		return "branchbound"
	default:
		return fmt.Sprintf("SearchAlgorithm(%d)", int(s))
	}
}

// String names the objective for logs and CLI output.
func (o PathObjective) String() string {
	switch o {
	case AllPairsObjective:
		return "all-pairs"
	case ConsecutiveObjective:
		return "consecutive"
	default:
		return fmt.Sprintf("PathObjective(%d)", int(o))
	}
}

// Certificate bounds how far a ranking can be from the all-pairs optimum
// without any search: the true optimality gap is at most Gap, and Gap == 0
// proves optimality. See CertifyRanking.
type Certificate struct {
	Score      float64
	UpperBound float64
	Gap        float64
}

// CertifyRanking recomputes the Step 1-3 closure from the votes and returns
// the optimality certificate of the ranking under the all-pairs objective.
// On well-calibrated closures the pipeline result's Gap is small relative
// to |Score|.
//
// The closure depends on the random seed (Step 2's smoothing draws), so the
// certificate describes the same closure as an earlier Infer only when both
// calls use the same seed: pass WithSeed(result.Seed) — Result.Seed records
// the effective seed even when Infer drew a time-derived one. An unseeded
// CertifyRanking draws its own seed and certifies a *different* closure
// than the ranking was inferred from. Votes are sanitized exactly as Infer
// sanitizes them (lenient by default, strict under WithStrictVotes), again
// so both calls see identical input.
func CertifyRanking(n, m int, votes []Vote, ranking []int, opts ...Option) (*Certificate, error) {
	o := &options{core: core.DefaultOptions(), seed: uint64(time.Now().UnixNano())}
	for _, opt := range opts {
		opt(o)
	}
	if o.err != nil {
		return nil, o.err
	}
	if o.strict {
		if err := ValidateVotes(n, m, votes); err != nil {
			return nil, err
		}
	} else {
		votes, _ = SanitizeVotes(n, m, votes)
	}
	rng := rand.New(rand.NewPCG(o.seed, o.seed^0xd1342543de82ef95))
	cl, err := core.BuildClosure(n, m, toInternalVotes(votes), o.core, rng)
	if err != nil {
		return nil, err
	}
	cert, err := search.Certify(cl.Closure, ranking)
	if err != nil {
		return nil, err
	}
	return &Certificate{Score: cert.Score, UpperBound: cert.UpperBound, Gap: cert.Gap}, nil
}

// ServeConfig configures the crowdrankd ranking daemon: journaled vote
// ingestion, deadline-aware degradation, and the exact-rung circuit
// breaker. DefaultServeConfig makes every default explicit; see
// cmd/crowdrankd for the HTTP binary.
type ServeConfig = serve.Config

// RankServer is the daemon engine behind crowdrankd, usable in-process:
// Ingest acknowledges batches only once durable in the write-ahead
// journal, RankContext degrades down the search ladder under the caller's
// deadline, and Handler exposes the HTTP API.
//
// Served rankings are certifiable exactly like Infer results: the daemon
// runs the same Step 1-3 closure pipeline under its configured seed
// (reported by Seed and in every rank response), so
// CertifyRanking(..., WithSeed(seed)) recomputes the closure a served
// ranking was searched on.
type RankServer = serve.Server

// ServeIngestResult and ServeRankResult are the daemon's batch
// acknowledgement and ranking response types.
type (
	ServeIngestResult = serve.IngestResult
	ServeRankResult   = serve.RankResult
)

// Journal durability policies for ServeConfig.JournalSync.
const (
	// JournalSyncAlways fsyncs before acknowledging each batch: an acked
	// batch survives OS crash and power loss.
	JournalSyncAlways = journal.SyncAlways
	// JournalSyncOS leaves flushing to the page cache: faster, survives
	// process death but not OS crash.
	JournalSyncOS = journal.SyncOS
)

// DefaultServeConfig returns the daemon configuration for n objects and m
// workers with every default made explicit.
func DefaultServeConfig(n, m int) ServeConfig { return serve.DefaultConfig(n, m) }

// NewRankServer validates cfg, opens and replays the journal, and returns
// a ready daemon engine. Stop it with Close to drain in-flight work and
// perform the final journal sync.
func NewRankServer(cfg ServeConfig) (*RankServer, error) { return serve.New(cfg) }

// IngestVotes feeds public Votes into a RankServer; a nil error means the
// batch is durable under the configured journal policy.
func IngestVotes(s *RankServer, votes []Vote) (ServeIngestResult, error) {
	return s.Ingest(toInternalVotes(votes))
}
