package crowdrank

import (
	"fmt"
	"math/rand/v2"
	"time"

	"crowdrank/internal/des"
	"crowdrank/internal/faults"
	"crowdrank/internal/feq"
	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
)

// FaultConfig selects the unreliable-marketplace failure modes injected
// into a simulated round. All rates are independent probabilities in
// [0, 1]; the zero value injects nothing. Faults are deterministic in Seed,
// so a fixed (SimConfig.Seed, FaultConfig.Seed) pair reproduces the round
// exactly, faults and all.
type FaultConfig struct {
	// DropoutRate is the probability a (HIT, worker) assignment is claimed
	// but never returned.
	DropoutRate float64
	// StragglerRate is the probability an assignment takes StragglerFactor
	// times its normal service time — usually past the collection deadline.
	StragglerRate float64
	// StragglerFactor multiplies straggler service time; <= 1 means the
	// default of 8.
	StragglerFactor float64
	// PartialRate is the probability a multi-comparison HIT comes back
	// with only a prefix of its answers.
	PartialRate float64
	// DuplicateRate is the probability a delivered answer is submitted
	// twice.
	DuplicateRate float64
	// SpamRate is the probability a delivered answer is malformed garbage:
	// an out-of-range object id, a self-pair, or an out-of-range worker id.
	SpamRate float64
	// Seed drives every fault decision.
	Seed uint64
}

// Zero reports whether no faults are injected at all.
func (f FaultConfig) Zero() bool {
	return feq.Zero(f.DropoutRate) && feq.Zero(f.StragglerRate) && feq.Zero(f.PartialRate) &&
		feq.Zero(f.DuplicateRate) && feq.Zero(f.SpamRate)
}

func (f FaultConfig) profile() faults.Profile {
	return faults.Profile{
		Dropout:         f.DropoutRate,
		Straggler:       f.StragglerRate,
		StragglerFactor: f.StragglerFactor,
		Partial:         f.PartialRate,
		Duplicate:       f.DuplicateRate,
		Malformed:       f.SpamRate,
		Seed:            f.Seed,
	}
}

// CollectConfig tunes the fault-tolerant collection protocol: how long the
// requester waits before declaring answers missing, how many repair waves
// may follow, and how much budget slack is reserved for them.
type CollectConfig struct {
	// Deadline is the per-wave collection deadline; answers arriving later
	// are discarded. 0 means wait forever (no reposts possible).
	Deadline time.Duration
	// MaxReposts bounds the repair waves after the original posting; 0
	// disables reposting.
	MaxReposts int
	// BudgetSlack is the fraction of the round's base cost reserved for
	// repair reposts (0.25 reserves a quarter of the base budget).
	// Negative means unlimited repair money; 0 means no repair budget.
	BudgetSlack float64
}

// DefaultCollectConfig waits 30 simulated minutes per wave, allows two
// repair waves, and reserves a quarter of the base budget for them.
func DefaultCollectConfig() CollectConfig {
	return CollectConfig{
		Deadline:    30 * time.Minute,
		MaxReposts:  2,
		BudgetSlack: 0.25,
	}
}

// CollectionReport quantifies one fault-tolerant collection round: what was
// planned, what arrived (and when), what each failure mode cost, what the
// repair waves recovered, and how much of the task graph G_T survived. All
// vote counts are in comparisons.
type CollectionReport struct {
	// PlannedVotes = comparisons x workers-per-task of the original post.
	PlannedVotes int
	// Delivered counts answers that arrived in time (including repairs);
	// Repaired is the subset recovered by repost waves; Lost is what never
	// arrived.
	Delivered int
	Repaired  int
	Lost      int
	// LostToDropout / LostLate / LostPartial break losses down by failure
	// mode, counted per attempt.
	LostToDropout int
	LostLate      int
	LostPartial   int
	// Malformed and Duplicates count delivered-but-garbage submissions
	// (present in the returned votes; sanitization handles them later).
	Malformed  int
	Duplicates int
	// Reposts counts repair postings; Waves counts postings including the
	// first.
	Reposts int
	Waves   int
	// Spent is the escrowed base cost; RepairSpent the escrowed repair
	// cost (both at reward 1 per comparison per worker, like SimRound).
	Spent       float64
	RepairSpent float64
	// Makespan is the virtual marketplace time from posting until the
	// requester stopped waiting.
	Makespan time.Duration
	// ResidualCoverage is the fraction of the plan's task pairs that ended
	// up with at least one valid delivered vote; UncoveredPairs lists the
	// task-graph edges that lost all their answers.
	ResidualCoverage float64
	UncoveredPairs   []Pair
}

// String renders the report compactly for logs and CLI output.
func (r CollectionReport) String() string {
	return fmt.Sprintf(
		"delivered %d of %d planned votes (%d repaired in %d reposts, %d lost: %d dropout / %d late / %d partial), "+
			"%d malformed, %d duplicate; coverage %.3f (%d pairs uncovered); spent %.0f + %.0f repair; makespan %v",
		r.Delivered, r.PlannedVotes, r.Repaired, r.Reposts, r.Lost,
		r.LostToDropout, r.LostLate, r.LostPartial,
		r.Malformed, r.Duplicates, r.ResidualCoverage, len(r.UncoveredPairs),
		r.Spent, r.RepairSpent, r.Makespan.Round(time.Second))
}

// SimulateUnreliableVotes runs one simulated non-interactive round like
// SimulateVotes, but through an unreliable marketplace: every assignment
// passes the fault injector (dropout, stragglers, partial completion,
// duplicates, spam) and collection follows the fault-tolerant protocol of
// cc — per-wave deadlines with bounded reposting from reserved budget
// slack, on the deterministic discrete-event marketplace of internal/des.
//
// The returned votes are raw: malformed and duplicate submissions are
// included, exactly as an unreliable crowd would deliver them. Feed them to
// Infer (lenient by default) or clean them first with SanitizeVotes; the
// CollectionReport quantifies what was lost and what share of the task
// graph survived. cfg.BalancedAssignment is ignored — the marketplace
// assigns each HIT to the earliest-available workers.
func SimulateUnreliableVotes(plan *Plan, cfg SimConfig, fc FaultConfig, cc CollectConfig) (*SimRound, *CollectionReport, error) {
	if plan == nil {
		return nil, nil, fmt.Errorf("crowdrank: nil plan")
	}
	if cfg.Workers < 1 {
		return nil, nil, fmt.Errorf("crowdrank: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.WorkersPerTask < 1 || cfg.WorkersPerTask > cfg.Workers {
		return nil, nil, fmt.Errorf("crowdrank: workers per task %d outside [1, %d]", cfg.WorkersPerTask, cfg.Workers)
	}
	if cfg.PairsPerHIT < 1 {
		return nil, nil, fmt.Errorf("crowdrank: pairs per HIT must be >= 1, got %d", cfg.PairsPerHIT)
	}
	dist, err := cfg.Distribution.internal()
	if err != nil {
		return nil, nil, err
	}
	level, err := cfg.Level.internal()
	if err != nil {
		return nil, nil, err
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa0761d6478bd642f))
	truth, err := simulate.GroundTruth(plan.N, rng)
	if err != nil {
		return nil, nil, err
	}
	pool, err := simulate.NewCrowd(cfg.Workers, dist, level, rng)
	if err != nil {
		return nil, nil, err
	}
	oracle, err := simulate.NewGroundTruthOracle(pool, truth, rng)
	if err != nil {
		return nil, nil, err
	}

	pairs := make([]graph.Pair, len(plan.Pairs))
	for i, pr := range plan.Pairs {
		pairs[i] = graph.Pair{I: pr.I, J: pr.J}
	}
	hits, err := platform.PackHITs(pairs, cfg.PairsPerHIT)
	if err != nil {
		return nil, nil, err
	}
	inj, err := faults.NewInjector(fc.profile(), plan.N, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	market, err := des.New(oracle, des.DefaultWorkerModel(), rng)
	if err != nil {
		return nil, nil, err
	}

	plannedAnswers := len(pairs) * cfg.WorkersPerTask
	repairBudget := cc.BudgetSlack * float64(plannedAnswers)
	if cc.BudgetSlack < 0 {
		repairBudget = -1
	}
	res, err := market.RunBatchFaulty(hits, cfg.WorkersPerTask, inj, des.CollectParams{
		Deadline:     cc.Deadline,
		MaxReposts:   cc.MaxReposts,
		RepairBudget: repairBudget,
		Reward:       1,
	})
	if err != nil {
		return nil, nil, err
	}

	votes := fromInternalVotes(res.Votes)
	report := &CollectionReport{
		PlannedVotes:  res.Stats.PlannedAnswers,
		Delivered:     res.Stats.Delivered,
		Repaired:      res.Stats.Repaired,
		Lost:          res.Stats.Unrecovered(),
		LostToDropout: res.Stats.DroppedAttempts,
		LostLate:      res.Stats.LateAttempts,
		LostPartial:   res.Stats.PartialLostPairs,
		Malformed:     res.Stats.MalformedVotes,
		Duplicates:    res.Stats.DuplicateVotes,
		Reposts:       res.Stats.Reposts,
		Waves:         res.Stats.Waves,
		Spent:         res.Stats.Spent,
		RepairSpent:   res.Stats.RepairSpent,
		Makespan:      res.Stats.Makespan,
	}
	report.ResidualCoverage, report.UncoveredPairs = residualCoverage(plan, votes, cfg.Workers)

	sigmas := make([]float64, cfg.Workers)
	for k := range sigmas {
		sigmas[k] = pool.Sigma(k)
	}
	round := &SimRound{
		Votes:        votes,
		GroundTruth:  truth,
		WorkerSigmas: sigmas,
		Spent:        res.Stats.Spent + res.Stats.RepairSpent,
	}
	return round, report, nil
}

// residualCoverage measures how much of the plan's task graph survived
// collection: the fraction of planned pairs with at least one valid
// delivered vote, and the pairs that lost everything.
func residualCoverage(plan *Plan, votes []Vote, workers int) (float64, []Pair) {
	valid, _ := SanitizeVotes(plan.N, workers, votes)
	have := make(map[Pair]bool, len(valid))
	for _, v := range valid {
		lo, hi := v.I, v.J
		if lo > hi {
			lo, hi = hi, lo
		}
		have[Pair{I: lo, J: hi}] = true
	}
	var uncovered []Pair
	covered := 0
	for _, pr := range plan.Pairs {
		if have[pr] {
			covered++
		} else {
			uncovered = append(uncovered, pr)
		}
	}
	if len(plan.Pairs) == 0 {
		return 1, nil
	}
	return float64(covered) / float64(len(plan.Pairs)), uncovered
}
