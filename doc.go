// Package crowdrank infers a full ranking of n objects from a small,
// budget-constrained number of crowdsourced pairwise comparisons collected
// in a single non-interactive round, implementing the system of Cai, Sun,
// Dong, Zhang, Wang and Wang, "Pairwise Ranking Aggregation by
// Non-interactive Crowdsourcing with Budget Constraints" (ICDCS 2017).
//
// # Workflow
//
// A requester with budget B plans l = B/(w*r) pairwise comparison tasks
// over n objects:
//
//	plan, err := crowdrank.PlanTasksRatio(100, 0.1, seed) // 10% of all pairs
//
// The plan's task graph is fair (every object has the same degree, hence
// the same probability of being forced to the top or bottom of the ranking)
// and maximizes the likelihood that a full ranking is recoverable
// (Theorems 4.1-4.4 of the paper). The tasks are packed into HITs, sent to
// the crowd once, and the collected votes are aggregated:
//
//	result, err := crowdrank.Infer(plan.N, workers, votes)
//
// Infer runs the paper's four-step pipeline: truth discovery (joint
// estimation of worker quality and pairwise truth), preference smoothing
// (relaxing unanimous edges so a full ranking always exists), preference
// propagation (transitive closure with blended direct/indirect evidence),
// and best-ranking search (simulated annealing, or one of the exact
// searchers for small instances).
//
// # Determinism
//
// Inference is deterministic in its seed: WithSeed fixes the smoothing and
// search randomness, and the effective seed — whether given or drawn from
// the clock — is recorded in Result.Seed. Dependent calls that must see the
// same closure, CertifyRanking in particular, should pass
// WithSeed(result.Seed) so they certify the ranking that was actually
// produced rather than a fresh random reconstruction. The same contract
// covers daemon-served rankings: a RankServer builds its closure under one
// configured seed, reported in every rank response, so
// CertifyRanking(..., WithSeed(seed)) certifies rankings served by
// crowdrankd just as it certifies Infer results.
//
// # Serving
//
// For long-lived deployments, RankServer (and the crowdrankd binary built
// on it) ingests vote batches into a checksummed, segment-rotated
// write-ahead journal — batches are acknowledged only once durable — and
// serves rankings under request deadlines, degrading from exact search
// through SAPS annealing to a greedy floor instead of failing. Periodic
// state snapshots compact the journal so restart recovery is bounded by
// the time since the last snapshot, not by lifetime ingest; after a disk
// write or fsync failure the journal is permanently poisoned and the
// daemon stops acknowledging rather than overstate durability. See
// cmd/crowdrankd and the README's Serving and Operations sections.
//
// The package also exposes the paper's evaluation apparatus: simulated
// crowds with Gaussian/Uniform quality distributions, a synthetic
// PubFig-style image study, the RC / QS / CrowdBT baselines, and Kendall
// tau ranking metrics. See the examples directory and EXPERIMENTS.md.
package crowdrank
