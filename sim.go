package crowdrank

import (
	"fmt"
	"math/rand/v2"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
)

// WorkerDistribution selects how simulated workers' error deviations are
// drawn (the paper's Section VI-A4 settings).
type WorkerDistribution int

const (
	// GaussianWorkers draws sigma_k ~ |N(0, sigma_s^2)|.
	GaussianWorkers WorkerDistribution = iota + 1
	// UniformWorkers draws sigma_k uniformly from a level-dependent range.
	UniformWorkers
)

// WorkerQualityLevel selects the high / medium / low quality scenarios.
type WorkerQualityLevel int

const (
	// HighQualityWorkers: sigma_s = 0.01 (Gaussian) or sigma_k in [0, 0.2].
	HighQualityWorkers WorkerQualityLevel = iota + 1
	// MediumQualityWorkers: sigma_s = 0.1 or sigma_k in [0.1, 0.3].
	MediumQualityWorkers
	// LowQualityWorkers: sigma_s = 1 or sigma_k in [0.2, 0.4].
	LowQualityWorkers
)

func (d WorkerDistribution) internal() (simulate.QualityDistribution, error) {
	switch d {
	case GaussianWorkers:
		return simulate.Gaussian, nil
	case UniformWorkers:
		return simulate.Uniform, nil
	default:
		return 0, fmt.Errorf("crowdrank: unknown worker distribution %d", int(d))
	}
}

func (l WorkerQualityLevel) internal() (simulate.QualityLevel, error) {
	switch l {
	case HighQualityWorkers:
		return simulate.HighQuality, nil
	case MediumQualityWorkers:
		return simulate.MediumQuality, nil
	case LowQualityWorkers:
		return simulate.LowQuality, nil
	default:
		return 0, fmt.Errorf("crowdrank: unknown worker quality level %d", int(l))
	}
}

// SimConfig describes a simulated crowdsourcing round.
type SimConfig struct {
	// Workers is the worker-pool size m.
	Workers int
	// WorkersPerTask is w, the number of workers answering each HIT.
	WorkersPerTask int
	// PairsPerHIT is c, the number of comparisons packed per HIT.
	PairsPerHIT int
	// Distribution and Level select the worker-quality scenario.
	Distribution WorkerDistribution
	Level        WorkerQualityLevel
	// BalancedAssignment picks the least-loaded workers for each HIT
	// instead of sampling uniformly, keeping per-worker task counts even.
	BalancedAssignment bool
	// Seed makes the simulation reproducible.
	Seed uint64
}

// DefaultSimConfig mirrors the common experimental setting: a pool of 30
// workers, 10 per task, one comparison per HIT, medium Gaussian quality.
func DefaultSimConfig(seed uint64) SimConfig {
	return SimConfig{
		Workers:        30,
		WorkersPerTask: 10,
		PairsPerHIT:    1,
		Distribution:   GaussianWorkers,
		Level:          MediumQualityWorkers,
		Seed:           seed,
	}
}

// SimRound is the outcome of a simulated non-interactive round.
type SimRound struct {
	// Votes are the collected answers, ready for Infer.
	Votes []Vote
	// GroundTruth is the hidden true ranking (best-first) used to score
	// the inferred ranking.
	GroundTruth []int
	// WorkerSigmas are the hidden per-worker error deviations.
	WorkerSigmas []float64
	// Spent is the simulated money consumed at reward 1 per comparison per
	// worker; multiply by the real reward for dollar figures.
	Spent float64
}

// SimulateVotes runs one simulated non-interactive crowdsourcing round over
// the plan's tasks: a hidden ground-truth ranking is drawn, a crowd with the
// configured quality answers every HIT, and the (noisy, conflicting) votes
// are returned together with the hidden truth for scoring.
func SimulateVotes(plan *Plan, cfg SimConfig) (*SimRound, error) {
	if plan == nil {
		return nil, fmt.Errorf("crowdrank: nil plan")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("crowdrank: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.WorkersPerTask < 1 || cfg.WorkersPerTask > cfg.Workers {
		return nil, fmt.Errorf("crowdrank: workers per task %d outside [1, %d]", cfg.WorkersPerTask, cfg.Workers)
	}
	if cfg.PairsPerHIT < 1 {
		return nil, fmt.Errorf("crowdrank: pairs per HIT must be >= 1, got %d", cfg.PairsPerHIT)
	}
	dist, err := cfg.Distribution.internal()
	if err != nil {
		return nil, err
	}
	level, err := cfg.Level.internal()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa0761d6478bd642f))
	truth, err := simulate.GroundTruth(plan.N, rng)
	if err != nil {
		return nil, err
	}
	pool, err := simulate.NewCrowd(cfg.Workers, dist, level, rng)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate.NewGroundTruthOracle(pool, truth, rng)
	if err != nil {
		return nil, err
	}

	pairs := make([]graph.Pair, len(plan.Pairs))
	for i, pr := range plan.Pairs {
		pairs[i] = graph.Pair{I: pr.I, J: pr.J}
	}
	hits, err := platform.PackHITs(pairs, cfg.PairsPerHIT)
	if err != nil {
		return nil, err
	}
	assign := platform.AssignWorkers
	if cfg.BalancedAssignment {
		assign = platform.AssignWorkersBalanced
	}
	assigned, err := assign(hits, cfg.Workers, cfg.WorkersPerTask, rng)
	if err != nil {
		return nil, err
	}
	round, err := platform.RunNonInteractive(hits, assigned, oracle, 1)
	if err != nil {
		return nil, err
	}

	sigmas := make([]float64, cfg.Workers)
	for k := range sigmas {
		sigmas[k] = pool.Sigma(k)
	}
	return &SimRound{
		Votes:        fromInternalVotes(round.Votes),
		GroundTruth:  truth,
		WorkerSigmas: sigmas,
		Spent:        round.Spent,
	}, nil
}

func fromInternalVotes(vs []crowd.Vote) []Vote {
	out := make([]Vote, len(vs))
	for i, v := range vs {
		out[i] = Vote{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI}
	}
	return out
}

func toInternalVotes(vs []Vote) []crowd.Vote {
	out := make([]crowd.Vote, len(vs))
	for i, v := range vs {
		out[i] = crowd.Vote{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI}
	}
	return out
}

// CleanReport summarizes what CleanVotes dropped.
type CleanReport struct {
	Kept                 int
	DroppedInvalidPair   int
	DroppedInvalidWorker int
	DroppedDuplicates    int
}

// String renders the report compactly.
func (r CleanReport) String() string {
	return fmt.Sprintf("kept %d, dropped %d invalid-pair, %d invalid-worker, %d duplicate",
		r.Kept, r.DroppedInvalidPair, r.DroppedInvalidWorker, r.DroppedDuplicates)
}

// CleanVotes filters a raw vote list (for example a spreadsheet import)
// down to votes valid for n objects and m workers, optionally removing
// exact duplicate submissions (same worker, same pair, same answer).
// Conflicting repeat answers by the same worker are kept — they are
// genuine observations for truth discovery.
func CleanVotes(votes []Vote, n, m int, dedupe bool) ([]Vote, CleanReport) {
	clean, rep := crowd.Clean(toInternalVotes(votes), n, m, dedupe)
	return fromInternalVotes(clean), CleanReport{
		Kept:                 rep.Kept,
		DroppedInvalidPair:   rep.DroppedInvalidPair,
		DroppedInvalidWorker: rep.DroppedInvalidWorker,
		DroppedDuplicates:    rep.DroppedDuplicates,
	}
}

// String names the distribution for logs and CLI output.
func (d WorkerDistribution) String() string {
	switch d {
	case GaussianWorkers:
		return "gaussian"
	case UniformWorkers:
		return "uniform"
	default:
		return fmt.Sprintf("WorkerDistribution(%d)", int(d))
	}
}

// String names the quality level for logs and CLI output.
func (l WorkerQualityLevel) String() string {
	switch l {
	case HighQualityWorkers:
		return "high"
	case MediumQualityWorkers:
		return "medium"
	case LowQualityWorkers:
		return "low"
	default:
		return fmt.Sprintf("WorkerQualityLevel(%d)", int(l))
	}
}
