package crowdrank

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV codecs for votes and task pairs, for interoperability with the
// spreadsheet exports real crowdsourcing platforms produce. The vote schema
// is a header row `worker,i,j,prefers_i` followed by one row per vote; the
// pair schema is `i,j`.

// WriteVotesCSV writes votes with a `worker,i,j,prefers_i` header.
func WriteVotesCSV(w io.Writer, votes []Vote) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"worker", "i", "j", "prefers_i"}); err != nil {
		return fmt.Errorf("crowdrank: writing CSV header: %w", err)
	}
	for idx, v := range votes {
		rec := []string{
			strconv.Itoa(v.Worker),
			strconv.Itoa(v.I),
			strconv.Itoa(v.J),
			strconv.FormatBool(v.PrefersI),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("crowdrank: writing CSV vote %d: %w", idx, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadVotesCSV parses votes written by WriteVotesCSV (or any CSV with the
// same four columns; a header row is detected and skipped).
func ReadVotesCSV(r io.Reader) ([]Vote, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("crowdrank: reading CSV votes: %w", err)
	}
	votes := make([]Vote, 0, len(records))
	for idx, rec := range records {
		if idx == 0 && rec[0] == "worker" {
			continue // header
		}
		worker, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("crowdrank: CSV row %d: worker %q: %w", idx+1, rec[0], err)
		}
		i, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("crowdrank: CSV row %d: i %q: %w", idx+1, rec[1], err)
		}
		j, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("crowdrank: CSV row %d: j %q: %w", idx+1, rec[2], err)
		}
		prefersI, err := strconv.ParseBool(rec[3])
		if err != nil {
			return nil, fmt.Errorf("crowdrank: CSV row %d: prefers_i %q: %w", idx+1, rec[3], err)
		}
		votes = append(votes, Vote{Worker: worker, I: i, J: j, PrefersI: prefersI})
	}
	return votes, nil
}

// WritePairsCSV writes comparison tasks with an `i,j` header.
func WritePairsCSV(w io.Writer, pairs []Pair) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"i", "j"}); err != nil {
		return fmt.Errorf("crowdrank: writing CSV header: %w", err)
	}
	for idx, p := range pairs {
		if err := cw.Write([]string{strconv.Itoa(p.I), strconv.Itoa(p.J)}); err != nil {
			return fmt.Errorf("crowdrank: writing CSV pair %d: %w", idx, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPairsCSV parses tasks written by WritePairsCSV (header detected and
// skipped).
func ReadPairsCSV(r io.Reader) ([]Pair, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("crowdrank: reading CSV pairs: %w", err)
	}
	pairs := make([]Pair, 0, len(records))
	for idx, rec := range records {
		if idx == 0 && rec[0] == "i" {
			continue
		}
		i, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("crowdrank: CSV row %d: i %q: %w", idx+1, rec[0], err)
		}
		j, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("crowdrank: CSV row %d: j %q: %w", idx+1, rec[1], err)
		}
		pairs = append(pairs, Pair{I: i, J: j})
	}
	return pairs, nil
}
