package crowdrank_test

import (
	"fmt"
	"log"

	"crowdrank"
)

// ExamplePlanTasksRatio plans a 10% budget over 20 objects and inspects the
// fairness guarantees.
func ExamplePlanTasksRatio() {
	plan, err := crowdrank.PlanTasksRatio(20, 0.3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("objects:", plan.N)
	fmt.Println("tasks:", plan.L)
	fmt.Println("target degree:", plan.TargetDegree)
	fmt.Println("valid:", plan.Validate() == nil)
	// Output:
	// objects: 20
	// tasks: 57
	// target degree: 5
	// valid: true
}

// ExampleInfer runs the full plan -> simulate -> infer -> score loop with
// fixed seeds, so the accuracy is reproducible.
func ExampleInfer() {
	plan, err := crowdrank.PlanTasksRatio(50, 0.3, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := crowdrank.DefaultSimConfig(12)
	round, err := crowdrank.SimulateVotes(plan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := crowdrank.Infer(plan.N, cfg.Workers, round.Votes, crowdrank.WithSeed(13))
	if err != nil {
		log.Fatal(err)
	}
	acc, err := crowdrank.Accuracy(res.Ranking, round.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy above 0.9: %v\n", acc > 0.9)
	fmt.Printf("ranking is a permutation of %d objects: %v\n", plan.N, len(res.Ranking) == plan.N)
	// Output:
	// accuracy above 0.9: true
	// ranking is a permutation of 50 objects: true
}

// ExampleKendallTauDistance shows the metric on hand-built rankings.
func ExampleKendallTauDistance() {
	identical, _ := crowdrank.KendallTauDistance([]int{0, 1, 2, 3}, []int{0, 1, 2, 3})
	reversed, _ := crowdrank.KendallTauDistance([]int{0, 1, 2, 3}, []int{3, 2, 1, 0})
	oneSwap, _ := crowdrank.KendallTauDistance([]int{0, 1, 2, 3}, []int{1, 0, 2, 3})
	fmt.Printf("identical: %.3f\n", identical)
	fmt.Printf("reversed: %.3f\n", reversed)
	fmt.Printf("one swap: %.3f\n", oneSwap)
	// Output:
	// identical: 0.000
	// reversed: 1.000
	// one swap: 0.167
}

// ExampleBudget shows the paper's budget arithmetic: $12.50 at $0.025 per
// comparison with 10 workers per task affords 50 unique comparisons.
func ExampleBudget() {
	b := crowdrank.Budget{Total: 12.5, Reward: 0.025, WorkersPerTask: 10}
	l, err := b.MaxTasks()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("affordable comparisons:", l)
	// Output:
	// affordable comparisons: 50
}
