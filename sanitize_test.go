package crowdrank

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// goodVotes returns a well-formed vote set over n=4 objects, m=3 workers
// with every pair covered.
func goodVotes() []Vote {
	var votes []Vote
	for w := 0; w < 3; w++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				votes = append(votes, Vote{Worker: w, I: i, J: j, PrefersI: i < j})
			}
		}
	}
	return votes
}

func TestSanitizeStrictVsLenientTable(t *testing.T) {
	const n, m = 4, 3
	cases := []struct {
		name       string
		bad        Vote
		wantReason string
		count      func(SanitizeReport) int
	}{
		{
			name:       "object id too large",
			bad:        Vote{Worker: 0, I: 0, J: 4, PrefersI: true},
			wantReason: "object id outside [0,4)",
			count:      func(r SanitizeReport) int { return r.OutOfRangePairs },
		},
		{
			name:       "negative object id",
			bad:        Vote{Worker: 0, I: -1, J: 2, PrefersI: true},
			wantReason: "object id outside [0,4)",
			count:      func(r SanitizeReport) int { return r.OutOfRangePairs },
		},
		{
			name:       "self pair",
			bad:        Vote{Worker: 1, I: 2, J: 2, PrefersI: false},
			wantReason: "object compared with itself",
			count:      func(r SanitizeReport) int { return r.SelfPairs },
		},
		{
			name:       "worker id too large",
			bad:        Vote{Worker: 3, I: 0, J: 1, PrefersI: true},
			wantReason: "worker id outside [0,3)",
			count:      func(r SanitizeReport) int { return r.InvalidWorkers },
		},
		{
			name:       "negative worker id",
			bad:        Vote{Worker: -2, I: 0, J: 1, PrefersI: true},
			wantReason: "worker id outside [0,3)",
			count:      func(r SanitizeReport) int { return r.InvalidWorkers },
		},
		{
			name:       "duplicate submission",
			bad:        Vote{Worker: 0, I: 0, J: 1, PrefersI: true}, // exact copy of an earlier vote
			wantReason: "duplicate",
			count:      func(r SanitizeReport) int { return r.Duplicates },
		},
		{
			name: "duplicate with swapped order",
			// Same worker and pair as goodVotes' (0,1) answer, stated from
			// the other side: J preferred over I means I ranked before J is
			// false... swapped orientation of the identical submission.
			bad:        Vote{Worker: 0, I: 1, J: 0, PrefersI: false},
			wantReason: "duplicate",
			count:      func(r SanitizeReport) int { return r.Duplicates },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			votes := append(goodVotes(), tc.bad)

			// Strict: typed error naming the offending vote.
			err := ValidateVotes(n, m, votes)
			if err == nil {
				t.Fatal("ValidateVotes accepted bad vote")
			}
			var ve *VoteError
			if !errors.As(err, &ve) {
				t.Fatalf("error is %T, want *VoteError", err)
			}
			if ve.Index != len(votes)-1 {
				t.Errorf("offender index %d, want %d", ve.Index, len(votes)-1)
			}
			if ve.Vote != tc.bad {
				t.Errorf("offender vote %+v, want %+v", ve.Vote, tc.bad)
			}
			if !strings.Contains(ve.Reason, tc.wantReason) {
				t.Errorf("reason %q does not mention %q", ve.Reason, tc.wantReason)
			}

			// Strict Infer surfaces the same typed error.
			if _, err := Infer(n, m, votes, WithSeed(1), WithStrictVotes()); err == nil {
				t.Error("strict Infer accepted bad vote")
			} else if !errors.As(err, &ve) {
				t.Errorf("strict Infer error is %T, want *VoteError", err)
			}

			// Lenient: drop, count, and keep going.
			clean, report := SanitizeVotes(n, m, votes)
			if len(clean) != len(goodVotes()) {
				t.Errorf("kept %d votes, want %d", len(clean), len(goodVotes()))
			}
			if got := tc.count(report); got != 1 {
				t.Errorf("category count = %d, want 1 (report %s)", got, report)
			}
			if report.Dropped() != 1 {
				t.Errorf("dropped %d, want 1", report.Dropped())
			}

			// Lenient Infer succeeds and reports the drop.
			res, err := Infer(n, m, votes, WithSeed(1))
			if err != nil {
				t.Fatalf("lenient Infer failed: %v", err)
			}
			if res.Sanitization.Dropped() != 1 {
				t.Errorf("Result.Sanitization dropped %d, want 1", res.Sanitization.Dropped())
			}
			if len(res.Ranking) != n {
				t.Errorf("ranking incomplete: %v", res.Ranking)
			}
		})
	}
}

func TestValidateVotesAcceptsCleanInput(t *testing.T) {
	if err := ValidateVotes(4, 3, goodVotes()); err != nil {
		t.Fatalf("clean input rejected: %v", err)
	}
	// Conflicting repeat answers are genuine observations, not duplicates.
	votes := append(goodVotes(), Vote{Worker: 0, I: 0, J: 1, PrefersI: false})
	if err := ValidateVotes(4, 3, votes); err != nil {
		t.Errorf("conflicting repeat rejected: %v", err)
	}
	clean, report := SanitizeVotes(4, 3, votes)
	if len(clean) != len(votes) || !report.Clean() {
		t.Errorf("conflicting repeat dropped: %s", report)
	}
}

func TestSanitizeReportString(t *testing.T) {
	_, report := SanitizeVotes(4, 3, append(goodVotes(), Vote{Worker: 9, I: 0, J: 1}))
	s := report.String()
	if !strings.Contains(s, "invalid-worker") {
		t.Errorf("report %q missing category", s)
	}
}

func TestMeasureCoverage(t *testing.T) {
	votes := []Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 1, I: 0, J: 1, PrefersI: true},
		{Worker: 0, I: 1, J: 2, PrefersI: true},
	}
	cov := MeasureCoverage(4, votes)
	if !cov.Degraded() {
		t.Error("object 3 has no votes; coverage should be degraded")
	}
	if len(cov.UncoveredObjects) != 1 || cov.UncoveredObjects[0] != 3 {
		t.Errorf("uncovered = %v, want [3]", cov.UncoveredObjects)
	}
	if cov.ObjectVotes[0] != 2 || cov.ObjectVotes[1] != 3 || cov.ObjectVotes[2] != 1 || cov.ObjectVotes[3] != 0 {
		t.Errorf("object votes = %v", cov.ObjectVotes)
	}
	// Object 1 was compared against 0 and 2: coverage 2/3.
	if got := cov.ObjectCoverage[1]; got < 0.66 || got > 0.67 {
		t.Errorf("object 1 coverage = %v, want 2/3", got)
	}
	if cov.MeanCoverage <= 0 || cov.MeanCoverage >= 1 {
		t.Errorf("mean coverage = %v", cov.MeanCoverage)
	}
	full := MeasureCoverage(2, votes[:1])
	if full.Degraded() || full.MeanCoverage != 1 {
		t.Errorf("complete coverage misreported: %+v", full)
	}
}

// TestInferRecordsEffectiveSeed covers the seed footgun fix: the result
// carries the seed it ran with, and certifying with that seed describes the
// same closure (stable scores), while unseeded calls draw fresh seeds.
func TestInferRecordsEffectiveSeed(t *testing.T) {
	votes := goodVotes()
	res, err := Infer(4, 3, votes, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 42 {
		t.Errorf("Result.Seed = %d, want 42", res.Seed)
	}

	// Unseeded: a time-derived seed is recorded and reusing it reproduces
	// the exact inference.
	r1, err := Infer(4, 3, votes)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seed == 0 {
		t.Error("unseeded Infer recorded no seed")
	}
	r2, err := Infer(4, 3, votes, WithSeed(r1.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if r2.LogProb != r1.LogProb {
		t.Errorf("replaying recorded seed changed LogProb: %v vs %v", r2.LogProb, r1.LogProb)
	}

	// Certifying with the recorded seed is consistent: the certificate's
	// Score equals the certificate of the same ranking on the same closure
	// across repeated calls.
	c1, err := CertifyRanking(4, 3, votes, r1.Ranking, WithSeed(r1.Seed))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CertifyRanking(4, 3, votes, r1.Ranking, WithSeed(r1.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if c1.Score != c2.Score || c1.Gap != c2.Gap {
		t.Errorf("seeded certificates differ: %+v vs %+v", c1, c2)
	}
	if c1.Gap < 0 {
		t.Errorf("negative gap %v", c1.Gap)
	}
}

// TestInferContextCancellation covers the acceptance criterion: an
// already-cancelled context returns promptly with context.Canceled.
func TestInferContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := InferContext(ctx, 4, 3, goodVotes(), WithSeed(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled InferContext took %v", elapsed)
	}
}

func TestInferContextDeadline(t *testing.T) {
	// A deadline in the past must abort with DeadlineExceeded even for the
	// heavy SAPS path on a larger instance.
	plan, err := PlanTasksRatio(40, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	round, err := SimulateVotes(plan, DefaultSimConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = InferContext(ctx, plan.N, 30, round.Votes, WithSeed(3), WithSearch(SearchSAPS))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
