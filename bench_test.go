package crowdrank

// Benchmarks: one testing.B benchmark per paper table/figure, each running
// the corresponding experiment generator at quick scale (see
// internal/bench and DESIGN.md's per-experiment index; cmd/experiments runs
// the paper-scale versions). Additional micro-benchmarks cover the pipeline
// steps individually so regressions localize.

import (
	"fmt"
	"io"
	"testing"

	"crowdrank/internal/bench"
)

func benchExperiment(b *testing.B, fn func(io.Writer, bench.Scale) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, bench.ScaleQuick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (SAPS inference time vs object count).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, bench.Fig3) }

// BenchmarkFig4 regenerates Figure 4 (inference time vs selection ratio,
// with the per-step breakdown).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, bench.Fig4) }

// BenchmarkFig5 regenerates Figure 5 (accuracy vs object count and ratio).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, bench.Fig5) }

// BenchmarkFig6 regenerates Figure 6 (SAPS vs baselines across budgets and
// worker quality).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, bench.Fig6) }

// BenchmarkTable1 regenerates Table I (SAPS vs RC vs QS vs CrowdBT).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, bench.Table1) }

// BenchmarkAMT regenerates the Section VI-D AMT study on the synthetic
// PubFig stand-in (exact-vs-SAPS agreement).
func BenchmarkAMT(b *testing.B) { benchExperiment(b, bench.AMT) }

// BenchmarkConvergence regenerates the Section V-A convergence report.
func BenchmarkConvergence(b *testing.B) { benchExperiment(b, bench.Convergence) }

// BenchmarkAblation regenerates the design-choice ablations (alpha, hops,
// shrinkage prior, smoothing clamp, objective reading, SAPS restarts).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, bench.Ablation) }

// BenchmarkMakespan regenerates the DES marketplace makespan comparison
// (non-interactive batch vs interactive round-trips).
func BenchmarkMakespan(b *testing.B) { benchExperiment(b, bench.Makespan) }

// BenchmarkRobustness regenerates the robustness sweeps (adversary
// fraction, replication, pool size).
func BenchmarkRobustness(b *testing.B) { benchExperiment(b, bench.Robustness) }

// BenchmarkWorkers regenerates the worker-quality estimation evaluation
// (estimated vs true per-worker accuracy).
func BenchmarkWorkers(b *testing.B) { benchExperiment(b, bench.Workers) }

// BenchmarkTopK regenerates the top-k extension evaluation (prefix quality
// vs budget).
func BenchmarkTopK(b *testing.B) { benchExperiment(b, bench.TopK) }

// BenchmarkFaults regenerates the fault-injection sweep (dropout rate vs
// delivery, coverage, and accuracy, with and without repair).
func BenchmarkFaults(b *testing.B) { benchExperiment(b, bench.Faults) }

// ---- Pipeline micro-benchmarks ----

// BenchmarkPlanTasks measures task-graph generation (Algorithm 1).
func BenchmarkPlanTasks(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run(byN(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := PlanTasksRatio(n, 0.1, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInfer measures the full inference pipeline on pre-simulated
// rounds of increasing size.
func BenchmarkInfer(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		plan, err := PlanTasksRatio(n, 0.1, 7)
		if err != nil {
			b.Fatal(err)
		}
		cfg := DefaultSimConfig(8)
		round, err := SimulateVotes(plan, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(byN(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Infer(plan.N, cfg.Workers, round.Votes, WithSeed(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSAPSSearch isolates Step 4 (simulated annealing) at n=200.
func BenchmarkSAPSSearch(b *testing.B) {
	const n = 200
	plan, err := PlanTasksRatio(n, 0.1, 9)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig(10)
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Infer(plan.N, cfg.Workers, round.Votes,
			WithSeed(uint64(i)), WithSearch(SearchSAPS)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKendall measures the O(n log n) Kendall distance on large
// rankings.
func BenchmarkKendall(b *testing.B) {
	const n = 10000
	a := make([]int, n)
	c := make([]int, n)
	for i := range a {
		a[i] = i
		c[n-1-i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KendallTauDistance(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines measures the competing aggregators on a shared round.
func BenchmarkBaselines(b *testing.B) {
	const n = 100
	plan, err := PlanTasksRatio(n, 0.5, 11)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig(12)
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []BaselineName{BaselineRC, BaselineQS, BaselineMajority, BaselineBorda, BaselineCrowdBT} {
		b.Run(string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunBaseline(name, plan.N, cfg.Workers, round.Votes, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byN(n int) string { return fmt.Sprintf("n=%d", n) }
