package crowdrank

import (
	"fmt"
	"math/rand/v2"
	"time"

	"crowdrank/internal/baselines/crowdbt"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
	"crowdrank/internal/taskgen"
)

// ImageStudyConfig describes a synthetic AMT-style image-ranking study: a
// PubFig-like collection of images with latent "smile" scores is generated,
// Images closely machine-ranked photos (adjacent rank gap <= MaxRankGap)
// are selected, and a human-like crowd compares them.
type ImageStudyConfig struct {
	// Images is the number of photos to rank (the paper uses 10 and 20).
	Images int
	// MaxRankGap bounds adjacent machine-rank gaps of the selection (the
	// paper uses 46).
	MaxRankGap int
	// WorkersPerComparison is w, the workers answering each comparison
	// (the paper varies 100..200).
	WorkersPerComparison int
	// Ratio is the selection ratio of all pairs (the paper varies 0.25..1).
	Ratio float64
	// Reward is the payment per comparison per worker (the paper pays
	// $0.025).
	Reward float64
	// Seed makes the study reproducible.
	Seed uint64
}

// DefaultImageStudyConfig mirrors the paper's 10-image setting.
func DefaultImageStudyConfig(seed uint64) ImageStudyConfig {
	return ImageStudyConfig{
		Images:               10,
		MaxRankGap:           46,
		WorkersPerComparison: 100,
		Ratio:                0.5,
		Reward:               0.025,
		Seed:                 seed,
	}
}

// ImageStudyRound is one simulated AMT study. Like the paper's AMT
// experiment it carries no ground truth: quality is assessed by the
// agreement between exact and heuristic search (see the imageranking
// example).
type ImageStudyRound struct {
	// N is the number of objects (images); Workers the worker-pool size.
	N       int
	Workers int
	// Votes are the collected human-like judgments.
	Votes []Vote
	// Spent is the money consumed at the configured reward.
	Spent float64
}

// SimulateImageRanking runs one synthetic AMT-style study (Section VI-D's
// substitution; see DESIGN.md).
func SimulateImageRanking(cfg ImageStudyConfig) (*ImageStudyRound, error) {
	if cfg.Images < 2 {
		return nil, fmt.Errorf("crowdrank: image study needs at least two images, got %d", cfg.Images)
	}
	if cfg.MaxRankGap < 1 {
		return nil, fmt.Errorf("crowdrank: MaxRankGap must be >= 1, got %d", cfg.MaxRankGap)
	}
	if cfg.WorkersPerComparison < 1 {
		return nil, fmt.Errorf("crowdrank: need at least one worker per comparison, got %d", cfg.WorkersPerComparison)
	}
	if cfg.Reward <= 0 {
		return nil, fmt.Errorf("crowdrank: reward must be positive, got %v", cfg.Reward)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x2545f4914f6cdd1d))
	set, err := simulate.NewImageSet(simulate.DefaultPubFigParams(), rng)
	if err != nil {
		return nil, err
	}
	images, err := set.PickClose(cfg.Images, cfg.MaxRankGap, rng)
	if err != nil {
		return nil, err
	}
	poolSize := cfg.WorkersPerComparison * 2
	pool, err := simulate.NewCrowd(poolSize, simulate.Uniform, simulate.MediumQuality, rng)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate.NewHumanOracle(set, images, pool, 0.35, rng)
	if err != nil {
		return nil, err
	}

	l, err := taskgen.PairsForRatio(cfg.Images, cfg.Ratio)
	if err != nil {
		return nil, err
	}
	plan, err := taskgen.Generate(cfg.Images, l, rng)
	if err != nil {
		return nil, err
	}
	hits, err := platform.PackHITs(plan.Pairs(), 1)
	if err != nil {
		return nil, err
	}
	assigned, err := platform.AssignWorkers(hits, poolSize, cfg.WorkersPerComparison, rng)
	if err != nil {
		return nil, err
	}
	round, err := platform.RunNonInteractive(hits, assigned, oracle, cfg.Reward)
	if err != nil {
		return nil, err
	}
	return &ImageStudyRound{
		N:       cfg.Images,
		Workers: poolSize,
		Votes:   fromInternalVotes(round.Votes),
		Spent:   round.Spent,
	}, nil
}

// InteractiveResult reports an interactive-baseline run (CrowdBT) against a
// simulated crowd.
type InteractiveResult struct {
	// Ranking is the final inferred ranking (best first).
	Ranking []int
	// Rounds is the number of marketplace round-trips performed.
	Rounds int
	// Spent is the money consumed.
	Spent float64
	// SimulatedLatency is the marketplace turnaround the interactive
	// protocol would incur at the configured per-round latency; the
	// non-interactive pipeline incurs exactly one such round.
	SimulatedLatency time.Duration
	// GroundTruth is the hidden true ranking, for scoring.
	GroundTruth []int
}

// RunInteractiveCrowdBT runs the paper's interactive baseline (CrowdBT with
// uncertainty-driven pair selection) against a freshly simulated crowd with
// the given budget, so examples can contrast the non-interactive pipeline's
// single round with the interactive protocol's thousands of round-trips.
func RunInteractiveCrowdBT(n int, budget Budget, cfg SimConfig, roundLatency time.Duration) (*InteractiveResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("crowdrank: need at least two objects, got n=%d", n)
	}
	dist, err := cfg.Distribution.internal()
	if err != nil {
		return nil, err
	}
	level, err := cfg.Level.internal()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	truth, err := simulate.GroundTruth(n, rng)
	if err != nil {
		return nil, err
	}
	pool, err := simulate.NewCrowd(cfg.Workers, dist, level, rng)
	if err != nil {
		return nil, err
	}
	oracle, err := simulate.NewGroundTruthOracle(pool, truth, rng)
	if err != nil {
		return nil, err
	}
	session, err := platform.NewInteractiveSession(oracle, platform.Budget{
		Total:          budget.Total,
		Reward:         budget.Reward,
		WorkersPerTask: budget.WorkersPerTask,
	}, roundLatency, rng)
	if err != nil {
		return nil, err
	}
	params := crowdbt.DefaultActiveParams()
	params.RefitEvery = 25
	params.Fit.Epochs = 40
	model, err := crowdbt.Active(session, n, cfg.Workers, params, rng)
	if err != nil {
		return nil, err
	}
	return &InteractiveResult{
		Ranking:          model.Ranking(),
		Rounds:           session.Rounds(),
		Spent:            session.Spent(),
		SimulatedLatency: session.SimulatedLatency(),
		GroundTruth:      truth,
	}, nil
}
