// Budgetplanner explores the money/accuracy trade-off of the paper's
// Section II budget model: given a dollar budget B, a per-comparison reward
// r, and w workers per comparison, the requester can afford l = B/(w*r)
// unique comparisons. The example sweeps budgets for a 200-object catalog
// and reports the achieved ranking accuracy per dollar, showing the
// diminishing returns the paper's Figure 5 documents.
//
// Run with:
//
//	go run ./examples/budgetplanner
package main

import (
	"fmt"
	"log"

	"crowdrank"
)

func main() {
	const (
		objects = 200
		reward  = 0.025 // dollars per comparison per worker, as on AMT
		workers = 10    // workers answering each comparison
	)
	allPairs := objects * (objects - 1) / 2
	fullCost := float64(allPairs) * workers * reward
	fmt.Printf("ranking %d objects: all %d comparisons would cost $%.2f\n\n",
		objects, allPairs, fullCost)

	fmt.Printf("%-10s  %-8s  %-8s  %-9s  %-10s  %s\n",
		"budget($)", "tasks", "ratio", "accuracy", "tau", "acc/$")
	for _, budget := range []float64{100, 250, 500, 1000, 2000, fullCost} {
		b := crowdrank.Budget{Total: budget, Reward: reward, WorkersPerTask: workers}
		plan, err := crowdrank.PlanTasksBudget(objects, b, 77)
		if err != nil {
			log.Fatalf("planning with budget $%.0f: %v", budget, err)
		}

		cfg := crowdrank.DefaultSimConfig(88)
		round, err := crowdrank.SimulateVotes(plan, cfg)
		if err != nil {
			log.Fatalf("simulating: %v", err)
		}
		res, err := crowdrank.Infer(plan.N, cfg.Workers, round.Votes, crowdrank.WithSeed(99))
		if err != nil {
			log.Fatalf("inferring: %v", err)
		}
		acc, err := crowdrank.Accuracy(res.Ranking, round.GroundTruth)
		if err != nil {
			log.Fatalf("scoring: %v", err)
		}
		tau, err := crowdrank.KendallTau(res.Ranking, round.GroundTruth)
		if err != nil {
			log.Fatalf("scoring: %v", err)
		}
		ratio := float64(plan.L) / float64(allPairs)
		fmt.Printf("%-10.2f  %-8d  %-8.3f  %-9.4f  %-10.4f  %.5f\n",
			budget, plan.L, ratio, acc, tau, acc/budget)
	}

	fmt.Println("\nnote how accuracy saturates well below the all-pairs budget —")
	fmt.Println("the transitive closure recovers most of the ranking from a fraction of the comparisons.")
}
