// Calibration demonstrates the paper's future-work objective — minimizing
// the number of comparisons needed for an acceptable accuracy — using
// CalibrateBudget: simulated pilot rounds bisect the budget axis and return
// the smallest selection ratio whose mean pilot accuracy reaches the
// target, together with the whole evaluated accuracy curve.
//
// Run with:
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"

	"crowdrank"
	"crowdrank/internal/feq"
)

func main() {
	const (
		objects = 150
		target  = 0.95
		pilots  = 2
	)
	cfg := crowdrank.DefaultSimConfig(314)

	fmt.Printf("searching for the smallest budget reaching accuracy %.2f on %d objects\n", target, objects)
	fmt.Printf("(assumed crowd: %d workers, medium Gaussian quality, %d per comparison)\n\n",
		cfg.Workers, cfg.WorkersPerTask)

	res, err := crowdrank.CalibrateBudget(objects, target, cfg, pilots)
	if err != nil {
		log.Fatalf("calibrating: %v", err)
	}

	fmt.Printf("%-10s %-10s %s\n", "ratio", "tasks", "pilot accuracy")
	for _, p := range res.Curve {
		marker := ""
		if feq.Eq(p.Ratio, res.Ratio) {
			marker = "  <- selected"
		}
		fmt.Printf("%-10.4f %-10d %.4f%s\n", p.Ratio, p.Tasks, p.Accuracy, marker)
	}

	allPairs := objects * (objects - 1) / 2
	fmt.Printf("\nselected budget: %d of %d comparisons (%.1f%%), estimated accuracy %.4f\n",
		res.Tasks, allPairs, 100*res.Ratio, res.EstimatedAccuracy)

	// Validate the calibrated budget on a fresh (non-pilot) round.
	plan, err := crowdrank.PlanTasksRatio(objects, res.Ratio, 999)
	if err != nil {
		log.Fatalf("planning: %v", err)
	}
	check := cfg
	check.Seed = 1000
	round, err := crowdrank.SimulateVotes(plan, check)
	if err != nil {
		log.Fatalf("simulating: %v", err)
	}
	inferred, err := crowdrank.Infer(plan.N, check.Workers, round.Votes, crowdrank.WithSeed(1001))
	if err != nil {
		log.Fatalf("inferring: %v", err)
	}
	acc, err := crowdrank.Accuracy(inferred.Ranking, round.GroundTruth)
	if err != nil {
		log.Fatalf("scoring: %v", err)
	}
	fmt.Printf("fresh-round validation at the calibrated budget: accuracy %.4f\n", acc)
}
