// Imageranking reproduces the paper's AMT study (Section VI-D) on the
// synthetic PubFig stand-in: rank 10 and 20 closely machine-ranked celebrity
// photos by "how much the celebrity smiled", judged by a human-like crowd
// with genuinely conflicting opinions, and — since there is no ground truth
// — assess quality by the agreement between the exact searcher and SAPS,
// exactly as the paper does.
//
// Run with:
//
//	go run ./examples/imageranking
package main

import (
	"fmt"
	"log"

	"crowdrank"
	"crowdrank/internal/feq"
)

func main() {
	for _, images := range []int{10, 20} {
		for _, ratio := range []float64{0.25, 0.5, 0.75, 1.0} {
			study(images, ratio)
		}
		fmt.Println()
	}
}

func study(images int, ratio float64) {
	cfg := crowdrank.DefaultImageStudyConfig(uint64(images)*100 + uint64(ratio*10))
	cfg.Images = images
	cfg.Ratio = ratio

	round, err := crowdrank.SimulateImageRanking(cfg)
	if err != nil {
		log.Fatalf("simulating image study: %v", err)
	}

	// Infer twice over the same votes: the scalable heuristic (SAPS) and an
	// exact searcher (Held-Karp subset DP, exact up to 20 images). Both use
	// the same explicit seed so Steps 1-3 build the identical closure and
	// only the searcher differs; with a clock-drawn seed you would forward
	// saps.Seed (recorded in Result.Seed) to the second call instead.
	saps, err := crowdrank.Infer(round.N, round.Workers, round.Votes,
		crowdrank.WithSeed(7), crowdrank.WithSearch(crowdrank.SearchSAPS))
	if err != nil {
		log.Fatalf("SAPS inference: %v", err)
	}
	exact, err := crowdrank.Infer(round.N, round.Workers, round.Votes,
		crowdrank.WithSeed(7), crowdrank.WithSearch(crowdrank.SearchHeldKarp))
	if err != nil {
		log.Fatalf("exact inference: %v", err)
	}

	agreement, err := crowdrank.Accuracy(saps.Ranking, exact.Ranking)
	if err != nil {
		log.Fatalf("scoring agreement: %v", err)
	}
	fmt.Printf("%2d images, ratio %.2f: spent $%6.2f on %5d votes; SAPS-vs-exact agreement %.4f\n",
		images, ratio, round.Spent, len(round.Votes), agreement)
	if feq.One(agreement) {
		fmt.Printf("    SAPS returned exactly the exact searcher's ranking: %v\n", saps.Ranking)
	}
}
