// Quickstart: plan a budget-constrained set of pairwise comparison tasks,
// simulate a crowd answering them in one non-interactive round, infer the
// full ranking, and score it against the hidden ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crowdrank"
)

func main() {
	const (
		objects = 100
		ratio   = 0.1 // afford only 10% of all C(n,2) comparisons
		seed    = 42
	)

	// 1. Task assignment: a fair, high-HP-likelihood task graph with
	//    l = ratio * C(n,2) comparison tasks (Section IV of the paper).
	plan, err := crowdrank.PlanTasksRatio(objects, ratio, seed)
	if err != nil {
		log.Fatalf("planning tasks: %v", err)
	}
	bound, err := plan.HPLikelihoodLowerBound()
	if err != nil {
		log.Fatalf("HP-likelihood bound: %v", err)
	}
	fmt.Printf("planned %d of %d possible comparisons (target degree %d, HP-likelihood bound %.4f)\n",
		plan.L, objects*(objects-1)/2, plan.TargetDegree, bound)

	// 2. Crowdsourcing (simulated): 30 medium-quality workers; each
	//    comparison is answered by 10 of them.
	cfg := crowdrank.DefaultSimConfig(seed + 1)
	round, err := crowdrank.SimulateVotes(plan, cfg)
	if err != nil {
		log.Fatalf("simulating crowd: %v", err)
	}
	fmt.Printf("collected %d votes from %d workers in a single non-interactive round\n",
		len(round.Votes), cfg.Workers)

	// 3. Result inference: truth discovery -> smoothing -> propagation ->
	//    best-ranking search (Section V).
	result, err := crowdrank.Infer(plan.N, cfg.Workers, round.Votes, crowdrank.WithSeed(seed+2))
	if err != nil {
		log.Fatalf("inferring ranking: %v", err)
	}
	fmt.Printf("inference took %v (truth discovery %v, smoothing %v, propagation %v, search %v)\n",
		result.Timings.Total(), result.Timings.TruthDiscovery, result.Timings.Smoothing,
		result.Timings.Propagation, result.Timings.Search)
	fmt.Printf("truth discovery converged after %d iterations; %d unanimous edges smoothed\n",
		result.TruthIterations, result.OneEdges)

	// 4. Score against the (normally unknown) ground truth.
	accuracy, err := crowdrank.Accuracy(result.Ranking, round.GroundTruth)
	if err != nil {
		log.Fatalf("scoring: %v", err)
	}
	tau, err := crowdrank.KendallTau(result.Ranking, round.GroundTruth)
	if err != nil {
		log.Fatalf("scoring: %v", err)
	}
	fmt.Printf("ranking accuracy: %.4f (Kendall tau %.4f) using only %.0f%% of all comparisons\n",
		accuracy, tau, ratio*100)
	fmt.Printf("top 10 objects: %v\n", result.Ranking[:10])

	// 5. Certify the ranking without ground truth. Result.Seed records the
	//    effective seed of the Infer call, so passing it back via WithSeed
	//    makes CertifyRanking rebuild the identical closure and the
	//    certificate describes the ranking that was actually produced.
	cert, err := crowdrank.CertifyRanking(plan.N, cfg.Workers, round.Votes,
		result.Ranking, crowdrank.WithSeed(result.Seed))
	if err != nil {
		log.Fatalf("certifying: %v", err)
	}
	fmt.Printf("certificate: score %.1f of upper bound %.1f (gap %.4f)\n",
		cert.Score, cert.UpperBound, cert.Gap)
}
