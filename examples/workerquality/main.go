// Workerquality demonstrates the truth-discovery side of the pipeline
// (Section V-A): jointly estimating worker reliability and pairwise truth.
// A crowd of honest workers of varying precision is contaminated with
// spammers (coin-flippers) and the inferred per-worker quality is compared
// with each worker's actual agreement with the hidden ground truth —
// showing that the requester can identify unreliable workers without any
// gold-standard questions.
//
// Run with:
//
//	go run ./examples/workerquality
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"crowdrank"
)

func main() {
	const (
		objects  = 60
		ratio    = 0.5
		honest   = 12 // workers answering from the true order with noise
		spammers = 4  // workers answering uniformly at random
	)
	total := honest + spammers
	rng := rand.New(rand.NewPCG(2026, 7))

	// Hidden ground truth and per-worker error rates.
	truth := rng.Perm(objects)
	pos := make([]int, objects)
	for r, o := range truth {
		pos[o] = r
	}
	errRate := make([]float64, total)
	for w := 0; w < honest; w++ {
		errRate[w] = 0.02 + 0.28*float64(w)/float64(honest-1) // 2% .. 30%
	}
	for w := honest; w < total; w++ {
		errRate[w] = 0.5 // spammer: coin flip
	}

	// Plan tasks and collect votes: every comparison goes to 8 random
	// workers.
	plan, err := crowdrank.PlanTasksRatio(objects, ratio, 11)
	if err != nil {
		log.Fatalf("planning: %v", err)
	}
	var votes []crowdrank.Vote
	correct := make([]int, total)
	answered := make([]int, total)
	for _, pr := range plan.Pairs {
		workers := rng.Perm(total)[:8]
		for _, w := range workers {
			truthPref := pos[pr.I] < pos[pr.J]
			prefers := truthPref
			if rng.Float64() < errRate[w] {
				prefers = !truthPref
			}
			votes = append(votes, crowdrank.Vote{Worker: w, I: pr.I, J: pr.J, PrefersI: prefers})
			answered[w]++
			if prefers == truthPref {
				correct[w]++
			}
		}
	}

	res, err := crowdrank.Infer(objects, total, votes, crowdrank.WithSeed(13))
	if err != nil {
		log.Fatalf("inferring: %v", err)
	}
	acc, err := crowdrank.Accuracy(res.Ranking, truth)
	if err != nil {
		log.Fatalf("scoring: %v", err)
	}

	fmt.Printf("ranking accuracy with %d spammers among %d workers: %.4f\n\n", spammers, total, acc)
	fmt.Printf("%-8s %-10s %-14s %-16s %s\n", "worker", "votes", "trueAccuracy", "inferredQuality", "kind")
	order := make([]int, total)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return res.WorkerQuality[order[a]] > res.WorkerQuality[order[b]]
	})
	for _, w := range order {
		kind := "honest"
		if w >= honest {
			kind = "SPAMMER"
		}
		fmt.Printf("%-8d %-10d %-14.3f %-16.3f %s\n",
			w, answered[w], float64(correct[w])/float64(answered[w]), res.WorkerQuality[w], kind)
	}
	fmt.Println("\ninferred quality orders workers like their (hidden) true accuracy —")
	fmt.Println("spammers sink to the bottom without any gold-standard questions.")
}
