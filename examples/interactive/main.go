// Interactive contrasts the paper's headline setting — one non-interactive
// crowdsourcing round — with the interactive CrowdBT baseline on the same
// budget. The interactive protocol needs one marketplace round-trip per
// comparison (thousands of round-trips), while the non-interactive pipeline
// releases everything at once and pays the turnaround latency exactly once;
// this is the time-sensitivity argument of the paper's introduction and the
// cost asymmetry behind Table I's 26,012-second CrowdBT row.
//
// Run with:
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"time"

	"crowdrank"
)

func main() {
	const (
		objects      = 60
		ratio        = 0.5
		reward       = 0.025
		perTask      = 10
		roundLatency = 30 * time.Second // one marketplace turnaround
	)

	// ---- Non-interactive: the paper's pipeline, one round. ----
	plan, err := crowdrank.PlanTasksRatio(objects, ratio, 7)
	if err != nil {
		log.Fatalf("planning: %v", err)
	}
	cfg := crowdrank.DefaultSimConfig(8)
	cfg.WorkersPerTask = perTask
	round, err := crowdrank.SimulateVotes(plan, cfg)
	if err != nil {
		log.Fatalf("simulating: %v", err)
	}
	res, err := crowdrank.Infer(plan.N, cfg.Workers, round.Votes, crowdrank.WithSeed(9))
	if err != nil {
		log.Fatalf("inferring: %v", err)
	}
	nonInteractiveAcc, err := crowdrank.Accuracy(res.Ranking, round.GroundTruth)
	if err != nil {
		log.Fatalf("scoring: %v", err)
	}
	spent := round.Spent * reward
	fmt.Println("non-interactive (this paper):")
	fmt.Printf("  %d comparisons x %d workers in 1 round-trip (%v of marketplace latency)\n",
		plan.L, perTask, roundLatency)
	fmt.Printf("  spent $%.2f, compute %v, accuracy %.4f\n\n",
		spent, res.Timings.Total().Round(time.Millisecond), nonInteractiveAcc)

	// ---- Interactive: CrowdBT with the same budget. ----
	budget := crowdrank.Budget{
		Total:          float64(plan.L * perTask), // same number of paid answers
		Reward:         1,
		WorkersPerTask: perTask,
	}
	start := time.Now()
	inter, err := crowdrank.RunInteractiveCrowdBT(objects, budget, cfg, roundLatency)
	if err != nil {
		log.Fatalf("interactive CrowdBT: %v", err)
	}
	interCompute := time.Since(start)
	interAcc, err := crowdrank.Accuracy(inter.Ranking, inter.GroundTruth)
	if err != nil {
		log.Fatalf("scoring: %v", err)
	}
	fmt.Println("interactive (CrowdBT baseline):")
	fmt.Printf("  %d comparisons crowdsourced one at a time: %d round-trips (~%v of marketplace latency)\n",
		inter.Rounds, inter.Rounds, inter.SimulatedLatency)
	fmt.Printf("  spent $%.2f, compute %v, accuracy %.4f\n\n",
		inter.Spent*reward, interCompute.Round(time.Millisecond), interAcc)

	speedup := float64(inter.SimulatedLatency) / float64(roundLatency)
	fmt.Printf("same budget, same crowd quality: the non-interactive round finishes ~%.0fx sooner in wall-clock marketplace time.\n", speedup)
}
