package crowdrank

import (
	"math"
	"testing"
	"time"
)

func TestPlanTasks(t *testing.T) {
	plan, err := PlanTasks(20, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 20 || plan.L != 50 || len(plan.Pairs) != 50 {
		t.Fatalf("plan = %+v", plan)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if plan.TargetDegree != 5 {
		t.Errorf("TargetDegree = %d", plan.TargetDegree)
	}
	if _, err := PlanTasks(20, 10, 1); err == nil {
		t.Error("l < n-1 should fail")
	}
}

func TestPlanTasksRatioAndBudget(t *testing.T) {
	plan, err := PlanTasksRatio(100, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.L != 495 {
		t.Errorf("L = %d, want 495", plan.L)
	}
	b := Budget{Total: 12.5, Reward: 0.025, WorkersPerTask: 10}
	if l, err := b.MaxTasks(); err != nil || l != 50 {
		t.Errorf("MaxTasks = %d, %v", l, err)
	}
	bPlan, err := PlanTasksBudget(20, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bPlan.L != 50 {
		t.Errorf("budget plan L = %d", bPlan.L)
	}
	// A budget larger than all pairs clamps to C(n,2).
	rich := Budget{Total: 1e6, Reward: 0.025, WorkersPerTask: 10}
	richPlan, err := PlanTasksBudget(10, rich, 4)
	if err != nil {
		t.Fatal(err)
	}
	if richPlan.L != 45 {
		t.Errorf("rich plan L = %d, want 45", richPlan.L)
	}
}

func TestPlanFairnessHelpers(t *testing.T) {
	plan, err := PlanTasks(30, 90, 5) // target degree 6
	if err != nil {
		t.Fatal(err)
	}
	probs := plan.FairnessProbability()
	if len(probs) != 30 {
		t.Fatal("FairnessProbability length wrong")
	}
	lo, hi := probs[0], probs[0]
	for _, p := range probs {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	// Near-regular: the in/out-probabilities differ by at most a factor 9
	// (two degree steps), typically equal.
	if hi/lo > 9+1e-9 {
		t.Errorf("fairness spread too wide: %v .. %v", lo, hi)
	}
	bound, err := plan.HPLikelihoodLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if bound < 0 || bound > 1 {
		t.Errorf("bound = %v", bound)
	}
	degrees := plan.Degrees()
	sum := 0
	for _, d := range degrees {
		sum += d
	}
	if sum != 180 {
		t.Errorf("degree sum = %d, want 2L", sum)
	}
}

func TestPlanPackHITs(t *testing.T) {
	plan, err := PlanTasks(10, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := plan.PackHITs(3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, h := range hits {
		if len(h.Pairs) > 3 {
			t.Fatal("HIT too large")
		}
		total += len(h.Pairs)
	}
	if total != 20 {
		t.Errorf("packed %d pairs", total)
	}
	if _, err := plan.PackHITs(0); err == nil {
		t.Error("perHIT=0 should fail")
	}
}

func TestSimulateVotes(t *testing.T) {
	plan, err := PlanTasksRatio(30, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(8)
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Votes) != plan.L*cfg.WorkersPerTask {
		t.Errorf("votes = %d, want %d", len(round.Votes), plan.L*cfg.WorkersPerTask)
	}
	if len(round.GroundTruth) != 30 || len(round.WorkerSigmas) != cfg.Workers {
		t.Error("round metadata wrong")
	}
	if round.Spent != float64(len(round.Votes)) {
		t.Errorf("spent = %v", round.Spent)
	}
	// Determinism.
	round2, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range round.Votes {
		if round.Votes[i] != round2.Votes[i] {
			t.Fatal("simulation not deterministic under fixed seed")
		}
	}
}

func TestSimulateVotesValidation(t *testing.T) {
	plan, _ := PlanTasksRatio(10, 0.5, 1)
	bad := DefaultSimConfig(1)
	bad.Workers = 0
	if _, err := SimulateVotes(plan, bad); err == nil {
		t.Error("workers=0 should fail")
	}
	bad = DefaultSimConfig(1)
	bad.WorkersPerTask = 99
	if _, err := SimulateVotes(plan, bad); err == nil {
		t.Error("w > m should fail")
	}
	bad = DefaultSimConfig(1)
	bad.PairsPerHIT = 0
	if _, err := SimulateVotes(plan, bad); err == nil {
		t.Error("PairsPerHIT=0 should fail")
	}
	bad = DefaultSimConfig(1)
	bad.Distribution = 0
	if _, err := SimulateVotes(plan, bad); err == nil {
		t.Error("unknown distribution should fail")
	}
	bad = DefaultSimConfig(1)
	bad.Level = 0
	if _, err := SimulateVotes(plan, bad); err == nil {
		t.Error("unknown level should fail")
	}
	if _, err := SimulateVotes(nil, DefaultSimConfig(1)); err == nil {
		t.Error("nil plan should fail")
	}
}

func TestInferEndToEnd(t *testing.T) {
	plan, err := PlanTasksRatio(50, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(12)
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer(plan.N, cfg.Workers, round.Votes, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(res.Ranking, round.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("end-to-end accuracy = %v", acc)
	}
	if res.Timings.Total() <= 0 {
		t.Error("timings missing")
	}
	if len(res.WorkerQuality) != cfg.Workers {
		t.Error("worker quality length wrong")
	}
}

// TestStepTimingsMonotonicSafe pins the duration contract on the public
// result: every pipeline stage is measured with time.Since, which reads
// the monotonic clock, so no component can be negative even if the wall
// clock is stepped mid-inference — and Total is exactly the sum of the
// four components, nothing more.
func TestStepTimingsMonotonicSafe(t *testing.T) {
	plan, _ := PlanTasksRatio(15, 0.5, 41)
	round, _ := SimulateVotes(plan, DefaultSimConfig(42))
	res, err := Infer(plan.N, 30, round.Votes, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	for name, d := range map[string]time.Duration{
		"TruthDiscovery": tm.TruthDiscovery,
		"Smoothing":      tm.Smoothing,
		"Propagation":    tm.Propagation,
		"Search":         tm.Search,
	} {
		if d < 0 {
			t.Errorf("StepTimings.%s = %v; monotonic durations cannot be negative", name, d)
		}
	}
	if sum := tm.TruthDiscovery + tm.Smoothing + tm.Propagation + tm.Search; tm.Total() != sum {
		t.Errorf("Total() = %v, want the component sum %v", tm.Total(), sum)
	}
}

func TestInferDeterministicWithSeed(t *testing.T) {
	plan, _ := PlanTasksRatio(20, 0.4, 21)
	round, _ := SimulateVotes(plan, DefaultSimConfig(22))
	a, err := Infer(plan.N, 30, round.Votes, WithSeed(5), WithSearch(SearchSAPS))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(plan.N, 30, round.Votes, WithSeed(5), WithSearch(SearchSAPS))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranking {
		if a.Ranking[i] != b.Ranking[i] {
			t.Fatal("Infer not deterministic with WithSeed")
		}
	}
}

func TestInferOptions(t *testing.T) {
	plan, _ := PlanTasksRatio(12, 0.6, 31)
	round, _ := SimulateVotes(plan, DefaultSimConfig(32))
	_, err := Infer(plan.N, 30, round.Votes,
		WithSeed(1),
		WithAlpha(0.7),
		WithMaxHops(2),
		WithSearch(SearchHeldKarp),
		WithObjective(AllPairsObjective),
		WithSAPS(100, 0.5, 0.95, 4),
		WithTruthDiscovery(0.05, 15, 1e-5),
		WithSmoothing(1e-3, 0.4),
	)
	if err != nil {
		t.Fatalf("options: %v", err)
	}
	if _, err := Infer(plan.N, 30, round.Votes, WithSearch(SearchAlgorithm(99))); err == nil {
		t.Error("unknown search should fail")
	}
	if _, err := Infer(plan.N, 30, round.Votes, WithObjective(PathObjective(99))); err == nil {
		t.Error("unknown objective should fail")
	}
	if _, err := Infer(plan.N, 30, round.Votes, WithAlpha(2)); err == nil {
		t.Error("alpha out of range should fail at validation")
	}
}

func TestInferConsecutiveObjectiveRuns(t *testing.T) {
	plan, _ := PlanTasksRatio(10, 0.8, 41)
	round, _ := SimulateVotes(plan, DefaultSimConfig(42))
	res, err := Infer(plan.N, 30, round.Votes,
		WithSeed(2), WithObjective(ConsecutiveObjective), WithSearch(SearchHeldKarp))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking) != 10 {
		t.Error("ranking length wrong")
	}
}

func TestInferParallelismDeterministic(t *testing.T) {
	plan, _ := PlanTasksRatio(40, 0.3, 61)
	round, _ := SimulateVotes(plan, DefaultSimConfig(62))
	seq, err := Infer(plan.N, 30, round.Votes,
		WithSeed(63), WithSearch(SearchSAPS))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Infer(plan.N, 30, round.Votes,
		WithSeed(63), WithSearch(SearchSAPS), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Ranking {
		if seq.Ranking[i] != par.Ranking[i] {
			t.Fatalf("parallel SAPS changed the result: %v vs %v", par.Ranking, seq.Ranking)
		}
	}
}

func TestMetricsFacade(t *testing.T) {
	a := []int{0, 1, 2, 3}
	b := []int{3, 2, 1, 0}
	if d, _ := KendallTauDistance(a, b); d != 1 {
		t.Errorf("distance = %v", d)
	}
	if acc, _ := Accuracy(a, b); acc != 0 {
		t.Errorf("accuracy = %v", acc)
	}
	if tau, _ := KendallTau(a, b); tau != -1 {
		t.Errorf("tau = %v", tau)
	}
	if rho, _ := SpearmanRho(a, a); math.Abs(rho-1) > 1e-12 {
		t.Errorf("rho = %v", rho)
	}
	if ov, _ := TopKOverlap(a, b, 2); ov != 0 {
		t.Errorf("overlap = %v", ov)
	}
}

func TestBaselinesFacade(t *testing.T) {
	plan, err := PlanTasksRatio(20, 0.8, 51)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(52)
	cfg.Level = HighQualityWorkers
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []BaselineName{BaselineRC, BaselineQS, BaselineMajority, BaselineBorda, BaselineCrowdBT, BaselineBTL} {
		ranking, err := RunBaseline(name, plan.N, cfg.Workers, round.Votes, 53)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen := make([]bool, plan.N)
		for _, v := range ranking {
			if v < 0 || v >= plan.N || seen[v] {
				t.Fatalf("%s produced a non-permutation: %v", name, ranking)
			}
			seen[v] = true
		}
	}
	if _, err := RunBaseline("nope", plan.N, cfg.Workers, round.Votes, 1); err == nil {
		t.Error("unknown baseline should fail")
	}
}

func TestBaselineQualityOrderingAtHighBudget(t *testing.T) {
	// At r=0.8 with high-quality workers, majority/Borda/CrowdBT should be
	// clearly better than random while RC under sparse per-worker coverage
	// is weaker — the Table I shape in miniature.
	plan, err := PlanTasksRatio(30, 0.8, 61)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(62)
	cfg.Level = HighQualityWorkers
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := func(name BaselineName) float64 {
		r, err := RunBaseline(name, plan.N, cfg.Workers, round.Votes, 63)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := Accuracy(r, round.GroundTruth)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if a := acc(BaselineBorda); a < 0.85 {
		t.Errorf("Borda accuracy = %v", a)
	}
	if a := acc(BaselineCrowdBT); a < 0.85 {
		t.Errorf("CrowdBT accuracy = %v", a)
	}
	ours, err := Infer(plan.N, cfg.Workers, round.Votes, WithSeed(64))
	if err != nil {
		t.Fatal(err)
	}
	oursAcc, err := Accuracy(ours.Ranking, round.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if oursAcc < 0.9 {
		t.Errorf("pipeline accuracy = %v", oursAcc)
	}
}

func TestCrowdBTFitExposesModel(t *testing.T) {
	plan, _ := PlanTasksRatio(10, 1, 71)
	cfg := DefaultSimConfig(72)
	cfg.Level = HighQualityWorkers
	round, _ := SimulateVotes(plan, cfg)
	res, err := CrowdBTFit(plan.N, cfg.Workers, round.Votes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != plan.N || len(res.Reliability) != cfg.Workers || len(res.Ranking) != plan.N {
		t.Error("CrowdBT result shapes wrong")
	}
}

func TestSimulateVotesMultiPairHITs(t *testing.T) {
	// c > 1 comparisons per HIT: each assigned worker answers every pair in
	// the HIT, so the vote count still equals L * w.
	plan, err := PlanTasksRatio(20, 0.5, 71)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(72)
	cfg.PairsPerHIT = 5
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Votes) != plan.L*cfg.WorkersPerTask {
		t.Errorf("votes = %d, want %d", len(round.Votes), plan.L*cfg.WorkersPerTask)
	}
	res, err := Infer(plan.N, cfg.Workers, round.Votes, WithSeed(73))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(res.Ranking, round.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("multi-pair-HIT accuracy = %v", acc)
	}
}

func TestSimulateVotesBalancedAssignment(t *testing.T) {
	plan, err := PlanTasksRatio(30, 0.5, 81)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(82)
	cfg.BalancedAssignment = true
	round, err := SimulateVotes(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per-worker vote counts must be near-equal (within one HIT's worth).
	counts := make(map[int]int)
	for _, v := range round.Votes {
		counts[v.Worker]++
	}
	lo, hi := 1<<30, 0
	for w := 0; w < cfg.Workers; w++ {
		c := counts[w]
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > cfg.PairsPerHIT {
		t.Errorf("balanced assignment load spread = %d..%d", lo, hi)
	}
}

func TestInferWithPolish(t *testing.T) {
	plan, _ := PlanTasksRatio(40, 0.2, 91)
	round, _ := SimulateVotes(plan, DefaultSimConfig(92))
	plain, err := Infer(plan.N, 30, round.Votes, WithSeed(93), WithSearch(SearchSAPS))
	if err != nil {
		t.Fatal(err)
	}
	polished, err := Infer(plan.N, 30, round.Votes, WithSeed(93), WithSearch(SearchSAPS), WithPolish(8))
	if err != nil {
		t.Fatal(err)
	}
	if polished.LogProb < plain.LogProb-1e-9 {
		t.Errorf("polish worsened the objective: %v -> %v", plain.LogProb, polished.LogProb)
	}
	accPlain, _ := Accuracy(plain.Ranking, round.GroundTruth)
	accPolished, _ := Accuracy(polished.Ranking, round.GroundTruth)
	if accPolished < accPlain-0.05 {
		t.Errorf("polish hurt accuracy badly: %v -> %v", accPlain, accPolished)
	}
}

func TestInferBranchAndBoundSearcher(t *testing.T) {
	plan, _ := PlanTasksRatio(25, 0.4, 111)
	round, _ := SimulateVotes(plan, DefaultSimConfig(112))
	bb, err := Infer(plan.N, 30, round.Votes, WithSeed(113), WithSearch(SearchBranchBound))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Infer(plan.N, 30, round.Votes, WithSeed(113), WithSearch(SearchSAPS))
	if err != nil {
		t.Fatal(err)
	}
	if sa.LogProb > bb.LogProb+1e-9 {
		t.Errorf("SAPS %v beat the proven optimum %v", sa.LogProb, bb.LogProb)
	}
	// Branch-and-bound rejects the consecutive objective.
	if _, err := Infer(plan.N, 30, round.Votes, WithSeed(113),
		WithSearch(SearchBranchBound), WithObjective(ConsecutiveObjective)); err == nil {
		t.Error("branch-and-bound with the consecutive objective should fail")
	}
}

func TestPublicEnumStrings(t *testing.T) {
	cases := map[string]string{
		GaussianWorkers.String():      "gaussian",
		UniformWorkers.String():       "uniform",
		HighQualityWorkers.String():   "high",
		MediumQualityWorkers.String(): "medium",
		LowQualityWorkers.String():    "low",
		SearchAuto.String():           "auto",
		SearchSAPS.String():           "saps",
		SearchTAPS.String():           "taps",
		SearchHeldKarp.String():       "heldkarp",
		SearchBruteForce.String():     "bruteforce",
		SearchBranchBound.String():    "branchbound",
		AllPairsObjective.String():    "all-pairs",
		ConsecutiveObjective.String(): "consecutive",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if WorkerDistribution(9).String() == "" || SearchAlgorithm(9).String() == "" || PathObjective(9).String() == "" {
		t.Error("unknown enum values should still print")
	}
}

func TestCertifyRanking(t *testing.T) {
	plan, _ := PlanTasksRatio(20, 0.5, 131)
	round, _ := SimulateVotes(plan, DefaultSimConfig(132))
	res, err := Infer(plan.N, 30, round.Votes, WithSeed(133), WithSearch(SearchBranchBound))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyRanking(plan.N, 30, round.Votes, res.Ranking, WithSeed(133))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Gap < 0 {
		t.Errorf("gap must be nonnegative, got %v", cert.Gap)
	}
	if cert.Score > cert.UpperBound {
		t.Errorf("score %v above upper bound %v", cert.Score, cert.UpperBound)
	}
	// The branch-and-bound result is the proven optimum of this closure, so
	// its score is within the certified range by construction; a reversed
	// ranking must certify strictly worse.
	reversed := make([]int, len(res.Ranking))
	for i, v := range res.Ranking {
		reversed[len(res.Ranking)-1-i] = v
	}
	worse, err := CertifyRanking(plan.N, 30, round.Votes, reversed, WithSeed(133))
	if err != nil {
		t.Fatal(err)
	}
	if worse.Gap <= cert.Gap {
		t.Errorf("reversed ranking gap %v should exceed optimum gap %v", worse.Gap, cert.Gap)
	}
}
