package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// openCollect opens the journal collecting every replayed payload.
func openCollect(t *testing.T, dir string, opts Options) (*Journal, ReplayStats, [][]byte) {
	t.Helper()
	var payloads [][]byte
	j, stats, err := Open(dir, opts, func(p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j, stats, payloads
}

func mustAppend(t *testing.T, j *Journal, payload []byte) uint64 {
	t.Helper()
	seq, err := j.Append(payload)
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return seq
}

// activeSegmentPath returns the highest-indexed segment file in dir, for
// tests that corrupt the journal tail directly.
func activeSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments(%s): %v (%d segments)", dir, err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, stats, _ := openCollect(t, dir, Options{})
	if stats.Records != 0 || stats.Truncated() {
		t.Fatalf("fresh journal stats = %+v", stats)
	}
	want := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{0xAB}, 1000)}
	for i, p := range want {
		if seq := mustAppend(t, j, p); seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	_, stats, got := openCollect(t, dir, Options{})
	if stats.Records != len(want) || stats.Truncated() || stats.TailError != "" {
		t.Fatalf("replay stats = %+v", stats)
	}
	if stats.NextSeq != uint64(len(want)) || stats.FirstSeq != 0 {
		t.Fatalf("sequence range wrong: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReopenAppendReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{Sync: SyncOS})
	mustAppend(t, j, []byte("one"))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, stats, _ := openCollect(t, dir, Options{})
	if stats.Records != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if seq := mustAppend(t, j, []byte("two")); seq != 1 {
		t.Fatalf("append after reopen got seq %d, want 1", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, dir, Options{})
	if stats.Records != 2 || len(got) != 2 || string(got[1]) != "two" {
		t.Fatalf("after reopen-append: stats=%+v got=%q", stats, got)
	}
}

func TestRotationSplitsSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	// Tiny threshold: every append beyond the first rotates.
	j, _, _ := openCollect(t, dir, Options{Sync: SyncOS, SegmentBytes: 1})
	const n = 5
	for i := 0; i < n; i++ {
		mustAppend(t, j, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if got := j.Segments(); got != n {
		t.Fatalf("want %d segments after rotation, got %d", n, got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, dir, Options{})
	if stats.Records != n || stats.Segments != n || stats.Truncated() {
		t.Fatalf("rotated replay stats = %+v", stats)
	}
	for i := range got {
		if string(got[i]) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d = %q out of order", i, got[i])
		}
	}
}

func TestCompactThroughDeletesCoveredSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{Sync: SyncOS, SegmentBytes: 1})
	for i := 0; i < 6; i++ {
		mustAppend(t, j, []byte(fmt.Sprintf("rec-%d", i)))
	}
	sizeBefore := j.Size()
	deleted, err := j.CompactThrough(4)
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("compaction deleted nothing")
	}
	if j.Size() >= sizeBefore {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", sizeBefore, j.Size())
	}
	// Appends continue with uninterrupted sequence numbers.
	if seq := mustAppend(t, j, []byte("rec-6")); seq != 6 {
		t.Fatalf("post-compaction append got seq %d, want 6", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A replay from the snapshot position sees only the suffix.
	_, stats, got := openCollect(t, dir, Options{ReplayFrom: 4})
	if stats.FirstSeq > 4 {
		t.Fatalf("compaction deleted past the cover point: %+v", stats)
	}
	if stats.Records != 3 {
		t.Fatalf("want records 4..6 replayed (3), got %d (stats %+v)", stats.Records, stats)
	}
	for i, want := range []string{"rec-4", "rec-5", "rec-6"} {
		if string(got[i]) != want {
			t.Fatalf("replayed record %d = %q, want %q", i, got[i], want)
		}
	}

	// Replaying from before the compacted prefix must fail loudly: those
	// records are gone and pretending otherwise would serve a hole.
	if _, _, err := Open(dir, Options{ReplayFrom: 0}, nil); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("want ErrSeqGap for a pre-compaction replay, got %v", err)
	}
}

func TestCompactThroughAllRotatesActive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{Sync: SyncOS})
	for i := 0; i < 4; i++ {
		mustAppend(t, j, []byte(fmt.Sprintf("rec-%d", i)))
	}
	// Everything is covered: the active segment must be sealed and
	// deleted, leaving a fresh, nearly-empty journal.
	if _, err := j.CompactThrough(j.NextSeq()); err != nil {
		t.Fatal(err)
	}
	if j.Segments() != 1 || j.Size() != segHeaderSize {
		t.Fatalf("full compaction should leave one empty segment, got %d segments / %d bytes",
			j.Segments(), j.Size())
	}
	if seq := mustAppend(t, j, []byte("rec-4")); seq != 4 {
		t.Fatalf("append after full compaction got seq %d, want 4", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, dir, Options{ReplayFrom: 4})
	if stats.Records != 1 || string(got[0]) != "rec-4" {
		t.Fatalf("suffix replay after full compaction: stats=%+v got=%q", stats, got)
	}
}

// TestCompactThroughNoSealedSegments pins the edge cases where nothing
// can be deleted: a journal that has never rotated holds exactly one
// (active) segment, and compaction must be a clean no-op on it — empty,
// partially covered, or with seq far beyond the tail.
func TestCompactThroughNoSealedSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{Sync: SyncOS})

	// Entirely empty journal: no records, one active segment.
	deleted, err := j.CompactThrough(j.NextSeq())
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 0 || j.Segments() != 1 {
		t.Fatalf("empty-journal compaction: deleted=%d segments=%d, want 0/1", deleted, j.Segments())
	}

	// Records present but none covered (seq 0 covers nothing).
	for i := 0; i < 3; i++ {
		mustAppend(t, j, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if deleted, err = j.CompactThrough(0); err != nil {
		t.Fatal(err)
	}
	if deleted != 0 {
		t.Fatalf("uncovered compaction deleted %d segments", deleted)
	}

	// seq beyond NextSeq is clamped, not an error; the active segment is
	// rotated out and the sealed file deleted, never leaving zero
	// segments behind.
	if deleted, err = j.CompactThrough(j.NextSeq() + 1000); err != nil {
		t.Fatal(err)
	}
	if deleted != 1 || j.Segments() != 1 {
		t.Fatalf("over-clamped compaction: deleted=%d segments=%d, want 1/1", deleted, j.Segments())
	}
	if seq := mustAppend(t, j, []byte("after")); seq != 3 {
		t.Fatalf("append after clamped compaction got seq %d, want 3", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, dir, Options{ReplayFrom: 3})
	if stats.Records != 1 || string(got[0]) != "after" {
		t.Fatalf("replay after no-op compactions: stats=%+v got=%q", stats, got)
	}
}

// TestCompactThroughRacesAppends runs compaction concurrently with a
// stream of appends (tiny segments, so rotation is constant) and checks
// nothing is lost ahead of the cover point. Run under -race this also
// pins the locking contract between Append and CompactThrough.
func TestCompactThroughRacesAppends(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{Sync: SyncOS, SegmentBytes: 1})

	const n = 200
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
				select {
				case errs <- err:
				default:
				}
				return
			}
		}
	}()
	// Compact whatever is sealed, as fast as the lock allows, while the
	// appender runs. NextSeq moves underneath us; that is the point.
	for i := 0; i < 50; i++ {
		if _, err := j.CompactThrough(j.NextSeq()); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every record from the final cover point forward must replay; the
	// sequence space must be dense to NextSeq with nothing reordered.
	cover := j.NextSeq()
	if cover != n {
		t.Fatalf("NextSeq = %d after %d appends", cover, n)
	}
	if _, err := j.CompactThrough(cover); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, dir, Options{ReplayFrom: cover})
	if stats.Records != 0 || len(got) != 0 {
		t.Fatalf("fully compacted journal replayed %d records (stats %+v)", len(got), stats)
	}
	if stats.NextSeq != cover {
		t.Fatalf("NextSeq after reopen = %d, want %d", stats.NextSeq, cover)
	}
}

// TestTornTailTruncated simulates a crash mid-append: a partial record at
// the tail must be detected, reported, and cut — and must not destroy the
// valid prefix.
func TestTornTailTruncated(t *testing.T) {
	cases := []struct {
		name string
		tail []byte
	}{
		{"partial header", []byte{0x05, 0x00}},
		{"payload promised but missing", func() []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint32(b[0:4], 100)
			binary.LittleEndian.PutUint32(b[4:8], 0xDEADBEEF)
			return append(b, []byte("only ten b")...)
		}()},
		{"zero length", make([]byte, 8)},
		{"implausible length", func() []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint32(b[0:4], 1<<30)
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wal")
			j, _, _ := openCollect(t, dir, Options{})
			mustAppend(t, j, []byte("kept"))
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			seg := activeSegmentPath(t, dir)
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			j, stats, got := openCollect(t, dir, Options{})
			if stats.Records != 1 || len(got) != 1 || string(got[0]) != "kept" {
				t.Fatalf("valid prefix lost: stats=%+v got=%q", stats, got)
			}
			if !stats.Truncated() || stats.TailError == "" {
				t.Fatalf("torn tail not reported: %+v", stats)
			}
			if stats.TruncatedBytes != int64(len(tc.tail)) {
				t.Errorf("TruncatedBytes = %d, want %d", stats.TruncatedBytes, len(tc.tail))
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			// After truncation the journal must be clean on the next open.
			_, stats2, _ := openCollect(t, dir, Options{})
			if stats2.Truncated() || stats2.Records != 1 {
				t.Fatalf("truncation did not persist: %+v", stats2)
			}
		})
	}
}

// TestCorruptionDropsLaterSegments bit-flips a record in a sealed (non
// final) segment: replay must stop there, truncate the segment, and
// delete every later segment rather than replay records whose
// predecessors are untrusted.
func TestCorruptionDropsLaterSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{Sync: SyncOS, SegmentBytes: 1})
	for i := 0; i < 4; i++ {
		mustAppend(t, j, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (%v)", len(segs), err)
	}
	victim := segs[1].path
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats, got := openCollect(t, dir, Options{})
	if stats.Records != 1 || string(got[0]) != "rec-0" {
		t.Fatalf("want only the pre-corruption prefix: stats=%+v got=%q", stats, got)
	}
	if !stats.Truncated() || stats.DroppedSegments == 0 {
		t.Fatalf("later segments not dropped: %+v", stats)
	}
	if !strings.Contains(stats.TailError, "checksum mismatch") {
		t.Fatalf("corruption not named: %+v", stats)
	}
}

func TestChecksumMismatchRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{})
	mustAppend(t, j, []byte("first"))
	mustAppend(t, j, []byte("second-to-corrupt"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := activeSegmentPath(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01 // last byte of the final record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats, got := openCollect(t, dir, Options{})
	if stats.Records != 1 || len(got) != 1 || string(got[0]) != "first" {
		t.Fatalf("stats=%+v got=%q", stats, got)
	}
	if !stats.Truncated() || !strings.Contains(stats.TailError, "checksum mismatch") {
		t.Fatalf("corruption not named: %+v", stats)
	}
}

func TestV1JournalMigrated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	// Hand-build a v1 single-file journal: magic + two records.
	var buf bytes.Buffer
	buf.Write(v1Magic)
	for _, p := range [][]byte{[]byte("old-0"), []byte("old-1")} {
		var hdr [recordHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32Of(p))
		buf.Write(hdr[:])
		buf.Write(p)
	}
	if err := os.WriteFile(dir, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	j, stats, got := openCollect(t, dir, Options{})
	if stats.Records != 2 || stats.Truncated() {
		t.Fatalf("migrated replay stats = %+v", stats)
	}
	if string(got[0]) != "old-0" || string(got[1]) != "old-1" {
		t.Fatalf("migrated payloads = %q", got)
	}
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		t.Fatalf("migration should leave a directory at %s (err=%v)", dir, err)
	}
	// The journal keeps working across the format boundary.
	if seq := mustAppend(t, j, []byte("new-2")); seq != 2 {
		t.Fatalf("post-migration append got seq %d, want 2", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got = openCollect(t, dir, Options{})
	if stats.Records != 3 || string(got[2]) != "new-2" {
		t.Fatalf("reopen after migration: stats=%+v got=%q", stats, got)
	}
}

func TestBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("this is certainly not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}, nil); err == nil {
		t.Fatal("Open accepted a non-journal file")
	}
	// A garbage segment file inside the directory is refused too.
	dir := filepath.Join(t.TempDir(), "wal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("garbage segment contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}, nil); err == nil {
		t.Fatal("Open accepted a garbage first segment")
	}
}

func TestUnwritableDirectoryRefused(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	parent := t.TempDir()
	dir := filepath.Join(parent, "wal")
	if err := os.MkdirAll(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{}, nil)
	if err == nil || !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("read-only journal directory should refuse Open, got %v", err)
	}
}

func TestAppendValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{MaxRecord: 64})
	if _, err := j.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := j.Append(bytes.Repeat([]byte{1}, 65)); err == nil {
		t.Error("oversized payload accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("x")); err == nil {
		t.Error("append after Close accepted")
	}
	if err := j.Sync(); err == nil {
		t.Error("sync after Close accepted")
	}
	if _, err := j.CompactThrough(0); err == nil {
		t.Error("compaction after Close accepted")
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{})
	mustAppend(t, j, []byte("a"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	_, _, err := Open(dir, Options{}, func([]byte) error { return boom })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("callback error not propagated: %v", err)
	}
	// The failed open must not have damaged the files.
	_, stats, _ := openCollect(t, dir, Options{})
	if stats.Records != 1 || stats.Truncated() {
		t.Fatalf("journal damaged by aborted open: %+v", stats)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	// Small segments so rotation races with concurrent appenders too.
	j, _, _ := openCollect(t, dir, Options{Sync: SyncOS, SegmentBytes: 256})
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, dir, Options{})
	if stats.Records != writers*each || len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d (stats %+v)", len(got), writers*each, stats)
	}
}

// --- fault injection & poisoning -------------------------------------------

func TestFsyncFailurePoisons(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	fail := false
	faults := &Faults{Sync: func() error {
		if fail {
			return fmt.Errorf("injected EIO on fsync")
		}
		return nil
	}}
	j, _, _ := openCollect(t, dir, Options{Sync: SyncAlways, Faults: faults})
	mustAppend(t, j, []byte("healthy"))

	fail = true
	if _, err := j.Append([]byte("doomed")); err == nil || !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append over failed fsync must return ErrPoisoned, got %v", err)
	}
	// fsyncgate: even if the disk "recovers", the journal must not.
	fail = false
	if _, err := j.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poisoning must keep failing, got %v", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync after poisoning must fail, got %v", err)
	}
	if _, err := j.CompactThrough(1); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("compaction after poisoning must fail, got %v", err)
	}
	if cause := j.Poisoned(); cause == nil || !strings.Contains(cause.Error(), "injected EIO") {
		t.Fatalf("Poisoned() should name the root cause, got %v", cause)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("poisoned Close should not fail (fault already reported): %v", err)
	}

	// Recovery salvages what was durable before the fault; the record
	// whose fsync failed must not have been acknowledged (the caller saw
	// an error), and replay may or may not find its bytes — what matters
	// is that every record replayed is intact.
	_, stats, got := openCollect(t, dir, Options{})
	if stats.Records < 1 || string(got[0]) != "healthy" {
		t.Fatalf("pre-fault record lost: stats=%+v got=%q", stats, got)
	}
}

func TestWriteFailurePoisons(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	arm := false
	faults := &Faults{Write: func(buf []byte) (int, error) {
		if arm {
			return 0, fmt.Errorf("injected ENOSPC")
		}
		return len(buf), nil
	}}
	j, _, _ := openCollect(t, dir, Options{Faults: faults})
	mustAppend(t, j, []byte("pre"))
	arm = true
	if _, err := j.Append([]byte("x")); err == nil || !errors.Is(err, ErrPoisoned) {
		t.Fatalf("failed write must poison, got %v", err)
	}
	arm = false
	if _, err := j.Append([]byte("y")); !errors.Is(err, ErrPoisoned) {
		t.Fatal("journal must stay poisoned after a write failure")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShortWritePoisonsAndTornBytesRepaired injects a short write — half
// a record lands on disk — and asserts both halves of the contract: the
// journal poisons immediately, and the next open truncates the torn
// bytes instead of replaying them.
func TestShortWritePoisonsAndTornBytesRepaired(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	arm := false
	faults := &Faults{Write: func(buf []byte) (int, error) {
		if arm {
			return len(buf) / 2, fmt.Errorf("injected short write")
		}
		return len(buf), nil
	}}
	j, _, _ := openCollect(t, dir, Options{Faults: faults})
	mustAppend(t, j, []byte("durable"))
	arm = true
	if _, err := j.Append([]byte("torn-in-half")); !errors.Is(err, ErrPoisoned) {
		t.Fatal("short write must poison the journal")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, stats, got := openCollect(t, dir, Options{})
	if stats.Records != 1 || string(got[0]) != "durable" {
		t.Fatalf("recovery over torn bytes: stats=%+v got=%q", stats, got)
	}
	if !stats.Truncated() {
		t.Fatalf("torn half-record should be reported truncated: %+v", stats)
	}
}

// --- small-surface satellites ----------------------------------------------

func TestSyncPolicyString(t *testing.T) {
	cases := map[SyncPolicy]string{
		SyncAlways:     "always",
		SyncOS:         "os",
		SyncPolicy(7):  "SyncPolicy(7)",
		SyncPolicy(-1): "SyncPolicy(-1)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("SyncPolicy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestReplayStatsReporting(t *testing.T) {
	var zero ReplayStats
	if zero.Truncated() {
		t.Error("zero ReplayStats must not report truncation")
	}
	if got := zero.String(); got != "replayed 0 records from 0 segments (clean)" {
		t.Errorf("zero ReplayStats.String() = %q", got)
	}
	full := ReplayStats{
		Records: 7, SkippedRecords: 3, Segments: 2,
		TruncatedBytes: 11, DroppedSegments: 1, TailError: "bad tail",
	}
	s := full.String()
	for _, want := range []string{"7 records", "2 segments", "skipped 3", "11 bytes", "1 segments", "bad tail"} {
		if !strings.Contains(s, want) {
			t.Errorf("ReplayStats.String() = %q missing %q", s, want)
		}
	}
}

func TestSizeDirAndSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, dir, Options{})
	if j.Dir() != dir {
		t.Errorf("Dir() = %q", j.Dir())
	}
	if j.Size() != segHeaderSize || j.Segments() != 1 || j.NextSeq() != 0 {
		t.Errorf("fresh journal: size=%d segments=%d nextSeq=%d", j.Size(), j.Segments(), j.NextSeq())
	}
	mustAppend(t, j, []byte("abcd"))
	if want := int64(segHeaderSize + recordHeaderSize + 4); j.Size() != want {
		t.Errorf("Size() = %d, want %d", j.Size(), want)
	}
	if j.NextSeq() != 1 {
		t.Errorf("NextSeq() = %d, want 1", j.NextSeq())
	}
	var onDisk int64
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		onDisk += s.size
	}
	if onDisk != j.Size() {
		t.Errorf("on-disk size %d != tracked %d", onDisk, j.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// crc32Of mirrors the production checksum for hand-built test files.
func crc32Of(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}
