package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// openCollect opens the journal collecting every replayed payload.
func openCollect(t *testing.T, path string, opts Options) (*Journal, ReplayStats, [][]byte) {
	t.Helper()
	var payloads [][]byte
	j, stats, err := Open(path, opts, func(p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j, stats, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, stats, _ := openCollect(t, path, Options{})
	if stats.Records != 0 || stats.Truncated() {
		t.Fatalf("fresh journal stats = %+v", stats)
	}
	want := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	_, stats, got := openCollect(t, path, Options{})
	if stats.Records != len(want) || stats.Truncated() || stats.TailError != "" {
		t.Fatalf("replay stats = %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReopenAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, _ := openCollect(t, path, Options{Sync: SyncOS})
	if err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, stats, _ := openCollect(t, path, Options{})
	if stats.Records != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := j.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, path, Options{})
	if stats.Records != 2 || len(got) != 2 || string(got[1]) != "two" {
		t.Fatalf("after reopen-append: stats=%+v got=%q", stats, got)
	}
}

// TestTornTailTruncated simulates a crash mid-append: a partial record at
// the tail must be detected, reported, and cut — and must not destroy the
// valid prefix.
func TestTornTailTruncated(t *testing.T) {
	cases := []struct {
		name string
		tail []byte
	}{
		{"partial header", []byte{0x05, 0x00}},
		{"payload promised but missing", func() []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint32(b[0:4], 100)
			binary.LittleEndian.PutUint32(b[4:8], 0xDEADBEEF)
			return append(b, []byte("only ten b")...)
		}()},
		{"zero length", make([]byte, 8)},
		{"implausible length", func() []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint32(b[0:4], 1<<30)
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.wal")
			j, _, _ := openCollect(t, path, Options{})
			if err := j.Append([]byte("kept")); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			j, stats, got := openCollect(t, path, Options{})
			if stats.Records != 1 || len(got) != 1 || string(got[0]) != "kept" {
				t.Fatalf("valid prefix lost: stats=%+v got=%q", stats, got)
			}
			if !stats.Truncated() || stats.TailError == "" {
				t.Fatalf("torn tail not reported: %+v", stats)
			}
			if stats.TruncatedBytes != int64(len(tc.tail)) {
				t.Errorf("TruncatedBytes = %d, want %d", stats.TruncatedBytes, len(tc.tail))
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			// After truncation the file must be clean on the next open.
			_, stats2, _ := openCollect(t, path, Options{})
			if stats2.Truncated() || stats2.Records != 1 {
				t.Fatalf("truncation did not persist: %+v", stats2)
			}
		})
	}
}

// TestChecksumMismatchRejected flips one bit inside a record's payload; the
// record must be rejected and truncated, not silently replayed.
func TestChecksumMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, _ := openCollect(t, path, Options{})
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("second-to-corrupt")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01 // last byte of the final record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats, got := openCollect(t, path, Options{})
	if stats.Records != 1 || len(got) != 1 || string(got[0]) != "first" {
		t.Fatalf("stats=%+v got=%q", stats, got)
	}
	if !stats.Truncated() || !strings.Contains(stats.TailError, "checksum mismatch") {
		t.Fatalf("corruption not named: %+v", stats)
	}
}

func TestBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("this is certainly not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}, nil); err == nil {
		t.Fatal("Open accepted a non-journal file")
	}
	short := filepath.Join(t.TempDir(), "short")
	if err := os.WriteFile(short, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(short, Options{}, nil); err == nil {
		t.Fatal("Open accepted a file shorter than the header")
	}
}

func TestAppendValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, _ := openCollect(t, path, Options{MaxRecord: 64})
	if err := j.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := j.Append(bytes.Repeat([]byte{1}, 65)); err == nil {
		t.Error("oversized payload accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("x")); err == nil {
		t.Error("append after Close accepted")
	}
	if err := j.Sync(); err == nil {
		t.Error("sync after Close accepted")
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, _ := openCollect(t, path, Options{})
	if err := j.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	_, _, err := Open(path, Options{}, func([]byte) error { return boom })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("callback error not propagated: %v", err)
	}
	// The failed open must not have damaged the file.
	_, stats, _ := openCollect(t, path, Options{})
	if stats.Records != 1 || stats.Truncated() {
		t.Fatalf("file damaged by aborted open: %+v", stats)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, _ := openCollect(t, path, Options{Sync: SyncOS})
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, path, Options{})
	if stats.Records != writers*each || len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d (stats %+v)", len(got), writers*each, stats)
	}
}

func TestSizeAndPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, _ := openCollect(t, path, Options{})
	if j.Path() != path {
		t.Errorf("Path() = %q", j.Path())
	}
	if j.Size() != headerSize {
		t.Errorf("fresh Size() = %d", j.Size())
	}
	if err := j.Append([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if want := int64(headerSize + recordHeaderSize + 4); j.Size() != want {
		t.Errorf("Size() = %d, want %d", j.Size(), want)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != j.Size() {
		t.Errorf("on-disk size %d != tracked %d", info.Size(), j.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// CRC sanity: the record we wrote verifies under Castagnoli.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := data[headerSize:]
	if crc := binary.LittleEndian.Uint32(rec[4:8]); crc != crc32.Checksum([]byte("abcd"), castagnoli) {
		t.Errorf("stored CRC %08x mismatches recomputation", crc)
	}
}
