package journal

// Reader gives the replication layer sequential read access to a live
// journal: the leader streams its own records to warm-standby followers
// from an arbitrary start sequence, tailing the active segment as new
// appends land. Reads are safe concurrently with Append because a record's
// bytes are fully written to the segment file before the sequence counter
// that admits it is bumped (both happen under the journal mutex), so any
// sequence below the committed NextSeq is completely on disk — or at least
// completely in the page cache this same process reads back.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Reader walks a journal's records in sequence order, starting from a
// caller-chosen sequence number and tailing the active segment. It is NOT
// safe for concurrent use by multiple goroutines; open one Reader per
// stream. Close releases the open segment handle.
type Reader struct {
	j      *Journal
	seq    uint64 // sequence of the next record Next will return
	f      *os.File
	fIndex uint64 // segment index f points into
	offset int64  // next read offset in f
	closed bool
}

// OpenReader positions a new Reader at sequence from. A from below the
// oldest surviving record fails with ErrSeqGap (the records were compacted
// away; the caller must bootstrap from a snapshot instead); a from beyond
// NextSeq is refused outright. from == NextSeq is valid and simply tails.
func (j *Journal) OpenReader(from uint64) (*Reader, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, fmt.Errorf("journal: reader on closed journal %s", j.dir)
	}
	if from > j.nextSeq {
		return nil, fmt.Errorf("journal: reader start %d is beyond next sequence %d", from, j.nextSeq)
	}
	if len(j.segments) > 0 && from < j.segments[0].firstSeq {
		return nil, fmt.Errorf("journal: records before seq %d were compacted, reader wants seq %d: %w",
			j.segments[0].firstSeq, from, ErrSeqGap)
	}
	return &Reader{j: j, seq: from}, nil
}

// Seq returns the sequence number of the record the next Next call will
// return (equivalently: one past the last record already returned).
func (r *Reader) Seq() uint64 { return r.seq }

// locate finds (under the journal mutex) the live segment holding seq and
// returns a copy of its metadata plus the committed next sequence.
func (r *Reader) locate(seq uint64) (segment, uint64, error) {
	j := r.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return segment{}, 0, fmt.Errorf("journal: read from closed journal %s", j.dir)
	}
	if seq >= j.nextSeq {
		return segment{}, j.nextSeq, io.EOF
	}
	if seq < j.segments[0].firstSeq {
		return segment{}, j.nextSeq, fmt.Errorf("journal: seq %d was compacted away under the reader: %w", seq, ErrSeqGap)
	}
	for _, s := range j.segments {
		if seq >= s.firstSeq && seq < s.firstSeq+uint64(s.records) {
			return s, j.nextSeq, nil
		}
	}
	// seq < nextSeq but no live segment holds it: cannot happen while the
	// segment invariants hold (contiguous firstSeq ranges ending at nextSeq).
	return segment{}, j.nextSeq, fmt.Errorf("journal: no live segment holds seq %d", seq)
}

// openSegment opens seg and skips forward to the record at seq, leaving
// r.f/r.offset positioned to read it.
func (r *Reader) openSegment(seg segment, seq uint64) error {
	if r.f != nil {
		//lint:ignore errcheck the finished segment was only read; a close error cannot lose data
		_ = r.f.Close()
		r.f = nil
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("journal: reader opening segment %s: %w", seg.path, err)
	}
	// The segment header determines where records start: a migrated v1
	// segment carries only the 8-byte magic.
	hdr := make([]byte, v1HeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		//lint:ignore errcheck error-path cleanup of a read-only handle; the header error is already being returned
		_ = f.Close()
		return fmt.Errorf("journal: reader reading header of %s: %w", seg.path, err)
	}
	offset := int64(segHeaderSize)
	if string(hdr) == string(v1Magic) {
		offset = v1HeaderSize
	}
	// Skip records below seq by walking headers without reading payloads.
	rec := make([]byte, recordHeaderSize)
	for at := seg.firstSeq; at < seq; at++ {
		if _, err := f.ReadAt(rec, offset); err != nil {
			//lint:ignore errcheck error-path cleanup of a read-only handle; the skip error is already being returned
			_ = f.Close()
			return fmt.Errorf("journal: reader skipping to seq %d in %s: %w", seq, seg.path, err)
		}
		offset += recordHeaderSize + int64(binary.LittleEndian.Uint32(rec[0:4]))
	}
	r.f, r.fIndex, r.offset = f, seg.index, offset
	return nil
}

// Next returns the payload and sequence number of the next record. A
// Reader that has caught up with the journal returns io.EOF — poll again
// after more appends. A start position that fell behind compaction returns
// an error matching ErrSeqGap. Payloads are freshly allocated; callers own
// them.
func (r *Reader) Next() ([]byte, uint64, error) {
	if r.closed {
		return nil, 0, fmt.Errorf("journal: read from closed reader")
	}
	seg, _, err := r.locate(r.seq)
	if err != nil {
		return nil, 0, err
	}
	if r.f == nil || r.fIndex != seg.index {
		if err := r.openSegment(seg, r.seq); err != nil {
			return nil, 0, err
		}
	}
	hdr := make([]byte, recordHeaderSize)
	if _, err := r.f.ReadAt(hdr, r.offset); err != nil {
		return nil, 0, fmt.Errorf("journal: reader at seq %d: record header: %w", r.seq, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || int64(length) > int64(r.j.opts.maxRecord()) {
		return nil, 0, fmt.Errorf("journal: reader at seq %d: implausible record length %d", r.seq, length)
	}
	payload := make([]byte, length)
	if _, err := r.f.ReadAt(payload, r.offset+recordHeaderSize); err != nil {
		return nil, 0, fmt.Errorf("journal: reader at seq %d: record payload: %w", r.seq, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("journal: reader at seq %d: checksum mismatch (recorded %08x, computed %08x)", r.seq, want, got)
	}
	seq := r.seq
	r.seq++
	r.offset += recordHeaderSize + int64(length)
	return payload, seq, nil
}

// Close releases the reader's segment handle. The journal itself is not
// affected. Close is idempotent.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return fmt.Errorf("journal: closing reader segment handle: %w", err)
	}
	return nil
}

// FirstSeq returns the sequence number of the oldest record still on disk
// (NextSeq when the journal is empty). Records below it were compacted
// away; a replication stream asked to start below FirstSeq must bootstrap
// its follower from a snapshot instead.
func (j *Journal) FirstSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.segments) == 0 {
		return j.nextSeq
	}
	return j.segments[0].firstSeq
}

// Poison forces the journal into the permanently-failed append state that
// a disk fault would cause, with cause recorded as the root cause. The
// replication layer uses it to fence a deposed leader: once a node learns
// a higher epoch exists, every local append must fail before it can be
// acknowledged, exactly as if the disk had gone bad ("fsyncgate"
// semantics). Poisoning an already-poisoned journal keeps the original
// cause.
func (j *Journal) Poison(cause error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.poison == nil {
		j.poison = cause
	}
}
