package journal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

// appendN appends payloads p(start)..p(start+n-1) and fails the test on
// any error.
func appendN(t *testing.T, j *Journal, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if _, err := j.Append(payloadFor(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-padding-to-make-it-nontrivial", i))
}

func TestReaderReadsAndTails(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{Sync: SyncOS}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendN(t, j, 0, 10)

	r, err := j.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 10; i++ {
		payload, seq, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Next %d returned seq %d", i, seq)
		}
		if string(payload) != string(payloadFor(i)) {
			t.Fatalf("record %d: got %q", i, payload)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("caught-up reader should return io.EOF, got %v", err)
	}

	// Tail: new appends become readable on the same reader.
	appendN(t, j, 10, 3)
	for i := 10; i < 13; i++ {
		payload, seq, err := r.Next()
		if err != nil {
			t.Fatalf("tail Next %d: %v", i, err)
		}
		if seq != uint64(i) || string(payload) != string(payloadFor(i)) {
			t.Fatalf("tail record %d: seq %d payload %q", i, seq, payload)
		}
	}
	if r.Seq() != 13 {
		t.Fatalf("reader Seq = %d, want 13", r.Seq())
	}
}

func TestReaderCrossesRotatedSegments(t *testing.T) {
	// Tiny segments force several rotations.
	j, _, err := Open(t.TempDir(), Options{Sync: SyncOS, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendN(t, j, 0, 40)
	if j.Segments() < 3 {
		t.Fatalf("test needs several segments, got %d", j.Segments())
	}
	r, err := j.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 40; i++ {
		payload, seq, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if seq != uint64(i) || string(payload) != string(payloadFor(i)) {
			t.Fatalf("record %d: seq %d payload %q", i, seq, payload)
		}
	}
}

func TestReaderFromMidStreamAndAtEnd(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{Sync: SyncOS, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendN(t, j, 0, 20)

	r, err := j.OpenReader(17)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 17; i < 20; i++ {
		_, seq, err := r.Next()
		if err != nil || seq != uint64(i) {
			t.Fatalf("mid-stream Next: seq %d err %v, want %d", seq, err, i)
		}
	}

	// Opening exactly at NextSeq tails from the live end.
	tail, err := j.OpenReader(j.NextSeq())
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, _, err := tail.Next(); err != io.EOF {
		t.Fatalf("reader at NextSeq should be EOF, got %v", err)
	}
	if _, err := j.OpenReader(j.NextSeq() + 1); err == nil {
		t.Fatal("reader beyond NextSeq should be refused")
	}
}

func TestReaderBehindCompactionIsSeqGap(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{Sync: SyncOS, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendN(t, j, 0, 30)
	if _, err := j.CompactThrough(20); err != nil {
		t.Fatal(err)
	}
	if got := j.FirstSeq(); got == 0 {
		t.Fatal("compaction should have advanced FirstSeq past 0")
	}
	if _, err := j.OpenReader(0); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("reader below the compaction horizon: got %v, want ErrSeqGap", err)
	}

	// A reader that was opened in time but fell behind a later compaction
	// also reports the gap instead of inventing records.
	r, err := j.OpenReader(j.FirstSeq())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	appendN(t, j, 30, 10)
	if _, err := j.CompactThrough(j.NextSeq()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("reader overtaken by compaction: got %v, want ErrSeqGap", err)
	}
}

func TestReaderConcurrentWithAppends(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{Sync: SyncOS, SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	const total = 200
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < total; i++ {
			if _, err := j.Append(payloadFor(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	r, err := j.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	read := 0
	for read < total {
		payload, seq, err := r.Next()
		if err == io.EOF {
			select {
			case <-done:
				// Writer finished; one more pass drains the tail.
				if r.Seq() == total {
					read = total
				}
			default:
			}
			continue
		}
		if err != nil {
			t.Fatalf("Next at %d: %v", read, err)
		}
		if seq != uint64(read) || string(payload) != string(payloadFor(read)) {
			t.Fatalf("record %d: seq %d payload %q", read, seq, payload)
		}
		read++
	}
	wg.Wait()
}

func TestPoisonFencesAppends(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendN(t, j, 0, 2)
	cause := errors.New("deposed by epoch 7")
	j.Poison(cause)
	if _, err := j.Append([]byte("late write")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after Poison: got %v, want ErrPoisoned", err)
	}
	if got := j.Poisoned(); !errors.Is(got, cause) {
		t.Fatalf("Poisoned() = %v, want the fencing cause", got)
	}
	// A second Poison must not overwrite the original root cause.
	j.Poison(errors.New("later cause"))
	if got := j.Poisoned(); !errors.Is(got, cause) {
		t.Fatalf("Poisoned() after re-poison = %v, want the original cause", got)
	}
	// Reads keep working on a poisoned journal: a deposed leader can still
	// be inspected, it just cannot acknowledge new writes.
	r, err := j.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, seq, err := r.Next(); err != nil || seq != 0 {
		t.Fatalf("read after Poison: seq %d err %v", seq, err)
	}
}
