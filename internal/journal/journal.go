// Package journal implements the ranking daemon's write-ahead log: a
// directory of rotated, append-only segment files of checksummed,
// length-prefixed records that makes acknowledged vote batches durable
// across crashes — and whose recovery cost is bounded by compaction
// rather than proportional to lifetime ingest.
//
// The paper's setting makes the log load-bearing: a non-interactive round
// spends the whole budget B in one posting, so votes the crowd already
// returned cannot be re-bought. The daemon therefore acknowledges an ingest
// only after its batch is on disk, and recovery replays the log to rebuild
// exactly the acknowledged state.
//
// # On-disk format
//
// A journal is a directory holding segment files named journal.000001,
// journal.000002, ... (indices strictly increase; compaction deletes a
// prefix and never renames). Each segment is:
//
//	8 bytes   magic + version ("CRWDSEG\x01")
//	8 bytes   sequence number of the segment's first record, little-endian
//	repeated records:
//	  4 bytes  payload length, little-endian uint32
//	  4 bytes  CRC32-Castagnoli of the payload, little-endian
//	  N bytes  payload (opaque to this package)
//
// Records carry implicit global sequence numbers 0, 1, 2, ... assigned at
// append time; the per-segment first-sequence header lets recovery resume
// mid-stream after older segments have been compacted away, and lets Open
// detect a gap (missing segment) instead of silently replaying a hole.
//
// The version-1 format — a single "CRWDWAL\x01" file — is migrated in
// place on Open: the file becomes segment 1 of a directory at the same
// path, with its implicit first sequence of 0.
//
// Replay walks segments in index order and records from each header until
// the segment ends. A record that cannot be read in full, claims an
// implausible length, or fails its checksum is a torn tail: the crash
// interrupted an append. Replay stops at the first such record, reports
// it, truncates the segment back to the last valid boundary, and deletes
// any later segments so the damage cannot masquerade as data on later
// opens. Corruption is never silently replayed and never panics — a
// property fuzzed by FuzzJournalReplay in internal/serve.
//
// # Poisoning ("fsyncgate" semantics)
//
// A failed fsync may mean the kernel dropped dirty pages and cleared the
// error: retrying the fsync can succeed while the data is gone. After any
// failed write or sync on the append path, the journal therefore enters a
// permanently poisoned state — every subsequent Append and Sync fails with
// an error matching ErrPoisoned — instead of retrying and lying about
// durability. The daemon surfaces this as a not-ready 503. The Faults seam
// in Options exists to inject exactly these failures under test.
package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdrank/internal/obs"
)

// segMagic identifies a crowdrank journal segment; the final byte is the
// format version. v1Magic is the retired single-file format, still
// accepted (and migrated) on Open.
var (
	segMagic = []byte("CRWDSEG\x01")
	v1Magic  = []byte("CRWDWAL\x01")
)

// segHeaderSize is the segment prefix: 8-byte magic + 8-byte first
// sequence number. v1HeaderSize is the old single-file prefix (magic
// only; its first sequence is implicitly 0).
const (
	segHeaderSize = 16
	v1HeaderSize  = 8
)

// recordHeaderSize is the per-record prefix: 4-byte length + 4-byte CRC.
const recordHeaderSize = 8

// segPrefix names segment files inside the journal directory.
const segPrefix = "journal."

// DefaultMaxRecord caps a single record's payload. A length prefix beyond
// it is treated as corruption, bounding the allocation a torn or hostile
// file can force during replay.
const DefaultMaxRecord = 16 << 20

// DefaultSegmentBytes is the rotation threshold: once the active segment
// reaches it, the next append seals it and starts a fresh segment.
const DefaultSegmentBytes = 64 << 20

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrPoisoned marks a journal that has seen a failed write or fsync on its
// append path. Durability can no longer be promised (the kernel may have
// dropped the dirty pages that failed to sync), so every subsequent Append
// and Sync fails with an error matching this sentinel.
var ErrPoisoned = errors.New("journal poisoned by a prior disk fault")

// ErrSeqGap marks an Open that found the on-disk segments starting after
// the requested replay position: records in between are gone (compacted or
// deleted), so the caller's state cannot be rebuilt from this journal
// alone.
var ErrSeqGap = errors.New("journal segments do not cover the requested replay position")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives power loss. The default, and what the daemon uses before
	// acking an ingest.
	SyncAlways SyncPolicy = iota
	// SyncOS leaves flushing to the OS page cache: records survive a
	// process crash (SIGKILL) but not power loss. Sync can still be called
	// explicitly; Close always syncs.
	SyncOS
)

// String names the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOS:
		return "os"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Faults is the fault-injection seam: when non-nil hooks are installed,
// they run in place of (Write) or before (Sync) the real syscall on the
// append path. Production code leaves this nil; the chaos and poisoning
// tests use it to simulate short writes and fsync failures without
// needing a faulty disk.
type Faults struct {
	// Write, when non-nil, is consulted before each segment data write.
	// It returns how many prefix bytes of buf actually reach the file and
	// an error; (len(buf), nil) behaves like a healthy disk. A short
	// count with a non-nil error simulates a torn write that the kernel
	// surfaced.
	Write func(buf []byte) (int, error)
	// Sync, when non-nil, is consulted before each fsync of segment data;
	// a non-nil error simulates a failed fsync (and the real fsync is
	// skipped — after a sync failure the page state is unknowable).
	Sync func() error
}

// Options tunes Open. The zero value is usable: fsync on every append,
// the default record-size cap, and the default segment size.
type Options struct {
	// Sync selects the append durability policy.
	Sync SyncPolicy
	// MaxRecord caps a single payload's size; 0 means DefaultMaxRecord.
	MaxRecord int
	// SegmentBytes is the rotation threshold; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// ReplayFrom skips records with sequence numbers below it during
	// Open's replay (they are covered by a snapshot the caller already
	// loaded). Open fails with ErrSeqGap if the surviving segments start
	// after ReplayFrom.
	ReplayFrom uint64
	// Faults injects write/sync failures for tests; nil means a healthy
	// disk.
	Faults *Faults
	// Metrics receives append/fsync latency and segment lifecycle counts.
	// The zero value disables collection: every handle in Metrics is
	// nil-safe, so unwired journals pay only a nil check.
	Metrics Metrics
}

// Metrics is the journal's observability hook: the owner (internal/serve)
// registers these on its registry and passes them in via Options. All
// fields are optional — nil obs handles discard observations.
type Metrics struct {
	// AppendSeconds observes the full latency of each successful Append,
	// including the fsync under SyncAlways.
	AppendSeconds *obs.Histogram
	// FsyncSeconds observes every successful fsync of segment data
	// (per-append syncs, seals before rotation, explicit Sync calls).
	FsyncSeconds *obs.Histogram
	// Appends counts successful appends; Rotations sealed segments;
	// SegmentsCompacted segment files deleted by CompactThrough.
	Appends           *obs.Counter
	Rotations         *obs.Counter
	SegmentsCompacted *obs.Counter
}

func (o Options) maxRecord() int {
	if o.MaxRecord <= 0 {
		return DefaultMaxRecord
	}
	return o.MaxRecord
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// ReplayStats describes what Open found in an existing journal.
type ReplayStats struct {
	// Records is the number of valid records replayed through the
	// callback; SkippedRecords counts valid records below ReplayFrom that
	// were scanned but not replayed (a snapshot already covers them).
	Records        int
	SkippedRecords int
	// Segments is the number of live segment files scanned.
	Segments int
	// FirstSeq is the sequence number of the first record still on disk;
	// NextSeq is the sequence the next append will get. NextSeq-FirstSeq
	// is the number of live records.
	FirstSeq uint64
	NextSeq  uint64
	// TruncatedBytes counts bytes cut from a torn or corrupt tail
	// (including whole later segments dropped after a corrupt record);
	// 0 means every segment ended exactly on a record boundary.
	TruncatedBytes int64
	// DroppedSegments counts segment files deleted because they followed
	// a corrupt record.
	DroppedSegments int
	// TailError describes why the tail was rejected; empty when the
	// journal was clean.
	TailError string
}

// Truncated reports whether Open had to cut a damaged tail.
func (s ReplayStats) Truncated() bool { return s.TruncatedBytes > 0 }

// String summarizes the replay for startup logs. The zero value reads
// "replayed 0 records from 0 segments (clean)".
func (s ReplayStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d records from %d segments", s.Records, s.Segments)
	if s.SkippedRecords > 0 {
		fmt.Fprintf(&b, " (skipped %d snapshot-covered)", s.SkippedRecords)
	}
	if s.Truncated() {
		fmt.Fprintf(&b, ", truncated %d bytes", s.TruncatedBytes)
		if s.DroppedSegments > 0 {
			fmt.Fprintf(&b, " and dropped %d segments", s.DroppedSegments)
		}
		fmt.Fprintf(&b, ": %s", s.TailError)
	} else {
		b.WriteString(" (clean)")
	}
	return b.String()
}

// segment is one live segment file's metadata. Only the last segment is
// open for appends; earlier ones are sealed and immutable.
type segment struct {
	index    uint64 // numeric filename suffix
	path     string
	firstSeq uint64
	records  int
	size     int64
}

// covered reports whether every record in the segment is below seq.
func (s segment) covered(seq uint64) bool {
	return s.firstSeq+uint64(s.records) <= seq
}

// Journal is an open write-ahead log. Append is safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	dir      string
	dirFile  *os.File // held open for directory fsyncs
	opts     Options
	segments []segment // ascending by index; last is active
	active   *os.File
	nextSeq  uint64
	size     int64 // total bytes across live segments
	poison   error // root cause; non-nil once poisoned
	closed   bool
}

// Open opens or creates the journal directory at dir, replays every valid
// record at or past opts.ReplayFrom through fn (which may be nil),
// truncates any torn tail, and leaves the journal positioned for appends.
// The returned stats describe the replay even when fn is nil.
//
// A version-1 single-file journal at dir is migrated into the directory
// format first. A directory that is not writable is refused up front —
// the daemon must fail at startup, not on its first ingest. A non-nil
// error from fn aborts the open with that error and leaves the files
// untouched. A segment that does not start with a journal magic is
// refused outright — it is some other file, not a torn journal.
func Open(dir string, opts Options, fn func(payload []byte) error) (*Journal, ReplayStats, error) {
	var stats ReplayStats
	if err := migrateV1(dir); err != nil {
		return nil, stats, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("journal: creating directory %s: %w", dir, err)
	}
	if err := probeWritable(dir); err != nil {
		return nil, stats, err
	}
	dirFile, err := os.Open(dir)
	if err != nil {
		return nil, stats, fmt.Errorf("journal: opening directory %s: %w", dir, err)
	}
	j := &Journal{dir: dir, dirFile: dirFile, opts: opts}
	stats, err = j.scanSegments(fn)
	if err != nil {
		//lint:ignore errcheck error-path cleanup of a read-only directory handle; the scan error is already being returned
		_ = dirFile.Close()
		return nil, stats, err
	}
	if err := j.openActive(&stats); err != nil {
		//lint:ignore errcheck error-path cleanup of a read-only directory handle; the open error is already being returned
		_ = dirFile.Close()
		return nil, stats, err
	}
	stats.NextSeq = j.nextSeq
	return j, stats, nil
}

// migrateV1 converts a version-1 single-file journal at path into the
// directory format: the file becomes <path>/journal.000001. The dance is
// crash-safe: a crash between the renames leaves a <path>.v1migrate file
// that the next Open resumes from.
func migrateV1(path string) error {
	staging := path + ".v1migrate"
	if info, err := os.Stat(path); err == nil && info.Mode().IsRegular() {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("journal: inspecting %s: %w", path, err)
		}
		header := make([]byte, v1HeaderSize)
		_, readErr := io.ReadFull(f, header)
		//lint:ignore errcheck the file was only read; a close error cannot lose data and the header verdict stands either way
		_ = f.Close()
		if readErr != nil || string(header) != string(v1Magic) {
			return fmt.Errorf("journal: %s is a file but not a v1 journal; refusing to replace it", path)
		}
		if err := os.Rename(path, staging); err != nil {
			return fmt.Errorf("journal: staging v1 migration: %w", err)
		}
	}
	if _, err := os.Stat(staging); err != nil {
		return nil // no migration pending
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fmt.Errorf("journal: creating directory for v1 migration: %w", err)
	}
	if err := os.Rename(staging, filepath.Join(path, segName(1))); err != nil {
		return fmt.Errorf("journal: completing v1 migration: %w", err)
	}
	return syncDirOnce(path)
}

// probeWritable proves the journal directory accepts file creation now,
// so a read-only volume fails the daemon at startup instead of on the
// first acknowledged ingest.
func probeWritable(dir string) error {
	probe := filepath.Join(dir, ".probe.tmp")
	f, err := os.OpenFile(probe, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: directory %s is not writable: %w", dir, err)
	}
	_, writeErr := f.Write([]byte{1})
	closeErr := f.Close()
	removeErr := os.Remove(probe)
	if writeErr != nil {
		return fmt.Errorf("journal: directory %s is not writable: %w", dir, writeErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: directory %s probe close: %w", dir, closeErr)
	}
	if removeErr != nil {
		return fmt.Errorf("journal: directory %s probe cleanup: %w", dir, removeErr)
	}
	return nil
}

// segName formats a segment filename for index.
func segName(index uint64) string {
	return fmt.Sprintf("%s%06d", segPrefix, index)
}

// listSegments returns the segment files under dir, ascending by index.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading directory %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimPrefix(name, segPrefix), 10, 64)
		if err != nil {
			continue // not a segment (e.g. a stray journal.tmp)
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("journal: stat %s: %w", name, err)
		}
		segs = append(segs, segment{index: idx, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].index < segs[b].index })
	return segs, nil
}

// scanSegments replays every live segment in order, truncating the first
// damaged record and deleting everything after it. It populates
// j.segments, j.nextSeq, and j.size.
func (j *Journal) scanSegments(fn func([]byte) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(j.dir)
	if err != nil {
		return stats, err
	}
	expect := uint64(0) // next segment must start here; first segment sets it
	damaged := -1       // index into segs of the first damaged segment
	for i := range segs {
		seg := &segs[i]
		res, err := scanSegment(seg.path, seg.size, j.opts.maxRecord(), i == 0, expect, j.opts.ReplayFrom, fn)
		if err != nil {
			return stats, err
		}
		if i == 0 {
			stats.FirstSeq = res.firstSeq
			if j.opts.ReplayFrom < res.firstSeq {
				return stats, fmt.Errorf("journal: %s starts at seq %d, replay needs seq %d: %w",
					seg.path, res.firstSeq, j.opts.ReplayFrom, ErrSeqGap)
			}
		}
		seg.firstSeq = res.firstSeq
		seg.records = res.records
		stats.Records += res.replayed
		stats.SkippedRecords += res.skipped
		stats.Segments++
		expect = res.firstSeq + uint64(res.records)
		if res.tailError != "" {
			stats.TailError = fmt.Sprintf("%s: %s", filepath.Base(seg.path), res.tailError)
			stats.TruncatedBytes += seg.size - res.validBytes
			if err := truncateSegment(seg, res.validBytes); err != nil {
				return stats, err
			}
			damaged = i
			break
		}
	}
	if damaged >= 0 {
		// Records past a damaged one cannot be trusted to be the ones that
		// were acknowledged; drop the later segments and report every byte.
		for _, seg := range segs[damaged+1:] {
			stats.TruncatedBytes += seg.size
			stats.DroppedSegments++
			if err := os.Remove(seg.path); err != nil {
				return stats, fmt.Errorf("journal: dropping post-corruption segment %s: %w", seg.path, err)
			}
		}
		segs = segs[:damaged+1]
		if err := j.syncDir(); err != nil {
			return stats, err
		}
	}
	// A fully-truncated trailing segment (a crash landed between creating
	// the file and completing its header, and repair removed it) holds no
	// records; drop it from the live set so the previous segment becomes
	// active again. The file itself is already gone — truncateSegment
	// removes a segment with no valid prefix — so only tolerate
	// already-removed paths here.
	for len(segs) > 1 {
		last := segs[len(segs)-1]
		if last.records > 0 || last.size > 0 {
			break
		}
		if err := os.Remove(last.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return stats, fmt.Errorf("journal: removing empty trailing segment %s: %w", last.path, err)
		}
		stats.Segments--
		segs = segs[:len(segs)-1]
	}
	j.segments = segs
	j.nextSeq = expect
	for _, s := range segs {
		j.size += s.size
	}
	if len(segs) == 0 {
		j.nextSeq = j.opts.ReplayFrom
		stats.FirstSeq = j.opts.ReplayFrom
	}
	return stats, nil
}

// segScan is the per-segment result of scanSegment.
type segScan struct {
	firstSeq   uint64
	records    int
	replayed   int
	skipped    int
	validBytes int64
	tailError  string
}

// scanSegment validates one segment's header and walks its records,
// invoking fn on each valid payload at or past replayFrom. first marks
// the journal's first live segment (the only place a v1 header or an
// unconstrained firstSeq is legal); expect is the sequence the segment
// must start at otherwise.
func scanSegment(path string, size int64, maxRecord int, first bool, expect, replayFrom uint64, fn func([]byte) error) (segScan, error) {
	var res segScan
	f, err := os.Open(path)
	if err != nil {
		return res, fmt.Errorf("journal: open segment %s: %w", path, err)
	}
	//lint:ignore errcheck the segment is only read during the scan; a close error cannot lose data
	defer func() { _ = f.Close() }()

	header := make([]byte, segHeaderSize)
	n, err := io.ReadFull(f, header)
	got := header[:n]
	// A header prefix torn mid-write (a crash while creating the segment)
	// is repairable damage; anything else in the first segment means this
	// is not a journal at all and must be refused, never "repaired".
	torn := n < segHeaderSize && (bytes.HasPrefix(segMagic, got) ||
		(n > v1HeaderSize && string(got[:v1HeaderSize]) == string(segMagic)))
	switch {
	case n >= v1HeaderSize && string(got[:v1HeaderSize]) == string(v1Magic):
		// v1 segment: magic only, records start right after. Only ever
		// produced by migration, so it is segment 1 and starts at seq 0.
		if !first {
			res.firstSeq = expect
			res.tailError = "v1 header in a non-first segment"
			return res, nil
		}
		res.firstSeq = 0
		res.validBytes = v1HeaderSize
		if _, err := f.Seek(v1HeaderSize, io.SeekStart); err != nil {
			return res, fmt.Errorf("journal: seek %s: %w", path, err)
		}
	case err == nil && string(got[:v1HeaderSize]) == string(segMagic):
		res.firstSeq = binary.LittleEndian.Uint64(got[v1HeaderSize:])
		res.validBytes = segHeaderSize
		if !first && res.firstSeq != expect {
			res.tailError = fmt.Sprintf("segment starts at seq %d, expected %d", res.firstSeq, expect)
			res.firstSeq = expect
			res.validBytes = 0
			return res, nil
		}
	case first && size > 0 && !torn:
		return res, fmt.Errorf("journal: %s has no journal magic: not a crowdrank journal", path)
	default:
		// A short or foreign header on a later segment — or a torn header
		// anywhere — is a crash mid-rotation: no records exist yet, so the
		// file is removed and recreated rather than replayed.
		res.firstSeq = expect
		res.validBytes = 0
		res.tailError = fmt.Sprintf("short or foreign segment header (%d bytes)", n)
		return res, nil
	}

	offset := res.validBytes
	hdr := make([]byte, recordHeaderSize)
	for {
		n, err := io.ReadFull(f, hdr)
		if err == io.EOF {
			break // clean end on a record boundary
		}
		if err != nil {
			res.tailError = fmt.Sprintf("truncated record header at offset %d (%d of %d bytes)", offset, n, recordHeaderSize)
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || int64(length) > int64(maxRecord) {
			res.tailError = fmt.Sprintf("implausible record length %d at offset %d (max %d)", length, offset, maxRecord)
			break
		}
		if offset+recordHeaderSize+int64(length) > size {
			res.tailError = fmt.Sprintf("truncated record payload at offset %d (%d bytes promised, %d in file)",
				offset, length, size-offset-recordHeaderSize)
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			res.tailError = fmt.Sprintf("short read of record payload at offset %d: %v", offset, err)
			break
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			res.tailError = fmt.Sprintf("checksum mismatch at offset %d: recorded %08x, computed %08x", offset, want, got)
			break
		}
		seq := res.firstSeq + uint64(res.records)
		if seq < replayFrom {
			res.skipped++
		} else if fn != nil {
			if err := fn(payload); err != nil {
				return res, fmt.Errorf("journal: replay callback at seq %d: %w", seq, err)
			}
			res.replayed++
		} else {
			res.replayed++
		}
		res.records++
		offset += recordHeaderSize + int64(length)
		res.validBytes = offset
	}
	if res.tailError == "" && offset < size {
		res.tailError = "trailing bytes past the last valid record"
	}
	return res, nil
}

// truncateSegment persists a torn-tail repair: the file is cut back to
// the last valid boundary (or removed outright when nothing valid
// remains, e.g. a torn rotation) and the change is fsynced.
func truncateSegment(seg *segment, validBytes int64) error {
	if validBytes <= 0 {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("journal: removing torn segment %s: %w", seg.path, err)
		}
		seg.size = 0
		return nil
	}
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("journal: reopening %s for truncation: %w", seg.path, err)
	}
	truncErr := f.Truncate(validBytes)
	syncErr := f.Sync()
	closeErr := f.Close()
	if truncErr != nil {
		return fmt.Errorf("journal: truncating torn tail of %s: %w", seg.path, truncErr)
	}
	if syncErr != nil {
		return fmt.Errorf("journal: syncing after truncation of %s: %w", seg.path, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: closing %s after truncation: %w", seg.path, closeErr)
	}
	seg.size = validBytes
	return nil
}

// openActive positions the journal for appends: it opens the last
// segment, or creates segment 1 (first seq = ReplayFrom) when the
// directory holds none. A torn last segment whose repair removed the file
// is recreated fresh.
func (j *Journal) openActive(stats *ReplayStats) error {
	if len(j.segments) == 0 {
		if err := j.createSegment(1, j.nextSeq); err != nil {
			return err
		}
		stats.Segments = 1
		return nil
	}
	last := j.segments[len(j.segments)-1]
	if last.size == 0 {
		// Repair removed the torn file; recreate it with the right header.
		j.segments = j.segments[:len(j.segments)-1]
		return j.createSegment(last.index, j.nextSeq)
	}
	f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("journal: opening active segment %s: %w", last.path, err)
	}
	if _, err := f.Seek(last.size, io.SeekStart); err != nil {
		//lint:ignore errcheck error-path cleanup: nothing was written and the seek error is already being returned
		_ = f.Close()
		return fmt.Errorf("journal: seeking to append position in %s: %w", last.path, err)
	}
	j.active = f
	return nil
}

// createSegment writes and persists a fresh segment file and makes it the
// active one. Callers must hold j.mu (or be in Open, before the journal
// escapes).
func (j *Journal) createSegment(index, firstSeq uint64) error {
	path := filepath.Join(j.dir, segName(index))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating segment %s: %w", path, err)
	}
	header := make([]byte, segHeaderSize)
	copy(header, segMagic)
	binary.LittleEndian.PutUint64(header[v1HeaderSize:], firstSeq)
	if _, err := f.Write(header); err != nil {
		//lint:ignore errcheck error-path cleanup: the segment is abandoned and the write error is already being returned
		_ = f.Close()
		return fmt.Errorf("journal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errcheck error-path cleanup: the segment is abandoned and the sync error is already being returned
		_ = f.Close()
		return fmt.Errorf("journal: syncing segment header: %w", err)
	}
	if err := j.syncDir(); err != nil {
		//lint:ignore errcheck error-path cleanup: the segment is abandoned and the dir-sync error is already being returned
		_ = f.Close()
		return err
	}
	j.active = f
	j.segments = append(j.segments, segment{index: index, path: path, firstSeq: firstSeq, size: segHeaderSize})
	j.size += segHeaderSize
	return nil
}

// syncDir fsyncs the journal directory so file creations and deletions
// are themselves durable.
func (j *Journal) syncDir() error {
	if err := j.dirFile.Sync(); err != nil {
		return fmt.Errorf("journal: syncing directory %s: %w", j.dir, err)
	}
	return nil
}

// syncDirOnce fsyncs dir through a throwaway handle (for paths taken
// before a Journal exists, like migration).
func syncDirOnce(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: opening %s to sync: %w", dir, err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: syncing directory %s: %w", dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: closing directory %s: %w", dir, closeErr)
	}
	return nil
}

// poisonLocked records the journal's first disk fault; all later appends
// and syncs fail with ErrPoisoned. Callers must hold j.mu.
func (j *Journal) poisonLocked(op string, cause error) error {
	if j.poison == nil {
		j.poison = fmt.Errorf("%s: %w", op, cause)
	}
	return fmt.Errorf("journal: %s: %w (%w)", op, cause, ErrPoisoned)
}

// writeActive writes buf to the active segment through the fault seam.
// Any failure — including a short write, whose torn bytes the seam still
// lands on disk to mimic a real partial write — poisons the journal.
func (j *Journal) writeActive(buf []byte) error {
	if f := j.opts.Faults; f != nil && f.Write != nil {
		n, err := f.Write(buf)
		if err != nil {
			if n > 0 && n <= len(buf) {
				_, _ = j.active.Write(buf[:n])
				j.size += int64(n)
				j.segments[len(j.segments)-1].size += int64(n)
			}
			return j.poisonLocked("append write", err)
		}
		if n < len(buf) {
			_, _ = j.active.Write(buf[:n])
			j.size += int64(n)
			j.segments[len(j.segments)-1].size += int64(n)
			return j.poisonLocked("append write", fmt.Errorf("short write (%d of %d bytes)", n, len(buf)))
		}
	}
	n, err := j.active.Write(buf)
	j.size += int64(n)
	j.segments[len(j.segments)-1].size += int64(n)
	if err != nil {
		return j.poisonLocked("append write", err)
	}
	return nil
}

// syncActive fsyncs the active segment through the fault seam. A failure
// poisons the journal: a failed fsync may have silently dropped the dirty
// pages, so retrying and acknowledging would lie about durability.
func (j *Journal) syncActive(op string) error {
	if f := j.opts.Faults; f != nil && f.Sync != nil {
		if err := f.Sync(); err != nil {
			return j.poisonLocked(op, err)
		}
	}
	start := time.Now()
	if err := j.active.Sync(); err != nil {
		return j.poisonLocked(op, err)
	}
	j.opts.Metrics.FsyncSeconds.ObserveDuration(time.Since(start))
	return nil
}

// Append writes one record and, under SyncAlways, fsyncs before
// returning; a nil error means the payload is durable and may be
// acknowledged, and seq is the record's global sequence number. Once the
// journal is poisoned by a disk fault every Append fails with
// ErrPoisoned.
func (j *Journal) Append(payload []byte) (seq uint64, err error) {
	start := time.Now()
	defer func() {
		if err == nil {
			j.opts.Metrics.Appends.Inc()
			j.opts.Metrics.AppendSeconds.ObserveDuration(time.Since(start))
		}
	}()
	if len(payload) == 0 {
		return 0, fmt.Errorf("journal: refusing empty payload")
	}
	if len(payload) > j.opts.maxRecord() {
		return 0, fmt.Errorf("journal: payload of %d bytes exceeds record cap %d", len(payload), j.opts.maxRecord())
	}
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[recordHeaderSize:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("journal: append to closed journal %s", j.dir)
	}
	if j.poison != nil {
		return 0, fmt.Errorf("journal: append refused: %w (%w)", ErrPoisoned, j.poison)
	}
	//lint:ignore lockcheck durable-before-ack: the write and fsync must complete under j.mu so record order equals lock order and a sequence number is never handed out for an unsynced record
	if err := j.maybeRotateLocked(); err != nil {
		return 0, err
	}
	if err := j.writeActive(buf); err != nil {
		return 0, err
	}
	j.segments[len(j.segments)-1].records++
	seq = j.nextSeq
	j.nextSeq++
	if j.opts.Sync == SyncAlways {
		if err := j.syncActive("fsync after append"); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// maybeRotateLocked seals the active segment and starts a fresh one when
// the active segment has reached the rotation threshold. The sealed
// segment is always fsynced (regardless of policy) so compaction and
// recovery can trust sealed segments under SyncOS too.
func (j *Journal) maybeRotateLocked() error {
	cur := j.segments[len(j.segments)-1]
	if cur.size < j.opts.segmentBytes() || cur.records == 0 {
		return nil
	}
	return j.rotateLocked()
}

// rotateLocked seals the active segment and opens the next one.
func (j *Journal) rotateLocked() error {
	if err := j.syncActive("fsync sealing segment"); err != nil {
		return err
	}
	if err := j.active.Close(); err != nil {
		return j.poisonLocked("closing sealed segment", err)
	}
	j.active = nil
	next := j.segments[len(j.segments)-1].index + 1
	if err := j.createSegment(next, j.nextSeq); err != nil {
		// Failing to open the next segment is an append-path disk fault:
		// the journal has no file to write to.
		return j.poisonLocked("rotating segment", err)
	}
	j.opts.Metrics.Rotations.Inc()
	return nil
}

// CompactThrough deletes every sealed segment whose records all fall
// below seq — typically the sequence a snapshot just covered. When seq
// covers the active segment too, the journal rotates first so the sealed
// file can go; recovery then starts from an (almost) empty journal plus
// the snapshot. It returns the number of segment files deleted.
func (j *Journal) CompactThrough(seq uint64) (deleted int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("journal: compacting closed journal %s", j.dir)
	}
	if j.poison != nil {
		return 0, fmt.Errorf("journal: compaction refused: %w (%w)", ErrPoisoned, j.poison)
	}
	if seq > j.nextSeq {
		seq = j.nextSeq
	}
	if last := j.segments[len(j.segments)-1]; last.covered(seq) && last.records > 0 {
		//lint:ignore lockcheck compaction must rotate and delete under j.mu so concurrent appends never land in a segment being removed; the daemon serializes compaction behind snapshots anyway
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	// Delete oldest-first so a crash mid-compaction always leaves a
	// contiguous suffix of segments on disk.
	for len(j.segments) > 1 && j.segments[0].covered(seq) {
		victim := j.segments[0]
		if err := os.Remove(victim.path); err != nil {
			return deleted, fmt.Errorf("journal: deleting compacted segment %s: %w", victim.path, err)
		}
		j.size -= victim.size
		j.segments = j.segments[1:]
		deleted++
	}
	if deleted > 0 {
		if err := j.syncDir(); err != nil {
			return deleted, err
		}
		j.opts.Metrics.SegmentsCompacted.Add(uint64(deleted))
	}
	return deleted, nil
}

// Sync forces buffered appends to stable storage regardless of policy.
// Like Append, it fails with ErrPoisoned once the journal has seen a disk
// fault — retrying a failed fsync cannot resurrect dropped pages.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: sync of closed journal %s", j.dir)
	}
	if j.poison != nil {
		return fmt.Errorf("journal: sync refused: %w (%w)", ErrPoisoned, j.poison)
	}
	//lint:ignore lockcheck the fsync must run under j.mu so a concurrent append cannot slip between the write and the sync it relies on
	return j.syncActive("fsync")
}

// Close syncs and closes the journal. Further appends fail. Close is
// idempotent. A poisoned journal closes without the final sync — the
// fault was already reported on the operation that hit it, and a retry
// could only lie.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var syncErr error
	if j.poison == nil && j.active != nil {
		//lint:ignore lockcheck the final fsync runs under j.mu so Close linearizes with in-flight appends; after it, closed=true makes them fail fast
		syncErr = j.syncActive("final sync")
	}
	var closeErr error
	if j.active != nil {
		closeErr = j.active.Close()
		j.active = nil
	}
	dirErr := j.dirFile.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: final sync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: close: %w", closeErr)
	}
	if dirErr != nil {
		return fmt.Errorf("journal: closing directory handle: %w", dirErr)
	}
	return nil
}

// Poisoned returns the root-cause disk fault that poisoned the journal,
// or nil while it is healthy.
func (j *Journal) Poisoned() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.poison
}

// Dir returns the journal's directory path.
func (j *Journal) Dir() string { return j.dir }

// Size returns the total bytes across live segments (headers included).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Segments returns the number of live segment files.
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.segments)
}

// NextSeq returns the sequence number the next appended record will get —
// equivalently, the number of records ever appended to this journal.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}
