// Package journal implements the ranking daemon's write-ahead log: an
// append-only file of checksummed, length-prefixed records that makes
// acknowledged vote batches durable across crashes.
//
// The paper's setting makes the log load-bearing: a non-interactive round
// spends the whole budget B in one posting, so votes the crowd already
// returned cannot be re-bought. The daemon therefore acknowledges an ingest
// only after its batch is on disk, and recovery replays the log to rebuild
// exactly the acknowledged state.
//
// # On-disk format
//
//	8 bytes   magic + version ("CRWDWAL\x01")
//	repeated records:
//	  4 bytes  payload length, little-endian uint32
//	  4 bytes  CRC32-Castagnoli of the payload, little-endian
//	  N bytes  payload (opaque to this package)
//
// Replay walks records from the header until the file ends. A record that
// cannot be read in full, claims an implausible length, or fails its
// checksum is a torn tail: the crash interrupted an append. Replay stops at
// the first such record, reports it, and truncates the file back to the
// last valid boundary so the damage cannot masquerade as data on later
// opens. Corruption is never silently replayed and never panics — a
// property fuzzed by FuzzJournalReplay in internal/serve.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// fileMagic identifies a crowdrank journal; the final byte is the format
// version.
var fileMagic = []byte("CRWDWAL\x01")

// headerSize is the length of the file magic.
const headerSize = 8

// recordHeaderSize is the per-record prefix: 4-byte length + 4-byte CRC.
const recordHeaderSize = 8

// DefaultMaxRecord caps a single record's payload. A length prefix beyond
// it is treated as corruption, bounding the allocation a torn or hostile
// file can force during replay.
const DefaultMaxRecord = 16 << 20

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives power loss. The default, and what the daemon uses before
	// acking an ingest.
	SyncAlways SyncPolicy = iota
	// SyncOS leaves flushing to the OS page cache: records survive a
	// process crash (SIGKILL) but not power loss. Sync can still be called
	// explicitly; Close always syncs.
	SyncOS
)

// String names the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOS:
		return "os"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options tunes Open. The zero value is usable: fsync on every append and
// the default record-size cap.
type Options struct {
	// Sync selects the append durability policy.
	Sync SyncPolicy
	// MaxRecord caps a single payload's size; 0 means DefaultMaxRecord.
	MaxRecord int
}

func (o Options) maxRecord() int {
	if o.MaxRecord <= 0 {
		return DefaultMaxRecord
	}
	return o.MaxRecord
}

// ReplayStats describes what Open found in an existing journal.
type ReplayStats struct {
	// Records is the number of valid records replayed.
	Records int
	// ValidBytes is the file offset of the last valid record boundary
	// (header included).
	ValidBytes int64
	// TruncatedBytes counts bytes cut from a torn or corrupt tail; 0 means
	// the file ended exactly on a record boundary.
	TruncatedBytes int64
	// TailError describes why the tail was rejected; empty when the file
	// was clean.
	TailError string
}

// Truncated reports whether Open had to cut a damaged tail.
func (s ReplayStats) Truncated() bool { return s.TruncatedBytes > 0 }

// Journal is an open write-ahead log. Append is safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	opts   Options
	size   int64
	closed bool
}

// Open opens or creates the journal at path, replays every valid record
// through fn (which may be nil), truncates any torn tail, and leaves the
// journal positioned for appends. The returned stats describe the replay
// even when fn is nil.
//
// A non-nil error from fn aborts the open with that error and leaves the
// file untouched. A file that exists but does not start with the journal
// magic is refused outright — it is some other file, not a torn journal.
func Open(path string, opts Options, fn func(payload []byte) error) (*Journal, ReplayStats, error) {
	var stats ReplayStats
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("journal: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, stats, fmt.Errorf("journal: stat %s: %w", path, err)
	}

	if info.Size() == 0 {
		// Fresh journal: write and persist the header before any append.
		if _, err := f.Write(fileMagic); err != nil {
			_ = f.Close()
			return nil, stats, fmt.Errorf("journal: writing header: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, stats, fmt.Errorf("journal: syncing header: %w", err)
		}
		stats.ValidBytes = headerSize
		return &Journal{f: f, path: path, opts: opts, size: headerSize}, stats, nil
	}

	stats, err = scan(f, info.Size(), opts.maxRecord(), fn)
	if err != nil {
		_ = f.Close()
		return nil, stats, err
	}
	if stats.Truncated() {
		if err := f.Truncate(stats.ValidBytes); err != nil {
			_ = f.Close()
			return nil, stats, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, stats, fmt.Errorf("journal: syncing after truncation: %w", err)
		}
	}
	if _, err := f.Seek(stats.ValidBytes, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, stats, fmt.Errorf("journal: seeking to append position: %w", err)
	}
	return &Journal{f: f, path: path, opts: opts, size: stats.ValidBytes}, stats, nil
}

// scan validates the header and walks records, invoking fn on each valid
// payload. It distinguishes torn tails (reported in stats, not an error)
// from unusable files and callback failures (errors).
func scan(r io.ReadSeeker, size int64, maxRecord int, fn func([]byte) error) (ReplayStats, error) {
	var stats ReplayStats
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return stats, fmt.Errorf("journal: seek: %w", err)
	}
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return stats, fmt.Errorf("journal: file too short for header (%d bytes): not a journal", size)
	}
	if string(header) != string(fileMagic) {
		return stats, fmt.Errorf("journal: bad magic %q: not a crowdrank journal", header)
	}

	offset := int64(headerSize)
	stats.ValidBytes = offset
	hdr := make([]byte, recordHeaderSize)
	for {
		n, err := io.ReadFull(r, hdr)
		if err == io.EOF {
			break // clean end on a record boundary
		}
		if err != nil {
			stats.TailError = fmt.Sprintf("truncated record header at offset %d (%d of %d bytes)", offset, n, recordHeaderSize)
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || int64(length) > int64(maxRecord) {
			stats.TailError = fmt.Sprintf("implausible record length %d at offset %d (max %d)", length, offset, maxRecord)
			break
		}
		if offset+recordHeaderSize+int64(length) > size {
			stats.TailError = fmt.Sprintf("truncated record payload at offset %d (%d bytes promised, %d in file)",
				offset, length, size-offset-recordHeaderSize)
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			stats.TailError = fmt.Sprintf("short read of record payload at offset %d: %v", offset, err)
			break
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			stats.TailError = fmt.Sprintf("checksum mismatch at offset %d: recorded %08x, computed %08x", offset, want, got)
			break
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return stats, fmt.Errorf("journal: replay callback at record %d: %w", stats.Records, err)
			}
		}
		stats.Records++
		offset += recordHeaderSize + int64(length)
		stats.ValidBytes = offset
	}
	stats.TruncatedBytes = size - stats.ValidBytes
	if stats.TruncatedBytes > 0 && stats.TailError == "" {
		stats.TailError = "trailing bytes past the last valid record"
	}
	return stats, nil
}

// Append writes one record and, under SyncAlways, fsyncs before returning,
// so a nil error means the payload is durable and may be acknowledged.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("journal: refusing empty payload")
	}
	if len(payload) > j.opts.maxRecord() {
		return fmt.Errorf("journal: payload of %d bytes exceeds record cap %d", len(payload), j.opts.maxRecord())
	}
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[recordHeaderSize:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: append to closed journal %s", j.path)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(buf))
	if j.opts.Sync == SyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync after append: %w", err)
		}
	}
	return nil
}

// Sync forces buffered appends to stable storage regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: sync of closed journal %s", j.path)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Close syncs and closes the journal. Further appends fail. Close is
// idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: final sync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: close: %w", closeErr)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size returns the current file size in bytes (header included).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}
