package lint

// ackflow: the paper-level durability invariant as a dataflow check. The
// crowdsourcing budget is spent in a single non-interactive round, so a vote
// batch the daemon acknowledges must already be durable — an ack that races a
// crash loses paid, irreplaceable comparisons. The rule names ingest entry
// points (sources), acknowledgement sites (sinks), and the durability barrier
// (journal append + sync); the check walks every call path from each source
// as a may-analysis — a live branch counts as "passed the barrier" if the
// barrier is reachable on it, and branches that return are excluded from the
// merge — and reports any sink reachable with the barrier still unpassed.
// Same-package callees are inlined (memoized on the incoming barrier state);
// function literals and cross-package callees other than the barrier itself
// are treated as opaque.
//
// Everything is matched by name so the check survives refactors — and so a
// refactor that renames a configured function cannot silently disarm the
// check: a source or sink name that no longer resolves is itself a finding.

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// AckflowRule configures one durability dataflow check, evaluated in the
// package named by Pkg.
type AckflowRule struct {
	// Pkg is the import path of the package holding the sources and sinks.
	Pkg string
	// Sources are entry points, named "Func" or "Recv.Method", resolved in
	// Pkg. Every source must exist, or the rule reports a staleness finding.
	Sources []string
	// Barriers are the durability functions, named fully qualified
	// ("pkgpath.Recv.Method" or "pkgpath.Func") or, for same-package
	// barriers, "Recv.Method"/"Func". Reaching any of them marks the path
	// durable.
	Barriers []string
	// Sinks are acknowledgement sites.
	Sinks []AckSink
}

// AckSink names one acknowledgement function ("Func", "Recv.Method", or
// fully qualified). When ConstArg is non-zero the call only counts as an ack
// if some argument is a constant integer equal to it — e.g.
// writeJSON(w, 200, ...) acks, writeJSON(w, 503, ...) does not.
type AckSink struct {
	Func     string
	ConstArg int64
}

// ackflowRules returns the configured rules, defaulting to the daemon's
// durable-before-ack contract: no path from serve's ingest entry points may
// reach the batch apply or a 200 response before journal.Append (which syncs
// before returning under SyncAlways).
func (c Config) ackflowRules() []AckflowRule {
	if c.Ackflow != nil {
		return c.Ackflow
	}
	return []AckflowRule{{
		Pkg:      "crowdrank/internal/serve",
		Sources:  []string{"Server.Ingest", "Server.IngestContext", "Server.handleVotes"},
		Barriers: []string{"crowdrank/internal/journal.Journal.Append"},
		Sinks: []AckSink{
			{Func: "Server.apply"},
			{Func: "Server.writeJSON", ConstArg: 200},
		},
	}}
}

func (a *analysis) checkAckflow(rule AckflowRule) {
	if len(rule.Barriers) == 0 || len(rule.Sources) == 0 {
		a.report(a.pkg.files[0].Package, "ackflow",
			"rule for %s names no %s; a barrier-less or source-less rule checks nothing", rule.Pkg,
			map[bool]string{true: "barrier", false: "source"}[len(rule.Barriers) == 0])
		return
	}
	w := &ackWalk{
		a:        a,
		rule:     rule,
		decls:    map[*types.Func]*ast.FuncDecl{},
		memo:     map[ackMemoKey]bool{},
		active:   map[*types.Func]bool{},
		reported: map[ast.Node]bool{},
		sinkSeen: map[string]bool{},
	}
	names := map[string]*ast.FuncDecl{}
	for _, f := range a.pkg.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := a.pkg.info.Defs[fd.Name].(*types.Func); ok {
				w.decls[fn] = fd
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				name = recvTypeName(fd) + "." + name
			}
			names[name] = fd
		}
	}
	for _, src := range rule.Sources {
		fd, ok := names[src]
		if !ok || fd.Body == nil {
			// A renamed source would otherwise disarm the whole check.
			a.report(a.pkg.files[0].Package, "ackflow",
				"configured source %s does not resolve in %s; update Config.Ackflow to match the refactor", src, rule.Pkg)
			continue
		}
		w.source = src
		w.exitStack = append(w.exitStack, false)
		w.stmts(fd.Body.List, false)
		w.exitStack = w.exitStack[:len(w.exitStack)-1]
	}
	// A sink name that resolves nowhere and was never called is equally
	// stale. Fully qualified (cross-package) sinks are exempt: they cannot
	// be declared here.
	for _, sink := range rule.Sinks {
		if strings.Contains(sink.Func, "/") {
			continue
		}
		if _, ok := names[sink.Func]; !ok && !w.sinkSeen[sink.Func] {
			a.report(a.pkg.files[0].Package, "ackflow",
				"configured sink %s does not resolve in %s; update Config.Ackflow to match the refactor", sink.Func, rule.Pkg)
		}
	}
}

type ackMemoKey struct {
	fn      *types.Func
	barrier bool
}

// ackFlow is the dataflow fact after a statement: the may-barrier state and
// whether the statement ends the enclosing path with a return.
type ackFlow struct {
	b    bool
	term bool
}

type ackWalk struct {
	a        *analysis
	rule     AckflowRule
	decls    map[*types.Func]*ast.FuncDecl
	memo     map[ackMemoKey]bool
	active   map[*types.Func]bool
	reported map[ast.Node]bool
	sinkSeen map[string]bool
	source   string
	// exitStack accumulates, per inlined function, the OR of the barrier
	// state at each of its return statements.
	exitStack []bool
}

// fn walks a same-package callee with the given incoming barrier state and
// returns the may-barrier state at exit (the OR over all return sites and
// the fall-through end).
func (w *ackWalk) fn(fn *types.Func, barrier bool) bool {
	decl := w.decls[fn]
	if decl == nil || decl.Body == nil {
		return barrier
	}
	key := ackMemoKey{fn: fn, barrier: barrier}
	if out, ok := w.memo[key]; ok {
		return out
	}
	if w.active[fn] {
		return barrier
	}
	w.active[fn] = true
	w.exitStack = append(w.exitStack, false)
	f := w.stmts(decl.Body.List, barrier)
	out := w.exitStack[len(w.exitStack)-1]
	w.exitStack = w.exitStack[:len(w.exitStack)-1]
	if !f.term {
		out = out || f.b
	}
	delete(w.active, fn)
	w.memo[key] = out
	return out
}

func (w *ackWalk) stmts(list []ast.Stmt, b bool) ackFlow {
	for _, s := range list {
		f := w.stmt(s, b)
		if f.term {
			return f
		}
		b = f.b
	}
	return ackFlow{b: b}
}

func (w *ackWalk) stmt(s ast.Stmt, b bool) ackFlow {
	switch s := s.(type) {
	case nil:
		return ackFlow{b: b}
	case *ast.ExprStmt:
		return ackFlow{b: w.expr(s.X, b)}
	case *ast.SendStmt:
		b = w.expr(s.Chan, b)
		return ackFlow{b: w.expr(s.Value, b)}
	case *ast.IncDecStmt:
		return ackFlow{b: w.expr(s.X, b)}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			b = w.expr(e, b)
		}
		for _, e := range s.Lhs {
			b = w.expr(e, b)
		}
		return ackFlow{b: b}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			b = w.expr(e, b)
		}
		top := len(w.exitStack) - 1
		w.exitStack[top] = w.exitStack[top] || b
		return ackFlow{b: b, term: true}
	case *ast.DeferStmt:
		for _, e := range s.Call.Args {
			b = w.expr(e, b)
		}
		return ackFlow{b: b}
	case *ast.GoStmt:
		for _, e := range s.Call.Args {
			b = w.expr(e, b)
		}
		return ackFlow{b: b}
	case *ast.BlockStmt:
		return w.stmts(s.List, b)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, b)
	case *ast.IfStmt:
		f := w.stmt(s.Init, b)
		b = w.expr(s.Cond, f.b)
		t := w.stmts(s.Body.List, b)
		e := ackFlow{b: b}
		if s.Else != nil {
			e = w.stmt(s.Else, b)
		}
		return mergeAck(b, t, e)
	case *ast.ForStmt:
		f := w.stmt(s.Init, b)
		b = f.b
		if s.Cond != nil {
			b = w.expr(s.Cond, b)
		}
		body := w.stmts(s.Body.List, b)
		body = w.stmt(s.Post, body.b)
		// Zero iterations and break paths both reach the statement after
		// the loop, so the loop never terminates the outer path and the
		// exit state is the OR of entry and body.
		return ackFlow{b: b || body.b}
	case *ast.RangeStmt:
		b = w.expr(s.X, b)
		body := w.stmts(s.Body.List, b)
		return ackFlow{b: b || body.b}
	case *ast.SwitchStmt:
		f := w.stmt(s.Init, b)
		b = f.b
		if s.Tag != nil {
			b = w.expr(s.Tag, b)
		}
		return w.clauseMerge(s.Body.List, b)
	case *ast.TypeSwitchStmt:
		f := w.stmt(s.Init, b)
		f = w.stmt(s.Assign, f.b)
		return w.clauseMerge(s.Body.List, f.b)
	case *ast.SelectStmt:
		return w.clauseMerge(s.Body.List, b)
	default:
		return ackFlow{b: b}
	}
}

// mergeAck ORs the live (non-returning) branch exits of a two-way split; if
// every branch returns, the split terminates the path.
func mergeAck(pre bool, branches ...ackFlow) ackFlow {
	_ = pre
	out := ackFlow{term: true}
	for _, f := range branches {
		if f.term {
			continue
		}
		out.term = false
		out.b = out.b || f.b
	}
	return out
}

// clauseMerge handles switch/select bodies: each clause runs on the entry
// state; live clause exits OR together, and a missing default keeps the
// entry state as a live fall-through.
func (w *ackWalk) clauseMerge(list []ast.Stmt, b bool) ackFlow {
	branches := []ackFlow{}
	hasDefault := false
	for _, cs := range list {
		cb := b
		var body []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				cb = w.expr(e, cb)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			f := w.stmt(cc.Comm, cb)
			cb = f.b
			body = cc.Body
		}
		branches = append(branches, w.stmts(body, cb))
	}
	if !hasDefault {
		branches = append(branches, ackFlow{b: b})
	}
	return mergeAck(b, branches...)
}

// expr threads the barrier state through an expression, classifying calls in
// evaluation order (receiver and arguments before the call itself).
func (w *ackWalk) expr(e ast.Expr, b bool) bool {
	switch e := e.(type) {
	case nil:
		return b
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			b = w.expr(sel.X, b)
		}
		for _, arg := range e.Args {
			b = w.expr(arg, b)
		}
		return w.call(e, b)
	case *ast.FuncLit:
		return b
	case *ast.ParenExpr:
		return w.expr(e.X, b)
	case *ast.SelectorExpr:
		return w.expr(e.X, b)
	case *ast.StarExpr:
		return w.expr(e.X, b)
	case *ast.UnaryExpr:
		return w.expr(e.X, b)
	case *ast.BinaryExpr:
		b = w.expr(e.X, b)
		return w.expr(e.Y, b)
	case *ast.KeyValueExpr:
		return w.expr(e.Value, b)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			b = w.expr(el, b)
		}
		return b
	case *ast.IndexExpr:
		b = w.expr(e.X, b)
		return w.expr(e.Index, b)
	case *ast.SliceExpr:
		b = w.expr(e.X, b)
		b = w.expr(e.Low, b)
		b = w.expr(e.High, b)
		return w.expr(e.Max, b)
	case *ast.TypeAssertExpr:
		return w.expr(e.X, b)
	default:
		return b
	}
}

func (w *ackWalk) call(call *ast.CallExpr, b bool) bool {
	callee := calleeFunc(w.a.pkg.info, call)
	if callee == nil {
		return b
	}
	qualified, local := ackFuncNames(callee, w.rule.Pkg)
	for _, barrier := range w.rule.Barriers {
		if barrier == qualified || (local != "" && barrier == local) {
			return true
		}
	}
	for _, sink := range w.rule.Sinks {
		if sink.Func != qualified && (local == "" || sink.Func != local) {
			continue
		}
		if sink.ConstArg != 0 && !hasConstIntArg(w.a.pkg.info, call, sink.ConstArg) {
			continue
		}
		w.sinkSeen[sink.Func] = true
		if !b && !w.reported[call] {
			w.reported[call] = true
			w.a.report(call.Pos(), "ackflow",
				"%s is reachable from %s before the durability barrier (%s); a crash here loses paid votes — acknowledge only after journal append + sync",
				sink.Func, w.source, w.rule.Barriers[0])
		}
		return b
	}
	if local != "" { // same-package callee: inline
		return w.fn(callee, b)
	}
	return b
}

// ackFuncNames renders a callee as its fully qualified name and, when it
// belongs to rulePkg, its package-local name.
func ackFuncNames(fn *types.Func, rulePkg string) (qualified, local string) {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecv(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() == nil {
		return name, ""
	}
	qualified = fn.Pkg().Path() + "." + name
	if fn.Pkg().Path() == rulePkg {
		local = name
	}
	return qualified, local
}

// hasConstIntArg reports whether any argument is a constant integer equal to
// want (http.StatusOK matches 200 through constant folding).
func hasConstIntArg(info *types.Info, call *ast.CallExpr, want int64) bool {
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Value == nil {
			continue
		}
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v == want {
			return true
		}
	}
	return false
}
