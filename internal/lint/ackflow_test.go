package lint

import (
	"strings"
	"testing"
)

// ackRule builds the fixture's durable-before-ack rule: package p's Server
// may not reach apply or writeOK(w, 200) from Ingest/Handle before
// fixture/j.Journal.Append.
func ackRule() []AckflowRule {
	return []AckflowRule{{
		Pkg:      "fixture/p",
		Sources:  []string{"Server.Ingest", "Server.Handle"},
		Barriers: []string{"fixture/j.Journal.Append"},
		Sinks: []AckSink{
			{Func: "Server.apply"},
			{Func: "Server.writeOK", ConstArg: 200},
		},
	}}
}

// journalFixture is the barrier-owning dependency package.
const journalFixture = `package j

type Journal struct{ n int }

func (j *Journal) Append(b []byte) error {
	j.n += len(b)
	return nil
}
`

func ackFixture(t *testing.T, serverSrc string) []Finding {
	t.Helper()
	return lintFixturePkgs(t, Config{Checks: []string{"ackflow"}, Ackflow: ackRule()},
		map[string]map[string]string{
			"j": {"j.go": journalFixture},
			"p": {"p.go": serverSrc},
		}, []string{"p"})
}

func TestAckflow(t *testing.T) {
	t.Run("ack after barrier is clean", func(t *testing.T) {
		fs := ackFixture(t, `package p

import "fixture/j"

type Server struct{ jnl *j.Journal }

func (s *Server) apply(b []byte) int { return len(b) }

func (s *Server) writeOK(status int) {}

func (s *Server) Ingest(b []byte) (int, error) {
	if err := s.jnl.Append(b); err != nil {
		return 0, err
	}
	n := s.apply(b)
	s.writeOK(200)
	return n, nil
}

func (s *Server) Handle(b []byte) {
	if _, err := s.Ingest(b); err != nil {
		s.writeOK(503)
	}
}
`)
		if len(fs) != 0 {
			t.Fatalf("barrier-then-ack must be clean, got %v", fs)
		}
	})
	t.Run("ack before barrier is a finding", func(t *testing.T) {
		fs := ackFixture(t, `package p

import "fixture/j"

type Server struct{ jnl *j.Journal }

func (s *Server) apply(b []byte) int { return len(b) }

func (s *Server) writeOK(status int) {}

func (s *Server) Ingest(b []byte) (int, error) {
	n := s.apply(b) // acked before the journal append
	if err := s.jnl.Append(b); err != nil {
		return 0, err
	}
	return n, nil
}

func (s *Server) Handle(b []byte) {
	if _, err := s.Ingest(b); err != nil {
		s.writeOK(503)
	}
}
`)
		if got := byCheck(fs)["ackflow"]; got != 1 {
			t.Fatalf("want 1 ackflow finding for apply-before-Append, got %d: %v", got, fs)
		}
		if len(messagesContaining(fs, "ackflow", "Server.apply")) != 1 {
			t.Fatalf("finding should name the sink: %v", fs)
		}
	})
	t.Run("sink reached through a helper chain", func(t *testing.T) {
		fs := ackFixture(t, `package p

import "fixture/j"

type Server struct{ jnl *j.Journal }

func (s *Server) apply(b []byte) int { return len(b) }

func (s *Server) writeOK(status int) {}

func (s *Server) respond(b []byte) {
	s.writeOK(200) // two calls below the source, still before the barrier
}

func (s *Server) Ingest(b []byte) (int, error) {
	s.respond(b)
	if err := s.jnl.Append(b); err != nil {
		return 0, err
	}
	return s.apply(b), nil
}

func (s *Server) Handle(b []byte) {
	_, _ = s.Ingest(b)
}
`)
		if got := byCheck(fs)["ackflow"]; got != 1 {
			t.Fatalf("want 1 ackflow finding through the helper, got %d: %v", got, fs)
		}
	})
	t.Run("const status distinguishes ack from error response", func(t *testing.T) {
		fs := ackFixture(t, `package p

import "fixture/j"

type Server struct{ jnl *j.Journal }

func (s *Server) apply(b []byte) int { return len(b) }

func (s *Server) writeOK(status int) {}

func (s *Server) Ingest(b []byte) (int, error) {
	if len(b) == 0 {
		s.writeOK(400) // rejecting is not acking
		return 0, nil
	}
	if err := s.jnl.Append(b); err != nil {
		s.writeOK(503) // failure is not acking
		return 0, err
	}
	return s.apply(b), nil
}

func (s *Server) Handle(b []byte) {
	_, _ = s.Ingest(b)
}
`)
		if len(fs) != 0 {
			t.Fatalf("non-200 writes must not count as acks, got %v", fs)
		}
	})
	t.Run("barrier on one branch does not cover the other", func(t *testing.T) {
		fs := ackFixture(t, `package p

import "fixture/j"

type Server struct{ jnl *j.Journal }

func (s *Server) apply(b []byte) int { return len(b) }

func (s *Server) writeOK(status int) {}

func (s *Server) Ingest(b []byte) (int, error) {
	if len(b) > 1 {
		if err := s.jnl.Append(b); err != nil {
			return 0, err
		}
		return s.apply(b), nil
	}
	// Single-vote fast path returns without journaling...
	return s.apply(b), nil
}

func (s *Server) Handle(b []byte) {
	_, _ = s.Ingest(b)
}
`)
		if got := byCheck(fs)["ackflow"]; got != 1 {
			t.Fatalf("want 1 finding on the unjournaled fast path, got %d: %v", got, fs)
		}
	})
	t.Run("suppressed with reason", func(t *testing.T) {
		fs := ackFixture(t, `package p

import "fixture/j"

type Server struct{ jnl *j.Journal }

func (s *Server) apply(b []byte) int { return len(b) }

func (s *Server) writeOK(status int) {}

func (s *Server) Ingest(b []byte) (int, error) {
	//lint:ignore ackflow the in-memory configuration journals nothing by contract; durability is not promised here
	n := s.apply(b)
	if err := s.jnl.Append(b); err != nil {
		return 0, err
	}
	return n, nil
}

func (s *Server) Handle(b []byte) {
	_, _ = s.Ingest(b)
}
`)
		if len(fs) != 0 {
			t.Fatalf("reasoned suppression must silence the finding, got %v", fs)
		}
	})
	t.Run("stale source names are findings", func(t *testing.T) {
		fs := ackFixture(t, `package p

import "fixture/j"

type Server struct{ jnl *j.Journal }

func (s *Server) apply(b []byte) int { return len(b) }

func (s *Server) writeOK(status int) {}

// Ingest was renamed; the configured sources no longer all resolve.
func (s *Server) IngestBatch(b []byte) (int, error) {
	if err := s.jnl.Append(b); err != nil {
		return 0, err
	}
	return s.apply(b), nil
}

func (s *Server) Handle(b []byte) {
	_, _ = s.IngestBatch(b)
}
`)
		stale := messagesContaining(fs, "ackflow", "does not resolve")
		if len(stale) != 1 || !strings.Contains(stale[0].Message, "Server.Ingest") {
			t.Fatalf("want a staleness finding for the renamed source, got %v", fs)
		}
	})
	t.Run("default rule targets the serve package", func(t *testing.T) {
		rules := Config{}.ackflowRules()
		if len(rules) != 1 || rules[0].Pkg != "crowdrank/internal/serve" {
			t.Fatalf("default ackflow rule must cover the daemon: %+v", rules)
		}
		if len(rules[0].Sources) == 0 || len(rules[0].Barriers) == 0 || len(rules[0].Sinks) == 0 {
			t.Fatalf("default rule must name sources, barriers, and sinks: %+v", rules[0])
		}
	})
}
