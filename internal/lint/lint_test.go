package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintFixture writes the given files into a throwaway module and lints the
// package directory "p". Fixture packages import only the standard library,
// which the loader type-checks from GOROOT source.
func lintFixture(t *testing.T, cfg Config, files map[string]string) []Finding {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "p")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings, err := Dirs(root, []string{dir}, cfg)
	if err != nil {
		t.Fatalf("lint failed: %v", err)
	}
	return findings
}

// byCheck groups findings for easy assertions.
func byCheck(fs []Finding) map[string]int {
	out := make(map[string]int)
	for _, f := range fs {
		out[f.Check]++
	}
	return out
}

func TestGlobalRandCheck(t *testing.T) {
	t.Run("positive", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"globalrand"}}, map[string]string{
			"a.go": `package p

import "math/rand/v2"

func Draw() int { return rand.IntN(10) }
`,
			"b.go": `package p

import old "math/rand"

func Shuffle(xs []int) {
	old.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
`,
		})
		if got := byCheck(fs)["globalrand"]; got != 2 {
			t.Fatalf("want 2 globalrand findings (v2 and v1 package-global calls), got %d: %v", got, fs)
		}
	})
	t.Run("negative", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"globalrand"}}, map[string]string{
			"a.go": `package p

import "math/rand/v2"

func Draw(rng *rand.Rand) int { return rng.IntN(10) }

func Build(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed)) }
`,
		})
		if len(fs) != 0 {
			t.Fatalf("seeded *rand.Rand use and constructors must be clean, got %v", fs)
		}
	})
}

func TestFloatCmpCheck(t *testing.T) {
	t.Run("positive", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"floatcmp"}}, map[string]string{
			"a.go": `package p

func Same(a, b float64) bool { return a == b }

func NotOne(x float64) bool { return x != 1 }

func Mixed(x float32) bool { return x == 0.5 }
`,
		})
		if got := byCheck(fs)["floatcmp"]; got != 3 {
			t.Fatalf("want 3 floatcmp findings, got %d: %v", got, fs)
		}
	})
	t.Run("negative", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"floatcmp"}}, map[string]string{
			"a.go": `package p

const eps = 1e-9

func Ints(a, b int) bool { return a == b }

func Strings(a, b string) bool { return a != b }

// Two untyped constants compare at compile time.
const exact = 0.5 == 0.25*2

func Tolerant(a, b float64) bool { d := a - b; return d < eps && d > -eps }
`,
		})
		if len(fs) != 0 {
			t.Fatalf("integer/string/constant comparisons must be clean, got %v", fs)
		}
	})
	t.Run("exempt package", func(t *testing.T) {
		cfg := Config{Checks: []string{"floatcmp"}, FloatExemptPkgs: []string{"fixture/p"}}
		fs := lintFixture(t, cfg, map[string]string{
			"a.go": `package p

func One(x float64) bool { return x == 1 }
`,
		})
		if len(fs) != 0 {
			t.Fatalf("the approved epsilon-helper package may compare exactly, got %v", fs)
		}
	})
}

func TestCtxLoopCheck(t *testing.T) {
	t.Run("positive", func(t *testing.T) {
		cfg := Config{Checks: []string{"ctxloop"}, LongRunningPkgs: []string{"fixture/p"}}
		fs := lintFixture(t, cfg, map[string]string{
			"a.go": `package p

import "context"

// Ignored accepts a context and never consults it.
func Ignored(ctx context.Context, n int) int { return n * 2 }

// RunContext claims cancellability in its name but accepts no context.
func RunContext(n int) int { return n }

// Search loops in a long-running package with no context and no
// SearchContext variant.
func Search(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
`,
		})
		if got := byCheck(fs)["ctxloop"]; got != 3 {
			t.Fatalf("want 3 ctxloop findings (ignored param, misnamed func, uncancellable loop), got %d: %v", got, fs)
		}
	})
	t.Run("negative", func(t *testing.T) {
		cfg := Config{Checks: []string{"ctxloop"}, LongRunningPkgs: []string{"fixture/p"}}
		fs := lintFixture(t, cfg, map[string]string{
			"a.go": `package p

import "context"

// Search has a SearchContext sibling, so the plain variant may loop.
func Search(n int) int { return searchImpl(context.Background(), n) }

func SearchContext(ctx context.Context, n int) int { return searchImpl(ctx, n) }

func searchImpl(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return total
		}
		total += i
	}
	return total
}
`,
		})
		if len(fs) != 0 {
			t.Fatalf("polled contexts and *Context siblings must be clean, got %v", fs)
		}
	})
	t.Run("methods", func(t *testing.T) {
		// Daemon-style loops live in methods: an exported loop-bearing
		// method in a long-running package needs a ctx param or a
		// Name+"Context" sibling method on the same receiver — a sibling
		// on a different type does not count.
		cfg := Config{Checks: []string{"ctxloop"}, LongRunningPkgs: []string{"fixture/p"}}
		fs := lintFixture(t, cfg, map[string]string{
			"a.go": `package p

import "context"

type Server struct{ n int }

// Ingest loops with no context and no IngestContext sibling: finding.
func (s *Server) Ingest(items []int) int {
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}

// Rank is covered by its RankContext sibling method.
func (s *Server) Rank(items []int) int { return s.RankContext(context.Background(), items) }

func (s *Server) RankContext(ctx context.Context, items []int) int {
	total := 0
	for _, v := range items {
		if ctx.Err() != nil {
			return total
		}
		total += v
	}
	return total
}

type Other struct{}

// IngestContext on another receiver must not excuse Server.Ingest.
func (o *Other) IngestContext(ctx context.Context) error { return ctx.Err() }

// report is unexported: the clause only binds the exported surface.
func (s *Server) report(items []int) int {
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}
`,
		})
		if got := byCheck(fs)["ctxloop"]; got != 1 {
			t.Fatalf("want exactly 1 ctxloop finding (Server.Ingest), got %d: %v", got, fs)
		}
	})
}

func TestPanicsCheck(t *testing.T) {
	t.Run("positive", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"panics"}}, map[string]string{
			"a.go": `package p

func MustDouble(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n * 2
}
`,
		})
		if got := byCheck(fs)["panics"]; got != 1 {
			t.Fatalf("want 1 panics finding in exported func, got %d: %v", got, fs)
		}
	})
	t.Run("negative unexported and exempt", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"panics"}}, map[string]string{
			"a.go": `package p

func double(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n * 2
}

func Double(n int) int { return double(n) }
`,
		})
		if len(fs) != 0 {
			t.Fatalf("panic in unexported helper must be clean, got %v", fs)
		}
		fs = lintFixture(t, Config{Checks: []string{"panics"}, PanicExemptPkgs: []string{"fixture/p"}}, map[string]string{
			"a.go": `package p

func Assert(ok bool) {
	if !ok {
		panic("invariant violated")
	}
}
`,
		})
		if len(fs) != 0 {
			t.Fatalf("the invariant package may panic, got %v", fs)
		}
	})
}

func TestErrcheckCheck(t *testing.T) {
	t.Run("positive", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"errcheck"}}, map[string]string{
			"a.go": `package p

import "os"

func fail() error { return nil }

func Run(f *os.File) {
	fail()
	defer f.Close()
	go fail()
}
`,
		})
		if got := byCheck(fs)["errcheck"]; got != 3 {
			t.Fatalf("want 3 errcheck findings (stmt, defer, go), got %d: %v", got, fs)
		}
	})
	t.Run("negative", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"errcheck"}}, map[string]string{
			"a.go": `package p

import (
	"bytes"
	"fmt"
)

func fail() error { return nil }

func Run(buf *bytes.Buffer) {
	if err := fail(); err != nil {
		return
	}
	_ = fail()
	fmt.Println("fmt printing is exempt")
	buf.WriteString("in-memory writers never fail")
}
`,
		})
		if len(fs) != 0 {
			t.Fatalf("handled, blanked, and exempt calls must be clean, got %v", fs)
		}
	})
	t.Run("blank-discarded Close and Sync", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"errcheck"}}, map[string]string{
			"a.go": `package p

import "os"

func Run(f *os.File) {
	_ = f.Sync()
	defer func() { _ = f.Close() }()
}
`,
		})
		if got := byCheck(fs)["errcheck"]; got != 2 {
			t.Fatalf("want 2 errcheck findings for blank-discarded Sync and Close, got %d: %v", got, fs)
		}
	})
	t.Run("blank-discard of other calls stays allowed", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"errcheck"}}, map[string]string{
			"a.go": `package p

import "os"

func fail() error { return nil }

// Close on a type whose Close returns no error is out of scope too.
type quiet struct{}

func (quiet) Close() {}

func Run(f *os.File, q quiet) {
	_ = fail()
	err := f.Close()
	_ = err
	q.Close()
}
`,
		})
		if len(fs) != 0 {
			t.Fatalf("only error-returning Close/Sync blank-discards are findings, got %v", fs)
		}
	})
	t.Run("blank-discarded Close suppressible with reason", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"errcheck"}}, map[string]string{
			"a.go": `package p

import "os"

func Run(f *os.File) {
	//lint:ignore errcheck the file was opened read-only; a close error cannot lose writes
	_ = f.Close()
}
`,
		})
		if len(fs) != 0 {
			t.Fatalf("reasoned suppression must silence the blank-discard finding, got %v", fs)
		}
	})
}

func TestSuppressionDirectives(t *testing.T) {
	t.Run("with reason suppresses same line and next line", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"floatcmp"}}, map[string]string{
			"a.go": `package p

func Same(a, b float64) bool {
	return a == b //lint:ignore floatcmp fixture: trailing directive with a reason
}

func AlsoSame(a, b float64) bool {
	//lint:ignore floatcmp fixture: directive on the line above with a reason
	return a == b
}
`,
		})
		if len(fs) != 0 {
			t.Fatalf("reasoned directives must suppress, got %v", fs)
		}
	})
	t.Run("without reason is inert", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"floatcmp"}}, map[string]string{
			"a.go": `package p

func Same(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}
`,
		})
		if got := byCheck(fs)["floatcmp"]; got != 1 {
			t.Fatalf("a directive with no reason must not suppress, got %v", fs)
		}
	})
	t.Run("wrong check name does not suppress", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"floatcmp"}}, map[string]string{
			"a.go": `package p

func Same(a, b float64) bool {
	//lint:ignore errcheck fixture: names a different check
	return a == b
}
`,
		})
		if got := byCheck(fs)["floatcmp"]; got != 1 {
			t.Fatalf("directive for another check must not suppress, got %v", fs)
		}
	})
}

func TestFindingStringAndSorting(t *testing.T) {
	fs := lintFixture(t, Config{Checks: []string{"floatcmp", "panics"}}, map[string]string{
		"b.go": `package p

func Cmp(a, b float64) bool { return a == b }
`,
		"a.go": `package p

func Boom() { panic("x") }
`,
	})
	if len(fs) != 2 {
		t.Fatalf("want 2 findings, got %v", fs)
	}
	if !strings.HasSuffix(fs[0].File, "a.go") || !strings.HasSuffix(fs[1].File, "b.go") {
		t.Fatalf("findings must sort by file: %v", fs)
	}
	str := fs[0].String()
	for _, want := range []string{"a.go", "panics", ":3:"} {
		if !strings.Contains(str, want) {
			t.Fatalf("finding string %q missing %q", str, want)
		}
	}
}

func TestModuleSkipsTestFiles(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package p

import "math/rand/v2"

func helper() int { return rand.IntN(3) }
`
	if err := os.WriteFile(filepath.Join(root, "p_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "p.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := Module(root, Config{Checks: []string{"globalrand"}})
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	if len(fs) != 0 {
		t.Fatalf("_test.go files are exempt from linting, got %v", fs)
	}
}

func TestBuildTagsSelectFiles(t *testing.T) {
	files := map[string]string{
		"on.go": `//go:build fixturetag

package p

func Gated(a, b float64) bool { return a == b }
`,
		"off.go": `//go:build !fixturetag

package p

func Gated(a, b float64) bool { return a < b }
`,
	}
	clean := lintFixture(t, Config{Checks: []string{"floatcmp"}}, files)
	if len(clean) != 0 {
		t.Fatalf("untagged build selects off.go and must be clean, got %v", clean)
	}
	tagged := lintFixture(t, Config{Checks: []string{"floatcmp"}, BuildTags: []string{"fixturetag"}}, files)
	if got := byCheck(tagged)["floatcmp"]; got != 1 {
		t.Fatalf("tagged build selects on.go and must flag it, got %v", tagged)
	}
}
