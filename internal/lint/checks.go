package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyze runs every enabled per-package check over one type-checked package
// and returns the raw findings; suppression is applied once by the caller so
// module-level passes see the same directives.
func analyze(pkg *pkgInfo, cfg Config) []Finding {
	enabled := cfg.enabled()
	a := &analysis{pkg: pkg, cfg: cfg}
	if enabled["globalrand"] {
		a.checkGlobalRand()
	}
	if enabled["floatcmp"] && !cfg.floatExempt()[pkg.importPath] {
		a.checkFloatCmp()
	}
	if enabled["ctxloop"] {
		a.checkCtxLoop()
	}
	if enabled["panics"] && pkg.pkg.Name() != "main" && !cfg.panicExempt()[pkg.importPath] {
		a.checkPanics()
	}
	if enabled["errcheck"] {
		a.checkErrcheck()
	}
	if enabled["goroleak"] {
		a.checkGoroleak()
	}
	if enabled["srvtimeout"] {
		a.checkSrvTimeout()
	}
	if enabled["ackflow"] {
		for _, rule := range cfg.ackflowRules() {
			if rule.Pkg == pkg.importPath {
				a.checkAckflow(rule)
			}
		}
	}
	return a.findings
}

type analysis struct {
	pkg      *pkgInfo
	cfg      Config
	findings []Finding
}

func (a *analysis) report(pos token.Pos, check, format string, args ...any) {
	p := a.pkg.fset.Position(pos)
	a.findings = append(a.findings, Finding{
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ---- globalrand ------------------------------------------------------------

// randConstructors are the math/rand functions that build explicit sources
// rather than drawing from the package-global one; they are the only
// package-level functions allowed outside tests.
var randConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewSource": true, "NewZipf": true,
}

func (a *analysis) checkGlobalRand() {
	for _, f := range a.pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := a.pkg.info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			obj := a.pkg.info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || randConstructors[fn.Name()] {
				return true
			}
			a.report(sel.Pos(), "globalrand",
				"%s.%s draws from the package-global source; thread a seeded *rand.Rand instead so Result.Seed stays deterministic", pn.Name(), fn.Name())
			return true
		})
	}
}

// ---- floatcmp --------------------------------------------------------------

func (a *analysis) checkFloatCmp() {
	for _, f := range a.pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := a.pkg.info.Types[be.X]
			ty := a.pkg.info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			// Two compile-time constants compare exactly by definition.
			if tx.Value != nil && ty.Value != nil {
				return true
			}
			a.report(be.OpPos, "floatcmp",
				"raw %s between float expressions; use internal/feq (Eq/Close for tolerances, Zero/One for sentinels)", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// ---- ctxloop ---------------------------------------------------------------

func (a *analysis) checkCtxLoop() {
	longRunning := a.cfg.longRunning()[a.pkg.importPath]
	// Collect top-level function names and per-receiver method names first
	// so the long-running clause can look for Name+"Context" siblings:
	// daemon loops live in methods (Server.Ingest, Server.Rank), not only
	// free functions.
	names := map[string]bool{}
	methods := map[string]map[string]bool{}
	for _, f := range a.pkg.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv == nil {
				names[fd.Name.Name] = true
				continue
			}
			recv := recvTypeName(fd)
			if methods[recv] == nil {
				methods[recv] = map[string]bool{}
			}
			methods[recv][fd.Name.Name] = true
		}
	}
	for _, f := range a.pkg.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(a.pkg.info, fd)
			if strings.HasSuffix(fd.Name.Name, "Context") && len(ctxParams) == 0 {
				a.report(fd.Name.Pos(), "ctxloop",
					"%s is named *Context but accepts no context.Context parameter", fd.Name.Name)
			}
			for _, p := range ctxParams {
				if p.Name == "_" {
					continue
				}
				obj := a.pkg.info.Defs[p]
				if obj == nil || usesObject(a.pkg.info, fd.Body, obj) {
					continue
				}
				a.report(p.Pos(), "ctxloop",
					"%s accepts context parameter %s but never consults it; poll ctx.Err/ctx.Done or pass it on", fd.Name.Name, p.Name)
			}
			if longRunning && fd.Name.IsExported() && len(ctxParams) == 0 && containsFor(fd.Body) {
				switch {
				case fd.Recv == nil && !names[fd.Name.Name+"Context"]:
					a.report(fd.Name.Pos(), "ctxloop",
						"exported %s in a long-running package contains a loop but accepts no context.Context and has no %sContext variant", fd.Name.Name, fd.Name.Name)
				case fd.Recv != nil && !methods[recvTypeName(fd)][fd.Name.Name+"Context"]:
					a.report(fd.Name.Pos(), "ctxloop",
						"exported method %s in a long-running package contains a loop but accepts no context.Context and has no %sContext sibling method", fd.Name.Name, fd.Name.Name)
				}
			}
		}
	}
}

// recvTypeName returns the bare receiver type name of a method ("Server"
// for func (s *Server) or generic receivers), so sibling methods can be
// grouped per type.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}

// contextParams returns the identifiers of parameters whose type is
// context.Context.
func contextParams(info *types.Info, fd *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := info.Types[field.Type].Type
		if t == nil || !isContextType(t) {
			continue
		}
		out = append(out, field.Names...)
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func usesObject(info *types.Info, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

func containsFor(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
			return false
		}
		return true
	})
	return found
}

// ---- panics ----------------------------------------------------------------

func (a *analysis) checkPanics() {
	for _, f := range a.pkg.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := a.pkg.info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					a.report(call.Pos(), "panics",
						"panic in exported %s; return an error, or route impossible states through internal/invariant", fd.Name.Name)
				}
				return true
			})
		}
	}
}

// ---- errcheck --------------------------------------------------------------

// errcheckExemptPkgs are callee packages whose returned errors are
// conventionally ignorable in statement position: fmt printing (the
// process-output idiom) — everything else must be handled.
var errcheckExemptPkgs = map[string]bool{"fmt": true}

// errcheckExemptRecvs are receiver types whose Write*/flush-style methods
// are documented never to fail.
var errcheckExemptRecvs = map[string]bool{"bytes.Buffer": true, "strings.Builder": true}

func (a *analysis) checkErrcheck() {
	for _, f := range a.pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			case *ast.AssignStmt:
				// `_ = f.Close()` / `_ = f.Sync()` silences the compiler
				// but drops exactly the errors that report lost writes on
				// close/flush. Other blank-assigned calls stay allowed —
				// the blank is an explicit decision — but for Close/Sync
				// the decision must carry a reason.
				a.checkBlankCloseSync(s)
			}
			if call == nil || !returnsError(a.pkg.info, call) || a.exemptCallee(call) {
				return true
			}
			a.report(call.Pos(), "errcheck",
				"%s returns an error that is discarded; handle it or assign it explicitly", calleeName(call))
			return true
		})
	}
}

// checkBlankCloseSync flags single-assignment statements of the form
// `_ = x.Close()` or `_ = x.Sync()` where the method returns an error.
func (a *analysis) checkBlankCloseSync(s *ast.AssignStmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok || id.Name != "_" {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
		return
	}
	if fn, ok := a.pkg.info.Uses[sel.Sel].(*types.Func); !ok || fn.Type().(*types.Signature).Recv() == nil {
		return
	}
	if !returnsError(a.pkg.info, call) {
		return
	}
	a.report(s.Pos(), "errcheck",
		"error from %s is blank-discarded; a failed Close/Sync can mean lost writes — handle it, or suppress with the reason the loss is harmless", calleeName(call))
}

// returnsError reports whether the call yields an error among its results.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exemptCallee reports whether the callee is on the conventional allowlist.
func (a *analysis) exemptCallee(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level call: fmt.Printf and friends.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := a.pkg.info.Uses[id].(*types.PkgName); ok {
			return errcheckExemptPkgs[pn.Imported().Path()]
		}
	}
	// Method call: check the receiver's named type.
	if s, ok := a.pkg.info.Selections[sel]; ok {
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			return errcheckExemptRecvs[key]
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}

// ---- suppressions ----------------------------------------------------------

const ignoreDirective = "//lint:ignore"

// suppress drops findings covered by a well-formed //lint:ignore directive in
// any of the given packages. A directive covers its own line and the line
// below it (so it can trail a statement or sit on the line above). Directives
// without a reason are inert by design: every suppression must say why.
func suppress(pkgs []*pkgInfo, findings []Finding) []Finding {
	// suppressed[file][line][check]
	suppressed := make(map[string]map[int]map[string]bool)
	mark := func(file string, line int, check string) {
		if suppressed[file] == nil {
			suppressed[file] = make(map[int]map[string]bool)
		}
		if suppressed[file][line] == nil {
			suppressed[file][line] = make(map[string]bool)
		}
		suppressed[file][line][check] = true
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						continue // no check name or no reason: directive is inert
					}
					check := fields[0]
					pos := pkg.fset.Position(c.Pos())
					mark(pos.Filename, pos.Line, check)
					mark(pos.Filename, pos.Line+1, check)
				}
			}
		}
	}
	var kept []Finding
	for _, f := range findings {
		if suppressed[f.File][f.Line][f.Check] || suppressed[f.File][f.Line]["all"] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
