// Package lint implements crowdlint, the repository's domain-specific
// static analyzer. It is built exclusively on the standard library
// (go/parser, go/ast, go/types, go/build, go/importer) so the tier-1 gate
// needs no external tooling.
//
// The checks encode contracts the paper's guarantees and PR 1's determinism
// work depend on:
//
//   - globalrand: no package-level math/rand or math/rand/v2 functions
//     outside _test.go files. All randomness must thread a seeded
//     *rand.Rand so Result.Seed fully determines the pipeline's output.
//   - floatcmp: no raw == or != between floating-point expressions outside
//     the approved helper package internal/feq. Structural properties such
//     as w_ij + w_ji = 1 hold only to rounding; exact comparisons must be
//     deliberate, centralized sentinels.
//   - ctxloop: a function that accepts a context.Context must consult it,
//     a function named *Context must accept one, and exported loop-bearing
//     functions in the long-running search package must either take a
//     context or offer a *Context variant, so inference can always be
//     cancelled.
//   - panics: no panic calls inside exported functions or methods of
//     library packages (package main and internal/invariant are exempt);
//     library errors must surface as errors, invariant violations through
//     the invariant package.
//   - errcheck: no discarded error returns in statement position (including
//     defer and go) and no blank-discarded Close/Sync errors (`_ = f.Close()`);
//     fmt printing and the never-failing in-memory writers (bytes.Buffer,
//     strings.Builder) are exempt.
//   - lockcheck: mutex discipline. Intra-procedurally, every sync.Mutex or
//     sync.RWMutex Lock must be paired with an Unlock (explicit or deferred)
//     on every return path, and no lock may be held across a blocking
//     operation (file Write/Sync, channel send/receive, select without
//     default, net/http calls, time.Sleep, WaitGroup.Wait) — directly or
//     through a callee. Across packages, the check builds a lock-ordering
//     graph from "lock B acquired while lock A held" edges (including
//     acquisitions buried in callees) and reports any cycle as a potential
//     deadlock.
//   - goroleak: in long-running packages (the daemon and the searchers), a
//     `go func` literal must capture a context.Context, a channel, or a
//     sync.WaitGroup — some shutdown or completion path. A goroutine with
//     none of these can never be stopped or awaited.
//   - ackflow: the paper-level durability invariant. The crowdsourcing
//     budget is spent in one non-interactive round, so an acknowledged vote
//     batch must already be durable: no call path from an ingest source may
//     reach an ack sink without passing the journal-append barrier first.
//     Sources, sinks, and barriers are named in Config.Ackflow so the check
//     survives refactors; configured names that no longer resolve are
//     themselves findings.
//   - srvtimeout: in long-running packages, an http.Server composite
//     literal must set ReadTimeout or ReadHeaderTimeout. Without either, a
//     slow-loris client that dribbles header bytes pins a connection (and
//     eventually the accept backlog) forever.
//
// Findings can be suppressed with a trailing or preceding comment of the
// form
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory: a directive without one is inert, so every
// suppression in the tree documents why the rule does not apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// File is the path of the offending file, relative to the lint root
	// when possible.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Check names the rule that fired (globalrand, floatcmp, ctxloop,
	// panics, errcheck, lockcheck, goroleak, ackflow, srvtimeout).
	Check string `json:"check"`
	// Message explains the violation and the fix.
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// AllChecks lists every implemented check name.
var AllChecks = []string{
	"globalrand", "floatcmp", "ctxloop", "panics", "errcheck",
	"lockcheck", "goroleak", "ackflow", "srvtimeout",
}

// Config tunes a lint run. The zero value runs every check with no build
// tags, which is what the tier-1 gate uses.
type Config struct {
	// BuildTags are extra build constraints honored when selecting files
	// (e.g. crowdrank_invariants to lint the assertion-enabled variant).
	BuildTags []string
	// Checks, when non-empty, restricts the run to the named checks.
	Checks []string
	// FloatExemptPkgs lists import paths whose files may compare floats
	// exactly: the approved epsilon-helper package(s). Defaults to
	// crowdrank/internal/feq when nil.
	FloatExemptPkgs []string
	// PanicExemptPkgs lists import paths allowed to panic in exported
	// code. Defaults to crowdrank/internal/invariant when nil. Package
	// main is always exempt.
	PanicExemptPkgs []string
	// LongRunningPkgs lists import paths whose exported loop-bearing
	// functions must be cancellable (ctxloop's third clause), whose
	// goroutine literals need a shutdown path (goroleak), and whose
	// http.Server literals need read timeouts (srvtimeout). Defaults to
	// crowdrank/internal/search, crowdrank/internal/serve (the daemon
	// engine: its request loops run under client deadlines),
	// crowdrank/internal/client (its retry loops run under caller
	// contexts), crowdrank/internal/replica (its stream and watchdog
	// goroutines run for the node's lifetime), and
	// crowdrank/cmd/crowdrankd (the daemon binary itself) when nil.
	LongRunningPkgs []string
	// Ackflow names the durability dataflow rules checked by ackflow. Each
	// rule is evaluated in the package it names. Defaults to the daemon's
	// durable-before-ack contract (serve ingest must pass journal.Append
	// before acking) when nil.
	Ackflow []AckflowRule
}

func (c Config) floatExempt() map[string]bool {
	pkgs := c.FloatExemptPkgs
	if pkgs == nil {
		pkgs = []string{"crowdrank/internal/feq"}
	}
	return toSet(pkgs)
}

func (c Config) panicExempt() map[string]bool {
	pkgs := c.PanicExemptPkgs
	if pkgs == nil {
		pkgs = []string{"crowdrank/internal/invariant"}
	}
	return toSet(pkgs)
}

func (c Config) longRunning() map[string]bool {
	pkgs := c.LongRunningPkgs
	if pkgs == nil {
		pkgs = []string{
			"crowdrank/internal/search",
			"crowdrank/internal/serve",
			"crowdrank/internal/client",
			"crowdrank/internal/replica",
			"crowdrank/cmd/crowdrankd",
		}
	}
	return toSet(pkgs)
}

func (c Config) enabled() map[string]bool {
	if len(c.Checks) == 0 {
		return toSet(AllChecks)
	}
	return toSet(c.Checks)
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// Module lints every package under the module rooted at root (the directory
// containing go.mod) and returns the findings sorted by position. A non-nil
// error means the tree could not be loaded or type-checked — a build
// problem, not a lint finding.
func Module(root string, cfg Config) ([]Finding, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	return Dirs(root, dirs, cfg)
}

// Dirs lints the packages in the given directories (absolute or relative to
// root). root must be the module root so intra-module imports resolve.
func Dirs(root string, dirs []string, cfg Config) ([]Finding, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	ld, err := newLoader(absRoot, cfg.BuildTags)
	if err != nil {
		return nil, err
	}
	var requested []*pkgInfo
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(absRoot, dir)
		}
		pkg, err := ld.loadDir(dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		requested = append(requested, pkg)
	}
	var findings []Finding
	for _, pkg := range requested {
		findings = append(findings, analyze(pkg, cfg)...)
	}
	// lockcheck's ordering graph is a whole-module property: a cycle can
	// span serve -> journal even when only serve was requested, and the
	// summaries for transitively-called functions live in dependency
	// packages. The module pass therefore walks every package the loader
	// saw (requested or pulled in as an import) and reports findings only
	// at positions inside the requested set.
	if cfg.enabled()["lockcheck"] {
		findings = append(findings, lockcheckModule(ld.loaded(), requested)...)
	}
	// Suppression directives are honored across every loaded package, not
	// just the requested ones, so a module-pass finding positioned in a
	// dependency file still sees that file's //lint:ignore comments.
	findings = suppress(ld.loaded(), findings)
	for i := range findings {
		if rel, err := filepath.Rel(absRoot, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
	sort.Slice(findings, func(a, b int) bool {
		fa, fb := findings[a], findings[b]
		if fa.File != fb.File {
			return fa.File < fb.File
		}
		if fa.Line != fb.Line {
			return fa.Line < fb.Line
		}
		if fa.Col != fb.Col {
			return fa.Col < fb.Col
		}
		return fa.Check < fb.Check
	})
	return findings, nil
}

// packageDirs walks root collecting every directory that holds Go files,
// skipping hidden directories, testdata, and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// pkgInfo is one loaded, type-checked package ready for analysis.
type pkgInfo struct {
	fset       *token.FileSet
	files      []*ast.File
	pkg        *types.Package
	info       *types.Info
	importPath string
}

// loader parses and type-checks packages from source. Imports within the
// module are resolved recursively from the tree itself; everything else
// (the standard library) is type-checked from GOROOT source via the "source"
// compiler importer, so no compiled export data or external tool is needed.
type loader struct {
	root       string
	modulePath string
	ctxt       build.Context
	fset       *token.FileSet
	std        types.Importer
	cache      map[string]*pkgInfo
	loading    map[string]bool
}

func newLoader(root string, tags []string) (*loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.BuildTags = append(append([]string(nil), ctxt.BuildTags...), tags...)
	fset := token.NewFileSet()
	return &loader{
		root:       root,
		modulePath: modPath,
		ctxt:       ctxt,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*pkgInfo),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// importPathForDir maps a directory under the module root to its import path.
func (ld *loader) importPathForDir(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, ld.root)
	}
	if rel == "." {
		return ld.modulePath, nil
	}
	return ld.modulePath + "/" + filepath.ToSlash(rel), nil
}

func (ld *loader) dirForImportPath(path string) (string, bool) {
	if path == ld.modulePath {
		return ld.root, true
	}
	if rest, ok := strings.CutPrefix(path, ld.modulePath+"/"); ok {
		return filepath.Join(ld.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// loadDir parses and type-checks the package in dir (non-test files only,
// honoring build constraints).
func (ld *loader) loadDir(dir string) (*pkgInfo, error) {
	importPath, err := ld.importPathForDir(dir)
	if err != nil {
		return nil, err
	}
	if cached, ok := ld.cache[importPath]; ok {
		return cached, nil
	}
	if ld.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	ld.loading[importPath] = true
	defer delete(ld.loading, importPath)

	bp, err := ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return ld.importPkg(path)
		}),
		Sizes: types.SizesFor(ld.ctxt.Compiler, ld.ctxt.GOARCH),
	}
	pkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pi := &pkgInfo{fset: ld.fset, files: files, pkg: pkg, info: info, importPath: importPath}
	ld.cache[importPath] = pi
	return pi, nil
}

// loaded returns every package the loader has type-checked — requested
// packages and module-local dependencies alike — sorted by import path so
// module-level passes are deterministic.
func (ld *loader) loaded() []*pkgInfo {
	out := make([]*pkgInfo, 0, len(ld.cache))
	for _, pi := range ld.cache {
		out = append(out, pi)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].importPath < out[b].importPath })
	return out
}

// importPkg resolves an import encountered while type-checking: module-local
// packages recurse into loadDir, everything else goes to the stdlib source
// importer.
func (ld *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := ld.dirForImportPath(path); ok {
		pi, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return ld.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
