package lint

import "testing"

// goroCfg marks the fixture package long-running so goroleak applies.
func goroCfg() Config {
	return Config{Checks: []string{"goroleak"}, LongRunningPkgs: []string{"fixture/p"}}
}

func TestGoroleak(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		src  string
		want int
	}{
		{
			name: "bare goroutine with no shutdown path",
			cfg:  goroCfg(),
			src: `package p

func Run() {
	go func() {
		for {
			_ = work()
		}
	}()
}

func work() int { return 0 }
`,
			want: 1,
		},
		{
			name: "captured context is a shutdown path",
			cfg:  goroCfg(),
			src: `package p

import "context"

func Run(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			_ = work()
		}
	}()
}

func work() int { return 0 }
`,
			want: 0,
		},
		{
			name: "done channel is a shutdown path",
			cfg:  goroCfg(),
			src: `package p

func Run(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = work()
		}
	}()
}

func work() int { return 0 }
`,
			want: 0,
		},
		{
			name: "waitgroup worker is awaitable",
			cfg:  goroCfg(),
			src: `package p

import "sync"

func Run() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
}

func work() int { return 0 }
`,
			want: 0,
		},
		{
			name: "channel passed as argument counts",
			cfg:  goroCfg(),
			src: `package p

func Run(ch chan int) {
	go func(out chan<- int) {
		out <- work()
	}(ch)
}

func work() int { return 0 }
`,
			want: 0,
		},
		{
			name: "named goroutine funcs are out of scope",
			cfg:  goroCfg(),
			src: `package p

func Run() {
	go spin()
}

func spin() {
	for {
		_ = work()
	}
}

func work() int { return 0 }
`,
			want: 0,
		},
		{
			name: "not long-running package is exempt",
			cfg:  Config{Checks: []string{"goroleak"}, LongRunningPkgs: []string{"fixture/other"}},
			src: `package p

func Run() {
	go func() {
		for {
			_ = work()
		}
	}()
}

func work() int { return 0 }
`,
			want: 0,
		},
		{
			name: "suppressed with reason",
			cfg:  goroCfg(),
			src: `package p

func Run() {
	//lint:ignore goroleak the loop is bounded by work() returning after a fixed number of steps
	go func() {
		for i := 0; i < 10; i++ {
			_ = work()
		}
	}()
}

func work() int { return 0 }
`,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := lintFixture(t, tc.cfg, map[string]string{"a.go": tc.src})
			if got := byCheck(fs)["goroleak"]; got != tc.want {
				t.Fatalf("want %d goroleak findings, got %d: %v", tc.want, got, fs)
			}
		})
	}
}
