package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintFixturePkgs writes a throwaway module holding several packages and
// lints only the directories named in lintDirs (all of them when nil), so
// cross-package passes can be exercised with dependencies outside the
// requested set.
func lintFixturePkgs(t *testing.T, cfg Config, pkgs map[string]map[string]string, lintDirs []string) []Finding {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for pkg, files := range pkgs {
		dir := filepath.Join(root, pkg)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, src := range files {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if lintDirs == nil {
		for pkg := range pkgs {
			lintDirs = append(lintDirs, pkg)
		}
	}
	dirs := make([]string, len(lintDirs))
	for i, d := range lintDirs {
		dirs[i] = filepath.Join(root, d)
	}
	findings, err := Dirs(root, dirs, cfg)
	if err != nil {
		t.Fatalf("lint failed: %v", err)
	}
	return findings
}

func messagesContaining(fs []Finding, check, substr string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check && strings.Contains(f.Message, substr) {
			out = append(out, f)
		}
	}
	return out
}

func TestLockcheckUnpairedLock(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int    // lockcheck findings
		hint string // substring expected in some finding
	}{
		{
			name: "lock never released",
			src: `package p

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Bad() {
	s.mu.Lock()
}
`,
			want: 1,
			hint: "still locked",
		},
		{
			name: "return path leaves lock held",
			src: `package p

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Bad(x int) int {
	s.mu.Lock()
	if x > 0 {
		return x // forgot to unlock
	}
	s.mu.Unlock()
	return 0
}
`,
			want: 1,
			hint: "returns while s.mu is still locked",
		},
		{
			name: "deferred unlock is clean",
			src: `package p

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Good(x int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if x > 0 {
		return x
	}
	return 0
}
`,
			want: 0,
		},
		{
			name: "per-branch unlock before return is clean",
			src: `package p

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Good(x int) int {
	s.mu.Lock()
	if x > 0 {
		s.mu.Unlock()
		return x
	}
	s.mu.Unlock()
	return 0
}
`,
			want: 0,
		},
		{
			name: "deferred closure unlock is clean",
			src: `package p

import "sync"

type S struct {
	mu  sync.Mutex
	n   int
}

func (s *S) Good() {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n++
}
`,
			want: 0,
		},
		{
			name: "rwmutex read and write sides pair independently",
			src: `package p

import "sync"

type S struct{ mu sync.RWMutex }

func (s *S) Bad() {
	s.mu.RLock()
	s.mu.Unlock() // wrong side: the read lock is still owed
}
`,
			want: 1,
			hint: "(read)",
		},
		{
			name: "lock acquired in loop body and never released",
			src: `package p

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Bad(xs []int) {
	for range xs {
		s.mu.Lock()
	}
}
`,
			want: 1,
			hint: "next iteration",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := lintFixture(t, Config{Checks: []string{"lockcheck"}}, map[string]string{"a.go": tc.src})
			if got := byCheck(fs)["lockcheck"]; got != tc.want {
				t.Fatalf("want %d lockcheck findings, got %d: %v", tc.want, got, fs)
			}
			if tc.hint != "" && len(messagesContaining(fs, "lockcheck", tc.hint)) == 0 {
				t.Fatalf("no finding mentions %q: %v", tc.hint, fs)
			}
		})
	}
}

func TestLockcheckBlockingWhileHeld(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
		hint string
	}{
		{
			name: "file sync under lock",
			src: `package p

import (
	"os"
	"sync"
)

type S struct{ mu sync.Mutex }

func (s *S) Bad(f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.Sync()
}
`,
			want: 1,
			hint: "os.File.Sync",
		},
		{
			name: "channel send under lock",
			src: `package p

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) Bad() {
	s.mu.Lock()
	s.ch <- 1
	s.mu.Unlock()
}
`,
			want: 1,
			hint: "channel send",
		},
		{
			name: "blocking call through a callee",
			src: `package p

import (
	"os"
	"sync"
)

type S struct {
	mu sync.Mutex
	f  *os.File
}

func (s *S) flush() error { return s.f.Sync() }

func (s *S) Bad() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush()
}
`,
			want: 1,
			hint: "may block",
		},
		{
			name: "blocking after unlock is clean",
			src: `package p

import (
	"os"
	"sync"
)

type S struct{ mu sync.Mutex }

func (s *S) Good(f *os.File) error {
	s.mu.Lock()
	s.mu.Unlock()
	return f.Sync()
}
`,
			want: 0,
		},
		{
			name: "select with default is non-blocking",
			src: `package p

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) Good() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
		return true
	default:
		return false
	}
}
`,
			want: 0,
		},
		{
			name: "suppressed with reason",
			src: `package p

import (
	"os"
	"sync"
)

type S struct{ mu sync.Mutex }

func (s *S) Deliberate(f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockcheck durability requires the fsync inside the critical section
	return f.Sync()
}
`,
			want: 0,
		},
		{
			name: "directive without reason stays inert",
			src: `package p

import (
	"os"
	"sync"
)

type S struct{ mu sync.Mutex }

func (s *S) Bad(f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockcheck
	return f.Sync()
}
`,
			want: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := lintFixture(t, Config{Checks: []string{"lockcheck"}}, map[string]string{"a.go": tc.src})
			if got := byCheck(fs)["lockcheck"]; got != tc.want {
				t.Fatalf("want %d lockcheck findings, got %d: %v", tc.want, got, fs)
			}
			if tc.hint != "" && len(messagesContaining(fs, "lockcheck", tc.hint)) == 0 {
				t.Fatalf("no finding mentions %q: %v", tc.hint, fs)
			}
		})
	}
}

func TestLockcheckOrderingCycle(t *testing.T) {
	t.Run("direct inversion", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"lockcheck"}}, map[string]string{
			"a.go": `package p

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) AB() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) BA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`,
		})
		if got := len(messagesContaining(fs, "lockcheck", "lock-ordering cycle")); got != 1 {
			t.Fatalf("want exactly 1 cycle finding for the a/b inversion, got %d: %v", got, fs)
		}
	})
	t.Run("inversion through a callee", func(t *testing.T) {
		fs := lintFixture(t, Config{Checks: []string{"lockcheck"}}, map[string]string{
			"a.go": `package p

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) lockB() {
	s.b.Lock()
	s.b.Unlock()
}

func (s *S) AB() {
	s.a.Lock()
	s.lockB() // acquires b while a held, one call deep
	s.a.Unlock()
}

func (s *S) BA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`,
		})
		if got := len(messagesContaining(fs, "lockcheck", "lock-ordering cycle")); got != 1 {
			t.Fatalf("want 1 cycle finding through the callee, got %d: %v", got, fs)
		}
	})
	t.Run("consistent order across packages is clean", func(t *testing.T) {
		fs := lintFixturePkgs(t, Config{Checks: []string{"lockcheck"}}, map[string]map[string]string{
			"q": {"q.go": `package q

import "sync"

type J struct{ Mu sync.Mutex }

func (j *J) Append() {
	j.Mu.Lock()
	j.Mu.Unlock()
}
`},
			"p": {"p.go": `package p

import (
	"sync"

	"fixture/q"
)

type S struct {
	mu  sync.Mutex
	jnl *q.J
}

func (s *S) Ingest() {
	s.mu.Lock()
	s.jnl.Append() // p.mu -> q.Mu, never inverted
	s.mu.Unlock()
}
`},
		}, nil)
		if len(fs) != 0 {
			t.Fatalf("a one-directional cross-package edge must be clean, got %v", fs)
		}
	})
	t.Run("cross-package blocking surfaces in the requested package only", func(t *testing.T) {
		pkgs := map[string]map[string]string{
			"q": {"q.go": `package q

import (
	"os"
	"sync"
)

type J struct {
	mu sync.Mutex
	f  *os.File
}

func (j *J) Append(b []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := j.f.Write(b)
	return err
}
`},
			"p": {"p.go": `package p

import (
	"sync"

	"fixture/q"
)

type S struct {
	mu  sync.Mutex
	jnl *q.J
}

func (s *S) Ingest(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jnl.Append(b)
}
`},
		}
		// Linting only p: p's lock-across-Append is reported (Append may
		// block through its file write), q's own finding is out of scope.
		fs := lintFixturePkgs(t, Config{Checks: []string{"lockcheck"}}, pkgs, []string{"p"})
		if got := byCheck(fs)["lockcheck"]; got != 1 {
			t.Fatalf("want 1 finding in p only, got %d: %v", got, fs)
		}
		if len(messagesContaining(fs, "lockcheck", "q.J.Append")) != 1 {
			t.Fatalf("finding should name the blocking callee q.J.Append: %v", fs)
		}
		for _, f := range fs {
			if !strings.Contains(f.File, "p") || strings.Contains(f.File, "q.go") {
				t.Fatalf("finding positioned outside the requested package: %v", f)
			}
		}
	})
}
