package lint

// lockcheck: mutex discipline for the daemon's six-mutex concurrency model.
//
// The analysis runs in two layers. An intra-procedural walker interprets each
// function body over an abstract lock state — the set of locks currently held
// and the set of outstanding unlock obligations — merging branches by
// intersection (a lock is "held" after an if only if every live path holds
// it). The walker emits per-function findings (a return path that leaves a
// lock held, a lock acquired in a loop body and still held at the end of the
// iteration) and records a summary: every acquisition with the locks held at
// that moment, every blocking operation, and every resolvable call.
//
// A module-level pass then combines the summaries. A function "may block" if
// its body blocks or any transitive callee does; a call made while holding a
// lock to a may-block function is reported just like a direct fsync under the
// lock. The same snapshots yield lock-ordering edges — "B acquired (possibly
// inside a callee) while A held" — over globally identifiable locks (struct
// fields and package-level variables). Any cycle in that graph is a potential
// deadlock and is reported at one of its constituent acquisition sites.
//
// The walker is deliberately conservative where precision would need a full
// CFG: deferred unlocks (direct or inside a deferred closure) discharge the
// obligation for the whole function, select commclauses do not double-count
// the select's own blocking, and function literals are analyzed as separate
// scopes starting from an empty lock state.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockKind distinguishes the write and read sides of an RWMutex; Lock/Unlock
// and RLock/RUnlock pair within a kind.
type lockKind int8

const (
	lockWrite lockKind = iota
	lockRead
)

// lockKey identifies a mutex within one function body: the source text of the
// expression it is locked through, plus the read/write side.
type lockKey struct {
	expr string
	kind lockKind
}

func (k lockKey) String() string {
	if k.kind == lockRead {
		return k.expr + " (read)"
	}
	return k.expr
}

// heldLock is one lock held at a program point. globalID is the cross-package
// identity ("pkgpath.Type.field" or "pkgpath.var") when the lock is a struct
// field or package-level variable; empty for locals, which only participate
// in intra-procedural findings.
type heldLock struct {
	key      lockKey
	globalID string
	pos      token.Pos
}

type eventKind int8

const (
	evAcquire eventKind = iota
	evCall
	evBlock
)

// lockEvent is one lock-relevant operation observed in a function body, with
// a snapshot of the locks held when it fires (excluding, for evAcquire, the
// lock being acquired).
type lockEvent struct {
	kind     eventKind
	pos      token.Pos
	held     []heldLock
	globalID string      // evAcquire: global identity of the acquired lock ("" for locals)
	callee   *types.Func // evCall
	desc     string      // evBlock: human description of the blocking operation
}

// funcSummary is the per-function result of the intra-procedural walk.
type funcSummary struct {
	pkg  *pkgInfo
	obj  *types.Func // nil for function literals
	name string
	// acquired maps each globally identifiable lock this body may acquire
	// to one acquisition site, for transitive edge construction.
	acquired map[string]token.Pos
	events   []lockEvent
	callees  []*types.Func
	// blocks is true when the body contains a direct blocking operation.
	blocks   bool
	findings []Finding
}

// lockState is the abstract state at one program point.
type lockState struct {
	// oblig: locks this function must still release before returning.
	// Discharged by an explicit unlock or a deferred one.
	oblig map[lockKey]token.Pos
	// held: locks currently held. Unlike oblig, a deferred unlock does NOT
	// remove a lock from held — it stays held until function exit, which is
	// exactly what blocking and ordering analysis must see.
	held map[lockKey]heldLock
}

func newLockState() *lockState {
	return &lockState{oblig: map[lockKey]token.Pos{}, held: map[lockKey]heldLock{}}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.oblig {
		c.oblig[k] = v
	}
	for k, v := range st.held {
		c.held[k] = v
	}
	return c
}

// intersectInto narrows st to the locks present in every exit state. Called
// after a branch: a lock survives only if all live paths agree.
func (st *lockState) intersectInto(exits []*lockState) {
	if len(exits) == 0 {
		return
	}
	st.oblig = exits[0].oblig
	st.held = exits[0].held
	for _, e := range exits[1:] {
		for k := range st.oblig {
			if _, ok := e.oblig[k]; !ok {
				delete(st.oblig, k)
			}
		}
		for k := range st.held {
			if _, ok := e.held[k]; !ok {
				delete(st.held, k)
			}
		}
	}
}

func (st *lockState) snapshot() []heldLock {
	out := make([]heldLock, 0, len(st.held))
	for _, h := range st.held {
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].key.expr != out[b].key.expr {
			return out[a].key.expr < out[b].key.expr
		}
		return out[a].key.kind < out[b].key.kind
	})
	return out
}

// ---- intra-procedural walker -----------------------------------------------

// lockCollector walks every function declaration (and queued literal) in one
// package, producing one summary per body.
type lockCollector struct {
	pkg   *pkgInfo
	sums  []*funcSummary
	queue []litJob
}

type litJob struct {
	lit  *ast.FuncLit
	name string
}

// collectLockSummaries runs the intra-procedural walker over every function
// body in pkg, in source order.
func collectLockSummaries(pkg *pkgInfo) []*funcSummary {
	c := &lockCollector{pkg: pkg}
	for _, f := range pkg.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				name = recvTypeName(fd) + "." + name
			}
			obj, _ := pkg.info.Defs[fd.Name].(*types.Func)
			c.runBody(obj, name, fd.Body)
			// Literals discovered inside this declaration (including ones
			// nested in other literals) analyze as independent scopes.
			for i := 0; i < len(c.queue); i++ {
				job := c.queue[i]
				c.runBody(nil, job.name, job.lit.Body)
			}
			c.queue = c.queue[:0]
		}
	}
	return c.sums
}

func (c *lockCollector) runBody(obj *types.Func, name string, body *ast.BlockStmt) {
	sum := &funcSummary{pkg: c.pkg, obj: obj, name: name, acquired: map[string]token.Pos{}}
	w := &lockWalker{pkg: c.pkg, sum: sum, col: c}
	st := newLockState()
	terminated := w.stmts(body.List, st)
	if !terminated {
		w.reportObligations(st, body.Rbrace, "reaches its end")
	}
	c.sums = append(c.sums, sum)
}

type lockWalker struct {
	pkg *pkgInfo
	sum *funcSummary
	col *lockCollector
	// muteBlock suppresses blocking events: inside a select's commclauses
	// the select statement itself already carries the blocking semantics
	// (or, with a default clause, there are none).
	muteBlock int
}

func (w *lockWalker) queueLit(lit *ast.FuncLit) {
	w.col.queue = append(w.col.queue, litJob{lit: lit, name: "func literal in " + w.sum.name})
}

func (w *lockWalker) finding(pos token.Pos, format string, args ...any) {
	w.sum.findings = append(w.sum.findings, findingAt(w.pkg, pos, "lockcheck", format, args...))
}

// stmts walks a statement list; the return value reports whether control
// definitely leaves the enclosing path (return, or break/continue/goto).
func (w *lockWalker) stmts(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.exprs(s.X, st)
	case *ast.SendStmt:
		w.exprs(s.Chan, st)
		w.exprs(s.Value, st)
		w.block(st, s.Arrow, "a channel send")
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprs(e, st)
		}
		for _, e := range s.Lhs {
			w.exprs(e, st)
		}
	case *ast.DeferStmt:
		w.deferStmt(s, st)
	case *ast.GoStmt:
		for _, e := range s.Call.Args {
			w.exprs(e, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.queueLit(lit)
		} else {
			w.exprs(s.Call.Fun, st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.exprs(e, st)
		}
		w.reportObligations(st, s.Pos(), "returns")
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; the state they
		// carry rejoins at a loop boundary the walker does not model, so
		// treat the path as terminated (conservative for fall-through).
		return true
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.exprs(s.Cond, st)
		}
		body := st.clone()
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		w.reportLoopLeak(st, body)
	case *ast.RangeStmt:
		w.exprs(s.X, st)
		if t := w.pkg.info.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.block(st, s.For, "a range over a channel")
			}
		}
		body := st.clone()
		w.stmts(s.Body.List, body)
		w.reportLoopLeak(st, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.exprs(s.Tag, st)
		}
		return w.clauses(s.Body.List, st, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		return w.clauses(s.Body.List, st, false)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.block(st, s.Select, "a select with no default")
		}
		return w.clauses(s.Body.List, st, true)
	default:
		// Declarations, inc/dec, empty statements: scan any contained
		// expressions.
		w.exprs(s, st)
	}
	return false
}

func (w *lockWalker) ifStmt(s *ast.IfStmt, st *lockState) bool {
	if s.Init != nil {
		w.stmt(s.Init, st)
	}
	w.exprs(s.Cond, st)
	body := st.clone()
	bodyTerm := w.stmts(s.Body.List, body)
	var exits []*lockState
	if !bodyTerm {
		exits = append(exits, body)
	}
	if s.Else == nil {
		exits = append(exits, st.clone())
	} else {
		other := st.clone()
		if !w.stmt(s.Else, other) {
			exits = append(exits, other)
		}
	}
	if len(exits) == 0 {
		return true
	}
	st.intersectInto(exits)
	return false
}

// clauses merges the case/comm clauses of a switch or select. inSelect mutes
// per-clause blocking events (the select itself already counted, or a
// default clause makes every comm non-blocking).
func (w *lockWalker) clauses(list []ast.Stmt, st *lockState, inSelect bool) bool {
	var exits []*lockState
	hasDefault := false
	for _, cs := range list {
		branch := st.clone()
		var body []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.exprs(e, branch)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				w.muteBlock++
				w.stmt(cc.Comm, branch)
				w.muteBlock--
			}
			body = cc.Body
		}
		if !w.stmts(body, branch) {
			exits = append(exits, branch)
		}
	}
	if !hasDefault {
		// No default: the pre-state can fall through only for switches
		// (no case matches); a select without default always takes a comm
		// clause, but keeping the pre-state is a safe under-approximation
		// of held locks either way.
		exits = append(exits, st.clone())
	}
	if len(exits) == 0 {
		return true
	}
	st.intersectInto(exits)
	return false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (w *lockWalker) deferStmt(s *ast.DeferStmt, st *lockState) {
	for _, e := range s.Call.Args {
		w.exprs(e, st)
	}
	if recv, method, ok := lockMethod(w.pkg.info, s.Call); ok {
		if method == "Unlock" || method == "RUnlock" {
			delete(st.oblig, lockKey{expr: types.ExprString(recv), kind: kindOfLockMethod(method)})
		}
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// A deferred closure that unlocks (the `defer func() { ...Unlock()
		// ... }()` idiom) discharges the obligation too.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, method, ok := lockMethod(w.pkg.info, call); ok && (method == "Unlock" || method == "RUnlock") {
				delete(st.oblig, lockKey{expr: types.ExprString(recv), kind: kindOfLockMethod(method)})
			}
			return true
		})
		w.queueLit(lit)
	}
}

// exprs scans an expression tree (or expression-bearing simple statement)
// for lock operations, calls, and blocking receives. Function literals are
// queued as independent scopes, not descended into.
func (w *lockWalker) exprs(n ast.Node, st *lockState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			w.queueLit(x)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.block(st, x.OpPos, "a channel receive")
			}
		case *ast.CallExpr:
			w.call(x, st)
		}
		return true
	})
}

func (w *lockWalker) call(call *ast.CallExpr, st *lockState) {
	if recv, method, ok := lockMethod(w.pkg.info, call); ok {
		key := lockKey{expr: types.ExprString(recv), kind: kindOfLockMethod(method)}
		switch method {
		case "Lock", "RLock":
			id := globalLockID(w.pkg.info, recv)
			// Snapshot before recording the new lock so the acquire event
			// sees only the locks held on entry.
			w.sum.events = append(w.sum.events, lockEvent{
				kind: evAcquire, pos: call.Pos(), held: st.snapshot(), globalID: id,
			})
			if id != "" {
				if _, seen := w.sum.acquired[id]; !seen {
					w.sum.acquired[id] = call.Pos()
				}
			}
			st.oblig[key] = call.Pos()
			st.held[key] = heldLock{key: key, globalID: id, pos: call.Pos()}
		case "Unlock", "RUnlock":
			delete(st.oblig, key)
			delete(st.held, key)
		}
		return
	}
	callee := calleeFunc(w.pkg.info, call)
	if callee == nil {
		return
	}
	if desc, blocking := blockingCallee(callee); blocking {
		w.block(st, call.Pos(), desc)
		return
	}
	w.sum.callees = append(w.sum.callees, callee)
	w.sum.events = append(w.sum.events, lockEvent{
		kind: evCall, pos: call.Pos(), held: st.snapshot(), callee: callee,
	})
}

func (w *lockWalker) block(st *lockState, pos token.Pos, desc string) {
	if w.muteBlock > 0 {
		return
	}
	w.sum.blocks = true
	w.sum.events = append(w.sum.events, lockEvent{
		kind: evBlock, pos: pos, held: st.snapshot(), desc: desc,
	})
}

// reportObligations emits one finding per lock still owed when control leaves
// the function (verb is "returns" or "reaches its end").
func (w *lockWalker) reportObligations(st *lockState, pos token.Pos, verb string) {
	keys := make([]lockKey, 0, len(st.oblig))
	for k := range st.oblig {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].expr != keys[b].expr {
			return keys[a].expr < keys[b].expr
		}
		return keys[a].kind < keys[b].kind
	})
	for _, k := range keys {
		at := w.pkg.fset.Position(st.oblig[k])
		w.finding(pos, "%s %s while %s is still locked (locked at line %d); unlock on every path or defer the unlock",
			w.sum.name, verb, k, at.Line)
	}
}

// reportLoopLeak flags locks acquired inside a loop body and still held when
// the iteration ends: the next iteration would re-acquire and self-deadlock
// (Mutex) or leak read locks (RWMutex).
func (w *lockWalker) reportLoopLeak(pre, body *lockState) {
	keys := make([]lockKey, 0, len(body.oblig))
	for k := range body.oblig {
		if _, outer := pre.oblig[k]; !outer {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].expr < keys[b].expr })
	for _, k := range keys {
		w.finding(body.oblig[k], "%s is locked inside the loop body and still held at the end of the iteration; the next iteration would deadlock",
			k)
	}
}

// ---- classification helpers -------------------------------------------------

// lockMethod reports whether call is (R)Lock/(R)Unlock on a sync.Mutex or
// sync.RWMutex, returning the receiver expression and method name.
func lockMethod(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil, "", false
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

func kindOfLockMethod(method string) lockKind {
	if method == "RLock" || method == "RUnlock" {
		return lockRead
	}
	return lockWrite
}

func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// globalLockID gives a lock expression a cross-package identity: a struct
// field becomes "pkgpath.Type.field", a package-level variable "pkgpath.var".
// Locals return "".
func globalLockID(info *types.Info, recv ast.Expr) string {
	switch e := recv.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if named := namedRecv(s.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + s.Obj().Name()
			}
		}
	}
	return ""
}

// shortLockID trims the import-path prefix of a global lock ID for messages:
// "crowdrank/internal/serve.Server.writeMu" -> "serve.Server.writeMu".
func shortLockID(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// calleeFunc resolves a call to its *types.Func when the callee is a plain
// function or method reference (not a func-typed variable or conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// osFileBlocking lists *os.File methods that hit the disk.
var osFileBlocking = map[string]bool{
	"Sync": true, "Write": true, "WriteString": true, "WriteAt": true,
	"Read": true, "ReadAt": true, "ReadFrom": true, "Truncate": true,
}

// osPkgBlocking lists os package functions that hit the disk.
var osPkgBlocking = map[string]bool{
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "ReadDir": true, "Open": true, "OpenFile": true,
	"Create": true, "Mkdir": true, "MkdirAll": true, "Stat": true,
}

// blockingCallee classifies callees that block by their nature: file I/O,
// anything in net/http, time.Sleep, and WaitGroup.Wait.
func blockingCallee(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		named := namedRecv(sig.Recv().Type())
		if named == nil || named.Obj().Pkg() == nil {
			return "", false
		}
		owner := named.Obj().Pkg().Path()
		switch {
		case owner == "os" && named.Obj().Name() == "File" && osFileBlocking[fn.Name()]:
			return "os.File." + fn.Name(), true
		case owner == "sync" && named.Obj().Name() == "WaitGroup" && fn.Name() == "Wait":
			return "sync.WaitGroup.Wait", true
		case owner == "net/http":
			return "a net/http call", true
		}
		return "", false
	}
	switch pkg.Path() {
	case "os":
		if osPkgBlocking[fn.Name()] {
			return "os." + fn.Name(), true
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "net/http":
		return "a net/http call", true
	}
	return "", false
}

// funcDisplay renders a callee for messages: "journal.Journal.Append".
func funcDisplay(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecv(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			p = p[i+1:]
		}
		name = p + "." + name
	}
	return name
}

// findingAt builds a Finding at a position in pkg (the free-function twin of
// analysis.report, for passes that run without an analysis).
func findingAt(pkg *pkgInfo, pos token.Pos, check, format string, args ...any) Finding {
	p := pkg.fset.Position(pos)
	return Finding{
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// ---- module-level pass ------------------------------------------------------

// lockcheckModule combines per-function summaries from every loaded package
// into transitive may-block and may-acquire facts, then reports
// blocking-while-held findings and lock-ordering cycles. Findings are
// emitted only at positions inside the requested packages.
func lockcheckModule(all, requested []*pkgInfo) []Finding {
	reqSet := make(map[string]bool, len(requested))
	for _, p := range requested {
		reqSet[p.importPath] = true
	}
	var sums []*funcSummary
	byObj := map[*types.Func]*funcSummary{}
	for _, pkg := range all {
		for _, s := range collectLockSummaries(pkg) {
			sums = append(sums, s)
			if s.obj != nil {
				byObj[s.obj] = s
			}
		}
	}
	m := &lockModule{byObj: byObj, blocksMemo: map[*funcSummary]int8{}, acqMemo: map[*funcSummary]map[string]token.Pos{}}

	var findings []Finding
	for _, s := range sums {
		if reqSet[s.pkg.importPath] {
			findings = append(findings, s.findings...)
		}
	}
	findings = append(findings, m.blockingFindings(sums, reqSet)...)
	findings = append(findings, m.cycleFindings(sums, reqSet)...)
	return findings
}

type lockModule struct {
	byObj      map[*types.Func]*funcSummary
	blocksMemo map[*funcSummary]int8 // 0 unvisited, 1 visiting, 2 no, 3 yes
	acqMemo    map[*funcSummary]map[string]token.Pos
}

// mayBlock reports whether s or any transitive callee with a known body
// performs a blocking operation.
func (m *lockModule) mayBlock(s *funcSummary) bool {
	switch m.blocksMemo[s] {
	case 1: // recursion: assume the cycle itself does not block
		return false
	case 2:
		return false
	case 3:
		return true
	}
	m.blocksMemo[s] = 1
	out := s.blocks
	if !out {
		for _, c := range s.callees {
			if cs := m.byObj[c]; cs != nil && m.mayBlock(cs) {
				out = true
				break
			}
		}
	}
	if out {
		m.blocksMemo[s] = 3
	} else {
		m.blocksMemo[s] = 2
	}
	return out
}

// transitiveAcquires returns every globally identifiable lock s may acquire,
// directly or through callees, mapped to one representative site.
func (m *lockModule) transitiveAcquires(s *funcSummary) map[string]token.Pos {
	if acq, ok := m.acqMemo[s]; ok {
		return acq
	}
	// Seed the memo with the direct set to cut recursion; the fixed point
	// over-approximates nothing the daemon has (no recursive lockers).
	out := make(map[string]token.Pos, len(s.acquired))
	for id, pos := range s.acquired {
		out[id] = pos
	}
	m.acqMemo[s] = out
	for _, c := range s.callees {
		if cs := m.byObj[c]; cs != nil {
			for id, pos := range m.transitiveAcquires(cs) {
				if _, ok := out[id]; !ok {
					out[id] = pos
				}
			}
		}
	}
	return out
}

// blockingFindings reports each lock held across a blocking operation —
// direct, or a call to a function that may block — once per (function, lock).
func (m *lockModule) blockingFindings(sums []*funcSummary, reqSet map[string]bool) []Finding {
	var findings []Finding
	for _, s := range sums {
		if !reqSet[s.pkg.importPath] {
			continue
		}
		seen := map[lockKey]bool{}
		for _, ev := range s.events {
			if len(ev.held) == 0 {
				continue
			}
			var desc string
			switch ev.kind {
			case evBlock:
				desc = ev.desc
			case evCall:
				if cs := m.byObj[ev.callee]; cs != nil && m.mayBlock(cs) {
					desc = "a call to " + funcDisplay(ev.callee) + ", which may block"
				}
			}
			if desc == "" {
				continue
			}
			for _, h := range ev.held {
				if seen[h.key] {
					continue
				}
				seen[h.key] = true
				findings = append(findings, findingAt(s.pkg, ev.pos, "lockcheck",
					"%s holds %s across %s; move the blocking work outside the critical section, or suppress with the reason the wait is deliberate",
					s.name, h.key, desc))
			}
		}
	}
	return findings
}

// lockEdge is one "to acquired while from held" observation.
type lockEdge struct {
	from, to string
	pkg      *pkgInfo
	pos      token.Pos
	inReq    bool
}

// cycleFindings builds the global lock-ordering graph and reports each
// distinct cycle once, positioned at a constituent edge (preferring one
// inside the requested packages).
func (m *lockModule) cycleFindings(sums []*funcSummary, reqSet map[string]bool) []Finding {
	edges := map[[2]string]lockEdge{}
	addEdge := func(from, to string, pkg *pkgInfo, pos token.Pos) {
		key := [2]string{from, to}
		inReq := reqSet[pkg.importPath]
		if prev, ok := edges[key]; ok && (prev.inReq || !inReq) {
			return
		}
		edges[key] = lockEdge{from: from, to: to, pkg: pkg, pos: pos, inReq: inReq}
	}
	for _, s := range sums {
		for _, ev := range s.events {
			if len(ev.held) == 0 {
				continue
			}
			var acq map[string]token.Pos
			switch ev.kind {
			case evAcquire:
				if ev.globalID != "" {
					acq = map[string]token.Pos{ev.globalID: ev.pos}
				}
			case evCall:
				if cs := m.byObj[ev.callee]; cs != nil {
					acq = m.transitiveAcquires(cs)
				}
			}
			for _, h := range ev.held {
				if h.globalID == "" {
					continue
				}
				for id := range acq {
					addEdge(h.globalID, id, s.pkg, ev.pos)
				}
			}
		}
	}
	// Deterministic adjacency.
	adj := map[string][]string{}
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		sort.Strings(adj[n])
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var findings []Finding
	seenCycle := map[string]bool{}
	onPath := map[string]int{} // node -> index in path, -1 when done
	var path []string
	var dfs func(n string)
	dfs = func(n string) {
		onPath[n] = len(path)
		path = append(path, n)
		for _, next := range adj[n] {
			if idx, ok := onPath[next]; ok {
				if idx >= 0 {
					cycle := append([]string(nil), path[idx:]...)
					findings = append(findings, m.cycleFinding(cycle, edges, seenCycle)...)
				}
				continue
			}
			dfs(next)
		}
		path = path[:len(path)-1]
		onPath[n] = -1
	}
	for _, n := range nodes {
		if _, ok := onPath[n]; !ok {
			dfs(n)
		}
	}
	return findings
}

// cycleFinding canonicalizes one cycle (rotation to its smallest node) and,
// if unseen, renders it as a finding at the best available edge site.
func (m *lockModule) cycleFinding(cycle []string, edges map[[2]string]lockEdge, seen map[string]bool) []Finding {
	min := 0
	for i, n := range cycle {
		if n < cycle[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	key := strings.Join(rot, "->")
	if seen[key] {
		return nil
	}
	seen[key] = true
	// Pick the reporting edge: prefer one observed in a requested package.
	var at lockEdge
	found := false
	for i := range rot {
		e, ok := edges[[2]string{rot[i], rot[(i+1)%len(rot)]}]
		if !ok {
			continue
		}
		if !found || (e.inReq && !at.inReq) {
			at, found = e, true
		}
	}
	if !found || !at.inReq {
		return nil
	}
	parts := make([]string, 0, len(rot)+1)
	for _, n := range rot {
		parts = append(parts, shortLockID(n))
	}
	parts = append(parts, shortLockID(rot[0]))
	return []Finding{findingAt(at.pkg, at.pos, "lockcheck",
		"lock-ordering cycle %s (this site acquires %s while holding %s); pick one global acquisition order to avoid deadlock",
		strings.Join(parts, " -> "), shortLockID(at.to), shortLockID(at.from))}
}
