package lint

// srvtimeout: HTTP servers without read timeouts. In a long-running
// package an http.Server composite literal that sets neither ReadTimeout
// nor ReadHeaderTimeout accepts connections a slow-loris client can pin
// forever: each dribbled header byte resets the idle window, so the
// connection (and eventually the whole accept backlog) is held hostage by
// traffic the daemon cannot shed. The check is syntactic over the literal:
// either field keyed in the literal satisfies it, however the value is
// computed; servers configured field-by-field after construction need a
// reasoned //lint:ignore.

import (
	"go/ast"
	"go/types"
)

func (a *analysis) checkSrvTimeout() {
	if !a.cfg.longRunning()[a.pkg.importPath] {
		return
	}
	for _, f := range a.pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := a.pkg.info.Types[cl]
			if !ok || !isHTTPServerType(tv.Type) {
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok && (id.Name == "ReadTimeout" || id.Name == "ReadHeaderTimeout") {
					return true
				}
			}
			a.report(cl.Pos(), "srvtimeout",
				"http.Server literal sets neither ReadTimeout nor ReadHeaderTimeout; a client that never finishes its request pins the connection forever — bound at least header reads (and consider WriteTimeout/IdleTimeout)")
			return true
		})
	}
}

// isHTTPServerType reports whether t is net/http.Server.
func isHTTPServerType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Server"
}
