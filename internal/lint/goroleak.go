package lint

// goroleak: goroutines with no shutdown path. In a long-running package a
// `go func` literal that captures neither a context.Context, nor any channel
// (a done channel, a work channel it ranges over, a result channel it sends
// on), nor a sync.WaitGroup can never be stopped or awaited — it outlives
// Close and leaks across the daemon's drain. The check is syntactic over the
// literal's body and call arguments; any of the three capture kinds counts,
// as does an explicit select or channel operation.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func (a *analysis) checkGoroleak() {
	if !a.cfg.longRunning()[a.pkg.importPath] {
		return
	}
	for _, f := range a.pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if goroutineHasShutdownPath(a.pkg.info, lit, g.Call.Args) {
				return true
			}
			a.report(g.Pos(), "goroleak",
				"goroutine literal captures no context.Context, channel, or sync.WaitGroup; nothing can stop or await it — thread a cancellation signal through, or suppress with the reason its lifetime is bounded")
			return true
		})
	}
}

// goroutineHasShutdownPath scans the literal (type, body) and the call's
// arguments for any evidence of a stop/await mechanism.
func goroutineHasShutdownPath(info *types.Info, lit *ast.FuncLit, args []ast.Expr) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil || obj.Type() == nil {
				return true
			}
			if isShutdownCapture(obj.Type()) {
				found = true
				return false
			}
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.SendStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		}
		return true
	}
	for _, arg := range args {
		ast.Inspect(arg, check)
	}
	ast.Inspect(lit.Type, check)
	ast.Inspect(lit.Body, check)
	return found
}

func isShutdownCapture(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named := namedRecv(t); named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
		return true
	}
	return false
}
