package lint

import "testing"

// srvCfg marks the fixture package long-running so srvtimeout applies.
func srvCfg() Config {
	return Config{Checks: []string{"srvtimeout"}, LongRunningPkgs: []string{"fixture/p"}}
}

func TestSrvTimeout(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		src  string
		want int
	}{
		{
			name: "no timeouts at all",
			cfg:  srvCfg(),
			src: `package p

import "net/http"

func Serve() *http.Server {
	return &http.Server{Addr: ":8080", Handler: http.NewServeMux()}
}
`,
			want: 1,
		},
		{
			name: "only write and idle timeouts still exposed to slow-loris reads",
			cfg:  srvCfg(),
			src: `package p

import (
	"net/http"
	"time"
)

func Serve() *http.Server {
	return &http.Server{WriteTimeout: time.Minute, IdleTimeout: time.Minute}
}
`,
			want: 1,
		},
		{
			name: "ReadHeaderTimeout satisfies the check",
			cfg:  srvCfg(),
			src: `package p

import (
	"net/http"
	"time"
)

func Serve() *http.Server {
	return &http.Server{ReadHeaderTimeout: 5 * time.Second}
}
`,
			want: 0,
		},
		{
			name: "ReadTimeout satisfies the check",
			cfg:  srvCfg(),
			src: `package p

import (
	"net/http"
	"time"
)

func Serve() http.Server {
	return http.Server{ReadTimeout: time.Minute}
}
`,
			want: 0,
		},
		{
			name: "computed timeout values count",
			cfg:  srvCfg(),
			src: `package p

import (
	"net/http"
	"time"
)

func Serve(d time.Duration) *http.Server {
	return &http.Server{ReadTimeout: d}
}
`,
			want: 0,
		},
		{
			name: "other struct literals are out of scope",
			cfg:  srvCfg(),
			src: `package p

import "net/http"

type Server struct {
	Addr string
}

func Serve() (*Server, *http.Client) {
	return &Server{Addr: ":1"}, &http.Client{}
}
`,
			want: 0,
		},
		{
			name: "not long-running package is exempt",
			cfg:  Config{Checks: []string{"srvtimeout"}, LongRunningPkgs: []string{"fixture/other"}},
			src: `package p

import "net/http"

func Serve() *http.Server {
	return &http.Server{Addr: ":8080"}
}
`,
			want: 0,
		},
		{
			name: "suppressed with reason",
			cfg:  srvCfg(),
			src: `package p

import "net/http"

func Serve() *http.Server {
	//lint:ignore srvtimeout timeouts are assigned field-by-field right after construction
	srv := &http.Server{Addr: ":8080"}
	srv.ReadHeaderTimeout = 1e9
	return srv
}
`,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := lintFixture(t, tc.cfg, map[string]string{"a.go": tc.src})
			if got := byCheck(fs)["srvtimeout"]; got != tc.want {
				t.Fatalf("want %d srvtimeout findings, got %d: %v", tc.want, got, fs)
			}
		})
	}
}
