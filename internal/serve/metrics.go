package serve

import (
	"strconv"

	"crowdrank/internal/journal"
	"crowdrank/internal/obs"
	"crowdrank/internal/snapshot"
)

// Stage names used by the per-stage inference latency histograms. Truth,
// smooth, and propagate are observed when a closure is (re)built — cache
// hits skip them by design; search is observed on every ranked request.
const (
	stageTruth     = "truth"
	stageSmooth    = "smooth"
	stagePropagate = "propagate"
	stageSearch    = "search"
)

// metrics is the daemon's metric bundle: every counter, gauge, and
// histogram the server observes, registered once at construction. All
// operations on the hot path are single atomics; gauges that mirror
// existing state (queue depths, disk usage) are scrape-time funcs and
// cost nothing between scrapes.
type metrics struct {
	reg *obs.Registry

	ingestBatches     *obs.Counter
	ingestAccepted    *obs.Counter
	ingestDuplicate   *obs.Counter
	ingestMalformed   *obs.Counter
	idempotentReplays *obs.Counter // keyed batches acked from the window, not re-applied
	rejectedIngest    *obs.Counter // 429s from the full ingest queue
	rejectedRank      *obs.Counter // 429s from the full rank queue
	panics            *obs.Counter // handler panics answered 500

	rankByAlgo   map[string]*obs.Counter
	rankDegraded *obs.Counter
	rankSeconds  *obs.Histogram
	stageSeconds map[string]*obs.Histogram

	slowRequests *obs.Counter
	httpSeconds  map[string]*obs.Histogram

	snapshotOK           *obs.Counter
	snapshotFailed       *obs.Counter
	snapshotsPruned      *obs.Counter
	snapshotWriteSeconds *obs.Histogram
	snapshotLoadSeconds  *obs.Histogram

	breakerTrips *obs.Counter

	journal journal.Metrics
}

// httpRoutes are the instrumented endpoints; per-route latency histograms
// are pre-registered so the metric family exists from the first scrape.
var httpRoutes = []string{"votes", "rank", "snapshot", "healthz", "readyz", "metrics"}

// rankAlgorithms is the closed set of ladder outcomes; pre-registering
// one counter per rung keeps the exposition stable regardless of traffic.
var rankAlgorithms = []string{AlgoExactHeldKarp, AlgoExactBranchBound, AlgoSAPS, AlgoGreedy, AlgoUninformed}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		reg: reg,

		ingestBatches:     reg.Counter("crowdrankd_ingest_batches_total", "Acknowledged (durable) ingest batches."),
		ingestAccepted:    reg.Counter("crowdrankd_ingest_votes_total", "Votes by ingest outcome.", obs.L("result", "accepted")),
		ingestDuplicate:   reg.Counter("crowdrankd_ingest_votes_total", "Votes by ingest outcome.", obs.L("result", "duplicate")),
		ingestMalformed:   reg.Counter("crowdrankd_ingest_votes_total", "Votes by ingest outcome.", obs.L("result", "malformed")),
		idempotentReplays: reg.Counter("crowdrankd_ingest_idempotent_replays_total", "Keyed batches acknowledged from the idempotency window without re-applying."),
		rejectedIngest:    reg.Counter("crowdrankd_queue_rejections_total", "Requests answered 429 because a bounded queue was full.", obs.L("queue", "ingest")),
		rejectedRank:      reg.Counter("crowdrankd_queue_rejections_total", "Requests answered 429 because a bounded queue was full.", obs.L("queue", "rank")),
		panics:            reg.Counter("crowdrankd_http_panics_total", "HTTP handlers that panicked and were answered 500 by the recovery middleware."),

		rankByAlgo:   make(map[string]*obs.Counter, len(rankAlgorithms)),
		rankDegraded: reg.Counter("crowdrankd_rank_degraded_total", "Rank responses produced below the exact rung."),
		rankSeconds:  reg.Histogram("crowdrankd_rank_seconds", "End-to-end rank latency.", nil),
		stageSeconds: make(map[string]*obs.Histogram, 4),

		slowRequests: reg.Counter("crowdrankd_http_slow_requests_total", "HTTP requests slower than the configured threshold."),
		httpSeconds:  make(map[string]*obs.Histogram, len(httpRoutes)),

		snapshotOK:           reg.Counter("crowdrankd_snapshots_total", "Snapshot+compaction cycles by outcome.", obs.L("result", "ok")),
		snapshotFailed:       reg.Counter("crowdrankd_snapshots_total", "Snapshot+compaction cycles by outcome.", obs.L("result", "error")),
		snapshotsPruned:      reg.Counter("crowdrankd_snapshots_pruned_total", "Old snapshot files removed by pruning."),
		snapshotWriteSeconds: reg.Histogram("crowdrankd_snapshot_write_seconds", "Snapshot file write latency.", nil),
		snapshotLoadSeconds:  reg.Histogram("crowdrankd_snapshot_load_seconds", "Snapshot read-back verification latency.", nil),

		breakerTrips: reg.Counter("crowdrankd_breaker_trips_total", "Times the exact-rung circuit breaker opened."),

		journal: journal.Metrics{
			AppendSeconds:     reg.Histogram("crowdrankd_journal_append_seconds", "Journal append latency including fsync under SyncAlways.", nil),
			FsyncSeconds:      reg.Histogram("crowdrankd_journal_fsync_seconds", "Journal segment fsync latency.", nil),
			Appends:           reg.Counter("crowdrankd_journal_appends_total", "Successful journal appends."),
			Rotations:         reg.Counter("crowdrankd_journal_rotations_total", "Journal segments sealed by rotation."),
			SegmentsCompacted: reg.Counter("crowdrankd_journal_segments_compacted_total", "Journal segment files deleted by compaction."),
		},
	}
	for _, algo := range rankAlgorithms {
		m.rankByAlgo[algo] = reg.Counter("crowdrankd_rank_requests_total", "Rank responses by the ladder rung that answered.", obs.L("algorithm", algo))
	}
	for _, stage := range []string{stageTruth, stageSmooth, stagePropagate, stageSearch} {
		m.stageSeconds[stage] = reg.Histogram("crowdrankd_infer_stage_seconds", "Per-stage inference latency (truth/smooth/propagate on closure rebuilds, search per request).", nil, obs.L("stage", stage))
	}
	for _, route := range httpRoutes {
		m.httpSeconds[route] = reg.Histogram("crowdrankd_http_request_seconds", "HTTP request latency by route.", nil, obs.L("route", route))
	}
	return m
}

// httpRequest counts one finished HTTP request. Series are registered
// lazily per (route, status) — the registry dedups, so steady-state cost
// is one map lookup under a brief mutex.
func (m *metrics) httpRequest(route string, status int) {
	m.reg.Counter("crowdrankd_http_requests_total", "HTTP requests by route and status code.",
		obs.L("route", route), obs.L("code", strconv.Itoa(status))).Inc()
}

// registerGauges installs the scrape-time gauges that mirror server
// state. Called once after construction (and after recovery), so every
// captured field is immutable or read under its own lock.
func (s *Server) registerGauges() {
	reg := s.met.reg
	reg.GaugeFunc("crowdrankd_votes", "Deduplicated votes in the current state.", func() float64 {
		return float64(s.VoteCount())
	})
	reg.GaugeFunc("crowdrankd_batches", "Journal batches acknowledged or replayed.", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(s.batches)
	})
	reg.GaugeFunc("crowdrankd_queue_depth", "Requests currently holding a bounded-queue slot.", func() float64 {
		return float64(len(s.ingestSem))
	}, obs.L("queue", "ingest"))
	reg.GaugeFunc("crowdrankd_queue_depth", "Requests currently holding a bounded-queue slot.", func() float64 {
		return float64(len(s.rankSem))
	}, obs.L("queue", "rank"))
	reg.GaugeFunc("crowdrankd_ack_window", "Batch idempotency keys currently remembered for exactly-once acks.", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.acks))
	})
	reg.GaugeFunc("crowdrankd_breaker_open", "1 while the exact-rung circuit breaker refuses exact search.", func() float64 {
		if s.breaker.state() == "open" {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("crowdrankd_uptime_seconds", "Seconds since the server finished construction.", func() float64 {
		return s.clock.Since(s.started).Seconds()
	})
	if s.jnl == nil {
		return
	}
	reg.GaugeFunc("crowdrankd_journal_bytes", "Live journal bytes across segments.", func() float64 {
		return float64(s.jnl.Size())
	})
	reg.GaugeFunc("crowdrankd_journal_segments", "Live journal segment files.", func() float64 {
		return float64(s.jnl.Segments())
	})
	reg.GaugeFunc("crowdrankd_snapshot_bytes", "Bytes held by snapshot files.", func() float64 {
		return float64(snapshot.DiskUsage(s.jnl.Dir()))
	})
	reg.GaugeFunc("crowdrankd_recovery_seconds", "Duration of the startup snapshot-load and journal replay.", func() float64 {
		return s.recoveryDur.Seconds()
	})
	reg.GaugeFunc("crowdrankd_recovery_replayed_records", "Journal records replayed at startup.", func() float64 {
		return float64(s.recovered.Records)
	})
	reg.GaugeFunc("crowdrankd_recovery_truncated_bytes", "Bytes truncated from a torn or corrupt journal tail at startup.", func() float64 {
		return float64(s.recovered.TruncatedBytes)
	})
}
