package serve

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crowdrank/internal/invariant"
	"crowdrank/internal/journal"
)

const fuzzN, fuzzM = 8, 4

// fuzzJournalBytes builds a valid single-segment journal holding the
// given batches, for seeding the corpus with structurally real inputs.
func fuzzJournalBytes(t testing.TB, batches ...[]byte) []byte {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "seed.wal")
	j, _, err := journal.Open(dir, journal.Options{Sync: journal.SyncOS}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := j.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal.000001"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzJournalReplay feeds arbitrary bytes to the journal decoder as a
// recovered file. Whatever the damage — truncation, bit flips, garbage —
// replay must never panic, must stop at the first bad record, and the
// repair must be stable: reopening the repaired file replays the identical
// payload sequence with no further truncation. When the surviving records
// decode into votes, the whole daemon pipeline runs over them and the
// invariant oracles vet the served ranking.
func FuzzJournalReplay(f *testing.F) {
	clean := fuzzJournalBytes(f,
		encodeBatch(agreeingVotes(fuzzN, fuzzM)[:5]),
		encodeBatch(agreeingVotes(fuzzN, fuzzM)[5:9]),
	)
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn tail
	flipped := bytes.Clone(clean)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)                                            // mid-file bit flip
	f.Add(clean[:8])                                          // header only
	f.Add([]byte{})                                           // empty file
	f.Add([]byte("CRWDWAL\x01\xff\xff\xff\xff then garbage")) // implausible length
	f.Add([]byte("NOTAWAL\x01rest"))                          // wrong magic

	f.Fuzz(func(t *testing.T, data []byte) {
		// The bytes land as the first journal segment in an otherwise
		// empty journal directory — exactly what a recovering daemon sees.
		path := filepath.Join(t.TempDir(), "wal")
		if err := os.MkdirAll(path, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(path, "journal.000001"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var first [][]byte
		j, stats, err := journal.Open(path, journal.Options{}, func(p []byte) error {
			first = append(first, bytes.Clone(p))
			return nil
		})
		if err != nil {
			return // rejected outright (bad magic, short header): fine, no panic
		}
		if len(first) != stats.Records {
			t.Fatalf("callback saw %d records, stats say %d", len(first), stats.Records)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// Repair stability: the truncated file must reopen cleanly and
		// replay the exact same payloads.
		var second [][]byte
		j2, stats2, err := journal.Open(path, journal.Options{}, func(p []byte) error {
			second = append(second, bytes.Clone(p))
			return nil
		})
		if err != nil {
			t.Fatalf("repaired journal failed to reopen: %v", err)
		}
		if stats2.Truncated() {
			t.Fatalf("repair is not stable: second open truncated again: %+v", stats2)
		}
		if len(second) != len(first) {
			t.Fatalf("replay not deterministic: %d then %d records", len(first), len(second))
		}
		for i := range second {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d differs between replays", i)
			}
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}

		// Decode layer must not panic either; count the surviving votes.
		votes := 0
		decodable := true
		for _, p := range first {
			v, _, err := decodeBatch(p, fuzzN, fuzzM)
			if err != nil {
				decodable = false
				break
			}
			votes += len(v)
		}
		if !decodable || votes == 0 || votes > 128 {
			return
		}
		// Full pipeline over the recovered state, vetted by the invariant
		// oracles: the ranking must be a permutation no matter what bytes
		// seeded the journal.
		cfg := DefaultConfig(fuzzN, fuzzM)
		cfg.Seed = 5
		cfg.JournalPath = path
		s, err := New(cfg)
		if err != nil {
			return // e.g. undecodable under a different record split: refused, not panicked
		}
		defer func() {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := s.RankContext(ctx)
		if err != nil {
			t.Fatalf("rank over recovered state failed: %v", err)
		}
		if err := invariant.VerifyRanking(fuzzN, res.Ranking); err != nil {
			t.Fatalf("served ranking violates invariant: %v", err)
		}
	})
}
