package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"crowdrank/internal/crowd"
	"crowdrank/internal/journal"
	"crowdrank/internal/snapshot"
)

// snapCfg is a daemon tuned so snapshots and rotation trigger within a
// handful of single-vote batches.
func snapCfg(t *testing.T, dir string) Config {
	t.Helper()
	cfg := DefaultConfig(8, 4)
	cfg.Seed = 21
	cfg.JournalPath = dir
	cfg.JournalSegmentBytes = 64 // a record or two per segment
	cfg.SnapshotEveryBatches = -1
	cfg.SnapshotMaxJournalBytes = -1
	return cfg
}

func ingestOne(t *testing.T, s *Server, seq int) {
	t.Helper()
	v := chaosVote(seq)
	v.Worker, v.I, v.J = v.Worker%4, v.I%8, v.J%8
	if v.I == v.J {
		v.J = (v.I + 1) % 8
	}
	if _, err := s.Ingest([]crowd.Vote{v}); err != nil {
		t.Fatalf("ingest %d: %v", seq, err)
	}
}

func TestSnapshotCompactsAndRestartReplaysOnlySuffix(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	s := newTestServer(t, cfg)
	for i := 0; i < 6; i++ {
		ingestOne(t, s, i)
	}
	segsBefore := s.jnl.Segments()
	res, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 6 {
		t.Fatalf("snapshot covers seq %d, want 6", res.Seq)
	}
	if res.SegmentsDeleted == 0 || s.jnl.Segments() >= segsBefore {
		t.Fatalf("compaction deleted %d of %d segments, %d left",
			res.SegmentsDeleted, segsBefore, s.jnl.Segments())
	}
	for i := 6; i < 9; i++ {
		ingestOne(t, s, i)
	}
	wantVotes := s.VoteCount()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the snapshot seeds votes 0-5 and only the 3 post-snapshot
	// records replay.
	s2 := newTestServer(t, cfg)
	rec := s2.Recovered()
	if rec.SnapshotPath == "" || rec.SnapshotSeq != 6 || rec.SnapshotVotes == 0 {
		t.Fatalf("recovery ignored the snapshot: %+v", rec)
	}
	if rec.Records != 3 {
		t.Fatalf("replayed %d records after snapshot at seq 6, want 3 (%s)", rec.Records, rec)
	}
	if rec.FirstSeq != 6 {
		t.Fatalf("surviving segments start at seq %d, want 6", rec.FirstSeq)
	}
	if got := s2.VoteCount(); got != wantVotes {
		t.Fatalf("recovered %d votes, want %d", got, wantVotes)
	}
	// The daemon keeps working across the recovery boundary.
	ingestOne(t, s2, 9)
	if res, err := s2.Rank(); err != nil {
		t.Fatal(err)
	} else {
		assertPermutation(t, 8, res.Ranking)
	}
}

func TestSnapshotPolicyBatchTrigger(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	cfg.SnapshotEveryBatches = 4
	s := newTestServer(t, cfg)
	for i := 0; i < 4; i++ {
		ingestOne(t, s, i)
	}
	st := s.StatsSnapshot()
	if st.LastSnapshotSeq != 4 {
		t.Fatalf("policy should have snapshotted at the 4th acked batch, last snapshot seq %d", st.LastSnapshotSeq)
	}
	entries, err := snapshot.List(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshot on disk after policy trigger: %v %v", entries, err)
	}
}

func TestSnapshotPolicySizeTrigger(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	cfg.SnapshotMaxJournalBytes = 1 // every acked batch exceeds it
	s := newTestServer(t, cfg)
	ingestOne(t, s, 0)
	if st := s.StatsSnapshot(); st.LastSnapshotSeq != 1 {
		t.Fatalf("size trigger did not fire: %+v", st)
	}
}

// TestRecoveryAfterCrashBeforeCompaction plants the exact artifact a
// crash between snapshot-write and compaction-delete leaves behind: a
// complete snapshot with every covered segment still on disk. Recovery
// must seed from the snapshot and skip (not re-apply) the covered
// records.
func TestRecoveryAfterCrashBeforeCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	s := newTestServer(t, cfg)
	for i := 0; i < 5; i++ {
		ingestOne(t, s, i)
	}
	st := snapshot.State{N: s.cfg.N, M: s.cfg.M, Seq: s.jnl.NextSeq(), Gen: s.gen, DupVotes: s.dupVotes, Votes: s.votes}
	if _, err := snapshot.Write(dir, st); err != nil {
		t.Fatal(err)
	}
	wantVotes := s.VoteCount()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, cfg)
	rec := s2.Recovered()
	if rec.SnapshotSeq != 5 || rec.Records != 0 || rec.SkippedRecords != 5 {
		t.Fatalf("want snapshot seed plus 5 skipped covered records, got: %s", rec)
	}
	if got := s2.VoteCount(); got != wantVotes {
		t.Fatalf("recovered %d votes, want %d", got, wantVotes)
	}
}

func TestCorruptSnapshotFallsBackToFullReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	s := newTestServer(t, cfg)
	for i := 0; i < 5; i++ {
		ingestOne(t, s, i)
	}
	wantVotes := s.VoteCount()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A snapshot written but never verified (as a crash mid-cycle would
	// leave) that is also garbage: recovery must refuse it loudly and
	// fall back to replaying the intact segments.
	bogus := filepath.Join(dir, snapshot.Prefix+"00000000000000000003")
	if err := os.WriteFile(bogus, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, cfg)
	rec := s2.Recovered()
	if len(rec.CorruptSnapshots) != 1 || !strings.Contains(rec.CorruptSnapshots[0], filepath.Base(bogus)) {
		t.Fatalf("corrupt snapshot not reported: %+v", rec)
	}
	if rec.SnapshotPath != "" || rec.Records != 5 {
		t.Fatalf("expected full replay of 5 records, got %+v", rec)
	}
	if got := s2.VoteCount(); got != wantVotes {
		t.Fatalf("recovered %d votes, want %d", got, wantVotes)
	}
}

func TestCorruptSnapshotAfterCompactionRefusesToStart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	s := newTestServer(t, cfg)
	for i := 0; i < 6; i++ {
		ingestOne(t, s, i)
	}
	res, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsDeleted == 0 {
		t.Fatal("test needs compaction to have happened")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage every snapshot on disk: the compacted records now exist
	// nowhere, so starting up would mean serving state with a hole in it.
	entries, err := snapshot.List(dir)
	if err != nil || len(entries) == 0 {
		t.Fatal("expected snapshots on disk")
	}
	for _, e := range entries {
		data, err := os.ReadFile(e.Path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x01
		if err := os.WriteFile(e.Path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := New(cfg); !errors.Is(err, journal.ErrSeqGap) {
		t.Fatalf("startup over a coverage hole must refuse with ErrSeqGap, got %v", err)
	}
}

func TestSnapshotAdminEndpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	s, ts := httpServer(t, cfg)
	for i := 0; i < 3; i++ {
		ingestOne(t, s, i)
	}
	resp, err := http.Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot status %d", resp.StatusCode)
	}
	var res SnapshotResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Seq != 3 || res.Votes != s.VoteCount() {
		t.Fatalf("unexpected snapshot result %+v", res)
	}
}

func TestSnapshotInMemoryRefused(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 3
	_, ts := httpServer(t, cfg)
	resp, err := http.Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("in-memory snapshot should 409, got %d", resp.StatusCode)
	}
}

func TestFsyncFailurePoisonsDaemon(t *testing.T) {
	var fail atomic.Bool
	testJournalFaults = &journal.Faults{Sync: func() error {
		if fail.Load() {
			return errors.New("injected EIO")
		}
		return nil
	}}
	defer func() { testJournalFaults = nil }()

	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	s, ts := httpServer(t, cfg)
	ingestOne(t, s, 0)

	readyz := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		return resp.StatusCode
	}
	if readyz() != http.StatusOK {
		t.Fatal("daemon not ready before the fault")
	}

	fail.Store(true)
	resp := postVotes(t, ts.URL, []crowd.Vote{{Worker: 1, I: 2, J: 3, PrefersI: true}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest over a failed fsync must 503, got %d", resp.StatusCode)
	}
	// fsyncgate: the fault clearing does not matter — the journal stays
	// poisoned because the dirty pages may already be gone.
	fail.Store(false)
	resp = postVotes(t, ts.URL, []crowd.Vote{{Worker: 1, I: 3, J: 4, PrefersI: true}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("poisoned journal acked a batch (status %d)", resp.StatusCode)
	}
	if readyz() != http.StatusServiceUnavailable {
		t.Fatal("/readyz must go 503 once the journal is poisoned")
	}
	st := s.StatsSnapshot()
	if !strings.Contains(st.LastSyncError, "injected EIO") {
		t.Fatalf("last_sync_error should carry the fault, got %q", st.LastSyncError)
	}
	// Liveness is unaffected: /healthz still answers so operators can see
	// the poisoned state, and reads still serve.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz should stay 200, got %d", hresp.StatusCode)
	}
}

func TestHealthzReportsDiskUsage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := snapCfg(t, dir)
	s, ts := httpServer(t, cfg)
	for i := 0; i < 4; i++ {
		ingestOne(t, s, i)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.JournalBytes <= 0 || st.JournalSegments < 1 {
		t.Fatalf("journal accounting missing: %+v", st)
	}
	if st.SnapshotBytes <= 0 || st.LastSnapshotSeq != 4 {
		t.Fatalf("snapshot accounting missing: %+v", st)
	}
	if st.LastSyncError != "" {
		t.Fatalf("healthy daemon reports sync error %q", st.LastSyncError)
	}
}

// TestRetryAfterParseable pins the 429 contract: both bounded queues must
// reject with a Retry-After header that strconv can parse, because naive
// clients do exactly that.
func TestRetryAfterParseable(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 9
	cfg.MaxConcurrentRanks = 1
	cfg.MaxConcurrentIngests = 1
	s, ts := httpServer(t, cfg)

	// Fill both semaphores directly so the next request of each kind hits
	// a full queue deterministically.
	s.rankSem <- struct{}{}
	s.ingestSem <- struct{}{}
	defer func() { <-s.rankSem; <-s.ingestSem }()

	check := func(resp *http.Response) {
		t.Helper()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		raw := resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(raw)
		if err != nil || secs < 0 {
			t.Fatalf("Retry-After %q is not a parseable non-negative integer: %v", raw, err)
		}
	}
	check(postVotes(t, ts.URL, []crowd.Vote{{Worker: 0, I: 0, J: 1, PrefersI: true}}))
	resp, err := http.Get(ts.URL + "/rank")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	check(resp)
}
