// Package serve implements the crowdrankd ranking daemon: crash-safe vote
// ingestion over a write-ahead journal (internal/journal) and on-demand
// ranking with deadline-aware degradation.
//
// The paper's non-interactive setting makes collected votes irreplaceable:
// the budget B is spent in one round, so a crash that loses delivered
// answers loses money. The daemon therefore acknowledges an ingest only
// after the batch is durable in the journal, and recovery replays the
// journal to rebuild exactly the acknowledged state — a torn or corrupted
// tail is detected, reported, and truncated rather than silently replayed.
//
// Rank requests carry deadlines and degrade down a ladder instead of
// failing: an exact searcher (Held-Karp for small n, branch-and-bound
// beyond) when the budget allows, the paper's SAPS annealer when it does
// not, and a greedy tournament order as the floor that answers even after
// the deadline has effectively expired. A circuit breaker trips the exact
// rung after repeated deadline overruns and probes it again (half-open)
// after a cooldown, so chronically slow instances stop paying for doomed
// exact attempts.
package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdrank/internal/core"
	"crowdrank/internal/crowd"
	"crowdrank/internal/feq"
	"crowdrank/internal/graph"
	"crowdrank/internal/journal"
	"crowdrank/internal/obs"
	"crowdrank/internal/snapshot"
)

// Config configures the daemon. Zero-valued fields take the documented
// defaults; N and M are mandatory. DefaultConfig fills everything in.
type Config struct {
	// N is the number of objects being ranked; M the worker-pool size.
	// Votes outside [0, N) x [0, M) are dropped at ingest.
	N, M int

	// JournalPath is the write-ahead journal directory (segments and
	// snapshots live side by side in it); empty runs the daemon in-memory
	// only (acknowledged batches die with the process — tests and
	// throwaway experiments only). A version-1 single-file journal at this
	// path is migrated in place on first open.
	JournalPath string
	// JournalSync selects the append durability policy (default
	// journal.SyncAlways: fsync before every ack).
	JournalSync journal.SyncPolicy
	// JournalSegmentBytes is the segment rotation threshold; 0 means
	// journal.DefaultSegmentBytes.
	JournalSegmentBytes int64

	// SnapshotEveryBatches takes a snapshot (and compacts covered journal
	// segments) after that many acknowledged batches. 0 means the default
	// 1024; negative disables the batch trigger.
	SnapshotEveryBatches int
	// SnapshotMaxJournalBytes takes a snapshot whenever the live journal
	// exceeds this many bytes. 0 means the default 64 MiB; negative
	// disables the size trigger. POST /snapshot triggers one regardless.
	SnapshotMaxJournalBytes int64
	// SnapshotKeep is how many verified snapshots survive pruning: the
	// newest plus fallbacks in case the newest is damaged later. 0 means
	// the default 2; values below 1 are refused.
	SnapshotKeep int

	// Seed drives smoothing and SAPS, making served rankings reproducible
	// and certifiable (pass it to CertifyRanking). 0 draws a time-derived
	// seed at startup; the effective seed is reported in every response.
	Seed uint64
	// Parallelism fans SAPS starts and propagation walks over this many
	// goroutines; 0 or 1 is sequential.
	Parallelism int

	// ExactLimit is the largest n solved with Held-Karp on the exact rung;
	// beyond it the rung uses branch-and-bound. Default 16.
	ExactLimit int
	// ExactFraction and SAPSFraction apportion the remaining deadline to
	// the exact and SAPS rungs (each in (0, 1)); whatever is left after a
	// rung fails flows to the next. Defaults 0.5 and 0.8.
	ExactFraction float64
	SAPSFraction  float64
	// MinRungBudget is the smallest remaining budget worth starting a
	// cancellable rung with; below it the ladder falls straight to greedy.
	// Default 2ms.
	MinRungBudget time.Duration

	// DefaultDeadline applies to rank requests that carry none; deadlines
	// are clamped to MaxDeadline. Defaults 2s and 60s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxBatchVotes caps one ingest batch (HTTP 413 beyond). Default 65536.
	MaxBatchVotes int
	// MaxBodyBytes caps one POST /votes request body before decoding
	// starts (HTTP 413 beyond). 0 means the default 32 MiB.
	MaxBodyBytes int64
	// IngestTimeout bounds one POST /votes request server-side, so a
	// stalled journal cannot pin ingest slots forever. 0 means the default
	// 30s; negative disables the server-side bound (client deadlines still
	// apply).
	IngestTimeout time.Duration
	// IdempotencyWindow is how many batch acks are remembered (and
	// persisted through snapshots and journal records) for exactly-once
	// acknowledgement of retried batches. 0 means the default 65536;
	// negative disables the window — retried batches then re-apply and
	// rely on vote-level dedup alone.
	IdempotencyWindow int
	// MaxConcurrentRanks and MaxConcurrentIngests bound the request
	// queues; excess requests get HTTP 429 with Retry-After. Defaults 4
	// and 64.
	MaxConcurrentRanks   int
	MaxConcurrentIngests int

	// BreakerThreshold consecutive exact-rung deadline overruns open the
	// circuit breaker; BreakerCooldown later a single half-open probe may
	// close it again. Defaults 3 and 30s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Metrics receives the daemon's operational metrics and is served on
	// GET /metrics; nil creates a private registry. Use one registry per
	// server — two servers sharing one would fold their counts together.
	Metrics *obs.Registry
	// Clock supplies time to the degradation ladder, the circuit
	// breaker, request timing, and slow-request logging. nil means the
	// real clock; tests inject an obs.FakeClock to drive rung and
	// breaker transitions deterministically, without sleeps.
	Clock obs.Clock
	// SlowRequestThreshold logs (via Logf) any HTTP request that takes
	// longer, and counts it in crowdrankd_http_slow_requests_total.
	// 0 means the default 1s; negative disables slow-request logging.
	SlowRequestThreshold time.Duration

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultConfig returns the daemon configuration for n objects and m
// workers with every default made explicit.
func DefaultConfig(n, m int) Config {
	return Config{
		N:                       n,
		M:                       m,
		JournalSync:             journal.SyncAlways,
		SnapshotEveryBatches:    1024,
		SnapshotMaxJournalBytes: 64 << 20,
		SnapshotKeep:            2,
		ExactLimit:              16,
		ExactFraction:           0.5,
		SAPSFraction:            0.8,
		MinRungBudget:           2 * time.Millisecond,
		DefaultDeadline:         2 * time.Second,
		MaxDeadline:             60 * time.Second,
		MaxBatchVotes:           65536,
		MaxBodyBytes:            32 << 20,
		IngestTimeout:           30 * time.Second,
		IdempotencyWindow:       65536,
		MaxConcurrentRanks:      4,
		MaxConcurrentIngests:    64,
		BreakerThreshold:        3,
		BreakerCooldown:         30 * time.Second,
		SlowRequestThreshold:    time.Second,
	}
}

// withDefaults fills zero fields and validates the result.
func (c Config) withDefaults() (Config, error) {
	d := DefaultConfig(c.N, c.M)
	if c.ExactLimit == 0 {
		c.ExactLimit = d.ExactLimit
	}
	if feq.Zero(c.ExactFraction) {
		c.ExactFraction = d.ExactFraction
	}
	if feq.Zero(c.SAPSFraction) {
		c.SAPSFraction = d.SAPSFraction
	}
	if c.MinRungBudget == 0 {
		c.MinRungBudget = d.MinRungBudget
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = d.DefaultDeadline
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = d.MaxDeadline
	}
	if c.MaxBatchVotes == 0 {
		c.MaxBatchVotes = d.MaxBatchVotes
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.IngestTimeout == 0 {
		c.IngestTimeout = d.IngestTimeout
	}
	if c.IdempotencyWindow == 0 {
		c.IdempotencyWindow = d.IdempotencyWindow
	}
	if c.MaxConcurrentRanks == 0 {
		c.MaxConcurrentRanks = d.MaxConcurrentRanks
	}
	if c.MaxConcurrentIngests == 0 {
		c.MaxConcurrentIngests = d.MaxConcurrentIngests
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = d.BreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = d.BreakerCooldown
	}
	if c.SnapshotEveryBatches == 0 {
		c.SnapshotEveryBatches = d.SnapshotEveryBatches
	}
	if c.SnapshotMaxJournalBytes == 0 {
		c.SnapshotMaxJournalBytes = d.SnapshotMaxJournalBytes
	}
	if c.SnapshotKeep == 0 {
		c.SnapshotKeep = d.SnapshotKeep
	}
	if c.SlowRequestThreshold == 0 {
		c.SlowRequestThreshold = d.SlowRequestThreshold
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = obs.Real()
	}
	if c.Seed == 0 {
		c.Seed = uint64(time.Now().UnixNano())
	}
	switch {
	case c.N < 1:
		return c, fmt.Errorf("serve: need at least one object, got N=%d", c.N)
	case c.M < 1:
		return c, fmt.Errorf("serve: need at least one worker, got M=%d", c.M)
	case c.ExactFraction <= 0 || c.ExactFraction >= 1:
		return c, fmt.Errorf("serve: ExactFraction %v outside (0,1)", c.ExactFraction)
	case c.SAPSFraction <= 0 || c.SAPSFraction >= 1:
		return c, fmt.Errorf("serve: SAPSFraction %v outside (0,1)", c.SAPSFraction)
	case c.ExactLimit < 1:
		return c, fmt.Errorf("serve: ExactLimit %d must be >= 1", c.ExactLimit)
	case c.MaxBatchVotes < 1 || c.MaxConcurrentRanks < 1 || c.MaxConcurrentIngests < 1:
		return c, fmt.Errorf("serve: batch and queue bounds must be >= 1")
	case c.MaxBodyBytes < 1:
		return c, fmt.Errorf("serve: MaxBodyBytes must be >= 1, got %d", c.MaxBodyBytes)
	case c.BreakerThreshold < 1 || c.BreakerCooldown < 0:
		return c, fmt.Errorf("serve: breaker threshold must be >= 1 and cooldown non-negative")
	case c.DefaultDeadline < 0 || c.MaxDeadline <= 0 || c.MinRungBudget < 0:
		return c, fmt.Errorf("serve: deadlines must be positive")
	case c.SnapshotKeep < 1:
		return c, fmt.Errorf("serve: SnapshotKeep must be >= 1 (the newest snapshot must survive pruning), got %d", c.SnapshotKeep)
	}
	return c, nil
}

// submissionKey canonicalizes one (worker, pair, answer) submission so a
// re-submission with swapped object order still collides — the same
// dedup rule lenient Infer applies via SanitizeVotes.
type submissionKey struct {
	worker     int
	lo, hi     int
	prefersLow bool
}

func keyOf(v crowd.Vote) submissionKey {
	lo, hi, prefersLow := v.I, v.J, v.PrefersI
	if lo > hi {
		lo, hi = hi, lo
		prefersLow = !prefersLow
	}
	return submissionKey{worker: v.Worker, lo: lo, hi: hi, prefersLow: prefersLow}
}

// Server is the daemon engine: journaled vote state plus the degradation
// ladder. Create with New or NewContext, serve HTTP via Handler, and stop
// with Close.
type Server struct {
	cfg       Config
	jnl       *journal.Journal // nil when running in-memory
	recovered RecoveryStats
	logf      func(string, ...any)

	// clock is cfg.Clock; met the metric bundle on cfg.Metrics; started
	// the construction instant (uptime); recoveryDur how long startup
	// recovery took. All immutable after NewContext returns.
	clock       obs.Clock
	met         *metrics
	started     time.Time
	recoveryDur time.Duration

	// writeMu orders every journal append with its apply: under it the
	// journal's NextSeq always equals the number of batches folded into
	// memory, which is the invariant that lets a snapshot equate its
	// coverage sequence with the state it captured.
	writeMu sync.Mutex
	// snapMu serializes snapshot writers (policy trigger vs POST
	// /snapshot); sinceSnap counts acked batches since the last snapshot.
	snapMu    sync.Mutex
	sinceSnap atomic.Int64

	mu           sync.RWMutex
	votes        []crowd.Vote
	seen         map[submissionKey]bool
	acks         map[string]IngestResult // batch idempotency window
	ackOrder     []string                // FIFO eviction order for acks
	gen          uint64                  // bumped whenever votes change; keys the closure cache
	batches      int                     // journal records acknowledged or replayed
	dupVotes     int                     // exact duplicates suppressed by apply
	malformed    int                     // votes dropped at ingest since start (not journaled)
	lastSnapSeq  uint64                  // coverage of the newest snapshot on disk
	lastSnapGen  uint64
	lastSnapPath string

	closureMu sync.Mutex
	cacheGen  uint64
	cache     *graph.PreferenceGraph

	breaker   *breaker
	rankSem   chan struct{}
	ingestSem chan struct{}

	// closeMu is held shared by every in-flight ingest/rank and
	// exclusively by Close, so shutdown drains in-flight work before the
	// final journal sync. closing makes new requests fail fast instead of
	// queueing behind the pending writer lock.
	closeMu sync.RWMutex
	closing atomic.Bool
}

// New is NewContext with a background context.
func New(cfg Config) (*Server, error) {
	return NewContext(context.Background(), cfg)
}

// NewContext validates cfg, opens (and replays) the journal, and returns a
// ready server. Replaying a large journal honors ctx: cancellation aborts
// recovery with ctx's error and leaves the journal untouched.
func NewContext(ctx context.Context, cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		logf:      cfg.Logf,
		clock:     cfg.Clock,
		met:       newMetrics(cfg.Metrics),
		seen:      make(map[submissionKey]bool),
		acks:      make(map[string]IngestResult),
		breaker:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		rankSem:   make(chan struct{}, cfg.MaxConcurrentRanks),
		ingestSem: make(chan struct{}, cfg.MaxConcurrentIngests),
	}
	s.started = s.clock.Now()
	s.breaker.trips = s.met.breakerTrips
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if cfg.JournalPath != "" {
		recoverStart := s.clock.Now()
		if err := s.recover(ctx, cfg); err != nil {
			return nil, err
		}
		s.recoveryDur = s.clock.Since(recoverStart)
		s.logf("journal %s: %s in %v", cfg.JournalPath, s.recovered, s.recoveryDur.Round(time.Millisecond))
	}
	s.registerGauges()
	return s, nil
}

// recover rebuilds state from the newest valid snapshot plus a journal
// suffix replay. Candidates are tried newest snapshot first, ending with a
// full replay; a snapshot that fails to load, belongs to a different
// universe, or no longer meets the surviving journal segments is refused
// loudly (recorded in RecoveryStats.CorruptSnapshots) and the next
// candidate is tried. When nothing covers the surviving segments the
// daemon refuses to start rather than serve a state with a hole in it.
func (s *Server) recover(ctx context.Context, cfg Config) error {
	entries, err := snapshot.List(cfg.JournalPath)
	if err != nil {
		return fmt.Errorf("serve: listing snapshots: %w", err)
	}
	var corrupt []string
	refuse := func(path string, why error) {
		corrupt = append(corrupt, fmt.Sprintf("%s: %v", filepath.Base(path), why))
		s.logf("serve: refusing snapshot %s: %v", path, why)
	}
	replay := func(payload []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec, err := decodeBatchRecord(payload, cfg.N, cfg.M)
		if err != nil {
			// A record that passed its checksum but does not decode is
			// a foreign or incompatible journal — refuse to serve from
			// it rather than guess.
			return fmt.Errorf("serve: undecodable batch: %w", err)
		}
		added, dups := s.apply(rec.votes)
		if rec.key != "" {
			// Rebuild the exact ack the batch originally received, so a
			// retry of this key after the crash is acked without reapply.
			s.mu.Lock()
			s.recordAckLocked(rec.key, IngestResult{
				Accepted:   added,
				Duplicates: dups,
				Malformed:  rec.malformed,
				Seq:        s.batches,
				TotalVotes: len(s.votes),
			})
			s.mu.Unlock()
		}
		return nil
	}
	// One trailing candidate past the snapshot list is the no-snapshot
	// full replay.
	for i := 0; i <= len(entries); i++ {
		var st snapshot.State
		var path string
		if i < len(entries) {
			path = entries[i].Path
			st, err = snapshot.Load(path)
			if err != nil {
				refuse(path, err)
				continue
			}
			if st.N != cfg.N || st.M != cfg.M {
				refuse(path, fmt.Errorf("universe (%d,%d) does not match configured (%d,%d)", st.N, st.M, cfg.N, cfg.M))
				continue
			}
		}
		if err := s.seedFromSnapshot(st); err != nil {
			refuse(path, err)
			continue
		}
		opts := journal.Options{
			Sync:         cfg.JournalSync,
			SegmentBytes: cfg.JournalSegmentBytes,
			ReplayFrom:   st.Seq,
			Faults:       testJournalFaults,
			Metrics:      s.met.journal,
		}
		jnl, stats, err := journal.Open(cfg.JournalPath, opts, replay)
		switch {
		case err == nil:
			s.jnl = jnl
			s.recovered = RecoveryStats{
				ReplayStats:      stats,
				SnapshotPath:     path,
				SnapshotSeq:      st.Seq,
				SnapshotGen:      st.Gen,
				SnapshotVotes:    len(st.Votes),
				CorruptSnapshots: corrupt,
			}
			s.mu.Lock()
			s.lastSnapSeq, s.lastSnapGen, s.lastSnapPath = st.Seq, st.Gen, path
			s.mu.Unlock()
			return nil
		case i < len(entries) && errors.Is(err, journal.ErrSeqGap):
			// The surviving segments start after this snapshot's coverage:
			// records in between are gone, so the snapshot cannot be
			// extended. A newer candidate already failed; older ones cover
			// even less, but a full replay may still work if segment 1
			// survived.
			refuse(path, err)
			continue
		default:
			// Unwritable directory, foreign files, an undecodable batch,
			// ctx cancellation: no other candidate fixes these.
			return err
		}
	}
	return fmt.Errorf("serve: journal %s: no snapshot covers the surviving segments (refused: %s): %w",
		cfg.JournalPath, strings.Join(corrupt, "; "), journal.ErrSeqGap)
}

// seedFromSnapshot resets the in-memory state to exactly what the snapshot
// captured (the zero State resets to empty). The dedup set is not
// serialized — it is recomputed from the votes, and a collision means the
// snapshot does not describe a state apply could have produced.
func (s *Server) seedFromSnapshot(st snapshot.State) error {
	seen := make(map[submissionKey]bool, len(st.Votes))
	for _, v := range st.Votes {
		k := keyOf(v)
		if seen[k] {
			return fmt.Errorf("duplicate submission %+v in snapshot", v)
		}
		seen[k] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.votes = st.Votes
	s.seen = seen
	s.gen = st.Gen
	s.batches = int(st.Seq)
	s.dupVotes = st.DupVotes
	// Restore the ack window (oldest first, preserving eviction order) so
	// batch retries straddling the restart still replay their original ack.
	s.acks = make(map[string]IngestResult, len(st.Acks))
	s.ackOrder = s.ackOrder[:0]
	for _, a := range st.Acks {
		s.recordAckLocked(a.Key, IngestResult{
			Accepted:   a.Accepted,
			Duplicates: a.Duplicates,
			Malformed:  a.Malformed,
			Seq:        a.Seq,
			TotalVotes: a.TotalVotes,
		})
	}
	return nil
}

// lookupAck returns the remembered ack for key, if the idempotency window
// still holds it.
func (s *Server) lookupAck(key string) (IngestResult, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, ok := s.acks[key]
	return res, ok
}

// recordAckLocked remembers one batch ack under its idempotency key,
// evicting the oldest entries beyond the window. Callers hold s.mu.
func (s *Server) recordAckLocked(key string, res IngestResult) {
	if s.cfg.IdempotencyWindow <= 0 {
		return
	}
	if _, ok := s.acks[key]; ok {
		return
	}
	s.acks[key] = res
	s.ackOrder = append(s.ackOrder, key)
	for len(s.ackOrder) > s.cfg.IdempotencyWindow {
		delete(s.acks, s.ackOrder[0])
		s.ackOrder = s.ackOrder[1:]
	}
}

// ackWindowLocked copies the ack window oldest-first for a snapshot.
// Callers hold s.mu (read or write).
func (s *Server) ackWindowLocked() []snapshot.AckEntry {
	if len(s.ackOrder) == 0 {
		return nil
	}
	out := make([]snapshot.AckEntry, 0, len(s.ackOrder))
	for _, key := range s.ackOrder {
		res := s.acks[key]
		out = append(out, snapshot.AckEntry{
			Key:        key,
			Accepted:   res.Accepted,
			Duplicates: res.Duplicates,
			Malformed:  res.Malformed,
			Seq:        res.Seq,
			TotalVotes: res.TotalVotes,
		})
	}
	return out
}

// apply folds one validated batch into the in-memory state, suppressing
// exact duplicate submissions, and returns what was added. Both live
// ingest and journal replay go through apply, so recovery rebuilds the
// identical vote set.
func (s *Server) apply(votes []crowd.Vote) (added, dups int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range votes {
		k := keyOf(v)
		if s.seen[k] {
			dups++
			continue
		}
		s.seen[k] = true
		s.votes = append(s.votes, v)
		added++
	}
	s.batches++
	s.dupVotes += dups
	if added > 0 {
		s.gen++
	}
	return added, dups
}

// Ingest validates, journals, and applies one vote batch; it is the
// library form of POST /votes. A nil error means the batch is durable
// (fsynced under journal.SyncAlways) and will survive a crash.
func (s *Server) Ingest(votes []crowd.Vote) (IngestResult, error) {
	return s.IngestContext(context.Background(), votes)
}

// IngestContext is Ingest honoring ctx up to the durability point: a batch
// cancelled before the journal append is refused with ctx's error and
// nothing is written. Once the append starts the batch commits atomically
// — there is no cancelling a half-fsynced record — so a ctx that expires
// later does not un-acknowledge it.
func (s *Server) IngestContext(ctx context.Context, votes []crowd.Vote) (IngestResult, error) {
	return s.IngestKeyed(ctx, "", votes)
}

// IngestKeyed is IngestContext under a client-chosen idempotency key (the
// library form of POST /votes with an Idempotency-Key header). While the
// key stays inside the idempotency window, a repeated IngestKeyed — a
// network retry after a lost ack, before or after a daemon restart —
// returns the original acknowledgement with Replayed set, without
// journaling or applying the batch a second time. An empty key ingests
// without idempotency, exactly like IngestContext.
func (s *Server) IngestKeyed(ctx context.Context, key string, votes []crowd.Vote) (IngestResult, error) {
	if len(key) > maxKeyLen {
		return IngestResult{}, fmt.Errorf("serve: idempotency key of %d bytes exceeds maximum %d: %w", len(key), maxKeyLen, errKeyTooLong)
	}
	res, err := s.ingest(ctx, key, votes)
	if err == nil {
		// The batch is durable and acknowledged whatever the snapshot
		// policy does next; maybeSnapshot runs outside the shutdown lock
		// so Close never deadlocks behind a policy-triggered snapshot.
		s.maybeSnapshot()
	}
	return res, err
}

func (s *Server) ingest(ctx context.Context, key string, votes []crowd.Vote) (IngestResult, error) {
	var res IngestResult
	if s.closing.Load() {
		return res, errShuttingDown
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closing.Load() {
		return res, errShuttingDown
	}
	// Fast path for a retried key: answer from the ack window before
	// spending any validation or journal work.
	if key != "" {
		if cached, ok := s.lookupAck(key); ok {
			s.met.idempotentReplays.Inc()
			cached.Replayed = true
			return cached, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if len(votes) > s.cfg.MaxBatchVotes {
		return res, fmt.Errorf("serve: batch of %d votes exceeds cap %d: %w", len(votes), s.cfg.MaxBatchVotes, errBatchTooLarge)
	}
	valid := make([]crowd.Vote, 0, len(votes))
	for _, v := range votes {
		if v.Validate(s.cfg.N, s.cfg.M) != nil {
			res.Malformed++
			continue
		}
		valid = append(valid, v)
	}
	s.mu.Lock()
	s.malformed += res.Malformed
	s.mu.Unlock()
	s.met.ingestMalformed.Add(uint64(res.Malformed))
	if len(valid) == 0 {
		// Nothing durable to write, but the ack is still remembered so a
		// network retry of this key replays instead of re-validating. (An
		// all-malformed batch journals nothing, so this entry does not
		// survive a restart — there is no applied state to protect.)
		s.mu.Lock()
		res.Seq = s.batches
		res.TotalVotes = len(s.votes)
		if key != "" {
			s.recordAckLocked(key, res)
		}
		s.mu.Unlock()
		return res, nil
	}
	// Last chance to honor cancellation: past this point the batch
	// commits.
	if err := ctx.Err(); err != nil {
		return res, err
	}
	// writeMu makes append→apply atomic with respect to other ingests, so
	// journal order and apply order agree and a concurrent snapshot can
	// never observe a NextSeq whose record is not yet in memory.
	s.writeMu.Lock()
	// Authoritative replay check: a concurrent retry of the same key may
	// have committed between the fast path above and acquiring writeMu.
	// Under writeMu no other append can interleave, so a miss here
	// guarantees this goroutine is the one that journals the batch.
	if key != "" {
		if cached, ok := s.lookupAck(key); ok {
			s.writeMu.Unlock()
			s.met.idempotentReplays.Inc()
			cached.Replayed = true
			return cached, nil
		}
	}
	if s.jnl != nil {
		payload := encodeBatch(valid)
		if key != "" {
			// Keyed batches journal their key and malformed count, so
			// replay after a crash rebuilds the identical ack.
			payload = encodeBatchKeyed(key, res.Malformed, valid)
		}
		//lint:ignore lockcheck durable-before-ack: the append (and its fsync) must finish under writeMu before apply so journal order equals apply order, and under closeMu so shutdown cannot close the journal mid-batch
		if _, err := s.jnl.Append(payload); err != nil {
			s.writeMu.Unlock()
			return res, fmt.Errorf("serve: journaling batch: %w", err)
		}
	}
	res.Accepted, res.Duplicates = s.apply(valid)
	// Capture the ack fields and record the key in the same mu hold as the
	// apply's effects, still under writeMu: the remembered ack is exactly
	// what this request returns.
	s.mu.Lock()
	res.Seq = s.batches
	res.TotalVotes = len(s.votes)
	if key != "" {
		s.recordAckLocked(key, res)
	}
	s.mu.Unlock()
	s.writeMu.Unlock()
	s.met.ingestBatches.Inc()
	s.met.ingestAccepted.Add(uint64(res.Accepted))
	s.met.ingestDuplicate.Add(uint64(res.Duplicates))
	s.sinceSnap.Add(1)
	return res, nil
}

// maybeSnapshot applies the snapshot policy after one acknowledged batch:
// a snapshot is taken when enough batches or journal bytes accumulated
// since the last one. Failures are logged, never propagated — the batch
// that tripped the policy is already durable and acknowledged.
func (s *Server) maybeSnapshot() {
	if s.jnl == nil {
		return
	}
	every, maxBytes := s.cfg.SnapshotEveryBatches, s.cfg.SnapshotMaxJournalBytes
	trigger := (every > 0 && s.sinceSnap.Load() >= int64(every)) ||
		(maxBytes > 0 && s.jnl.Size() >= maxBytes)
	if !trigger {
		return
	}
	if _, err := s.Snapshot(); err != nil && !errors.Is(err, errShuttingDown) {
		s.logf("serve: policy-triggered snapshot failed: %v", err)
	}
}

// SnapshotResult describes one completed snapshot+compaction cycle.
type SnapshotResult struct {
	// Path is the snapshot file; Seq the journal sequence it covers (a
	// restart replays only records >= Seq); Gen the state generation and
	// Votes the deduplicated vote count captured.
	Path  string `json:"path"`
	Seq   uint64 `json:"seq"`
	Gen   uint64 `json:"gen"`
	Votes int    `json:"votes"`
	// SegmentsDeleted counts journal segments compacted away;
	// SnapshotsPruned older snapshot files removed.
	SegmentsDeleted int `json:"segments_deleted"`
	SnapshotsPruned int `json:"snapshots_pruned"`
}

// Snapshot captures the current state into a checksummed snapshot file,
// verifies it by reading it back, and only then compacts the journal
// segments it covers. It is the library form of POST /snapshot; the
// snapshot policy calls it too. Safe for concurrent use; an in-memory
// server (no journal) refuses.
func (s *Server) Snapshot() (SnapshotResult, error) {
	var res SnapshotResult
	if s.jnl == nil {
		return res, errNoJournal
	}
	if s.closing.Load() {
		return res, errShuttingDown
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// Capture a consistent cut: under writeMu no append is between its
	// journal write and its apply, so NextSeq is exactly the coverage of
	// the in-memory state. The vote slice is append-only, so the
	// three-index slice stays immutable after the locks drop.
	s.writeMu.Lock()
	s.mu.RLock()
	st := snapshot.State{
		N:        s.cfg.N,
		M:        s.cfg.M,
		Seq:      s.jnl.NextSeq(),
		Gen:      s.gen,
		DupVotes: s.dupVotes,
		Votes:    s.votes[:len(s.votes):len(s.votes)],
		Acks:     s.ackWindowLocked(),
	}
	s.mu.RUnlock()
	s.writeMu.Unlock()
	s.sinceSnap.Store(0)

	writeStart := s.clock.Now()
	//lint:ignore lockcheck snapMu exists to serialize snapshot writing/compaction end to end; ingest and rank never take it, so holding it across the file I/O blocks only a competing snapshot
	path, err := snapshot.Write(s.jnl.Dir(), st)
	if err != nil {
		s.met.snapshotFailed.Inc()
		return res, fmt.Errorf("serve: writing snapshot: %w", err)
	}
	s.met.snapshotWriteSeconds.ObserveDuration(s.clock.Since(writeStart))
	// Read-back verification: no journal byte is deleted on the strength
	// of a snapshot that cannot actually be loaded.
	loadStart := s.clock.Now()
	if _, err := snapshot.Load(path); err != nil {
		s.met.snapshotFailed.Inc()
		return res, fmt.Errorf("serve: snapshot %s failed read-back verification, journal retained: %w", path, err)
	}
	s.met.snapshotLoadSeconds.ObserveDuration(s.clock.Since(loadStart))
	deleted, err := s.jnl.CompactThrough(st.Seq)
	if err != nil {
		s.met.snapshotFailed.Inc()
		return res, fmt.Errorf("serve: snapshot %s written but compaction failed: %w", path, err)
	}
	pruned, err := snapshot.Prune(s.jnl.Dir(), s.cfg.SnapshotKeep)
	if err != nil {
		// Stale snapshots waste disk but threaten nothing; keep going.
		s.logf("serve: pruning old snapshots: %v", err)
	}
	s.met.snapshotOK.Inc()
	s.met.snapshotsPruned.Add(uint64(len(pruned)))
	s.mu.Lock()
	s.lastSnapSeq, s.lastSnapGen, s.lastSnapPath = st.Seq, st.Gen, path
	s.mu.Unlock()
	res = SnapshotResult{
		Path:            path,
		Seq:             st.Seq,
		Gen:             st.Gen,
		Votes:           len(st.Votes),
		SegmentsDeleted: deleted,
		SnapshotsPruned: len(pruned),
	}
	s.logf("serve: snapshot %s: seq %d, %d votes, %d segments compacted", path, st.Seq, len(st.Votes), deleted)
	return res, nil
}

// IngestResult describes one acknowledged batch.
type IngestResult struct {
	// Accepted counts votes added to the state; Duplicates exact
	// re-submissions suppressed; Malformed votes dropped at validation.
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	Malformed  int `json:"malformed"`
	// Seq is the journal sequence number of this batch (records appended
	// or replayed so far).
	Seq int `json:"seq"`
	// TotalVotes is the state size after this batch.
	TotalVotes int `json:"total_votes"`
	// Replayed marks an acknowledgement served from the idempotency
	// window: the batch was already durable from an earlier delivery of
	// the same key and was NOT applied again.
	Replayed bool `json:"replayed,omitempty"`
}

// snapshot returns the current vote slice and its generation. The slice is
// append-only, so sharing the backing array with concurrent appends is
// safe: a later append either fits capacity (beyond our length) or
// reallocates.
func (s *Server) snapshot() ([]crowd.Vote, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.votes[:len(s.votes):len(s.votes)], s.gen
}

// closure returns the Step 1-3 transitive closure of the current votes,
// cached per state generation so repeated rank requests over unchanged
// state skip the pipeline prefix entirely.
func (s *Server) closure(votes []crowd.Vote, gen uint64) (*graph.PreferenceGraph, error) {
	s.closureMu.Lock()
	defer s.closureMu.Unlock()
	if s.cache != nil && s.cacheGen == gen {
		return s.cache, nil
	}
	opts := core.DefaultOptions()
	opts.SAPS.Parallelism = s.cfg.Parallelism
	opts.Propagate.Parallelism = s.cfg.Parallelism
	rng := newPipelineRNG(s.cfg.Seed)
	//lint:ignore lockcheck closureMu deliberately holds concurrent ranks on one closure build (CPU-bound fan-out over worker channels) so identical generations are computed once and served from cache
	cl, err := core.BuildClosure(s.cfg.N, s.cfg.M, votes, opts, rng)
	if err != nil {
		return nil, fmt.Errorf("serve: building closure: %w", err)
	}
	// Stage histograms record rebuild cost only: a cache hit spent no
	// time in Steps 1-3, and observing zeros would flatten the latency
	// distribution the histogram exists to expose.
	s.met.stageSeconds[stageTruth].ObserveDuration(cl.Timings.TruthDiscovery)
	s.met.stageSeconds[stageSmooth].ObserveDuration(cl.Timings.Smoothing)
	s.met.stageSeconds[stagePropagate].ObserveDuration(cl.Timings.Propagation)
	s.cache = cl.Closure
	s.cacheGen = gen
	return s.cache, nil
}

// VoteCount returns the deduplicated vote count.
func (s *Server) VoteCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.votes)
}

// Stats is a point-in-time operational snapshot, served on /healthz.
type Stats struct {
	Objects    int `json:"objects"`
	Workers    int `json:"workers"`
	Votes      int `json:"votes"`
	Batches    int `json:"batches"`
	Duplicates int `json:"duplicates"`
	Malformed  int `json:"malformed"`
	// AckWindow is how many batch idempotency keys are currently
	// remembered for exactly-once acknowledgement; AckWindowCapacity is
	// the configured window size (0 when the window is disabled).
	// Occupancy at capacity means the window is evicting — a client
	// retrying a batch older than the window would re-apply it.
	AckWindow         int    `json:"ack_window"`
	AckWindowCapacity int    `json:"ack_window_capacity"`
	Seed              uint64 `json:"seed"`
	Breaker           string `json:"breaker"`
	Journal           string `json:"journal,omitempty"`
	// Disk accounting, for alerting on unbounded growth: live journal
	// bytes and segment count, plus bytes held by snapshot files.
	JournalBytes    int64 `json:"journal_bytes"`
	JournalSegments int   `json:"journal_segments"`
	SnapshotBytes   int64 `json:"snapshot_bytes"`
	// LastSnapshotSeq/Gen identify the newest snapshot on disk (0/0 when
	// none has been taken).
	LastSnapshotSeq uint64 `json:"last_snapshot_seq"`
	LastSnapshotGen uint64 `json:"last_snapshot_gen"`
	// LastSyncError is empty while the journal is healthy; non-empty
	// means the journal is poisoned by a disk fault and the daemon is
	// refusing writes (readyz 503).
	LastSyncError string `json:"last_sync_error"`
	// Recovered describes the last journal replay.
	RecoveredBatches int   `json:"recovered_batches"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
	Closing          bool  `json:"closing"`
	// UptimeSeconds is time since construction and RecoverySeconds the
	// startup recovery cost. Both are measured with the server clock's
	// monotonic Since — a wall-clock jump (NTP step) mid-flight cannot
	// make them negative or wrong.
	UptimeSeconds   float64 `json:"uptime_seconds"`
	RecoverySeconds float64 `json:"recovery_seconds"`
}

// StatsSnapshot assembles the current Stats.
func (s *Server) StatsSnapshot() Stats {
	s.mu.RLock()
	st := Stats{
		Objects:           s.cfg.N,
		Workers:           s.cfg.M,
		Votes:             len(s.votes),
		Batches:           s.batches,
		Duplicates:        s.dupVotes,
		Malformed:         s.malformed,
		AckWindow:         len(s.acks),
		Seed:              s.cfg.Seed,
		AckWindowCapacity: max(s.cfg.IdempotencyWindow, 0),
		LastSnapshotSeq:   s.lastSnapSeq,
		LastSnapshotGen:   s.lastSnapGen,
		RecoveredBatches:  s.recovered.Records,
		TruncatedBytes:    s.recovered.TruncatedBytes,
		Closing:           s.closing.Load(),
		UptimeSeconds:     s.clock.Since(s.started).Seconds(),
		RecoverySeconds:   s.recoveryDur.Seconds(),
	}
	s.mu.RUnlock()
	st.Breaker = s.breaker.state()
	if s.jnl != nil {
		st.Journal = s.jnl.Dir()
		st.JournalBytes = s.jnl.Size()
		st.JournalSegments = s.jnl.Segments()
		st.SnapshotBytes = snapshot.DiskUsage(s.jnl.Dir())
		if err := s.jnl.Poisoned(); err != nil {
			st.LastSyncError = err.Error()
		}
	}
	return st
}

// RecoveryStats describes how startup rebuilt the state: which snapshot
// seeded it (if any), the journal suffix replay on top, and every
// snapshot candidate that was refused.
type RecoveryStats struct {
	journal.ReplayStats

	// SnapshotPath is the snapshot that seeded recovery; empty means full
	// journal replay. SnapshotSeq/Gen/Votes describe what it carried.
	SnapshotPath  string
	SnapshotSeq   uint64
	SnapshotGen   uint64
	SnapshotVotes int
	// CorruptSnapshots lists "file: reason" for every snapshot refused
	// during recovery — never silently, always here and in the log.
	CorruptSnapshots []string
}

// String summarizes the recovery for startup logs.
func (r RecoveryStats) String() string {
	var b strings.Builder
	if r.SnapshotPath != "" {
		fmt.Fprintf(&b, "loaded snapshot %s (seq %d, %d votes), then ",
			filepath.Base(r.SnapshotPath), r.SnapshotSeq, r.SnapshotVotes)
	}
	b.WriteString(r.ReplayStats.String())
	if len(r.CorruptSnapshots) > 0 {
		fmt.Fprintf(&b, "; refused %d snapshot(s): %s",
			len(r.CorruptSnapshots), strings.Join(r.CorruptSnapshots, "; "))
	}
	return b.String()
}

// Recovered reports the snapshot-load and journal replay performed at
// startup.
func (s *Server) Recovered() RecoveryStats { return s.recovered }

// Seed returns the effective pipeline seed (drawn at startup when the
// config left it 0). Pass it to CertifyRanking to certify served rankings.
func (s *Server) Seed() uint64 { return s.cfg.Seed }

// Metrics returns the server's metric registry — the one Config.Metrics
// supplied, or the private registry created when it was nil. Handler
// serves it on GET /metrics.
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// errShuttingDown is returned by requests that arrive during Close;
// errBatchTooLarge by batches over MaxBatchVotes. The HTTP layer maps them
// to 503 and 413.
var (
	errShuttingDown  = fmt.Errorf("serve: server is shutting down")
	errBatchTooLarge = fmt.Errorf("serve: batch exceeds MaxBatchVotes")
	errNoJournal     = fmt.Errorf("serve: server is running in-memory; nothing to snapshot")
	errKeyTooLong    = fmt.Errorf("serve: idempotency key too long")
)

// testJournalFaults is the disk-fault injection seam: tests point it at a
// journal.Faults before constructing the server to simulate failed writes
// and fsyncs ("fsyncgate"). Always nil in production.
var testJournalFaults *journal.Faults

// Ready reports whether the server can currently promise durability: nil
// while healthy, an error once shutdown has begun or the journal is
// poisoned (disk fault, or deposition fencing by the replication layer).
// It is the library form of GET /readyz.
func (s *Server) Ready() error {
	if s.closing.Load() {
		return errShuttingDown
	}
	if s.jnl != nil {
		if err := s.jnl.Poisoned(); err != nil {
			// fsyncgate semantics: a failed fsync may have dropped dirty
			// pages, so the only honest readiness answer is "no".
			return err
		}
	}
	return nil
}

// Journal exposes the server's journal; nil when running in-memory. The
// replication layer streams records out of it on the leader, and fences a
// deposed leader by poisoning it.
func (s *Server) Journal() *journal.Journal { return s.jnl }

// StateSnapshot captures a consistent point-in-time snapshot.State — the
// same cut Snapshot persists, without writing anything. The leader serves
// it on GET /replicate/snapshot to bootstrap fresh followers.
func (s *Server) StateSnapshot() snapshot.State {
	s.writeMu.Lock()
	s.mu.RLock()
	st := snapshot.State{
		N:        s.cfg.N,
		M:        s.cfg.M,
		Seq:      uint64(s.batches),
		Gen:      s.gen,
		DupVotes: s.dupVotes,
		Votes:    s.votes[:len(s.votes):len(s.votes)],
		Acks:     s.ackWindowLocked(),
	}
	if s.jnl != nil {
		// Under writeMu no append is between its journal write and its
		// apply, so NextSeq is exactly the coverage of the state above.
		st.Seq = s.jnl.NextSeq()
	}
	s.mu.RUnlock()
	s.writeMu.Unlock()
	return st
}

// ApplyReplicated journals and applies one batch record received from a
// replication stream. seq is the sequence the record carries on the
// leader; the follower's journal must be exactly there — a mismatch means
// the stream and the local journal diverged (matching journal.ErrSeqGap)
// and the follower must resync rather than guess. The payload is appended
// verbatim, keeping a follower's journal byte-for-byte the leader's
// record stream, then folded into memory exactly like recovery replay —
// including rebuilding keyed acks, so the idempotency window follows the
// leader and a client retry after failover replays instead of re-applying.
func (s *Server) ApplyReplicated(seq uint64, payload []byte) error {
	err := s.applyReplicated(seq, payload)
	if err == nil {
		// Followers run the same snapshot+compaction policy as the leader,
		// outside the locks applyReplicated held.
		s.maybeSnapshot()
	}
	return err
}

func (s *Server) applyReplicated(seq uint64, payload []byte) error {
	if s.closing.Load() {
		return errShuttingDown
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closing.Load() {
		return errShuttingDown
	}
	rec, err := decodeBatchRecord(payload, s.cfg.N, s.cfg.M)
	if err != nil {
		// A record that does not decode is a foreign or incompatible
		// stream — refuse it rather than guess, same as recovery.
		return fmt.Errorf("serve: undecodable replicated batch: %w", err)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.jnl != nil {
		if got := s.jnl.NextSeq(); got != seq {
			return fmt.Errorf("serve: replicated record carries seq %d but the local journal is at %d: %w",
				seq, got, journal.ErrSeqGap)
		}
		//lint:ignore lockcheck durable-before-apply, exactly like ingest: the append must finish under writeMu so journal order equals apply order
		if _, err := s.jnl.Append(payload); err != nil {
			return fmt.Errorf("serve: journaling replicated batch: %w", err)
		}
	}
	added, dups := s.apply(rec.votes)
	if rec.key != "" {
		s.mu.Lock()
		s.recordAckLocked(rec.key, IngestResult{
			Accepted:   added,
			Duplicates: dups,
			Malformed:  rec.malformed,
			Seq:        s.batches,
			TotalVotes: len(s.votes),
		})
		s.mu.Unlock()
	}
	s.met.ingestAccepted.Add(uint64(added))
	s.met.ingestDuplicate.Add(uint64(dups))
	s.sinceSnap.Add(1)
	return nil
}

// Close drains in-flight work and performs the final journal sync. After
// Close, ingest and rank requests fail fast (HTTP 503); Close is
// idempotent.
func (s *Server) Close() error {
	if s.closing.Swap(true) {
		return nil
	}
	// Wait for every in-flight ingest and inference to release its shared
	// lock, then close (and thereby sync) the journal.
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.jnl != nil {
		//lint:ignore lockcheck shutdown by design: holding closeMu exclusively across the final sync+close is exactly the drain barrier that keeps ingest/rank from touching a closing journal
		if err := s.jnl.Close(); err != nil {
			return fmt.Errorf("serve: closing journal: %w", err)
		}
	}
	return nil
}
