// Package serve implements the crowdrankd ranking daemon: crash-safe vote
// ingestion over a write-ahead journal (internal/journal) and on-demand
// ranking with deadline-aware degradation.
//
// The paper's non-interactive setting makes collected votes irreplaceable:
// the budget B is spent in one round, so a crash that loses delivered
// answers loses money. The daemon therefore acknowledges an ingest only
// after the batch is durable in the journal, and recovery replays the
// journal to rebuild exactly the acknowledged state — a torn or corrupted
// tail is detected, reported, and truncated rather than silently replayed.
//
// Rank requests carry deadlines and degrade down a ladder instead of
// failing: an exact searcher (Held-Karp for small n, branch-and-bound
// beyond) when the budget allows, the paper's SAPS annealer when it does
// not, and a greedy tournament order as the floor that answers even after
// the deadline has effectively expired. A circuit breaker trips the exact
// rung after repeated deadline overruns and probes it again (half-open)
// after a cooldown, so chronically slow instances stop paying for doomed
// exact attempts.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crowdrank/internal/core"
	"crowdrank/internal/crowd"
	"crowdrank/internal/feq"
	"crowdrank/internal/graph"
	"crowdrank/internal/journal"
)

// Config configures the daemon. Zero-valued fields take the documented
// defaults; N and M are mandatory. DefaultConfig fills everything in.
type Config struct {
	// N is the number of objects being ranked; M the worker-pool size.
	// Votes outside [0, N) x [0, M) are dropped at ingest.
	N, M int

	// JournalPath is the write-ahead journal file; empty runs the daemon
	// in-memory only (acknowledged batches die with the process — tests
	// and throwaway experiments only).
	JournalPath string
	// JournalSync selects the append durability policy (default
	// journal.SyncAlways: fsync before every ack).
	JournalSync journal.SyncPolicy

	// Seed drives smoothing and SAPS, making served rankings reproducible
	// and certifiable (pass it to CertifyRanking). 0 draws a time-derived
	// seed at startup; the effective seed is reported in every response.
	Seed uint64
	// Parallelism fans SAPS starts and propagation walks over this many
	// goroutines; 0 or 1 is sequential.
	Parallelism int

	// ExactLimit is the largest n solved with Held-Karp on the exact rung;
	// beyond it the rung uses branch-and-bound. Default 16.
	ExactLimit int
	// ExactFraction and SAPSFraction apportion the remaining deadline to
	// the exact and SAPS rungs (each in (0, 1)); whatever is left after a
	// rung fails flows to the next. Defaults 0.5 and 0.8.
	ExactFraction float64
	SAPSFraction  float64
	// MinRungBudget is the smallest remaining budget worth starting a
	// cancellable rung with; below it the ladder falls straight to greedy.
	// Default 2ms.
	MinRungBudget time.Duration

	// DefaultDeadline applies to rank requests that carry none; deadlines
	// are clamped to MaxDeadline. Defaults 2s and 60s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxBatchVotes caps one ingest batch (HTTP 413 beyond). Default 65536.
	MaxBatchVotes int
	// MaxConcurrentRanks and MaxConcurrentIngests bound the request
	// queues; excess requests get HTTP 429 with Retry-After. Defaults 4
	// and 64.
	MaxConcurrentRanks   int
	MaxConcurrentIngests int

	// BreakerThreshold consecutive exact-rung deadline overruns open the
	// circuit breaker; BreakerCooldown later a single half-open probe may
	// close it again. Defaults 3 and 30s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultConfig returns the daemon configuration for n objects and m
// workers with every default made explicit.
func DefaultConfig(n, m int) Config {
	return Config{
		N:                    n,
		M:                    m,
		JournalSync:          journal.SyncAlways,
		ExactLimit:           16,
		ExactFraction:        0.5,
		SAPSFraction:         0.8,
		MinRungBudget:        2 * time.Millisecond,
		DefaultDeadline:      2 * time.Second,
		MaxDeadline:          60 * time.Second,
		MaxBatchVotes:        65536,
		MaxConcurrentRanks:   4,
		MaxConcurrentIngests: 64,
		BreakerThreshold:     3,
		BreakerCooldown:      30 * time.Second,
	}
}

// withDefaults fills zero fields and validates the result.
func (c Config) withDefaults() (Config, error) {
	d := DefaultConfig(c.N, c.M)
	if c.ExactLimit == 0 {
		c.ExactLimit = d.ExactLimit
	}
	if feq.Zero(c.ExactFraction) {
		c.ExactFraction = d.ExactFraction
	}
	if feq.Zero(c.SAPSFraction) {
		c.SAPSFraction = d.SAPSFraction
	}
	if c.MinRungBudget == 0 {
		c.MinRungBudget = d.MinRungBudget
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = d.DefaultDeadline
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = d.MaxDeadline
	}
	if c.MaxBatchVotes == 0 {
		c.MaxBatchVotes = d.MaxBatchVotes
	}
	if c.MaxConcurrentRanks == 0 {
		c.MaxConcurrentRanks = d.MaxConcurrentRanks
	}
	if c.MaxConcurrentIngests == 0 {
		c.MaxConcurrentIngests = d.MaxConcurrentIngests
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = d.BreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = d.BreakerCooldown
	}
	if c.Seed == 0 {
		c.Seed = uint64(time.Now().UnixNano())
	}
	switch {
	case c.N < 1:
		return c, fmt.Errorf("serve: need at least one object, got N=%d", c.N)
	case c.M < 1:
		return c, fmt.Errorf("serve: need at least one worker, got M=%d", c.M)
	case c.ExactFraction <= 0 || c.ExactFraction >= 1:
		return c, fmt.Errorf("serve: ExactFraction %v outside (0,1)", c.ExactFraction)
	case c.SAPSFraction <= 0 || c.SAPSFraction >= 1:
		return c, fmt.Errorf("serve: SAPSFraction %v outside (0,1)", c.SAPSFraction)
	case c.ExactLimit < 1:
		return c, fmt.Errorf("serve: ExactLimit %d must be >= 1", c.ExactLimit)
	case c.MaxBatchVotes < 1 || c.MaxConcurrentRanks < 1 || c.MaxConcurrentIngests < 1:
		return c, fmt.Errorf("serve: batch and queue bounds must be >= 1")
	case c.BreakerThreshold < 1 || c.BreakerCooldown < 0:
		return c, fmt.Errorf("serve: breaker threshold must be >= 1 and cooldown non-negative")
	case c.DefaultDeadline < 0 || c.MaxDeadline <= 0 || c.MinRungBudget < 0:
		return c, fmt.Errorf("serve: deadlines must be positive")
	}
	return c, nil
}

// submissionKey canonicalizes one (worker, pair, answer) submission so a
// re-submission with swapped object order still collides — the same
// dedup rule lenient Infer applies via SanitizeVotes.
type submissionKey struct {
	worker     int
	lo, hi     int
	prefersLow bool
}

func keyOf(v crowd.Vote) submissionKey {
	lo, hi, prefersLow := v.I, v.J, v.PrefersI
	if lo > hi {
		lo, hi = hi, lo
		prefersLow = !prefersLow
	}
	return submissionKey{worker: v.Worker, lo: lo, hi: hi, prefersLow: prefersLow}
}

// Server is the daemon engine: journaled vote state plus the degradation
// ladder. Create with New or NewContext, serve HTTP via Handler, and stop
// with Close.
type Server struct {
	cfg       Config
	jnl       *journal.Journal // nil when running in-memory
	recovered journal.ReplayStats
	logf      func(string, ...any)

	mu        sync.RWMutex
	votes     []crowd.Vote
	seen      map[submissionKey]bool
	gen       uint64 // bumped whenever votes change; keys the closure cache
	batches   int    // journal records acknowledged or replayed
	dupVotes  int    // exact duplicates suppressed by apply
	malformed int    // votes dropped at ingest since start (not journaled)

	closureMu sync.Mutex
	cacheGen  uint64
	cache     *graph.PreferenceGraph

	breaker   *breaker
	rankSem   chan struct{}
	ingestSem chan struct{}

	// closeMu is held shared by every in-flight ingest/rank and
	// exclusively by Close, so shutdown drains in-flight work before the
	// final journal sync. closing makes new requests fail fast instead of
	// queueing behind the pending writer lock.
	closeMu sync.RWMutex
	closing atomic.Bool
}

// New is NewContext with a background context.
func New(cfg Config) (*Server, error) {
	return NewContext(context.Background(), cfg)
}

// NewContext validates cfg, opens (and replays) the journal, and returns a
// ready server. Replaying a large journal honors ctx: cancellation aborts
// recovery with ctx's error and leaves the journal untouched.
func NewContext(ctx context.Context, cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		logf:      cfg.Logf,
		seen:      make(map[submissionKey]bool),
		breaker:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		rankSem:   make(chan struct{}, cfg.MaxConcurrentRanks),
		ingestSem: make(chan struct{}, cfg.MaxConcurrentIngests),
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if cfg.JournalPath != "" {
		jnl, stats, err := journal.Open(cfg.JournalPath, journal.Options{Sync: cfg.JournalSync}, func(payload []byte) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			votes, _, err := decodeBatch(payload, cfg.N, cfg.M)
			if err != nil {
				// A record that passed its checksum but does not decode is
				// a foreign or incompatible journal — refuse to serve from
				// it rather than guess.
				return fmt.Errorf("serve: undecodable batch: %w", err)
			}
			s.apply(votes)
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.jnl = jnl
		s.recovered = stats
		if stats.Truncated() {
			s.logf("journal %s: truncated torn tail (%d bytes): %s",
				cfg.JournalPath, stats.TruncatedBytes, stats.TailError)
		}
		s.logf("journal %s: recovered %d batches, %d votes",
			cfg.JournalPath, stats.Records, len(s.votes))
	}
	return s, nil
}

// apply folds one validated batch into the in-memory state, suppressing
// exact duplicate submissions, and returns what was added. Both live
// ingest and journal replay go through apply, so recovery rebuilds the
// identical vote set.
func (s *Server) apply(votes []crowd.Vote) (added, dups int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range votes {
		k := keyOf(v)
		if s.seen[k] {
			dups++
			continue
		}
		s.seen[k] = true
		s.votes = append(s.votes, v)
		added++
	}
	s.batches++
	s.dupVotes += dups
	if added > 0 {
		s.gen++
	}
	return added, dups
}

// Ingest validates, journals, and applies one vote batch; it is the
// library form of POST /votes. A nil error means the batch is durable
// (fsynced under journal.SyncAlways) and will survive a crash.
func (s *Server) Ingest(votes []crowd.Vote) (IngestResult, error) {
	return s.IngestContext(context.Background(), votes)
}

// IngestContext is Ingest honoring ctx up to the durability point: a batch
// cancelled before the journal append is refused with ctx's error and
// nothing is written. Once the append starts the batch commits atomically
// — there is no cancelling a half-fsynced record — so a ctx that expires
// later does not un-acknowledge it.
func (s *Server) IngestContext(ctx context.Context, votes []crowd.Vote) (IngestResult, error) {
	var res IngestResult
	if s.closing.Load() {
		return res, errShuttingDown
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closing.Load() {
		return res, errShuttingDown
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if len(votes) > s.cfg.MaxBatchVotes {
		return res, fmt.Errorf("serve: batch of %d votes exceeds cap %d: %w", len(votes), s.cfg.MaxBatchVotes, errBatchTooLarge)
	}
	valid := make([]crowd.Vote, 0, len(votes))
	for _, v := range votes {
		if v.Validate(s.cfg.N, s.cfg.M) != nil {
			res.Malformed++
			continue
		}
		valid = append(valid, v)
	}
	s.mu.Lock()
	s.malformed += res.Malformed
	s.mu.Unlock()
	if len(valid) == 0 {
		res.TotalVotes = s.VoteCount()
		return res, nil
	}
	// Last chance to honor cancellation: past this point the batch
	// commits.
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if s.jnl != nil {
		if err := s.jnl.Append(encodeBatch(valid)); err != nil {
			return res, fmt.Errorf("serve: journaling batch: %w", err)
		}
	}
	res.Accepted, res.Duplicates = s.apply(valid)
	s.mu.RLock()
	res.Seq = s.batches
	res.TotalVotes = len(s.votes)
	s.mu.RUnlock()
	return res, nil
}

// IngestResult describes one acknowledged batch.
type IngestResult struct {
	// Accepted counts votes added to the state; Duplicates exact
	// re-submissions suppressed; Malformed votes dropped at validation.
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	Malformed  int `json:"malformed"`
	// Seq is the journal sequence number of this batch (records appended
	// or replayed so far).
	Seq int `json:"seq"`
	// TotalVotes is the state size after this batch.
	TotalVotes int `json:"total_votes"`
}

// snapshot returns the current vote slice and its generation. The slice is
// append-only, so sharing the backing array with concurrent appends is
// safe: a later append either fits capacity (beyond our length) or
// reallocates.
func (s *Server) snapshot() ([]crowd.Vote, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.votes[:len(s.votes):len(s.votes)], s.gen
}

// closure returns the Step 1-3 transitive closure of the current votes,
// cached per state generation so repeated rank requests over unchanged
// state skip the pipeline prefix entirely.
func (s *Server) closure(votes []crowd.Vote, gen uint64) (*graph.PreferenceGraph, error) {
	s.closureMu.Lock()
	defer s.closureMu.Unlock()
	if s.cache != nil && s.cacheGen == gen {
		return s.cache, nil
	}
	opts := core.DefaultOptions()
	opts.SAPS.Parallelism = s.cfg.Parallelism
	opts.Propagate.Parallelism = s.cfg.Parallelism
	rng := newPipelineRNG(s.cfg.Seed)
	cl, err := core.BuildClosure(s.cfg.N, s.cfg.M, votes, opts, rng)
	if err != nil {
		return nil, fmt.Errorf("serve: building closure: %w", err)
	}
	s.cache = cl.Closure
	s.cacheGen = gen
	return s.cache, nil
}

// VoteCount returns the deduplicated vote count.
func (s *Server) VoteCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.votes)
}

// Stats is a point-in-time operational snapshot, served on /healthz.
type Stats struct {
	Objects    int    `json:"objects"`
	Workers    int    `json:"workers"`
	Votes      int    `json:"votes"`
	Batches    int    `json:"batches"`
	Duplicates int    `json:"duplicates"`
	Malformed  int    `json:"malformed"`
	Seed       uint64 `json:"seed"`
	Breaker    string `json:"breaker"`
	Journal    string `json:"journal,omitempty"`
	// Recovered describes the last journal replay.
	RecoveredBatches int   `json:"recovered_batches"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
	Closing          bool  `json:"closing"`
}

// StatsSnapshot assembles the current Stats.
func (s *Server) StatsSnapshot() Stats {
	s.mu.RLock()
	st := Stats{
		Objects:          s.cfg.N,
		Workers:          s.cfg.M,
		Votes:            len(s.votes),
		Batches:          s.batches,
		Duplicates:       s.dupVotes,
		Malformed:        s.malformed,
		Seed:             s.cfg.Seed,
		RecoveredBatches: s.recovered.Records,
		TruncatedBytes:   s.recovered.TruncatedBytes,
		Closing:          s.closing.Load(),
	}
	s.mu.RUnlock()
	st.Breaker = s.breaker.state()
	if s.jnl != nil {
		st.Journal = s.jnl.Path()
	}
	return st
}

// Recovered reports the journal replay performed at startup.
func (s *Server) Recovered() journal.ReplayStats { return s.recovered }

// Seed returns the effective pipeline seed (drawn at startup when the
// config left it 0). Pass it to CertifyRanking to certify served rankings.
func (s *Server) Seed() uint64 { return s.cfg.Seed }

// errShuttingDown is returned by requests that arrive during Close;
// errBatchTooLarge by batches over MaxBatchVotes. The HTTP layer maps them
// to 503 and 413.
var (
	errShuttingDown  = fmt.Errorf("serve: server is shutting down")
	errBatchTooLarge = fmt.Errorf("serve: batch exceeds MaxBatchVotes")
)

// Close drains in-flight work and performs the final journal sync. After
// Close, ingest and rank requests fail fast (HTTP 503); Close is
// idempotent.
func (s *Server) Close() error {
	if s.closing.Swap(true) {
		return nil
	}
	// Wait for every in-flight ingest and inference to release its shared
	// lock, then close (and thereby sync) the journal.
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.jnl != nil {
		if err := s.jnl.Close(); err != nil {
			return fmt.Errorf("serve: closing journal: %w", err)
		}
	}
	return nil
}
