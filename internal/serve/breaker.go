package serve

import (
	"sync"
	"time"

	"crowdrank/internal/obs"
)

// breaker is the exact-rung circuit breaker. Repeated deadline overruns of
// exact search mean the instance is too hard for the budgets requests are
// carrying; paying for more doomed attempts only eats into the SAPS
// budget. After threshold consecutive overruns the breaker opens and the
// ladder starts at SAPS. After the cooldown a single half-open probe lets
// one request try exact search again: success closes the breaker, another
// overrun re-opens it for a fresh cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	clock     obs.Clock    // injectable so tests drive transitions without sleeps
	trips     *obs.Counter // optional; counts transitions to open (nil-safe)

	failures int
	open     bool
	probing  bool // a half-open probe is in flight
	until    time.Time
}

func newBreaker(threshold int, cooldown time.Duration, clock obs.Clock) *breaker {
	if clock == nil {
		clock = obs.Real()
	}
	return &breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// allow reports whether the exact rung may run now. While open it returns
// false until the cooldown elapses, then admits exactly one probe
// (half-open) and blocks the rest until that probe reports.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing || b.clock.Now().Before(b.until) {
		return false
	}
	b.probing = true
	return true
}

// success reports an exact-rung completion within deadline.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.open = false
	b.probing = false
}

// failure reports an exact-rung deadline overrun.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		// The half-open probe overran: re-open for a fresh cooldown.
		b.probing = false
		b.open = true
		b.until = b.clock.Now().Add(b.cooldown)
		b.trips.Inc()
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.open = true
		b.failures = 0
		b.until = b.clock.Now().Add(b.cooldown)
		b.trips.Inc()
	}
}

// state names the breaker position for responses and /healthz.
func (b *breaker) state() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.probing:
		return "half-open"
	case b.open && b.clock.Now().Before(b.until):
		return "open"
	case b.open:
		return "half-open" // cooldown elapsed; next allow() admits the probe
	default:
		return "closed"
	}
}
