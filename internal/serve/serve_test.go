package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/obs"
)

// agreeingVotes has every worker vote every pair according to the identity
// order, so exact inference must recover 0 < 1 < ... < n-1.
func agreeingVotes(n, m int) []crowd.Vote {
	var votes []crowd.Vote
	for w := 0; w < m; w++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				votes = append(votes, crowd.Vote{Worker: w, I: i, J: j, PrefersI: true})
			}
		}
	}
	return votes
}

// noisyVotes is a conflicted electorate: workers disagree pseudo-randomly,
// which keeps exact search from short-circuiting on an easy instance.
func noisyVotes(n, m int, seed uint64) []crowd.Vote {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	var votes []crowd.Vote
	for w := 0; w < m; w++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				votes = append(votes, crowd.Vote{Worker: w, I: i, J: j, PrefersI: rng.Float64() < 0.55})
			}
		}
	}
	return votes
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return s
}

func assertPermutation(t *testing.T, n int, ranking []int) {
	t.Helper()
	if len(ranking) != n {
		t.Fatalf("ranking %v has length %d, want %d", ranking, len(ranking), n)
	}
	seen := make([]bool, n)
	for _, v := range ranking {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("ranking %v is not a permutation of %d objects", ranking, n)
		}
		seen[v] = true
	}
}

func TestIngestAndExactRank(t *testing.T) {
	cfg := DefaultConfig(6, 3)
	cfg.Seed = 11
	s := newTestServer(t, cfg)

	res, err := s.Ingest(agreeingVotes(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 45 || res.Duplicates != 0 || res.Malformed != 0 {
		t.Fatalf("unexpected ingest result %+v", res)
	}
	rr, err := s.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Algorithm != AlgoExactHeldKarp {
		t.Fatalf("n=6 unanimous instance should use %s, got %s", AlgoExactHeldKarp, rr.Algorithm)
	}
	if rr.Degraded {
		t.Fatal("exact answer should not be marked degraded")
	}
	for i, v := range rr.Ranking {
		if v != i {
			t.Fatalf("unanimous identity votes should rank identically, got %v", rr.Ranking)
		}
	}
	if rr.Votes != 45 || rr.Seed != 11 {
		t.Fatalf("result metadata wrong: %+v", rr)
	}
}

func TestRankWithoutVotes(t *testing.T) {
	cfg := DefaultConfig(5, 2)
	cfg.Seed = 1
	s := newTestServer(t, cfg)
	rr, err := s.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Algorithm != AlgoUninformed {
		t.Fatalf("empty state should answer %s, got %s", AlgoUninformed, rr.Algorithm)
	}
	assertPermutation(t, 5, rr.Ranking)
}

func TestIngestDeduplicatesAcrossBatches(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 3
	s := newTestServer(t, cfg)
	if _, err := s.Ingest([]crowd.Vote{{Worker: 0, I: 0, J: 1, PrefersI: true}}); err != nil {
		t.Fatal(err)
	}
	// Same submission, mirrored encoding: must collide with the first.
	res, err := s.Ingest([]crowd.Vote{{Worker: 0, I: 1, J: 0, PrefersI: false}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Duplicates != 1 {
		t.Fatalf("mirrored resubmission should dedup, got %+v", res)
	}
	// The same pair from another worker is a distinct submission.
	res, err = s.Ingest([]crowd.Vote{{Worker: 1, I: 0, J: 1, PrefersI: false}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 {
		t.Fatalf("distinct worker should be accepted, got %+v", res)
	}
	if s.VoteCount() != 2 {
		t.Fatalf("want 2 deduplicated votes, got %d", s.VoteCount())
	}
}

func TestIngestContextRefusesCancelledBatch(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 3
	s := newTestServer(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.IngestContext(ctx, agreeingVotes(4, 1)); err == nil {
		t.Fatal("cancelled ingest must be refused")
	}
	if s.VoteCount() != 0 {
		t.Fatalf("refused batch must not change state, got %d votes", s.VoteCount())
	}
}

func TestIngestCountsMalformed(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 3
	s := newTestServer(t, cfg)
	res, err := s.Ingest([]crowd.Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 9, I: 0, J: 1, PrefersI: true},  // worker outside pool
		{Worker: 0, I: 2, J: 2, PrefersI: true},  // self-pair
		{Worker: 0, I: -1, J: 1, PrefersI: true}, // negative id
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Malformed != 3 {
		t.Fatalf("want 1 accepted / 3 malformed, got %+v", res)
	}
}

func TestJournalRecoveryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	cfg := DefaultConfig(6, 3)
	cfg.Seed = 21
	cfg.JournalPath = path

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := agreeingVotes(6, 3)
	for i := 0; i < len(all); i += 9 {
		if _, err := s.Ingest(all[i : i+9]); err != nil {
			t.Fatal(err)
		}
	}
	wantVotes, _ := s.snapshot()
	want, err := s.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := newTestServer(t, cfg)
	if r.Recovered().Records != 5 {
		t.Fatalf("want 5 replayed batches, got %d", r.Recovered().Records)
	}
	if r.Recovered().Truncated() {
		t.Fatalf("clean journal should not report truncation: %+v", r.Recovered())
	}
	gotVotes, _ := r.snapshot()
	if len(gotVotes) != len(wantVotes) {
		t.Fatalf("recovered %d votes, want %d", len(gotVotes), len(wantVotes))
	}
	for i := range gotVotes {
		if gotVotes[i] != wantVotes[i] {
			t.Fatalf("vote %d differs after recovery: %+v vs %+v", i, gotVotes[i], wantVotes[i])
		}
	}
	got, err := r.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != want.Algorithm {
		t.Fatalf("recovered server used %s, original %s", got.Algorithm, want.Algorithm)
	}
	for i := range want.Ranking {
		if got.Ranking[i] != want.Ranking[i] {
			t.Fatalf("recovered ranking %v differs from original %v", got.Ranking, want.Ranking)
		}
	}
}

func TestServerRejectsForeignJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	big := DefaultConfig(50, 10)
	big.Seed = 5
	big.JournalPath = path
	s, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]crowd.Vote{{Worker: 9, I: 40, J: 49, PrefersI: true}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening under a smaller universe must not silently poison state:
	// out-of-universe votes are dropped per decodeBatch's contract, leaving
	// an empty, healthy server rather than a refused start.
	small := DefaultConfig(4, 2)
	small.Seed = 5
	small.JournalPath = path
	r := newTestServer(t, small)
	if r.VoteCount() != 0 {
		t.Fatalf("out-of-universe votes must be dropped on replay, got %d", r.VoteCount())
	}
}

func TestCloseMakesRequestsFailFast(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 9
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	if _, err := s.Ingest(agreeingVotes(4, 1)); err == nil {
		t.Fatal("ingest after Close should fail")
	}
	if _, err := s.Rank(); err == nil {
		t.Fatal("rank after Close should fail")
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	votes := agreeingVotes(5, 3)
	got, dropped, err := decodeBatch(encodeBatch(votes), 5, 3)
	if err != nil || dropped != 0 {
		t.Fatalf("round trip failed: err=%v dropped=%d", err, dropped)
	}
	if len(got) != len(votes) {
		t.Fatalf("decoded %d votes, want %d", len(got), len(votes))
	}
	for i := range got {
		if got[i] != votes[i] {
			t.Fatalf("vote %d: got %+v want %+v", i, got[i], votes[i])
		}
	}
}

func TestBatchCodecRejectsStructuralDamage(t *testing.T) {
	good := encodeBatch(agreeingVotes(4, 2))
	cases := map[string][]byte{
		"empty payload":    {},
		"truncated":        good[:len(good)-2],
		"trailing bytes":   append(bytes.Clone(good), 0xff),
		"bogus count":      {0xff, 0xff, 0xff, 0xff, 0xff},
		"bad pref byte":    {1, 0, 0, 1, 7},
		"count over bytes": {200, 1, 0, 0, 1, 1},
	}
	for name, data := range cases {
		if _, _, err := decodeBatch(data, 4, 2); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

func TestBatchCodecDropsOutOfUniverse(t *testing.T) {
	votes := []crowd.Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 7, I: 0, J: 1, PrefersI: true}, // worker outside m=2
		{Worker: 1, I: 0, J: 9, PrefersI: false},
	}
	got, dropped, err := decodeBatch(encodeBatch(votes), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || dropped != 2 {
		t.Fatalf("want 1 kept / 2 dropped, got %d/%d", len(got), dropped)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := obs.NewFakeClock(time.Unix(1000, 0))
	b := newBreaker(3, time.Minute, clock)

	if !b.allow() || b.state() != "closed" {
		t.Fatal("fresh breaker should be closed")
	}
	b.failure()
	b.failure()
	if !b.allow() {
		t.Fatal("below threshold the breaker stays closed")
	}
	b.failure() // third consecutive failure trips it
	if b.allow() || b.state() != "open" {
		t.Fatalf("breaker should be open, state=%s", b.state())
	}

	clock.Advance(61 * time.Second)
	if b.state() != "half-open" {
		t.Fatalf("cooldown elapsed: want half-open, got %s", b.state())
	}
	if !b.allow() {
		t.Fatal("first caller after cooldown should get the probe")
	}
	if b.allow() {
		t.Fatal("only one probe may be in flight")
	}
	b.failure() // probe overran: re-open for a fresh cooldown
	if b.allow() || b.state() != "open" {
		t.Fatalf("failed probe should re-open, state=%s", b.state())
	}

	clock.Advance(61 * time.Second)
	if !b.allow() {
		t.Fatal("second probe should be admitted")
	}
	b.success()
	if !b.allow() || b.state() != "closed" {
		t.Fatalf("successful probe should close the breaker, state=%s", b.state())
	}

	// A success resets the consecutive-failure count.
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if !b.allow() {
		t.Fatal("failure count should reset on success")
	}
}

func TestBreakerSkipsExactRung(t *testing.T) {
	cfg := DefaultConfig(6, 2)
	cfg.Seed = 13
	cfg.BreakerThreshold = 1
	s := newTestServer(t, cfg)
	if _, err := s.Ingest(agreeingVotes(6, 2)); err != nil {
		t.Fatal(err)
	}
	s.breaker.failure() // trip it (threshold 1)
	rr, err := s.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Algorithm == AlgoExactHeldKarp || rr.Algorithm == AlgoExactBranchBound {
		t.Fatalf("open breaker must skip the exact rung, got %s", rr.Algorithm)
	}
	if !rr.Degraded {
		t.Fatal("a skipped exact rung is a degraded answer")
	}
	if rr.Breaker != "open" {
		t.Fatalf("response should report the breaker open, got %s", rr.Breaker)
	}
	assertPermutation(t, 6, rr.Ranking)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, M: 2},
		{N: 3, M: 0},
		{N: 3, M: 2, ExactFraction: 1.5},
		{N: 3, M: 2, SAPSFraction: -0.1},
		{N: 3, M: 2, ExactLimit: -1},
		{N: 3, M: 2, BreakerThreshold: -2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	s := newTestServer(t, Config{N: 3, M: 2})
	if s.Seed() == 0 {
		t.Fatal("zero seed should be replaced by a drawn one")
	}
}

// --- HTTP layer ---

func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postVotes(t *testing.T, url string, votes []crowd.Vote) *http.Response {
	t.Helper()
	req := ingestRequest{}
	for _, v := range votes {
		req.Votes = append(req.Votes, voteJSON{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/votes", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

func TestHTTPIngestAndRank(t *testing.T) {
	cfg := DefaultConfig(6, 3)
	cfg.Seed = 17
	_, ts := httpServer(t, cfg)

	resp := postVotes(t, ts.URL, agreeingVotes(6, 3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var ir IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 45 {
		t.Fatalf("want 45 accepted, got %+v", ir)
	}

	resp2, err := http.Get(ts.URL + "/rank")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("rank status %d", resp2.StatusCode)
	}
	var rr RankResult
	if err := json.NewDecoder(resp2.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	assertPermutation(t, 6, rr.Ranking)
	if rr.Algorithm == "" {
		t.Fatal("response must name the algorithm that answered")
	}
}

// TestHTTPTinyDeadlineStillAnswers is the acceptance criterion: a rank
// request whose deadline cannot afford real inference still gets HTTP 200
// with a ranking, and the response names the degraded algorithm.
func TestHTTPTinyDeadlineStillAnswers(t *testing.T) {
	n := 60
	cfg := DefaultConfig(n, 5)
	cfg.Seed = 23
	_, ts := httpServer(t, cfg)

	if resp := postVotes(t, ts.URL, noisyVotes(n, 5, 23)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/rank?deadline_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("a 50ms-deadline rank must still answer 200, got %d", resp.StatusCode)
	}
	var rr RankResult
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	assertPermutation(t, n, rr.Ranking)
	switch rr.Algorithm {
	case AlgoExactBranchBound, AlgoSAPS, AlgoGreedy:
	default:
		t.Fatalf("unexpected algorithm %q for n=%d at 50ms", rr.Algorithm, n)
	}
	// At 1ms even SAPS is unaffordable: the greedy floor must answer and
	// the response must say the ladder degraded.
	resp2, err := http.Get(ts.URL + "/rank?deadline_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("a 1ms-deadline rank must still answer 200, got %d", resp2.StatusCode)
	}
	var rr2 RankResult
	if err := json.NewDecoder(resp2.Body).Decode(&rr2); err != nil {
		t.Fatal(err)
	}
	assertPermutation(t, n, rr2.Ranking)
	if !rr2.Degraded {
		t.Fatalf("1ms deadline must degrade, got %+v algorithm %s", rr2.Degraded, rr2.Algorithm)
	}
	if rr2.Algorithm != AlgoGreedy {
		t.Fatalf("1ms deadline should hit the greedy floor, got %s", rr2.Algorithm)
	}
}

func TestHTTPBackpressure(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 29
	cfg.MaxConcurrentRanks = 1
	cfg.MaxConcurrentIngests = 1
	s, ts := httpServer(t, cfg)

	// Occupy both queues, then observe immediate 429s with Retry-After.
	s.rankSem <- struct{}{}
	s.ingestSem <- struct{}{}
	defer func() { <-s.rankSem; <-s.ingestSem }()

	resp, err := http.Get(ts.URL + "/rank")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full rank queue should 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	resp2 := postVotes(t, ts.URL, agreeingVotes(4, 2))
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full ingest queue should 429, got %d", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
}

func TestHTTPValidationErrors(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 31
	cfg.MaxBatchVotes = 2
	_, ts := httpServer(t, cfg)

	resp, err := http.Post(ts.URL+"/votes", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON should 400, got %d", resp.StatusCode)
	}

	if resp := postVotes(t, ts.URL, agreeingVotes(4, 1)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch should 413, got %d", resp.StatusCode)
	}

	for _, q := range []string{"deadline_ms=0", "deadline_ms=-5", "deadline_ms=soon"} {
		resp, err := http.Get(ts.URL + "/rank?" + q)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s should 400, got %d", q, resp.StatusCode)
		}
	}

	resp3, err := http.Get(ts.URL + "/votes") // wrong method
	if err != nil {
		t.Fatal(err)
	}
	_ = resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /votes should 405, got %d", resp3.StatusCode)
	}
}

func TestHTTPHealthAndReadiness(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 37
	s, ts := httpServer(t, cfg)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Objects != 4 || st.Workers != 2 || st.Breaker != "closed" {
		t.Fatalf("unexpected stats %+v", st)
	}

	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d", resp2.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/readyz", "/rank"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during shutdown should 503, got %d", path, resp.StatusCode)
		}
	}
	if resp := postVotes(t, ts.URL, agreeingVotes(4, 2)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest during shutdown should 503, got %d", resp.StatusCode)
	}
}

func TestClosureCacheInvalidation(t *testing.T) {
	cfg := DefaultConfig(5, 2)
	cfg.Seed = 41
	s := newTestServer(t, cfg)
	if _, err := s.Ingest(agreeingVotes(5, 1)); err != nil {
		t.Fatal(err)
	}
	votes, gen := s.snapshot()
	c1, err := s.closure(votes, gen)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.closure(votes, gen)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("unchanged state must reuse the cached closure")
	}
	// A duplicate-only batch must not invalidate the cache...
	if _, err := s.Ingest(agreeingVotes(5, 1)); err != nil {
		t.Fatal(err)
	}
	votes, gen2 := s.snapshot()
	if gen2 != gen {
		t.Fatal("duplicate-only batch should not bump the generation")
	}
	// ...but new votes must.
	if _, err := s.Ingest([]crowd.Vote{{Worker: 1, I: 0, J: 1, PrefersI: false}}); err != nil {
		t.Fatal(err)
	}
	votes, gen3 := s.snapshot()
	if gen3 == gen {
		t.Fatal("new votes must bump the generation")
	}
	c3, err := s.closure(votes, gen3)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("new generation must rebuild the closure")
	}
}

func TestStatsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 43
	cfg.JournalPath = path
	s := newTestServer(t, cfg)
	if _, err := s.Ingest([]crowd.Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 0, I: 1, J: 0, PrefersI: false}, // duplicate
		{Worker: 5, I: 0, J: 1, PrefersI: true},  // malformed
	}); err != nil {
		t.Fatal(err)
	}
	st := s.StatsSnapshot()
	if st.Votes != 1 || st.Duplicates != 1 || st.Malformed != 1 || st.Batches != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if st.Journal != path || st.Seed != 43 || st.Closing {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestHeldKarpEstimateMonotone(t *testing.T) {
	prev := time.Duration(0)
	for n := 2; n <= 24; n++ {
		est := heldKarpEstimate(n)
		if est <= prev {
			t.Fatalf("estimate must grow with n: n=%d est=%v prev=%v", n, est, prev)
		}
		prev = est
	}
	if heldKarpEstimate(10) > 50*time.Millisecond {
		t.Fatalf("n=10 estimate implausibly large: %v", heldKarpEstimate(10))
	}
}

func ExampleServer() {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 7
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	defer func() { _ = s.Close() }()
	if _, err := s.Ingest(agreeingVotes(4, 2)); err != nil {
		panic(err)
	}
	rr, err := s.Rank()
	if err != nil {
		panic(err)
	}
	fmt.Println(rr.Ranking, rr.Algorithm)
	// Output: [0 1 2 3] exact:heldkarp
}
