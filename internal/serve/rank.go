package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"crowdrank/internal/invariant"
	"crowdrank/internal/search"
)

// Algorithm names reported in RankResult.Algorithm. The acceptance
// contract is that a response always names the rung that actually
// produced the ranking.
const (
	AlgoExactHeldKarp    = "exact:heldkarp"
	AlgoExactBranchBound = "exact:branchbound"
	AlgoSAPS             = "saps"
	AlgoGreedy           = "greedy"
	// AlgoUninformed is returned before any votes arrive: the identity
	// order under the uniform 0.5 prior, where every ranking is equally
	// likely.
	AlgoUninformed = "uninformed-prior"
)

// RankResult is one served ranking and the story of how it was produced.
type RankResult struct {
	// Ranking is the full ranking, most-preferred first.
	Ranking []int `json:"ranking"`
	// LogProb is the all-pairs log preference probability of Ranking.
	LogProb float64 `json:"log_prob"`
	// Algorithm names the ladder rung that produced the ranking.
	Algorithm string `json:"algorithm"`
	// Degraded is true when a rung below exact search answered — because
	// the deadline could not afford exact, exact overran, or the breaker
	// had it tripped.
	Degraded bool `json:"degraded"`
	// Votes is the deduplicated vote count the ranking was inferred from.
	Votes int `json:"votes"`
	// Seed is the pipeline seed; CertifyRanking with the same votes and
	// WithSeed(Seed) certifies this ranking against the same closure.
	Seed uint64 `json:"seed"`
	// Breaker is the exact-rung breaker state after this request
	// (closed, open, or half-open).
	Breaker string `json:"breaker"`
	// Elapsed is the server-side time spent producing the ranking.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// newPipelineRNG seeds the closure pipeline exactly as the public
// Infer/CertifyRanking do, so a served ranking certifies against the
// closure CertifyRanking(..., WithSeed(seed)) rebuilds.
func newPipelineRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xd1342543de82ef95))
}

// newSearchRNG seeds the SAPS rung. It is deliberately a separate stream:
// the closure cache means the smoothing draws are not re-consumed per
// request, so SAPS determinism must not depend on pipeline stream
// position.
func newSearchRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// heldKarpEstimate guesses Held-Karp's runtime (O(2^n n^2) subset DP) at a
// conservative throughput, so the uncancellable exact rung is only entered
// when the budget clearly covers it.
func heldKarpEstimate(n int) time.Duration {
	const opsPerSecond = 200e6
	ops := float64(n) * float64(n) * math.Pow(2, float64(n))
	return time.Duration(ops / opsPerSecond * float64(time.Second))
}

// Rank is RankContext under the configured default deadline.
func (s *Server) Rank() (*RankResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DefaultDeadline)
	defer cancel()
	return s.RankContext(ctx)
}

// RankContext serves a ranking within ctx's deadline by walking the
// degradation ladder: exact search (Held-Karp up to ExactLimit objects,
// branch-and-bound beyond) when the breaker is closed and the budget
// affords it, SAPS annealing when it does not, and the greedy tournament
// order as the floor. An expired deadline is absorbed by degradation — the
// call still returns a ranking; only an explicit cancellation (client
// gone) or a broken pipeline returns an error.
func (s *Server) RankContext(ctx context.Context) (*RankResult, error) {
	// All request timing goes through the injected clock: Since carries
	// the monotonic reading on the real clock (immune to wall jumps), and
	// tests drive the ladder deterministically with a fake.
	start := s.clock.Now()
	if s.closing.Load() {
		return nil, errShuttingDown
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closing.Load() {
		return nil, errShuttingDown
	}
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return nil, err // cancelled outright; nobody is waiting for an answer
	}

	votes, gen := s.snapshot()
	res := &RankResult{Votes: len(votes), Seed: s.cfg.Seed}
	var searchStart time.Time // zero until the closure is built
	finish := func(path []int, logProb float64) (*RankResult, error) {
		// Stage-boundary assertion (no-op unless built with
		// -tags crowdrank_invariants): every rung must return a
		// permutation.
		invariant.CheckRanking(s.cfg.N, path)
		res.Ranking = path
		res.LogProb = logProb
		res.Breaker = s.breaker.state()
		res.Elapsed = s.clock.Since(start)
		s.met.rankByAlgo[res.Algorithm].Inc()
		s.met.rankSeconds.ObserveDuration(res.Elapsed)
		if res.Degraded {
			s.met.rankDegraded.Inc()
		}
		if !searchStart.IsZero() {
			s.met.stageSeconds[stageSearch].ObserveDuration(s.clock.Since(searchStart))
		}
		return res, nil
	}

	if len(votes) == 0 {
		res.Algorithm = AlgoUninformed
		identity := make([]int, s.cfg.N)
		for i := range identity {
			identity[i] = i
		}
		return finish(identity, 0)
	}

	//lint:ignore lockcheck the shared closeMu read lock intentionally spans the whole inference (closure build and searchers) so Close's drain waits for in-flight ranks instead of yanking state from under them
	closure, err := s.closure(votes, gen)
	if err != nil {
		return nil, err
	}
	searchStart = s.clock.Now()
	const obj = search.ObjectiveAllPairs
	deadline, hasDeadline := ctx.Deadline()
	remaining := func() time.Duration {
		if !hasDeadline {
			return time.Hour
		}
		return deadline.Sub(s.clock.Now())
	}

	// Rung 1: exact search. Decide affordability before consulting the
	// breaker so a half-open probe slot is never claimed and then wasted
	// on a budget skip.
	useHeldKarp := s.cfg.N <= s.cfg.ExactLimit
	exactBudget := time.Duration(float64(remaining()) * s.cfg.ExactFraction)
	affordable := exactBudget >= s.cfg.MinRungBudget
	if useHeldKarp && hasDeadline {
		// Held-Karp cannot be cancelled mid-flight; require the budget to
		// clearly cover its estimated cost.
		affordable = exactBudget > 2*heldKarpEstimate(s.cfg.N)
	}
	if affordable && s.breaker.allow() {
		if useHeldKarp {
			if sr, err := search.HeldKarp(closure, 0, obj); err == nil {
				s.breaker.success()
				res.Algorithm = AlgoExactHeldKarp
				return finish(sr.Path, sr.LogProb)
			}
			// Structurally impossible on a complete closure, but resolve
			// the breaker (and any probe) rather than wedge it.
			s.breaker.failure()
			res.Degraded = true
		} else {
			exactCtx, cancel := ctx, context.CancelFunc(func() {})
			if hasDeadline {
				exactCtx, cancel = context.WithTimeout(ctx, exactBudget)
			}
			sr, err := search.BranchAndBoundContext(exactCtx, closure, search.BranchAndBoundParams{})
			cancel()
			if err == nil {
				s.breaker.success()
				res.Algorithm = AlgoExactBranchBound
				return finish(sr.Path, sr.LogProb)
			}
			if ctxErr := ctx.Err(); ctxErr != nil && !errors.Is(ctxErr, context.DeadlineExceeded) {
				return nil, ctxErr
			}
			// Deadline overrun or a cycle-heavy instance branch-and-bound
			// refuses: either way this instance is not answering exactly
			// at this budget, which is what the breaker tracks.
			s.breaker.failure()
			res.Degraded = true
		}
	} else {
		res.Degraded = true // exact skipped: unaffordable or breaker open
	}

	// Rung 2: SAPS annealing under what is left of the deadline.
	if rem := remaining(); rem >= s.cfg.MinRungBudget {
		sapsCtx, cancel := ctx, context.CancelFunc(func() {})
		if hasDeadline {
			sapsCtx, cancel = context.WithTimeout(ctx, time.Duration(float64(rem)*s.cfg.SAPSFraction))
		}
		params := search.DefaultSAPSParams()
		params.Objective = obj
		params.Parallelism = s.cfg.Parallelism
		sr, err := search.SAPSContext(sapsCtx, closure, params, newSearchRNG(s.cfg.Seed))
		cancel()
		if err == nil {
			res.Algorithm = AlgoSAPS
			return finish(sr.Path, sr.LogProb)
		}
		if ctxErr := ctx.Err(); ctxErr != nil && !errors.Is(ctxErr, context.DeadlineExceeded) {
			return nil, ctxErr
		}
	}

	// Rung 3: greedy tournament order — the floor that answers even after
	// the deadline has expired.
	sr, err := search.Greedy(closure, obj)
	if err != nil {
		return nil, fmt.Errorf("serve: greedy floor failed: %w", err)
	}
	res.Algorithm = AlgoGreedy
	res.Degraded = true
	return finish(sr.Path, sr.LogProb)
}
