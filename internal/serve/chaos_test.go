package serve

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/journal"
)

const (
	chaosDirEnv  = "CROWDRANK_CHAOS_DIR"
	chaosSnapEnv = "CROWDRANK_CHAOS_SNAP_EVERY"
	chaosN       = 40
	chaosM       = 20
)

// activeSegment returns the journal directory's highest-numbered (live)
// segment file.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "journal.") && name > last {
			last = name
		}
	}
	if last == "" {
		t.Fatalf("no journal segments in %s", dir)
	}
	return filepath.Join(dir, last)
}

// chaosVote derives the seq-th unique submission, so each acknowledged
// batch is distinguishable in the recovered state.
func chaosVote(seq int) crowd.Vote {
	pairs := chaosN * (chaosN - 1) / 2
	p := seq % pairs
	w := (seq / pairs) % chaosM
	// Unrank p into the (i, j) pair with i < j.
	i, row := 0, chaosN-1
	for p >= row {
		p -= row
		i++
		row--
	}
	return crowd.Vote{Worker: w, I: i, J: i + 1 + p, PrefersI: seq%3 != 0}
}

// TestChaosChildDaemon is not a test of its own: TestChaosKillMidIngest
// re-execs the test binary with CROWDRANK_CHAOS_DIR set to turn this into
// the victim daemon process that gets SIGKILLed mid-ingest.
func TestChaosChildDaemon(t *testing.T) {
	dir := os.Getenv(chaosDirEnv)
	if dir == "" {
		t.Skip("not a chaos child")
	}
	cfg := DefaultConfig(chaosN, chaosM)
	cfg.Seed = 1
	cfg.JournalPath = filepath.Join(dir, "wal")
	cfg.JournalSync = journal.SyncAlways // acks must mean durable
	if v := os.Getenv(chaosSnapEnv); v != "" {
		// Snapshot-chaos mode: snapshot+compact every few batches over
		// tiny segments, so the SIGKILL lands inside a snapshot write or
		// a compaction delete with high probability.
		every, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("chaos child: bad %s: %v", chaosSnapEnv, err)
		}
		cfg.SnapshotEveryBatches = every
		cfg.JournalSegmentBytes = 128
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("chaos child: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("chaos child: %v", err)
	}
	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("chaos child: %v", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		t.Fatalf("chaos child: %v", err)
	}
	// Serve until SIGKILL; there is no graceful path out of this process.
	t.Fatalf("chaos child: listener exited: %v", http.Serve(ln, s.Handler()))
}

// startChaosChild re-execs the test binary as a victim daemon in dir and
// waits for its address. The caller SIGKILLs it via child.Process.Kill and
// reaps it with child.Wait; the cleanup handles tests that bail out early.
func startChaosChild(t *testing.T, dir string, extraEnv ...string) (base string, out *bytes.Buffer, child *exec.Cmd) {
	t.Helper()
	child = exec.Command(os.Args[0], "-test.run=^TestChaosChildDaemon$", "-test.v")
	child.Env = append(append(os.Environ(), chaosDirEnv+"="+dir), extraEnv...)
	var childOut bytes.Buffer
	child.Stdout, child.Stderr = &childOut, &childOut
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = child.Process.Kill()
		_ = child.Wait() // double Wait errors harmlessly after a clean reap
	})

	addrPath := filepath.Join(dir, "addr")
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("chaos child never came up; output:\n%s", childOut.String())
		}
		if b, err := os.ReadFile(addrPath); err == nil {
			addr = string(b)
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	return "http://" + addr, &childOut, child
}

// TestChaosKillMidIngest is the crash-safety acceptance test: a daemon is
// SIGKILLed while a client streams vote batches, and on replay every batch
// that was acknowledged before the kill must be recovered. The journal
// tail torn by the kill (or corrupted afterwards) must be detected and
// truncated, never silently replayed.
func TestChaosKillMidIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	dir := t.TempDir()
	base, childOut, child := startChaosChild(t, dir)

	// Stream unique single-vote batches; record every acknowledged vote.
	// The kill lands while a request is typically in flight, so the final
	// journal record may be torn — that is the point.
	var acked []crowd.Vote
	seq := 0
	post := func() bool {
		v := chaosVote(seq)
		seq++
		body, err := json.Marshal(ingestRequest{Votes: []voteJSON{{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI}}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/votes", "application/json", bytes.NewReader(body))
		if err != nil {
			return false // connection died: the kill landed
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d before kill", resp.StatusCode)
		}
		acked = append(acked, v)
		return true
	}
	for len(acked) < 25 {
		if !post() {
			t.Fatalf("daemon died before the kill; output:\n%s", childOut.String())
		}
	}
	// SIGKILL mid-stream: keep posting from this goroutine while the kill
	// is delivered asynchronously, so acks and the kill genuinely race.
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000 && post(); i++ {
	}
	_ = child.Wait() // reap; exit status is the kill signal

	// Recovery 1: replay the journal into a fresh engine. Every
	// acknowledged vote must be there.
	cfg := DefaultConfig(chaosN, chaosM)
	cfg.Seed = 1
	cfg.JournalPath = filepath.Join(dir, "wal")
	assertRecoversAcked := func(label string, wantTruncated bool) *Server {
		t.Helper()
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		if wantTruncated && !s.Recovered().Truncated() {
			t.Fatalf("%s: corrupted tail was not reported: %+v", label, s.Recovered())
		}
		votes, _ := s.snapshot()
		have := make(map[submissionKey]bool, len(votes))
		for _, v := range votes {
			have[keyOf(v)] = true
		}
		for i, v := range acked {
			if !have[keyOf(v)] {
				t.Fatalf("%s: acked vote %d (%+v) lost in recovery (recovered %d of %d)",
					label, i, v, len(votes), len(acked))
			}
		}
		return s
	}
	s := assertRecoversAcked("post-kill", false)
	recoveredBatches := s.Recovered().Records
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery 2: a torn tail — a record header promising more payload
	// than exists, as a partial write would leave. It must be truncated
	// and reported, and the acked prefix must survive untouched.
	f, err := os.OpenFile(activeSegment(t, cfg.JournalPath), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s = assertRecoversAcked("torn-tail", true)
	if s.Recovered().Records != recoveredBatches {
		t.Fatalf("torn tail changed the recovered batch count: %d vs %d",
			s.Recovered().Records, recoveredBatches)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery 3: bit-flip the (now repaired) journal's final byte — a
	// checksum failure in the last record. Only that record may be
	// rejected; it must not be silently replayed.
	seg := activeSegment(t, cfg.JournalPath)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := New(cfg)
	if err != nil {
		t.Fatalf("bit-flip recovery failed: %v", err)
	}
	if !s3.Recovered().Truncated() {
		t.Fatal("bit-flipped record was silently replayed")
	}
	if s3.Recovered().Records != recoveredBatches-1 {
		t.Fatalf("bit flip should drop exactly the last record: replayed %d, want %d",
			s3.Recovered().Records, recoveredBatches-1)
	}

	// The repaired daemon must serve: restart HTTP in-process and rank.
	req := httptest.NewRequest(http.MethodGet, "/rank?deadline_ms=2000", nil)
	rec := httptest.NewRecorder()
	s3.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-recovery rank status %d: %s", rec.Code, rec.Body.String())
	}
	var rr RankResult
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	assertPermutation(t, chaosN, rr.Ranking)
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosKillDuringSnapshotCompaction is the bounded-recovery acceptance
// test: the victim daemon snapshots and compacts every other acked batch
// over tiny segments, so the SIGKILL lands inside a snapshot write or a
// compaction delete with high probability. Recovery must (a) keep every
// acknowledged vote, and (b) be bounded — seeded from a snapshot at some
// generation G, replaying exactly the records past G, asserted via
// RecoveryStats.
func TestChaosKillDuringSnapshotCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	dir := t.TempDir()
	base, childOut, child := startChaosChild(t, dir, chaosSnapEnv+"=2")

	var acked []crowd.Vote
	seq := 0
	post := func() bool {
		v := chaosVote(seq)
		seq++
		body, err := json.Marshal(ingestRequest{Votes: []voteJSON{{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI}}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/votes", "application/json", bytes.NewReader(body))
		if err != nil {
			return false // connection died: the kill landed
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d before kill", resp.StatusCode)
		}
		acked = append(acked, v)
		return true
	}
	// Enough acked batches for ~15 snapshot+compaction cycles before the
	// kill races the stream.
	for len(acked) < 30 {
		if !post() {
			t.Fatalf("daemon died before the kill; output:\n%s", childOut.String())
		}
	}
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000 && post(); i++ {
	}
	_ = child.Wait()

	cfg := DefaultConfig(chaosN, chaosM)
	cfg.Seed = 1
	cfg.JournalPath = filepath.Join(dir, "wal")
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v\nchild output:\n%s", err, childOut.String())
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rec := s.Recovered()

	// (a) No acked vote may be lost, however the kill interleaved with
	// snapshot writes and segment deletes.
	votes, _ := s.snapshot()
	have := make(map[submissionKey]bool, len(votes))
	for _, v := range votes {
		have[keyOf(v)] = true
	}
	for i, v := range acked {
		if !have[keyOf(v)] {
			t.Fatalf("acked vote %d (%+v) lost (recovered %d of %d; recovery: %s)",
				i, v, len(votes), len(acked), rec)
		}
	}

	// (b) Bounded recovery: a snapshot seeded the state (with a snapshot
	// every 2 batches and >= 30 acked, at least one complete one is on
	// disk — a torn write never renames into place), and the replay was
	// exactly the suffix past its coverage.
	if rec.SnapshotPath == "" || rec.SnapshotSeq == 0 {
		t.Fatalf("recovery did not use a snapshot: %s", rec)
	}
	if got, want := rec.Records, int(rec.NextSeq-rec.SnapshotSeq); got != want {
		t.Fatalf("replayed %d records after snapshot seq %d, want exactly the %d-record suffix (%s)",
			got, rec.SnapshotSeq, want, rec)
	}
	if rec.SnapshotVotes+rec.Records < len(acked) {
		t.Fatalf("snapshot (%d votes) + replay (%d records) cannot cover %d acked batches",
			rec.SnapshotVotes, rec.Records, len(acked))
	}
}
