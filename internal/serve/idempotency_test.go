package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/journal"
)

// --- exactly-once batch acks ---

func TestIngestKeyedReplaySameProcess(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 41
	s := newTestServer(t, cfg)

	batch := []crowd.Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 1, I: 2, J: 3, PrefersI: false},
		{Worker: 9, I: 0, J: 1, PrefersI: true}, // malformed: worker 9 of 2
	}
	first, err := s.IngestKeyed(context.Background(), "key-1", batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.Accepted != 2 || first.Malformed != 1 || first.Replayed {
		t.Fatalf("unexpected first ack %+v", first)
	}
	// A network retry replays the identical ack without re-applying.
	second, err := s.IngestKeyed(context.Background(), "key-1", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Replayed {
		t.Fatal("retried key must be marked Replayed")
	}
	second.Replayed = false
	if second != first {
		t.Fatalf("replayed ack %+v differs from original %+v", second, first)
	}
	st := s.StatsSnapshot()
	if st.Batches != 1 || st.Votes != 2 {
		t.Fatalf("retry must not re-apply: %+v", st)
	}
	if got := s.met.idempotentReplays.Value(); got != 1 {
		t.Fatalf("idempotent replay counter = %d, want 1", got)
	}
	if st.AckWindow != 1 {
		t.Fatalf("ack window should hold one key, got %d", st.AckWindow)
	}
	// A different key with the same votes re-applies; vote-level dedup
	// reports them all duplicates.
	third, err := s.IngestKeyed(context.Background(), "key-2", batch)
	if err != nil {
		t.Fatal(err)
	}
	if third.Replayed || third.Accepted != 0 || third.Duplicates != 2 {
		t.Fatalf("distinct key should re-apply through dedup, got %+v", third)
	}
}

// TestIngestKeyedReplayAcrossRestartJournal is the acceptance criterion:
// a retried batch key answers with its original ack even after the daemon
// restarted and rebuilt state by journal replay.
func TestIngestKeyedReplayAcrossRestartJournal(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 43
	cfg.JournalPath = filepath.Join(t.TempDir(), "wal")
	// No snapshots: restart must rebuild the ack window from the journal.
	cfg.SnapshotEveryBatches = -1
	cfg.SnapshotMaxJournalBytes = -1

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := []crowd.Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 0, I: 0, J: 1, PrefersI: true}, // in-batch duplicate
		{Worker: 5, I: 0, J: 1, PrefersI: true}, // malformed
	}
	first, err := s.IngestKeyed(context.Background(), "restart-key", batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.Accepted != 1 || first.Duplicates != 1 || first.Malformed != 1 {
		t.Fatalf("unexpected first ack %+v", first)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := newTestServer(t, cfg)
	if r.Recovered().Records != 1 {
		t.Fatalf("want 1 replayed record, got %d", r.Recovered().Records)
	}
	again, err := r.IngestKeyed(context.Background(), "restart-key", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Replayed {
		t.Fatal("retried key after restart must be marked Replayed")
	}
	again.Replayed = false
	if again != first {
		t.Fatalf("post-restart ack %+v differs from original %+v", again, first)
	}
	if st := r.StatsSnapshot(); st.Batches != 1 || st.Votes != 1 {
		t.Fatalf("retry after restart must not re-apply: %+v", st)
	}
}

// TestIngestKeyedReplayAcrossRestartSnapshot covers the other recovery
// path: the ack window rides in the snapshot, and a restart that replays
// no journal suffix still answers retried keys exactly once.
func TestIngestKeyedReplayAcrossRestartSnapshot(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 47
	cfg.JournalPath = filepath.Join(t.TempDir(), "wal")

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := []crowd.Vote{{Worker: 1, I: 1, J: 3, PrefersI: false}}
	first, err := s.IngestKeyed(context.Background(), "snap-key", batch)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot and compact: the keyed record's segment is deleted, so the
	// window can only come back via the snapshot.
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := newTestServer(t, cfg)
	if r.Recovered().Records != 0 {
		t.Fatalf("snapshot should cover the journal, yet %d records replayed", r.Recovered().Records)
	}
	again, err := r.IngestKeyed(context.Background(), "snap-key", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Replayed {
		t.Fatal("retried key after snapshot recovery must be marked Replayed")
	}
	again.Replayed = false
	if again != first {
		t.Fatalf("post-snapshot ack %+v differs from original %+v", again, first)
	}
	if st := r.StatsSnapshot(); st.Batches != 1 || st.Votes != 1 {
		t.Fatalf("retry after snapshot recovery must not re-apply: %+v", st)
	}
}

func TestIngestKeyedWindowEviction(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 53
	cfg.IdempotencyWindow = 1
	s := newTestServer(t, cfg)

	batch := []crowd.Vote{{Worker: 0, I: 0, J: 2, PrefersI: true}}
	if _, err := s.IngestKeyed(context.Background(), "old", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestKeyed(context.Background(), "new", []crowd.Vote{{Worker: 1, I: 1, J: 2, PrefersI: false}}); err != nil {
		t.Fatal(err)
	}
	// "old" fell out of the one-slot window: the retry re-applies and
	// falls back to vote-level dedup.
	res, err := s.IngestKeyed(context.Background(), "old", batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed {
		t.Fatal("evicted key must not replay")
	}
	if res.Accepted != 0 || res.Duplicates != 1 {
		t.Fatalf("evicted key should hit vote dedup, got %+v", res)
	}
	if st := s.StatsSnapshot(); st.AckWindow != 1 {
		t.Fatalf("window must stay at its cap, got %d", st.AckWindow)
	}
}

func TestIngestKeyedWindowDisabled(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 59
	cfg.IdempotencyWindow = -1
	s := newTestServer(t, cfg)

	batch := []crowd.Vote{{Worker: 0, I: 0, J: 3, PrefersI: true}}
	if _, err := s.IngestKeyed(context.Background(), "k", batch); err != nil {
		t.Fatal(err)
	}
	res, err := s.IngestKeyed(context.Background(), "k", batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed || res.Duplicates != 1 {
		t.Fatalf("disabled window should re-apply through dedup, got %+v", res)
	}
}

func TestIngestKeyedAllMalformedBatch(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 61
	cfg.JournalPath = filepath.Join(t.TempDir(), "wal")
	s := newTestServer(t, cfg)

	baseline := s.StatsSnapshot().JournalBytes // empty segment header
	batch := []crowd.Vote{{Worker: 99, I: 0, J: 1, PrefersI: true}}
	first, err := s.IngestKeyed(context.Background(), "junk", batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.Malformed != 1 || first.Accepted != 0 {
		t.Fatalf("unexpected ack %+v", first)
	}
	// Nothing durable was written, but the in-process retry still replays.
	res, err := s.IngestKeyed(context.Background(), "junk", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replayed {
		t.Fatal("all-malformed keyed batch should still replay in-process")
	}
	if st := s.StatsSnapshot(); st.Batches != 0 || st.JournalBytes != baseline {
		t.Fatalf("all-malformed batch must journal nothing: %+v", st)
	}
}

func TestIngestKeyedRejectsOversizedKey(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 67
	s := newTestServer(t, cfg)
	_, err := s.IngestKeyed(context.Background(), strings.Repeat("k", maxKeyLen+1), nil)
	if err == nil || !strings.Contains(err.Error(), "exceeds maximum") {
		t.Fatalf("oversized key should be rejected, got %v", err)
	}
}

// --- v2 batch record codec ---

func TestBatchRecordCodecKeyedRoundTrip(t *testing.T) {
	votes := []crowd.Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 2, I: 3, J: 1, PrefersI: false},
	}
	data := encodeBatchKeyed("abc123", 4, votes)
	rec, err := decodeBatchRecord(data, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.key != "abc123" || rec.malformed != 4 || len(rec.votes) != 2 || rec.dropped != 0 {
		t.Fatalf("round trip drifted: %+v", rec)
	}
	for i := range votes {
		if rec.votes[i] != votes[i] {
			t.Fatalf("vote %d = %+v, want %+v", i, rec.votes[i], votes[i])
		}
	}
}

func TestBatchRecordCodecReadsV1(t *testing.T) {
	votes := []crowd.Vote{{Worker: 1, I: 4, J: 5, PrefersI: true}}
	rec, err := decodeBatchRecord(encodeBatch(votes), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.key != "" || rec.malformed != 0 || len(rec.votes) != 1 || rec.votes[0] != votes[0] {
		t.Fatalf("v1 record decoded wrong: %+v", rec)
	}
}

func TestBatchRecordCodecRejectsDamage(t *testing.T) {
	good := encodeBatchKeyed("key", 0, []crowd.Vote{{Worker: 0, I: 0, J: 1, PrefersI: true}})
	cases := map[string][]byte{
		"oversized key":  encodeBatchKeyed(strings.Repeat("k", maxKeyLen+1), 0, nil),
		"truncated key":  good[:3],
		"empty":          nil,
		"truncated tail": good[:len(good)-2],
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeBatchRecord(data, 6, 3); err == nil {
				t.Fatal("damaged record decoded without error")
			}
		})
	}
}

// --- HTTP robustness ---

func TestHTTPIdempotencyKeyReplay(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 71
	s, ts := httpServer(t, cfg)

	body, err := json.Marshal(ingestRequest{Votes: []voteJSON{{Worker: 0, I: 0, J: 1, PrefersI: true}}})
	if err != nil {
		t.Fatal(err)
	}
	post := func() IngestResult {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/votes", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", "http-key-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		var ir IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		return ir
	}
	first := post()
	if first.Accepted != 1 || first.Replayed {
		t.Fatalf("unexpected first ack %+v", first)
	}
	second := post()
	if !second.Replayed {
		t.Fatal("retried POST with the same Idempotency-Key must report replayed")
	}
	if st := s.StatsSnapshot(); st.Batches != 1 {
		t.Fatalf("retried POST must not re-journal: %+v", st)
	}

	// A key beyond the on-disk bound is a client bug: 400, not truncation.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/votes", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Idempotency-Key", strings.Repeat("k", maxKeyLen+1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized key should 400, got %d", resp.StatusCode)
	}
}

// TestHTTPBodyLimit pins the MaxBytesReader path: an over-limit body is
// answered 413 with the standard error shape, and nothing reaches the
// journal or the vote state.
func TestHTTPBodyLimit(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 73
	cfg.JournalPath = filepath.Join(t.TempDir(), "wal")
	cfg.MaxBodyBytes = 512
	s, ts := httpServer(t, cfg)

	before := s.StatsSnapshot()
	// Valid JSON, deliberately bloated past the limit with repeated votes.
	var req ingestRequest
	for i := 0; i < 200; i++ {
		req.Votes = append(req.Votes, voteJSON{Worker: 0, I: 0, J: 1, PrefersI: true})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(body)) <= cfg.MaxBodyBytes {
		t.Fatalf("test body of %d bytes does not exceed the %d limit", len(body), cfg.MaxBodyBytes)
	}
	resp, err := http.Post(ts.URL+"/votes", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit body should 413, got %d", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("413 body is not the standard error shape: %v", err)
	}
	if !strings.Contains(er.Error, "512") {
		t.Fatalf("413 error should name the limit, got %q", er.Error)
	}
	after := s.StatsSnapshot()
	if after.Batches != before.Batches || after.Votes != before.Votes || after.JournalBytes != before.JournalBytes {
		t.Fatalf("rejected body leaked into state: before %+v after %+v", before, after)
	}
}

// TestHTTPPanicRecovery drives a panicking handler through the
// instrument middleware: the request is answered 500 with the standard
// error shape, the panic is counted, and the daemon keeps serving.
func TestHTTPPanicRecovery(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 79
	s := newTestServer(t, cfg)

	ts := httptest.NewServer(s.instrument("votes", func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler should answer 500, got %d", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("500 body is not the standard error shape: %v %+v", err, er)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	// The sanctioned abort must pass through uncounted: net/http tears the
	// connection down instead of answering.
	abort := httptest.NewServer(s.instrument("votes", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(abort.Close)
	if resp, err := http.Get(abort.URL); err == nil {
		_ = resp.Body.Close()
		t.Fatal("ErrAbortHandler should abort the connection, not answer")
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("ErrAbortHandler must not count as a panic, counter = %d", got)
	}
}

// TestHTTPPanicAfterWriteNotDoubled: when the handler already wrote a
// response, the middleware must not stack a 500 on top.
func TestHTTPPanicAfterWrite(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 83
	s := newTestServer(t, cfg)

	ts := httptest.NewServer(s.instrument("votes", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late boom")
	}))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("already-written status must stand, got %d", resp.StatusCode)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("late panic should still count, got %d", got)
	}
}

// TestRetryAfterDerivation pins the header to queue depth and breaker
// state while keeping the parseable-integer contract.
func TestRetryAfterDerivation(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Seed = 89
	cfg.MaxConcurrentIngests = 4
	cfg.BreakerCooldown = 10 * time.Second
	s := newTestServer(t, cfg)

	if got := s.retryAfter(s.ingestSem, false); got != "1" {
		t.Fatalf("empty queue should hint 1s, got %q", got)
	}
	for i := 0; i < cap(s.ingestSem); i++ {
		s.ingestSem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.ingestSem); i++ {
			<-s.ingestSem
		}
	}()
	if got := s.retryAfter(s.ingestSem, false); got != "5" {
		t.Fatalf("saturated queue should hint 5s, got %q", got)
	}
	// An open breaker adds its cooldown to rank hints.
	for i := 0; i < cfg.BreakerThreshold; i++ {
		s.breaker.failure()
	}
	if s.breaker.state() != "open" {
		t.Fatalf("breaker should be open, is %s", s.breaker.state())
	}
	got := s.retryAfter(s.rankSem, true)
	secs, err := strconv.Atoi(got)
	if err != nil || secs != 11 {
		t.Fatalf("open breaker over an empty queue should hint 11s, got %q (%v)", got, err)
	}
}

// TestReplayMixedV1AndV2Records pins the on-disk compatibility contract:
// a journal holding unkeyed v1 batch records followed by keyed v2 records
// (the shape left behind by an upgrade mid-stream) replays fully, and the
// rebuilt ack window holds only the keyed suffix.
func TestReplayMixedV1AndV2Records(t *testing.T) {
	dir := t.TempDir()
	j, _, err := journal.Open(dir, journal.Options{}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	v1Batches := [][]crowd.Vote{
		{{Worker: 0, I: 0, J: 1, PrefersI: true}},
		{{Worker: 1, I: 2, J: 3, PrefersI: false}, {Worker: 0, I: 1, J: 2, PrefersI: true}},
	}
	for _, b := range v1Batches {
		if _, err := j.Append(encodeBatch(b)); err != nil {
			t.Fatal(err)
		}
	}
	v2Keys := []string{"upgrade-a", "upgrade-b"}
	v2Batches := [][]crowd.Vote{
		{{Worker: 1, I: 3, J: 0, PrefersI: true}},
		{{Worker: 0, I: 2, J: 0, PrefersI: false}},
	}
	for i, b := range v2Batches {
		if _, err := j.Append(encodeBatchKeyed(v2Keys[i], 1, b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(4, 2)
	cfg.Seed = 77
	cfg.JournalPath = dir
	s := newTestServer(t, cfg)

	st := s.StatsSnapshot()
	if st.Batches != 4 || st.Votes != 5 {
		t.Fatalf("replay applied %d batches / %d votes, want 4 / 5: %+v", st.Batches, st.Votes, st)
	}
	if st.AckWindow != 2 {
		t.Fatalf("ack window holds %d keys, want only the 2 keyed v2 records", st.AckWindow)
	}

	// The keyed suffix replays exactly-once, preserving its recorded
	// malformed count; the unkeyed prefix left nothing to replay against.
	res, err := s.IngestKeyed(context.Background(), v2Keys[0], v2Batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replayed || res.Malformed != 1 {
		t.Fatalf("keyed v2 record did not replay from the rebuilt window: %+v", res)
	}
	fresh, err := s.IngestKeyed(context.Background(), "post-upgrade", []crowd.Vote{{Worker: 1, I: 1, J: 3, PrefersI: true}})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Replayed || fresh.Accepted != 1 {
		t.Fatalf("fresh key after mixed replay misbehaved: %+v", fresh)
	}
}
