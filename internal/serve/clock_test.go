package serve

// Deterministic-time tests of the degradation ladder and the rank
// timing fields. Every test here drives the server through an injected
// obs.Clock — there is no time.Sleep anywhere in this file, and none of
// these tests depend on scheduler or wall-clock behaviour.
//
// The fake clock's base sits far in the REAL future. Context deadlines
// are absolute times, so a deadline set relative to the fake "now" is
// ~1000h away in real time and the runtime's timer never fires during
// the test; only the server's own remaining() arithmetic — which runs
// on the injected clock — sees the budget, which is exactly the seam
// under test.

import (
	"context"
	"sync"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/obs"
)

// fakeBase returns the fake-clock epoch: far enough in the real future
// that real timers armed from fake-relative deadlines cannot fire.
func fakeBase() time.Time {
	return time.Now().Add(1000 * time.Hour)
}

func TestLadderDeterministic(t *testing.T) {
	cases := []struct {
		name string
		// votes ingested before ranking; nil exercises the prior.
		votes []crowd.Vote
		// budget is the rank deadline relative to the fake now; 0 means
		// no deadline at all; negative means already expired.
		budget       time.Duration
		tripBreaker  bool
		wantAlgo     string
		wantDegraded bool
	}{
		{
			name:     "no votes answers the uninformed prior",
			budget:   10 * time.Second,
			wantAlgo: AlgoUninformed,
		},
		{
			name:     "ample budget reaches exact search",
			votes:    agreeingVotes(6, 2),
			budget:   10 * time.Second,
			wantAlgo: AlgoExactHeldKarp,
		},
		{
			name:     "no deadline reaches exact search",
			votes:    agreeingVotes(6, 2),
			wantAlgo: AlgoExactHeldKarp,
		},
		{
			name:         "open breaker degrades to SAPS",
			votes:        agreeingVotes(6, 2),
			budget:       10 * time.Second,
			tripBreaker:  true,
			wantAlgo:     AlgoSAPS,
			wantDegraded: true,
		},
		{
			name:         "expired deadline still answers on the greedy floor",
			votes:        agreeingVotes(6, 2),
			budget:       -time.Second,
			wantAlgo:     AlgoGreedy,
			wantDegraded: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := obs.NewFakeClock(fakeBase())
			cfg := DefaultConfig(6, 2)
			cfg.Seed = 42
			cfg.Clock = clock
			s := newTestServer(t, cfg)
			if len(tc.votes) > 0 {
				if _, err := s.Ingest(tc.votes); err != nil {
					t.Fatal(err)
				}
			}
			if tc.tripBreaker {
				for i := 0; i < cfg.BreakerThreshold; i++ {
					s.breaker.failure()
				}
			}
			ctx := context.Background()
			if tc.budget != 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, clock.Now().Add(tc.budget))
				defer cancel()
			}
			rr, err := s.RankContext(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if rr.Algorithm != tc.wantAlgo {
				t.Fatalf("algorithm = %s, want %s", rr.Algorithm, tc.wantAlgo)
			}
			if rr.Degraded != tc.wantDegraded {
				t.Fatalf("degraded = %v, want %v", rr.Degraded, tc.wantDegraded)
			}
			assertPermutation(t, 6, rr.Ranking)
		})
	}
}

// TestBreakerHalfOpenProbe walks the full breaker lifecycle through the
// server: trip it, watch ranks degrade while the cooldown runs, advance
// the fake clock past the cooldown, and confirm the single half-open
// probe re-enters exact search and closes the breaker on success.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clock := obs.NewFakeClock(fakeBase())
	cfg := DefaultConfig(6, 2)
	cfg.Seed = 7
	cfg.Clock = clock
	s := newTestServer(t, cfg)
	if _, err := s.Ingest(agreeingVotes(6, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.BreakerThreshold; i++ {
		s.breaker.failure()
	}

	// Inside the cooldown the exact rung is refused.
	rr, err := s.RankContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Algorithm == AlgoExactHeldKarp || rr.Algorithm == AlgoExactBranchBound {
		t.Fatalf("open breaker must skip exact search, got %s", rr.Algorithm)
	}
	if !rr.Degraded || rr.Breaker != "open" {
		t.Fatalf("want degraded response from an open breaker, got degraded=%v breaker=%s", rr.Degraded, rr.Breaker)
	}

	// Past the cooldown the next request is the half-open probe; exact
	// search succeeds and closes the breaker.
	clock.Advance(cfg.BreakerCooldown + time.Second)
	rr, err = s.RankContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Algorithm != AlgoExactHeldKarp {
		t.Fatalf("half-open probe should reach exact search, got %s", rr.Algorithm)
	}
	if rr.Degraded || rr.Breaker != "closed" {
		t.Fatalf("successful probe should close the breaker, got degraded=%v breaker=%s", rr.Degraded, rr.Breaker)
	}
}

// jumpClock simulates a host whose wall clock steps backward between
// reads (NTP correction, VM migration) while honouring the Clock
// contract that Since is monotonic and never negative. Any code path
// that computes an elapsed duration as clock.Now().Sub(start) instead
// of clock.Since(start) sees hours of negative time under this clock.
type jumpClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *jumpClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(-time.Hour)
	return c.now
}

func (c *jumpClock) Since(time.Time) time.Duration { return 5 * time.Millisecond }

// TestElapsedSurvivesWallClockJumps pins the monotonic-duration
// contract: RankResult.Elapsed and the /healthz duration fields stay
// positive even when the wall clock runs backward mid-request.
func TestElapsedSurvivesWallClockJumps(t *testing.T) {
	cfg := DefaultConfig(4, 2)
	cfg.Clock = &jumpClock{now: time.Unix(1_700_000_000, 0)}
	s := newTestServer(t, cfg)

	rr, err := s.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Elapsed <= 0 {
		t.Fatalf("RankResult.Elapsed = %v; durations must come from Clock.Since, not Now().Sub", rr.Elapsed)
	}

	st := s.StatsSnapshot()
	if st.UptimeSeconds <= 0 {
		t.Fatalf("Stats.UptimeSeconds = %v; must be monotonic-safe", st.UptimeSeconds)
	}
	if st.RecoverySeconds < 0 {
		t.Fatalf("Stats.RecoverySeconds = %v; must never be negative", st.RecoverySeconds)
	}
}
