package serve

// Golden test of the Prometheus exposition. The golden file pins the
// metric name set, the # TYPE lines, and every series signature with
// its label ordering — renaming a metric, dropping a label, or letting
// registration order leak into the output fails here. Values and bucket
// boundaries are NOT pinned (values vary per run; boundaries are pinned
// by the obs package's own tests): sample values are stripped and the
// histogram le label is collapsed before comparison.
//
// Regenerate with: go test ./internal/serve -run TestMetricsExpositionGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

var leLabel = regexp.MustCompile(`le="[^"]*"`)

// signatures reduces an exposition to its stable shape: # TYPE lines
// verbatim plus the sorted, deduplicated set of series signatures with
// sample values stripped and bucket le labels collapsed.
func signatures(exposition string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, line := range strings.Split(exposition, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "# HELP"):
			continue
		case strings.HasPrefix(line, "# TYPE"):
			out = append(out, line)
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			continue
		}
		sig := leLabel.ReplaceAllString(line[:cut], `le="*"`)
		if !seen[sig] {
			seen[sig] = true
			out = append(out, "series "+sig)
		}
	}
	sort.Strings(out)
	return out
}

func TestMetricsExpositionGolden(t *testing.T) {
	cfg := DefaultConfig(5, 2)
	cfg.Seed = 99
	cfg.JournalPath = filepath.Join(t.TempDir(), "wal")
	s := newTestServer(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Deterministic traffic exercising every instrumented path: an
	// accepted batch, a full-duplicate resubmission, a rank, a snapshot,
	// a health check, and a malformed rank request for a 400.
	var ingest ingestRequest
	for _, v := range agreeingVotes(5, 2) {
		ingest.Votes = append(ingest.Votes, voteJSON{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI})
	}
	batch, err := json.Marshal(ingest)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/votes", "application/json", bytes.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /votes: status %d", resp.StatusCode)
		}
	}
	for path, want := range map[string]int{
		"/rank":                 http.StatusOK,
		"/rank?deadline_ms=abc": http.StatusBadRequest,
		"/healthz":              http.StatusOK,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := http.Post(srv.URL+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot: status %d", resp.StatusCode)
	}

	// Scrape over HTTP first so the route="metrics" request series
	// exists, and pin the exposition content type while at it.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics content type = %q", ct)
	}

	var buf bytes.Buffer
	if err := s.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(signatures(buf.String()), "\n") + "\n"

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition shape drifted from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}
