package serve

import (
	"encoding/binary"
	"fmt"

	"crowdrank/internal/crowd"
)

// Vote batches are journaled in a compact varint encoding. The original
// (v1) record is:
//
//	uvarint  count
//	repeated count times:
//	  uvarint worker
//	  uvarint i
//	  uvarint j
//	  1 byte  prefersI (0 or 1)
//
// Keyed (v2) records carry the batch idempotency key and the malformed
// count, so replay can rebuild the exact ack a retried key must receive:
//
//	uvarint  0            marker: v1 never journals an empty batch, so a
//	                      leading zero count is unambiguous
//	uvarint  keyLen       0 for an unkeyed batch
//	keyLen bytes          the idempotency key
//	uvarint  malformed    votes dropped at validation before journaling
//	uvarint  count        followed by the v1 vote encoding
//
// The journal layer already guarantees integrity (CRC32 per record);
// decoding guards structure: counts must match the bytes present, no
// trailing garbage, and every field must fit the configured universe.

// maxKeyLen bounds one idempotency key on disk and on the wire; longer
// keys are rejected at ingest (HTTP 400), and a journaled key beyond it
// is corruption.
const maxKeyLen = 256

// batchRecord is one decoded journal record: the votes plus the ack
// bookkeeping v2 records carry.
type batchRecord struct {
	key       string
	malformed int
	votes     []crowd.Vote
	dropped   int
}

// encodeBatchKeyed serializes a v2 keyed record for the journal.
func encodeBatchKeyed(key string, malformed int, votes []crowd.Vote) []byte {
	buf := make([]byte, 0, 16+len(key)+len(votes)*7)
	buf = binary.AppendUvarint(buf, 0) // v2 marker
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(malformed))
	return append(buf, encodeBatch(votes)...)
}

// decodeBatchRecord parses either record version back into votes and ack
// bookkeeping for n objects and m workers. v1 records decode with an
// empty key and zero malformed count.
func decodeBatchRecord(data []byte, n, m int) (batchRecord, error) {
	var rec batchRecord
	marker, off := binary.Uvarint(data)
	if off <= 0 {
		return rec, fmt.Errorf("serve: batch count unreadable")
	}
	if marker != 0 {
		// v1: the leading uvarint is the vote count itself.
		votes, dropped, err := decodeBatch(data, n, m)
		if err != nil {
			return rec, err
		}
		rec.votes, rec.dropped = votes, dropped
		return rec, nil
	}
	rest := data[off:]
	keyLen, k := binary.Uvarint(rest)
	if k <= 0 {
		return rec, fmt.Errorf("serve: batch key length unreadable")
	}
	rest = rest[k:]
	if keyLen > maxKeyLen {
		return rec, fmt.Errorf("serve: batch key length %d exceeds maximum %d", keyLen, maxKeyLen)
	}
	if uint64(len(rest)) < keyLen {
		return rec, fmt.Errorf("serve: batch key truncated: %d bytes promised, %d present", keyLen, len(rest))
	}
	rec.key = string(rest[:keyLen])
	rest = rest[keyLen:]
	malformed, k := binary.Uvarint(rest)
	if k <= 0 {
		return rec, fmt.Errorf("serve: batch malformed count unreadable")
	}
	rest = rest[k:]
	if malformed > uint64(1<<31) {
		return rec, fmt.Errorf("serve: implausible malformed count %d", malformed)
	}
	rec.malformed = int(malformed)
	votes, dropped, err := decodeBatch(rest, n, m)
	if err != nil {
		return rec, err
	}
	rec.votes, rec.dropped = votes, dropped
	return rec, nil
}

// encodeBatch serializes validated votes in the v1 vote encoding (also
// the tail of a v2 record).
func encodeBatch(votes []crowd.Vote) []byte {
	buf := make([]byte, 0, 4+len(votes)*7)
	buf = binary.AppendUvarint(buf, uint64(len(votes)))
	for _, v := range votes {
		buf = binary.AppendUvarint(buf, uint64(v.Worker))
		buf = binary.AppendUvarint(buf, uint64(v.I))
		buf = binary.AppendUvarint(buf, uint64(v.J))
		if v.PrefersI {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// decodeBatch parses one journal payload back into votes for n objects and
// m workers. Structural damage (impossible counts, short data, trailing
// bytes) is an error; individual votes outside the universe are dropped
// and counted, so a journal written under a larger universe degrades
// rather than poisons state.
func decodeBatch(data []byte, n, m int) (votes []crowd.Vote, dropped int, err error) {
	count, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, 0, fmt.Errorf("serve: batch count unreadable")
	}
	// Each vote takes at least 4 bytes; a count promising more than the
	// payload could hold is corruption, and bounding it caps allocation.
	if count > uint64(len(data)) {
		return nil, 0, fmt.Errorf("serve: batch count %d exceeds payload capacity %d", count, len(data))
	}
	votes = make([]crowd.Vote, 0, count)
	rest := data[off:]
	readField := func(name string) (uint64, error) {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return 0, fmt.Errorf("serve: batch %s unreadable at byte %d", name, len(data)-len(rest))
		}
		rest = rest[k:]
		return v, nil
	}
	for i := uint64(0); i < count; i++ {
		worker, err := readField("worker")
		if err != nil {
			return nil, 0, err
		}
		vi, err := readField("object i")
		if err != nil {
			return nil, 0, err
		}
		vj, err := readField("object j")
		if err != nil {
			return nil, 0, err
		}
		if len(rest) == 0 {
			return nil, 0, fmt.Errorf("serve: batch vote %d missing preference byte", i)
		}
		pref := rest[0]
		rest = rest[1:]
		if pref > 1 {
			return nil, 0, fmt.Errorf("serve: batch vote %d has preference byte %d", i, pref)
		}
		// Overflow-safe narrowing: anything beyond the universe is a
		// dropped vote, not a decode failure.
		const maxID = 1 << 31
		if worker >= maxID || vi >= maxID || vj >= maxID {
			dropped++
			continue
		}
		v := crowd.Vote{Worker: int(worker), I: int(vi), J: int(vj), PrefersI: pref == 1}
		if v.Validate(n, m) != nil {
			dropped++
			continue
		}
		votes = append(votes, v)
	}
	if len(rest) != 0 {
		return nil, 0, fmt.Errorf("serve: batch has %d trailing bytes", len(rest))
	}
	return votes, dropped, nil
}
