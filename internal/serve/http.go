package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/journal"
)

// voteJSON is the wire form of one vote on POST /votes.
type voteJSON struct {
	Worker   int  `json:"worker"`
	I        int  `json:"i"`
	J        int  `json:"j"`
	PrefersI bool `json:"prefers_i"`
}

// ingestRequest is the POST /votes body.
type ingestRequest struct {
	Votes []voteJSON `json:"votes"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /votes      ingest a vote batch; 200 acknowledges durability
//	GET  /rank       serve a ranking; ?deadline_ms bounds inference time
//	POST /snapshot   take a snapshot now and compact covered segments
//	GET  /metrics    Prometheus text exposition of the metric registry
//	GET  /healthz    liveness + operational stats (always 200 while up)
//	GET  /readyz     readiness; 503 once shutdown has begun or the
//	                 journal is poisoned by a disk fault
//
// Ingest and rank are guarded by bounded queues: when a queue is full the
// request is rejected immediately with 429 and a Retry-After header
// instead of piling onto the journal or the inference pipeline.
//
// Every route is instrumented: request counts by (route, status code),
// per-route latency histograms, and slow-request logging through Logf
// once a request exceeds Config.SlowRequestThreshold.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /votes", s.instrument("votes", s.handleVotes))
	mux.Handle("GET /rank", s.instrument("rank", s.handleRank))
	mux.Handle("POST /snapshot", s.instrument("snapshot", s.handleSnapshot))
	mux.Handle("GET /metrics", s.instrument("metrics", s.cfg.Metrics.Handler().ServeHTTP))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReadyz))
	return mux
}

// statusWriter captures the response code for request metrics, and
// whether anything was written yet — the panic middleware may only send
// its 500 on a pristine response.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps one route handler with panic recovery, request
// counting, latency observation, and slow-request logging, all on the
// server clock. A panicking handler is logged and counted
// (crowdrankd_http_panics_total) and answered 500 when the response is
// still unwritten — one broken request must not wedge the daemon.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.clock.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					// The sanctioned way to abort a response; net/http
					// suppresses its stack trace. Not a defect, not a 500.
					panic(rec)
				}
				s.met.panics.Inc()
				s.logf("serve: panic in %s handler: %v", route, rec)
				if !sw.wrote {
					s.writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}()
			h(sw, r)
		}()
		elapsed := s.clock.Since(start)
		s.met.httpRequest(route, sw.status)
		s.met.httpSeconds[route].ObserveDuration(elapsed)
		if thr := s.cfg.SlowRequestThreshold; thr > 0 && elapsed >= thr {
			s.met.slowRequests.Inc()
			s.logf("serve: slow request: %s %s answered %d in %v (threshold %v)",
				r.Method, r.URL.Path, sw.status, elapsed.Round(time.Millisecond), thr)
		}
	})
}

// writeJSON emits one JSON response; encode failures (client gone,
// connection reset) are logged rather than dropped.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("serve: writing %d response: %v", status, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// acquire takes a slot from a bounded queue without blocking; a full
// queue means the caller should answer 429.
func acquire(sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// retryAfter derives the Retry-After value (integer seconds, the
// parseable contract clients rely on) from the current depth of the
// rejected queue: 1s when the queue just filled, stretching to 5s under
// sustained saturation, plus the breaker cooldown hint when rank capacity
// is gated by an open breaker.
func (s *Server) retryAfter(sem chan struct{}, breakerGated bool) string {
	depth, capacity := len(sem), cap(sem)
	secs := 1
	if capacity > 0 {
		secs += 4 * depth / capacity
	}
	if breakerGated && s.breaker.state() == "open" {
		// Exact-rung capacity will not recover before the cooldown probes.
		hint := int(s.cfg.BreakerCooldown / time.Second)
		if hint > 25 {
			hint = 25
		}
		secs += hint
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleVotes(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if len(key) > maxKeyLen {
		s.writeError(w, http.StatusBadRequest, "Idempotency-Key of %d bytes exceeds maximum %d", len(key), maxKeyLen)
		return
	}
	if !acquire(s.ingestSem) {
		s.met.rejectedIngest.Inc()
		w.Header().Set("Retry-After", s.retryAfter(s.ingestSem, false))
		s.writeError(w, http.StatusTooManyRequests, "ingest queue full")
		return
	}
	defer func() { <-s.ingestSem }()

	var req ingestRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return
		}
		s.writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	votes := make([]crowd.Vote, len(req.Votes))
	for i, v := range req.Votes {
		votes[i] = crowd.Vote{Worker: v.Worker, I: v.I, J: v.J, PrefersI: v.PrefersI}
	}
	// The server-side deadline bounds how long a request may hold an
	// ingest slot; the client's own context still applies underneath.
	ctx := r.Context()
	if t := s.cfg.IngestTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	res, err := s.IngestKeyed(ctx, key, votes)
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusOK, res)
	case errors.Is(err, errShuttingDown):
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case errors.Is(err, errBatchTooLarge):
		s.writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
	case errors.Is(err, errKeyTooLong):
		s.writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, journal.ErrPoisoned):
		// A prior disk fault poisoned the journal: durability can no
		// longer be promised, so no batch is acknowledged again until the
		// operator replaces the volume and restarts.
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() == nil {
			// The SERVER's ingest deadline fired, not the client's: the
			// daemon is too slow right now, which is retryable.
			w.Header().Set("Retry-After", s.retryAfter(s.ingestSem, false))
			s.writeError(w, http.StatusServiceUnavailable, "ingest deadline exceeded before batch committed")
			return
		}
		// Client vanished before the batch committed: nothing was written,
		// nothing to acknowledge.
		s.writeError(w, http.StatusBadRequest, "request cancelled before batch committed")
	default:
		// Journal append failed: the batch is NOT durable and must not be
		// acknowledged.
		s.logf("serve: ingest failed: %v", err)
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	deadline := s.cfg.DefaultDeadline
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			s.writeError(w, http.StatusBadRequest, "deadline_ms must be a positive integer, got %q", raw)
			return
		}
		deadline = time.Duration(ms) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	if !acquire(s.rankSem) {
		s.met.rejectedRank.Inc()
		w.Header().Set("Retry-After", s.retryAfter(s.rankSem, true))
		s.writeError(w, http.StatusTooManyRequests, "rank queue full")
		return
	}
	defer func() { <-s.rankSem }()

	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	res, err := s.RankContext(ctx)
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusOK, res)
	case errors.Is(err, errShuttingDown):
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case errors.Is(err, context.Canceled):
		// Client went away; nobody reads this, but close out the request.
		s.writeError(w, http.StatusBadRequest, "request cancelled")
	default:
		s.logf("serve: rank failed: %v", err)
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	res, err := s.Snapshot()
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusOK, res)
	case errors.Is(err, errShuttingDown):
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case errors.Is(err, errNoJournal):
		s.writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, journal.ErrPoisoned):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.logf("serve: snapshot failed: %v", err)
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if err := s.Ready(); err != nil {
		if errors.Is(err, errShuttingDown) {
			s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
