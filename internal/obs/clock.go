package obs

import (
	"sync"
	"time"
)

// Clock abstracts time for code whose behavior depends on it — the
// degradation ladder's remaining-budget arithmetic, the circuit breaker's
// cooldown, request timing, slow-request logging. Production code uses
// Real; tests inject a FakeClock and drive transitions deterministically,
// with no sleeps.
//
// Contract: Since(t) must be computed monotonically — a wall-clock jump
// (NTP step, leap smear) between Now() and Since() must never yield a
// negative or wildly wrong duration. Real satisfies this because
// time.Now carries a monotonic reading that time.Since subtracts.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
}

// Real returns the system clock: time.Now and (monotonic-safe) time.Since.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }

// FakeClock is a manually advanced Clock for tests. It only moves when
// Advance or Set is called, so timing-dependent behavior (breaker
// cooldowns, deadline ladders) becomes a pure function of the test
// script. Safe for concurrent use.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the frozen current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the fake elapsed time from t to the frozen now.
func (c *FakeClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Advance moves the clock forward (or backward, for tests that simulate a
// wall jump) by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Set jumps the clock to t.
func (c *FakeClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
