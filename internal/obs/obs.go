// Package obs is the daemon's dependency-free observability toolkit:
// atomic counters, gauges, and fixed-bucket histograms collected in a
// Registry and exposed in the Prometheus text format, plus an injectable
// Clock (clock.go) so timing-dependent behavior stays testable without
// sleeps.
//
// The package is deliberately tiny and stdlib-only. Metric operations are
// lock-free (single atomic op for counters and gauges, one atomic add plus
// a CAS loop for histogram sums); the registry mutex is touched only at
// registration and exposition time, never on the hot ingest→infer path.
//
// Every metric type is safe to use through a nil pointer: a nil *Counter,
// *Gauge, or *Histogram silently discards observations and reads as zero.
// That lets lower layers (internal/journal) hold optional metric handles
// without caring whether observability is wired up.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension. Series under the same name are
// distinguished by their full label set; exposition orders labels by key.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 through a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta. Safe on a nil receiver (no-op).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 through a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// exposition. Bucket bounds are upper bounds in ascending order; an
// implicit +Inf bucket catches everything beyond the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs}
	h.counts = make([]atomic.Uint64, len(bs)+1)
	return h
}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds — the unit every *_seconds
// histogram in the daemon uses. Safe on a nil receiver (no-op).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations (0 through nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of observed values (0 through nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets returns the default request-latency bucket bounds in
// seconds: 500µs to 10s, roughly 2.5x apart — wide enough to cover both a
// cache-hit rank and a cold exact search.
func LatencyBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled sample stream inside a family. Exactly one of the
// value fields is set, matching the family's kind.
type series struct {
	labels  string // rendered `k="v",k2="v2"` (no braces), sorted by key
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every series registered under one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	bounds  []float64 // histogram families only
	series  []series
	byLabel map[string]int
}

// Registry holds registered metrics and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry. All methods are
// safe for concurrent use, and safe on a nil *Registry (registration
// returns nil metrics, exposition writes nothing).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyLocked finds or creates the family for name. A name registered
// under a different kind returns nil: the caller hands back a detached
// metric rather than corrupting the exposition (or panicking).
func (r *Registry) familyLocked(name, help string, k kind, bounds []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: bounds, byLabel: make(map[string]int)}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		return nil
	}
	return f
}

// Counter registers (or finds) the counter name with the given labels.
// Re-registering the same name+labels returns the existing counter; a name
// already registered as a different type returns a detached counter that
// is never exposed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindCounter, nil)
	if f == nil {
		return &Counter{}
	}
	if i, ok := f.byLabel[ls]; ok {
		return f.series[i].counter
	}
	c := &Counter{}
	f.byLabel[ls] = len(f.series)
	f.series = append(f.series, series{labels: ls, counter: c})
	return c
}

// Gauge registers (or finds) the gauge name with the given labels, with
// the same collision semantics as Counter.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindGauge, nil)
	if f == nil {
		return &Gauge{}
	}
	if i, ok := f.byLabel[ls]; ok {
		return f.series[i].gauge
	}
	g := &Gauge{}
	f.byLabel[ls] = len(f.series)
	f.series = append(f.series, series{labels: ls, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values that already live elsewhere (queue depths, file
// sizes). fn must be safe for concurrent use; it is called outside the
// registry lock. Re-registering the same name+labels keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindGaugeFunc, nil)
	if f == nil {
		return
	}
	if _, ok := f.byLabel[ls]; ok {
		return
	}
	f.byLabel[ls] = len(f.series)
	f.series = append(f.series, series{labels: ls, fn: fn})
}

// Histogram registers (or finds) the histogram name with the given bucket
// upper bounds (nil means LatencyBuckets) and labels. All series of one
// family share the first registration's buckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindHistogram, bounds)
	if f == nil {
		return newHistogram(bounds)
	}
	if i, ok := f.byLabel[ls]; ok {
		return f.series[i].hist
	}
	h := newHistogram(f.bounds)
	f.byLabel[ls] = len(f.series)
	f.series = append(f.series, series{labels: ls, hist: h})
	return h
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label signature, histograms with cumulative buckets. The
// output is deterministic for a fixed set of registrations, which is what
// the golden exposition test pins.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the structure under the lock, then read values and run
	// gauge funcs outside it: a gauge func may itself take locks, and
	// holding the registry mutex across arbitrary callbacks or the writer
	// invites ordering trouble.
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]family, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		cp := family{name: f.name, help: f.help, kind: f.kind, bounds: f.bounds}
		cp.series = make([]series, len(f.series))
		copy(cp.series, f.series)
		fams = append(fams, cp)
	}
	r.mu.Unlock()

	var b bytes.Buffer
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			writeSeries(&b, f, s)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

func writeSeries(b *bytes.Buffer, f family, s series) {
	switch f.kind {
	case kindCounter:
		fmt.Fprintf(b, "%s %s\n", sampleName(f.name, s.labels), strconv.FormatUint(s.counter.Value(), 10))
	case kindGauge:
		fmt.Fprintf(b, "%s %s\n", sampleName(f.name, s.labels), strconv.FormatInt(s.gauge.Value(), 10))
	case kindGaugeFunc:
		fmt.Fprintf(b, "%s %s\n", sampleName(f.name, s.labels), formatFloat(s.fn()))
	case kindHistogram:
		var cum uint64
		for i, bound := range s.hist.bounds {
			cum += s.hist.counts[i].Load()
			fmt.Fprintf(b, "%s %d\n", sampleName(f.name+"_bucket", joinLabels(s.labels, `le="`+formatFloat(bound)+`"`)), cum)
		}
		cum += s.hist.counts[len(s.hist.bounds)].Load()
		fmt.Fprintf(b, "%s %d\n", sampleName(f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`)), cum)
		fmt.Fprintf(b, "%s %s\n", sampleName(f.name+"_sum", s.labels), formatFloat(s.hist.Sum()))
		fmt.Fprintf(b, "%s %d\n", sampleName(f.name+"_count", s.labels), cum)
	}
}

// Handler serves the registry over HTTP — mount it on GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			// The scraper hung up mid-write; nothing useful to do.
			return
		}
	})
}

// renderLabels renders a sorted, escaped `k="v",k2="v2"` signature.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func sampleName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func escapeValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
