package obs

import (
	"testing"
	"time"
)

func TestRealClockMonotonicSince(t *testing.T) {
	c := Real()
	start := c.Now()
	if d := c.Since(start); d < 0 {
		t.Fatalf("Since went negative: %v", d)
	}
}

func TestFakeClockAdvance(t *testing.T) {
	base := time.Unix(1000, 0)
	c := NewFakeClock(base)
	if !c.Now().Equal(base) {
		t.Fatalf("Now = %v, want %v", c.Now(), base)
	}
	start := c.Now()
	c.Advance(90 * time.Second)
	if d := c.Since(start); d != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", d)
	}
	c.Set(base.Add(time.Hour))
	if d := c.Since(start); d != time.Hour {
		t.Fatalf("after Set, Since = %v, want 1h", d)
	}
	// A frozen clock never moves on its own: two reads agree exactly.
	if !c.Now().Equal(c.Now()) {
		t.Fatal("frozen clock drifted between reads")
	}
}
