package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("queue_depth", "Current depth.", L("queue", "rank"))
	g.Set(5)
	g.Add(-2)
	r.GaugeFunc("disk_bytes", "Bytes on disk.", func() float64 { return 1.5 })

	got := scrape(t, r)
	for _, want := range []string{
		"# HELP requests_total Total requests.\n# TYPE requests_total counter\nrequests_total 3\n",
		"# TYPE queue_depth gauge\nqueue_depth{queue=\"rank\"} 3\n",
		"# TYPE disk_bytes gauge\ndisk_bytes 1.5\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, got)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(2) // +Inf bucket
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}

	got := scrape(t, r)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_sum 3.05`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, got)
		}
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", nil)
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Sum(); got < 1.49 || got > 1.51 {
		t.Fatalf("Sum = %v, want 1.5", got)
	}
}

// TestLabelOrderingDeterministic pins that label rendering sorts by key
// and series sort by signature, so the exposition is stable regardless of
// registration order.
func TestLabelOrderingDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", L("zeta", "1"), L("alpha", "2")).Inc()
	r.Counter("x_total", "", L("alpha", "1"), L("zeta", "0")).Inc()

	got := scrape(t, r)
	first := strings.Index(got, `x_total{alpha="1",zeta="0"} 1`)
	second := strings.Index(got, `x_total{alpha="2",zeta="1"} 1`)
	if first < 0 || second < 0 || first > second {
		t.Fatalf("series missing or out of order:\n%s", got)
	}
}

func TestReregistrationReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "", L("k", "v"))
	b := r.Counter("dup_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registered counter should share state")
	}
}

// TestKindCollisionReturnsDetached pins the no-panic contract: a name
// registered under one type and requested as another yields a working but
// unexposed metric rather than a panic or a corrupt exposition.
func TestKindCollisionReturnsDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "").Inc()
	g := r.Gauge("clash", "")
	g.Set(9) // must not crash
	h := r.Histogram("clash", "", nil)
	h.Observe(1)

	got := scrape(t, r)
	if !strings.Contains(got, "# TYPE clash counter") {
		t.Fatalf("original counter family lost:\n%s", got)
	}
	if strings.Contains(got, "clash 9") || strings.Contains(got, "clash_bucket") {
		t.Fatalf("detached metrics leaked into exposition:\n%s", got)
	}
}

// TestNilSafety pins that every metric operation and the registry itself
// tolerate nil receivers — the contract lower layers rely on to hold
// optional metric handles.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry should hand out nil metrics")
	}
	r.GaugeFunc("x", "", func() float64 { return 0 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", "a\\b\"c\nd")).Inc()
	got := scrape(t, r)
	want := `esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(got, want) {
		t.Fatalf("want %q in:\n%s", want, got)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "").Add(7)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 7") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestConcurrentObservations exercises the atomic paths under the race
// detector: concurrent metric ops and scrapes must be data-race free and
// lose no increments.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "", nil)
	g := r.Gauge("conc_gauge", "")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = scrape(t, r)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*each {
		t.Fatalf("lost increments: %d != %d", c.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Fatalf("lost observations: %d != %d", h.Count(), workers*each)
	}
	if g.Value() != workers*each {
		t.Fatalf("lost gauge adds: %d != %d", g.Value(), workers*each)
	}
}
