package search

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSAPSContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := randomTournament(t, 20, newRNG(1))
	start := time.Now()
	_, err := SAPSContext(ctx, g, DefaultSAPSParams(), newRNG(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled SAPS took %v", elapsed)
	}
}

func TestSAPSContextCancelMidRun(t *testing.T) {
	// A deadline that expires mid-anneal must stop the run; the per-iteration
	// poll means even a huge iteration budget returns quickly.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	g := randomTournament(t, 40, newRNG(3))
	p := DefaultSAPSParams()
	p.Iterations = 50_000_000
	p.Cooling = 0.999999
	start := time.Now()
	_, err := SAPSContext(ctx, g, p, newRNG(4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("mid-run cancellation took %v", elapsed)
	}
}

func TestSAPSContextBackgroundMatchesPlain(t *testing.T) {
	g := randomTournament(t, 12, newRNG(5))
	a, err := SAPS(g, DefaultSAPSParams(), newRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SAPSContext(context.Background(), randomTournament(t, 12, newRNG(5)), DefaultSAPSParams(), newRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if a.LogProb != b.LogProb {
		t.Errorf("context wrapper changed result: %v vs %v", a.LogProb, b.LogProb)
	}
}

func TestBranchAndBoundContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := randomTournament(t, 15, newRNG(7))
	_, err := BranchAndBoundContext(ctx, g, BranchAndBoundParams{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBranchAndBoundContextCancelMidRun(t *testing.T) {
	// Random tournaments prune poorly, so n = 22 gives the node-poll a
	// chance to fire well before the search finishes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	g := randomTournament(t, 22, newRNG(8))
	start := time.Now()
	_, err := BranchAndBoundContext(ctx, g, BranchAndBoundParams{MaxNodes: 500_000_000})
	if err == nil {
		t.Skip("instance solved before the deadline; nothing to cancel")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("mid-run cancellation took %v", elapsed)
	}
}

func TestBranchAndBoundContextBackgroundMatchesPlain(t *testing.T) {
	g := orderedTournament(t, 10, 0.8)
	a, err := BranchAndBound(g, BranchAndBoundParams{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BranchAndBoundContext(context.Background(), orderedTournament(t, 10, 0.8), BranchAndBoundParams{})
	if err != nil {
		t.Fatal(err)
	}
	if a.LogProb != b.LogProb {
		t.Errorf("context wrapper changed result: %v vs %v", a.LogProb, b.LogProb)
	}
}
