package search

import (
	"context"
	"fmt"
	"math"

	"crowdrank/internal/graph"
)

// BranchAndBoundParams tunes the exact all-pairs search.
type BranchAndBoundParams struct {
	// MaxNodes caps the number of search-tree nodes expanded; the search
	// returns an error if the cap is hit before optimality is proven.
	// 0 means the default of 5 million.
	MaxNodes int
}

// BranchAndBound finds the exact optimum of the all-pairs objective
// (weighted linear ordering) by depth-first branch and bound over ranking
// prefixes. Unlike Held-Karp's O(2^n) table it needs only O(n) memory, and
// on the near-consistent tournaments the inference pipeline produces its
// admissible bound prunes aggressively, solving n = 30-50 instances that
// are far out of Held-Karp's reach — an exact reference for validating
// SAPS beyond 20 objects.
//
// The bound: a prefix's score plus, for every not-yet-ordered pair, the
// larger of the two orientations' log-weights — attainable only if all
// remaining pairwise preferences are simultaneously satisfiable, hence an
// upper bound. The incumbent starts at the insertion-polished score-ranked
// order, so pruning is strong from the first node.
//
// Only ObjectiveAllPairs is supported: the consecutive objective lacks a
// comparably tight prefix bound (use HeldKarp for it).
func BranchAndBound(g *graph.PreferenceGraph, p BranchAndBoundParams) (*Result, error) {
	return BranchAndBoundContext(context.Background(), g, p)
}

// BranchAndBoundContext is BranchAndBound with cancellation: the DFS polls
// ctx every 1024 expanded nodes and abandons the search with ctx's error as
// soon as it is cancelled or its deadline passes. An already-cancelled
// context returns promptly without searching.
func BranchAndBoundContext(ctx context.Context, g *graph.PreferenceGraph, p BranchAndBoundParams) (*Result, error) {
	maxNodes := p.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 5_000_000
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	logw, err := logWeights(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if n == 1 {
		return newResult([]int{0}, 0, 1), nil
	}

	// Incumbent: insertion-polished score-ranked order.
	start, err := InsertionPolish(g, scoreRankedOrder(g), ObjectiveAllPairs, 0)
	if err != nil {
		return nil, err
	}
	best := append([]int(nil), start.Path...)
	bestScore := start.LogProb

	// bestPairLog[i][j] = max(logw[i][j], logw[j][i]); rowSlack[v] =
	// sum over u != v of bestPairLog contributions are folded into the
	// total optimistic mass maintained incrementally below.
	pairGain := make([][]float64, n)
	for i := range pairGain {
		pairGain[i] = make([]float64, n)
		for j := range pairGain[i] {
			if i != j {
				pairGain[i][j] = math.Max(logw[i][j], logw[j][i])
			}
		}
	}
	// totalOptimistic = sum over unordered pairs of the best orientation.
	totalOptimistic := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			totalOptimistic += pairGain[i][j]
		}
	}

	// Static child ordering: score-ranked, so promising prefixes come first.
	order := scoreRankedOrder(g)

	prefix := make([]int, 0, n)
	used := make([]bool, n)
	nodes := 0

	// The DFS carries two running quantities:
	//   score    — exact score of all pairs with at least one endpoint
	//              placed (placed-placed pairs exact, placed-unplaced pairs
	//              exact because the placed one precedes every unplaced).
	//   slack    — sum of pairGain over pairs with BOTH endpoints unplaced.
	// Bound = score + slack.
	var dfs func(score, slack float64) error
	dfs = func(score, slack float64) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("search: BranchAndBound exceeded %d nodes; instance too hard, use SAPS", maxNodes)
		}
		if nodes&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if len(prefix) == n {
			if score > bestScore {
				bestScore = score
				copy(best, prefix)
			}
			return nil
		}
		for _, v := range order {
			if used[v] {
				continue
			}
			// Appending v removes the optimistic mass of every (v, w) pair
			// with w unplaced from the slack and adds the exact
			// logw[v][w] to the score (v precedes all unplaced w). Pairs
			// (u, v) with u already placed were accounted for exactly when
			// u was appended, by the same rule.
			slackLoss := 0.0
			exactGain := 0.0
			for w := 0; w < n; w++ {
				if used[w] || w == v {
					continue
				}
				slackLoss += pairGain[v][w]
				exactGain += logw[v][w]
			}
			newScore := score + exactGain
			newSlack := slack - slackLoss
			if newScore+newSlack <= bestScore+1e-12 {
				continue // prune
			}
			prefix = append(prefix, v)
			used[v] = true
			if err := dfs(newScore, newSlack); err != nil {
				return err
			}
			prefix = prefix[:len(prefix)-1]
			used[v] = false
		}
		return nil
	}

	if err := dfs(0, totalOptimistic); err != nil {
		return nil, err
	}
	res := newResult(best, bestScore, nodes)
	return res, nil
}

// Certificate bounds how far a ranking can be from the all-pairs optimum
// without running any search: Gap is the difference between the root
// optimistic bound (every pair at its better orientation) and the ranking's
// own score. The true optimality gap is at most Gap; a Gap of zero proves
// the ranking optimal.
type Certificate struct {
	// Score is the ranking's all-pairs log score.
	Score float64
	// UpperBound is the root bound no ranking can exceed.
	UpperBound float64
	// Gap = UpperBound - Score >= (optimum - Score) >= 0.
	Gap float64
}

// Certify computes the optimality certificate of a ranking under the
// all-pairs objective in O(n^2), with no search. It is useful as a cheap
// post-inference sanity measure: on well-calibrated closures the SAPS
// result's Gap is small relative to |Score|.
//
//lint:ignore ctxloop bounded scoring pass: one O(n^2) sweep over the closure, no search
func Certify(g *graph.PreferenceGraph, path []int) (*Certificate, error) {
	logw, err := logWeights(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if len(path) != n {
		return nil, fmt.Errorf("search: path length %d does not match graph size %d", len(path), n)
	}
	seen := make([]bool, n)
	for _, v := range path {
		if v < 0 || v >= n || seen[v] {
			return nil, fmt.Errorf("search: path is not a permutation")
		}
		seen[v] = true
	}
	score := scorePath(logw, path, ObjectiveAllPairs)
	bound := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			bound += math.Max(logw[i][j], logw[j][i])
		}
	}
	return &Certificate{Score: score, UpperBound: bound, Gap: bound - score}, nil
}
