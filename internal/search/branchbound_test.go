package search

import (
	"math"
	"testing"

	"crowdrank/internal/graph"
)

func TestBranchAndBoundMatchesHeldKarp(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := newRNG(uint64(trial + 7000))
		n := 4 + rng.IntN(10)
		g := randomTournament(t, n, rng)
		exact, err := HeldKarp(g, 0, ObjectiveAllPairs)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchAndBound(g, BranchAndBoundParams{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bb.LogProb-exact.LogProb) > 1e-9 {
			t.Fatalf("n=%d: BnB %v != Held-Karp %v", n, bb.LogProb, exact.LogProb)
		}
	}
}

func TestBranchAndBoundBeyondHeldKarp(t *testing.T) {
	// On a near-consistent 30-object tournament (the pipeline's regime) the
	// bound prunes enough to prove optimality, and SAPS must not beat it.
	rng := newRNG(42)
	n := 30
	g, err := buildNoisyOrdered(n, 0.9, 0.03, rng)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := BranchAndBound(g, BranchAndBoundParams{})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultSAPSParams()
	p.Iterations = 400
	sa, err := SAPS(g, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sa.LogProb > bb.LogProb+1e-9 {
		t.Fatalf("SAPS %v beat the proven optimum %v", sa.LogProb, bb.LogProb)
	}
	if bb.Evaluations <= 0 {
		t.Error("node count missing")
	}
}

func TestBranchAndBoundNodeCap(t *testing.T) {
	// A fully random (cycle-heavy) tournament at n=20 with a 100-node cap
	// must refuse rather than return an unproven answer.
	rng := newRNG(9)
	g := randomTournament(t, 20, rng)
	if _, err := BranchAndBound(g, BranchAndBoundParams{MaxNodes: 100}); err == nil {
		t.Error("node cap should trigger on a hard instance")
	}
}

func TestBranchAndBoundValidation(t *testing.T) {
	g, err := graph.NewPreferenceGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := BranchAndBound(g, BranchAndBoundParams{}); err == nil {
		t.Error("incomplete graph should fail")
	}
}

// buildNoisyOrdered builds a tournament mostly consistent with the identity
// order: forward weight `strength` with a `flip` fraction of pairs
// inverted.
func buildNoisyOrdered(n int, strength, flip float64, rng interface{ Float64() float64 }) (*graph.PreferenceGraph, error) {
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := strength
			if rng.Float64() < flip {
				w = 1 - strength
			}
			if err := g.SetWeight(i, j, w); err != nil {
				return nil, err
			}
			if err := g.SetWeight(j, i, 1-w); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

func TestCertify(t *testing.T) {
	g := orderedTournament(t, 6, 0.9)
	identity := []int{0, 1, 2, 3, 4, 5}
	cert, err := Certify(g, identity)
	if err != nil {
		t.Fatal(err)
	}
	// On a perfectly consistent tournament the identity order attains the
	// bound exactly: gap zero proves optimality.
	if math.Abs(cert.Gap) > 1e-9 {
		t.Errorf("identity on consistent tournament should certify optimal, gap = %v", cert.Gap)
	}
	// The reversed order has a large certified gap.
	reversed := []int{5, 4, 3, 2, 1, 0}
	rc, err := Certify(g, reversed)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Gap <= cert.Gap {
		t.Errorf("reversed order should have a larger gap: %v <= %v", rc.Gap, cert.Gap)
	}
	// Gap upper-bounds the true optimality gap: exact optimum score must
	// lie within [Score, UpperBound].
	exact, err := HeldKarp(g, 0, ObjectiveAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if exact.LogProb > rc.UpperBound+1e-9 || exact.LogProb < rc.Score-1e-9 {
		t.Errorf("optimum %v outside certificate range [%v, %v]", exact.LogProb, rc.Score, rc.UpperBound)
	}
	if _, err := Certify(g, []int{0, 1}); err == nil {
		t.Error("short path should fail")
	}
	if _, err := Certify(g, []int{0, 0, 1, 2, 3, 4}); err == nil {
		t.Error("non-permutation should fail")
	}
}
