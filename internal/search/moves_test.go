package search

import (
	"math"
	"testing"
)

// TestMoveDeltasMatchRecompute drives the three SAPS proposal moves with a
// huge temperature (so nearly every proposal is accepted) and verifies after
// every single move that the incrementally maintained cost equals a full
// recomputation — a direct check of each delta formula, per objective.
func TestMoveDeltasMatchRecompute(t *testing.T) {
	for _, obj := range []Objective{ObjectiveAllPairs, ObjectiveConsecutive} {
		for trial := 0; trial < 5; trial++ {
			rng := newRNG(uint64(trial + 8000))
			n := 5 + rng.IntN(15)
			g := randomTournament(t, n, rng)
			logw, err := logWeights(g)
			if err != nil {
				t.Fatal(err)
			}
			st := &sapsState{logw: logw, obj: obj, path: rng.Perm(n)}
			st.cost = -scorePath(logw, st.path, obj)
			const hotTemp = 1e12 // accept essentially everything
			check := func(move string, step int) {
				t.Helper()
				want := -scorePath(logw, st.path, obj)
				if math.Abs(st.cost-want) > 1e-6 {
					t.Fatalf("%v %s step %d: incremental cost %v != recomputed %v",
						obj, move, step, st.cost, want)
				}
			}
			for step := 0; step < 60; step++ {
				st.proposeRotate(rng, hotTemp)
				check("rotate", step)
				st.proposeReverse(rng, hotTemp)
				check("reverse", step)
				st.proposeSwap(rng, hotTemp)
				check("swap", step)
			}
		}
	}
}

// TestMovesPreservePermutation verifies the move implementations never
// corrupt the path.
func TestMovesPreservePermutation(t *testing.T) {
	rng := newRNG(8100)
	n := 12
	g := randomTournament(t, n, rng)
	logw, err := logWeights(g)
	if err != nil {
		t.Fatal(err)
	}
	st := &sapsState{logw: logw, obj: ObjectiveAllPairs, path: rng.Perm(n)}
	st.cost = -scorePath(logw, st.path, ObjectiveAllPairs)
	for step := 0; step < 200; step++ {
		st.proposeRotate(rng, 1e12)
		st.proposeReverse(rng, 1e12)
		st.proposeSwap(rng, 1e12)
		seen := make([]bool, n)
		for _, v := range st.path {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("step %d corrupted the path: %v", step, st.path)
			}
			seen[v] = true
		}
	}
}

// TestAcceptSemantics checks the Metropolis rule directly.
func TestAcceptSemantics(t *testing.T) {
	rng := newRNG(8200)
	if !accept(-1, 0.5, rng) {
		t.Error("improving moves must always be accepted")
	}
	if accept(1, 0, rng) {
		t.Error("worsening moves at zero temperature must be rejected")
	}
	// At delta/T = 10 the acceptance probability is ~4.5e-5: out of 2000
	// tries, essentially none should pass; at delta/T = 0.01, essentially
	// all should.
	hot, cold := 0, 0
	for i := 0; i < 2000; i++ {
		if accept(0.01, 1, rng) {
			hot++
		}
		if accept(10, 1, rng) {
			cold++
		}
	}
	if hot < 1900 {
		t.Errorf("near-neutral acceptance rate too low: %d/2000", hot)
	}
	if cold > 10 {
		t.Errorf("strongly-worsening acceptance rate too high: %d/2000", cold)
	}
}
