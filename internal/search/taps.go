package search

import (
	"fmt"
	"math"
	"sort"

	"crowdrank/internal/graph"
)

// TAPSParams tunes the threshold-based path search.
type TAPSParams struct {
	// MaxN refuses larger instances: TAPS materializes one sorted list per
	// position slot with one entry per Hamiltonian path each (the paper's
	// n!(2n-1) space), so the practical ceiling is around 9 objects for the
	// consecutive objective (n-1 lists) and 8 for all-pairs (C(n,2) lists).
	// 0 selects those defaults.
	MaxN int
	// Objective selects the path-preference reading (see Objective). The
	// paper's list construction ("the i-th list corresponding to the i-th
	// edge in the HP") is stated for the consecutive reading; the all-pairs
	// variant uses one list per ranked position pair.
	Objective Objective
}

// TAPSResult extends Result with the tie set and the access counts the
// threshold algorithm is defined by.
type TAPSResult struct {
	Result
	// Ties holds every Hamiltonian path achieving the maximum preference
	// probability, including Result.Path (the paper's output set Y).
	Ties [][]int
	// SortedAccesses and RandomAccesses count list operations before the
	// threshold permitted early termination.
	SortedAccesses int
	RandomAccesses int
	// Depth is the sorted-access depth reached when the algorithm halted.
	Depth int
}

// TAPS finds the exact best ranking(s) with the paper's threshold-based
// path search: build one list per position slot, each holding
// (pathID, edgeWeight) sorted descending; do sorted access in parallel
// across the lists, computing each newly seen path's full preference by
// random access; halt as soon as the best seen probability reaches the
// threshold (the product of the last weights seen under sorted access in
// each list).
//
//lint:ignore ctxloop bounded exact search: refuses n > 9 (factorial space), so it finishes in milliseconds
func TAPS(g *graph.PreferenceGraph, p TAPSParams) (*TAPSResult, error) {
	if !p.Objective.valid() {
		return nil, fmt.Errorf("search: unknown objective %d", p.Objective)
	}
	maxN := p.MaxN
	if maxN <= 0 {
		if p.Objective == ObjectiveConsecutive {
			maxN = 9
		} else {
			maxN = 8
		}
	}
	if maxN > 11 {
		return nil, fmt.Errorf("search: TAPS limit %d too large (space is factorial)", maxN)
	}
	logw, err := logWeights(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if n > maxN {
		return nil, fmt.Errorf("search: TAPS limited to n <= %d, got n=%d; use HeldKarp or SAPS", maxN, n)
	}
	if n == 1 {
		return &TAPSResult{Result: *newResult([]int{0}, 0, 1), Ties: [][]int{{0}}}, nil
	}

	paths := allPermutations(n)
	total := len(paths)

	// A slot is a position pair (a, b), a < b, whose implied edge weight
	// contributes one factor to the path preference.
	var slots [][2]int
	if p.Objective == ObjectiveConsecutive {
		for k := 0; k+1 < n; k++ {
			slots = append(slots, [2]int{k, k + 1})
		}
	} else {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				slots = append(slots, [2]int{a, b})
			}
		}
	}

	// listEntry references a path and the log-weight of its slot edge.
	type listEntry struct {
		id   int32
		logw float64
	}
	lists := make([][]listEntry, len(slots))
	for i, slot := range slots {
		entries := make([]listEntry, total)
		for id, path := range paths {
			entries[id] = listEntry{id: int32(id), logw: logw[path[slot[0]]][path[slot[1]]]}
		}
		sort.Slice(entries, func(a, b int) bool { return entries[a].logw > entries[b].logw })
		lists[i] = entries
	}

	seen := make([]bool, total)
	bestLog := math.Inf(-1)
	var bestIDs []int32
	res := &TAPSResult{}

	for depth := 0; depth < total; depth++ {
		threshold := 0.0
		for i := range lists {
			entry := lists[i][depth]
			threshold += entry.logw
			res.SortedAccesses++
			if seen[entry.id] {
				continue
			}
			seen[entry.id] = true
			// Random access: fetch the path's remaining factors and compute
			// its full preference probability.
			lp := scorePath(logw, paths[entry.id], p.Objective)
			res.RandomAccesses += len(slots) - 1
			res.Evaluations++
			switch {
			case lp > bestLog:
				bestLog = lp
				bestIDs = bestIDs[:0]
				bestIDs = append(bestIDs, entry.id)
			//lint:ignore floatcmp deliberate exact tie detection: co-optimal paths share bit-identical log-sums computed by the same code path
			case lp == bestLog:
				bestIDs = append(bestIDs, entry.id)
			}
		}
		res.Depth = depth + 1
		if bestLog >= threshold {
			break
		}
	}

	if len(bestIDs) == 0 {
		return nil, fmt.Errorf("search: TAPS found no path (internal error)")
	}
	res.Result = *newResult(paths[bestIDs[0]], bestLog, res.Evaluations)
	res.Ties = make([][]int, len(bestIDs))
	for i, id := range bestIDs {
		res.Ties[i] = append([]int(nil), paths[id]...)
	}
	return res, nil
}

// allPermutations returns every permutation of {0..n-1} in lexicographic
// order.
func allPermutations(n int) [][]int {
	count := 1
	for i := 2; i <= n; i++ {
		count *= i
	}
	out := make([][]int, 0, count)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for {
		out = append(out, append([]int(nil), perm...))
		if !nextPermutation(perm) {
			return out
		}
	}
}

// nextPermutation advances perm to its lexicographic successor, reporting
// false when perm was the final permutation.
func nextPermutation(perm []int) bool {
	n := len(perm)
	i := n - 2
	for i >= 0 && perm[i] >= perm[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for perm[j] <= perm[i] {
		j--
	}
	perm[i], perm[j] = perm[j], perm[i]
	for a, b := i+1, n-1; a < b; a, b = a+1, b-1 {
		perm[a], perm[b] = perm[b], perm[a]
	}
	return true
}
