package search

import (
	"fmt"
	"sort"

	"crowdrank/internal/graph"
)

// Greedy orders the objects by their net preference score over the closure
// — sum over j of log w_ij - log w_ji, the Borda-like construction SAPS
// uses for its score-ranked initial path — and returns that single path
// scored under the objective, with no search at all.
//
// It is the bottom rung of the daemon's degradation ladder: one O(n^2)
// pass over the closure with an O(n log n) sort, so it meets any deadline
// the closure itself could be built under. On near-consistent closures the
// net-score order is close to optimal; on noisy ones it trades accuracy
// for a bounded, deterministic response time.
//
//lint:ignore ctxloop single O(n^2) accumulation pass with no iterative search to cancel; it exists to answer after deadlines have already expired
func Greedy(g *graph.PreferenceGraph, obj Objective) (*Result, error) {
	if !obj.valid() {
		return nil, fmt.Errorf("search: unknown objective %d", obj)
	}
	logw, err := logWeights(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			score[i] += logw[i][j] - logw[j][i]
		}
	}
	path := make([]int, n)
	for i := range path {
		path[i] = i
	}
	// Descending score; ties resolve by object id for determinism.
	sort.SliceStable(path, func(a, b int) bool {
		return score[path[a]] > score[path[b]]
	})
	return newResult(path, scorePath(logw, path, obj), n), nil
}
