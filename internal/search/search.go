// Package search implements Step 4 of result inference (Section V-D):
// finding the Hamiltonian path of maximum preference probability
// Pr[P] = prod w_ij over the complete normalized closure G_P^*.
//
// Four searchers are provided:
//
//   - BruteForce: evaluates every permutation; the ground-truth oracle for
//     tests (n <= ~10).
//   - TAPS: the paper's exact threshold-based path search, a Threshold
//     Algorithm over n-1 per-position sorted path lists with early
//     termination. Faithful to the paper, and therefore factorial in space
//     (the paper itself states n!(2n-1) entries), so it is practical to
//     n ~ 9 — enough for the paper's 10-image AMT setting.
//   - HeldKarp: exact dynamic programming over vertex subsets in
//     O(2^n n^2), the exact reference for mid-size instances (n <= ~20,
//     the paper's 20-image setting).
//   - SAPS: the paper's simulated-annealing path search (Algorithms 2-3),
//     the scalable heuristic used in all large experiments.
//
// All searchers maximize the product of edge weights, equivalently minimize
// sum of log(1/w); they require a complete graph with strictly positive
// weights, which Step 3's closure guarantees.
package search

import (
	"fmt"
	"math"

	"crowdrank/internal/graph"
)

// Result is the outcome of a best-ranking search.
type Result struct {
	// Path is the best Hamiltonian path found, listed most-preferred first:
	// Path[k] is ranked before Path[k+1].
	Path []int
	// LogProb is sum over consecutive pairs of log w; the preference
	// probability is exp(LogProb).
	LogProb float64
	// Prob is exp(LogProb). For large n it can underflow to zero even
	// though LogProb remains meaningful; compare LogProb, not Prob.
	Prob float64
	// Evaluations counts full or incremental path evaluations performed,
	// for the time-performance experiments.
	Evaluations int
}

// logWeights precomputes c[i][j] = log(w_ij), validating completeness.
func logWeights(g *graph.PreferenceGraph) ([][]float64, error) {
	if g == nil {
		return nil, fmt.Errorf("search: nil preference graph")
	}
	n := g.N()
	if n < 1 {
		return nil, fmt.Errorf("search: empty graph")
	}
	logw := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range logw {
		logw[i], backing = backing[:n:n], backing[n:]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			w := g.Weight(i, j)
			if w <= 0 {
				return nil, fmt.Errorf("search: graph is not complete: missing weight for edge (%d,%d); run preference propagation first", i, j)
			}
			logw[i][j] = math.Log(w)
		}
	}
	return logw, nil
}

// pathLogProb sums log-weights along path.
func pathLogProb(logw [][]float64, path []int) float64 {
	sum := 0.0
	for k := 1; k < len(path); k++ {
		sum += logw[path[k-1]][path[k]]
	}
	return sum
}

func newResult(path []int, logProb float64, evals int) *Result {
	out := make([]int, len(path))
	copy(out, path)
	return &Result{
		Path:        out,
		LogProb:     logProb,
		Prob:        math.Exp(logProb),
		Evaluations: evals,
	}
}

// BruteForce finds the exact best ranking under the objective by
// enumerating all n! permutations with Heap's algorithm. It refuses
// n > maxN (pass 0 for the default limit of 10) because the cost is
// factorial.
//
//lint:ignore ctxloop bounded exact search: refuses n > 10, so the factorial enumeration finishes in milliseconds
func BruteForce(g *graph.PreferenceGraph, maxN int, obj Objective) (*Result, error) {
	if maxN <= 0 {
		maxN = 10
	}
	if !obj.valid() {
		return nil, fmt.Errorf("search: unknown objective %d", obj)
	}
	logw, err := logWeights(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if n > maxN {
		return nil, fmt.Errorf("search: BruteForce limited to n <= %d, got n=%d", maxN, n)
	}
	if n == 1 {
		return newResult([]int{0}, 0, 1), nil
	}

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := make([]int, n)
	copy(best, perm)
	bestLog := scorePath(logw, perm, obj)
	evals := 1

	// Heap's algorithm, iterative form.
	c := make([]int, n)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			lp := scorePath(logw, perm, obj)
			evals++
			if lp > bestLog {
				bestLog = lp
				copy(best, perm)
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return newResult(best, bestLog, evals), nil
}
