package search

import (
	"testing"

	"crowdrank/internal/graph"
)

func TestGreedyOrderedTournament(t *testing.T) {
	for _, obj := range []Objective{ObjectiveAllPairs, ObjectiveConsecutive} {
		g := orderedTournament(t, 9, 0.85)
		res, err := Greedy(g, obj)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Path {
			if v != i {
				t.Fatalf("%v: greedy path %v should recover the identity order", obj, res.Path)
			}
		}
	}
}

// TestGreedyNeverBeatsExact: greedy's score is a lower bound on the
// optimum, and on random tournaments it stays a valid permutation.
func TestGreedyNeverBeatsExact(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		g := randomTournament(t, 7, newRNG(seed))
		greedy, err := Greedy(g, ObjectiveAllPairs)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := BruteForce(g, 0, ObjectiveAllPairs)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.LogProb > exact.LogProb+1e-9 {
			t.Fatalf("seed %d: greedy LogProb %v exceeds optimum %v", seed, greedy.LogProb, exact.LogProb)
		}
		seen := make([]bool, 7)
		for _, v := range greedy.Path {
			if v < 0 || v >= 7 || seen[v] {
				t.Fatalf("seed %d: greedy path %v is not a permutation", seed, greedy.Path)
			}
			seen[v] = true
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	g := randomTournament(t, 12, newRNG(7))
	a, err := Greedy(g, ObjectiveAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(g, ObjectiveAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			t.Fatalf("greedy is not deterministic: %v vs %v", a.Path, b.Path)
		}
	}
}

func TestGreedyRejectsBadInput(t *testing.T) {
	g, err := graph.NewPreferenceGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := Greedy(g, ObjectiveAllPairs); err == nil {
		t.Error("incomplete graph should fail")
	}
	if _, err := Greedy(orderedTournament(t, 3, 0.9), Objective(99)); err == nil {
		t.Error("unknown objective should fail")
	}
	if _, err := Greedy(nil, ObjectiveAllPairs); err == nil {
		t.Error("nil graph should fail")
	}
}
