package search

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"crowdrank/internal/graph"
)

// randomTournament builds a complete preference graph with random weights
// w_ij in (floor, 1-floor), w_ij + w_ji = 1.
func randomTournament(t testing.TB, n int, rng *rand.Rand) *graph.PreferenceGraph {
	t.Helper()
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := 0.05 + 0.9*rng.Float64()
			if err := g.SetWeight(i, j, w); err != nil {
				t.Fatal(err)
			}
			if err := g.SetWeight(j, i, 1-w); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// orderedTournament builds a complete graph consistent with the identity
// order: w(i,j) = strength for i < j.
func orderedTournament(t testing.TB, n int, strength float64) *graph.PreferenceGraph {
	t.Helper()
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.SetWeight(i, j, strength); err != nil {
				t.Fatal(err)
			}
			if err := g.SetWeight(j, i, 1-strength); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 2)) }

func TestBruteForceOrderedTournament(t *testing.T) {
	for _, obj := range []Objective{ObjectiveAllPairs, ObjectiveConsecutive} {
		g := orderedTournament(t, 6, 0.9)
		res, err := BruteForce(g, 0, obj)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Path {
			if v != i {
				t.Fatalf("%v: best path %v should be the identity order", obj, res.Path)
			}
		}
		want := math.Log(0.9) * float64(len(factorsFor(obj, 6)))
		if math.Abs(res.LogProb-want) > 1e-9 {
			t.Errorf("%v: LogProb = %v, want %v", obj, res.LogProb, want)
		}
	}
}

// factorsFor returns a slice whose length is the number of weight factors
// the objective multiplies for n objects.
func factorsFor(obj Objective, n int) []struct{} {
	if obj == ObjectiveConsecutive {
		return make([]struct{}, n-1)
	}
	return make([]struct{}, n*(n-1)/2)
}

func TestBruteForceRejectsIncomplete(t *testing.T) {
	g, err := graph.NewPreferenceGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	g.SetWeight(0, 1, 0.5)
	if _, err := BruteForce(g, 0, ObjectiveAllPairs); err == nil {
		t.Error("incomplete graph should fail")
	}
}

func TestBruteForceLimits(t *testing.T) {
	g := randomTournament(t, 11, newRNG(1))
	if _, err := BruteForce(g, 0, ObjectiveAllPairs); err == nil {
		t.Error("n=11 should exceed the default brute-force limit")
	}
	if _, err := BruteForce(g, 12, 99); err == nil {
		t.Error("invalid objective should fail")
	}
}

func TestHeldKarpMatchesBruteForce(t *testing.T) {
	for _, obj := range []Objective{ObjectiveAllPairs, ObjectiveConsecutive} {
		for trial := 0; trial < 20; trial++ {
			rng := newRNG(uint64(trial + 100))
			n := 2 + rng.IntN(6)
			g := randomTournament(t, n, rng)
			bf, err := BruteForce(g, 0, obj)
			if err != nil {
				t.Fatal(err)
			}
			hk, err := HeldKarp(g, 0, obj)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(bf.LogProb-hk.LogProb) > 1e-9 {
				t.Fatalf("%v n=%d: HeldKarp %v != BruteForce %v", obj, n, hk.LogProb, bf.LogProb)
			}
			// The returned path must actually achieve the claimed score.
			logw, err := logWeights(g)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(scorePath(logw, hk.Path, obj)-hk.LogProb) > 1e-9 {
				t.Fatalf("%v: HeldKarp path score mismatch", obj)
			}
		}
	}
}

func TestHeldKarpLimits(t *testing.T) {
	g := randomTournament(t, 5, newRNG(3))
	if _, err := HeldKarp(g, 4, ObjectiveAllPairs); err == nil {
		t.Error("n above maxN should fail")
	}
	if _, err := HeldKarp(g, 30, ObjectiveAllPairs); err == nil {
		t.Error("maxN above the hard cap should fail")
	}
	if _, err := HeldKarp(g, 0, 99); err == nil {
		t.Error("invalid objective should fail")
	}
}

func TestTAPSMatchesBruteForce(t *testing.T) {
	for _, obj := range []Objective{ObjectiveAllPairs, ObjectiveConsecutive} {
		for trial := 0; trial < 10; trial++ {
			rng := newRNG(uint64(trial + 500))
			n := 2 + rng.IntN(5)
			g := randomTournament(t, n, rng)
			bf, err := BruteForce(g, 0, obj)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := TAPS(g, TAPSParams{Objective: obj})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(bf.LogProb-tr.LogProb) > 1e-9 {
				t.Fatalf("%v n=%d: TAPS %v != BruteForce %v", obj, n, tr.LogProb, bf.LogProb)
			}
			if len(tr.Ties) < 1 {
				t.Fatal("TAPS must report at least one tie (the winner)")
			}
			if tr.Depth < 1 || tr.SortedAccesses < 1 {
				t.Fatalf("TAPS accesses not recorded: %+v", tr)
			}
		}
	}
}

func TestTAPSEarlyTermination(t *testing.T) {
	// On a decisively ordered tournament the threshold should stop the
	// scan long before all n! paths are seen.
	g := orderedTournament(t, 7, 0.95)
	tr, err := TAPS(g, TAPSParams{MaxN: 7, Objective: ObjectiveConsecutive})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth >= 5040 {
		t.Errorf("no early termination: depth = %d of 5040", tr.Depth)
	}
	for i, v := range tr.Path {
		if v != i {
			t.Fatalf("TAPS path %v should be the identity order", tr.Path)
		}
	}
}

func TestTAPSLimits(t *testing.T) {
	g := randomTournament(t, 9, newRNG(4))
	if _, err := TAPS(g, TAPSParams{Objective: ObjectiveAllPairs}); err == nil {
		t.Error("n=9 should exceed the all-pairs TAPS default limit")
	}
	if _, err := TAPS(g, TAPSParams{MaxN: 20}); err == nil {
		t.Error("maxN above the hard cap should fail")
	}
	if _, err := TAPS(g, TAPSParams{Objective: 99}); err == nil {
		t.Error("invalid objective should fail")
	}
}

func TestSAPSFindsOptimumOnSmallInstances(t *testing.T) {
	for _, obj := range []Objective{ObjectiveAllPairs, ObjectiveConsecutive} {
		hits := 0
		const trials = 15
		for trial := 0; trial < trials; trial++ {
			rng := newRNG(uint64(trial + 900))
			n := 4 + rng.IntN(4)
			g := randomTournament(t, n, rng)
			exact, err := HeldKarp(g, 0, obj)
			if err != nil {
				t.Fatal(err)
			}
			p := DefaultSAPSParams()
			p.Objective = obj
			p.Iterations = 400
			p.Starts = 0 // all vertices
			sa, err := SAPS(g, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			if sa.LogProb > exact.LogProb+1e-9 {
				t.Fatalf("SAPS beat the exact optimum: %v > %v", sa.LogProb, exact.LogProb)
			}
			if math.Abs(sa.LogProb-exact.LogProb) < 1e-9 {
				hits++
			}
		}
		// SAPS is a heuristic, but on n <= 7 it should almost always find
		// the optimum.
		if hits < trials-2 {
			t.Errorf("%v: SAPS matched the optimum only %d/%d times", obj, hits, trials)
		}
	}
}

func TestSAPSCostConsistency(t *testing.T) {
	// The reported LogProb must equal the recomputed score of the returned
	// path — this catches any error in the incremental move deltas.
	for _, obj := range []Objective{ObjectiveAllPairs, ObjectiveConsecutive} {
		for trial := 0; trial < 10; trial++ {
			rng := newRNG(uint64(trial + 1700))
			n := 5 + rng.IntN(20)
			g := randomTournament(t, n, rng)
			p := DefaultSAPSParams()
			p.Objective = obj
			p.Iterations = 150
			sa, err := SAPS(g, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			logw, err := logWeights(g)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(scorePath(logw, sa.Path, obj)-sa.LogProb) > 1e-6 {
				t.Fatalf("%v n=%d: recomputed %v != reported %v",
					obj, n, scorePath(logw, sa.Path, obj), sa.LogProb)
			}
		}
	}
}

func TestSAPSReturnsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := newRNG(seed)
		g := randomTournament(t, n, rng)
		p := DefaultSAPSParams()
		p.Iterations = 30
		res, err := SAPS(g, p, rng)
		if err != nil || len(res.Path) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range res.Path {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSAPSValidation(t *testing.T) {
	g := randomTournament(t, 4, newRNG(8))
	if _, err := SAPS(g, DefaultSAPSParams(), nil); err == nil {
		t.Error("nil rng should fail")
	}
	for _, mutate := range []func(*SAPSParams){
		func(p *SAPSParams) { p.Iterations = 0 },
		func(p *SAPSParams) { p.Temperature = 0 },
		func(p *SAPSParams) { p.Cooling = 0 },
		func(p *SAPSParams) { p.Cooling = 1 },
		func(p *SAPSParams) { p.Starts = -1 },
		func(p *SAPSParams) { p.Init = 0 },
		func(p *SAPSParams) { p.Objective = 99 },
	} {
		p := DefaultSAPSParams()
		mutate(&p)
		if _, err := SAPS(g, p, newRNG(1)); err == nil {
			t.Errorf("invalid params %+v should fail", p)
		}
	}
}

func TestSAPSTinyInstances(t *testing.T) {
	g1, err := graph.NewPreferenceGraph(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SAPS(g1, DefaultSAPSParams(), newRNG(1))
	if err != nil || len(res.Path) != 1 {
		t.Fatalf("n=1: %v, %v", res, err)
	}
	g2 := orderedTournament(t, 2, 0.8)
	res, err = SAPS(g2, DefaultSAPSParams(), newRNG(1))
	if err != nil || res.Path[0] != 0 || res.Path[1] != 1 {
		t.Fatalf("n=2: %v, %v", res, err)
	}
}

func TestScoreRankedOrderFollowsDominance(t *testing.T) {
	g := orderedTournament(t, 8, 0.85)
	order := scoreRankedOrder(g)
	for i, v := range order {
		if v != i {
			t.Fatalf("score order %v should match the dominance order", order)
		}
	}
}

func TestNearestNeighborPathVisitsAll(t *testing.T) {
	g := randomTournament(t, 10, newRNG(5))
	logw, err := logWeights(g)
	if err != nil {
		t.Fatal(err)
	}
	path := nearestNeighborPath(logw, 3)
	if len(path) != 10 || path[0] != 3 {
		t.Fatalf("NN path = %v", path)
	}
	seen := make(map[int]bool)
	for _, v := range path {
		if seen[v] {
			t.Fatalf("NN path revisits %d", v)
		}
		seen[v] = true
	}
}

func TestRotateHelper(t *testing.T) {
	seg := []int{1, 2, 3, 4, 5}
	rotate(seg, 2) // [3 4 5 1 2]
	want := []int{3, 4, 5, 1, 2}
	for i := range want {
		if seg[i] != want[i] {
			t.Fatalf("rotate = %v, want %v", seg, want)
		}
	}
}

func TestNextPermutationCoversAll(t *testing.T) {
	perm := []int{0, 1, 2, 3}
	count := 1
	for nextPermutation(perm) {
		count++
	}
	if count != 24 {
		t.Errorf("enumerated %d permutations, want 24", count)
	}
}

func TestObjectiveString(t *testing.T) {
	if ObjectiveAllPairs.String() != "all-pairs" || ObjectiveConsecutive.String() != "consecutive" {
		t.Error("objective names wrong")
	}
	if Objective(99).String() == "" {
		t.Error("unknown objective should still print")
	}
}

func TestConsecutiveObjectiveIsExploitableAllPairsIsNot(t *testing.T) {
	// Regression for the DESIGN.md "objective reading" analysis: on a
	// partially informed tournament (adjacent pairs near 0.5, distant pairs
	// saturated), the consecutive objective scores some wrong ranking above
	// the true one, while the all-pairs objective ranks the truth at the
	// top.
	n := 8
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			gap := j - i
			w := 0.5 + 0.48*math.Min(1, float64(gap-1)/3.0) // adjacent ~0.5, distant ~0.98
			if w < 0.52 {
				w = 0.52
			}
			if err := g.SetWeight(i, j, w); err != nil {
				t.Fatal(err)
			}
			if err := g.SetWeight(j, i, 1-w); err != nil {
				t.Fatal(err)
			}
		}
	}
	truth := []int{0, 1, 2, 3, 4, 5, 6, 7}

	allPairs, err := HeldKarp(g, 0, ObjectiveAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range allPairs.Path {
		if v != truth[i] {
			t.Fatalf("all-pairs optimum %v should be the truth", allPairs.Path)
		}
	}

	consecutive, err := HeldKarp(g, 0, ObjectiveConsecutive)
	if err != nil {
		t.Fatal(err)
	}
	logw, err := logWeights(g)
	if err != nil {
		t.Fatal(err)
	}
	truthScore := scorePath(logw, truth, ObjectiveConsecutive)
	if consecutive.LogProb <= truthScore+1e-9 {
		t.Skip("this weight pattern did not trigger the sawtooth; pattern-dependent")
	}
	same := true
	for i, v := range consecutive.Path {
		if v != truth[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive optimum unexpectedly equals the truth despite scoring above it")
	}
}

func TestTAPSReportsTies(t *testing.T) {
	// A perfectly symmetric tournament (every weight 0.5): every path ties,
	// so the threshold fires at the first sorted-access depth — TAPS halts
	// immediately (TA semantics: stop once a top-1 answer is proven) and
	// the tie set holds only the paths seen by then, each achieving the
	// maximum.
	g := orderedTournament(t, 4, 0.5)
	res, err := TAPS(g, TAPSParams{Objective: ObjectiveConsecutive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 1 {
		t.Errorf("fully tied tournament should halt at depth 1, got %d", res.Depth)
	}
	if len(res.Ties) < 1 {
		t.Fatal("at least the winner must be reported")
	}
	logw, err := logWeights(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, tie := range res.Ties {
		if scorePath(logw, tie, ObjectiveConsecutive) != res.LogProb {
			t.Fatalf("tie %v does not achieve the reported probability", tie)
		}
	}
}

func TestTAPSUniqueWinnerSingleTie(t *testing.T) {
	g := orderedTournament(t, 5, 0.9)
	res, err := TAPS(g, TAPSParams{Objective: ObjectiveAllPairs})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ties) != 1 {
		t.Errorf("decisive tournament should have a unique winner, got %d ties", len(res.Ties))
	}
}
