package search_test

import (
	"fmt"
	"log"
	"math/rand/v2"

	"crowdrank/internal/graph"
	"crowdrank/internal/search"
)

// buildOrdered builds a complete tournament consistent with the identity
// order: w(i, j) = 0.9 for i < j.
func buildOrdered(n int) *graph.PreferenceGraph {
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.SetWeight(i, j, 0.9); err != nil {
				log.Fatal(err)
			}
			if err := g.SetWeight(j, i, 0.1); err != nil {
				log.Fatal(err)
			}
		}
	}
	return g
}

// ExampleSAPS finds the best ranking of a decisively ordered tournament.
func ExampleSAPS() {
	g := buildOrdered(8)
	rng := rand.New(rand.NewPCG(1, 2))
	res, err := search.SAPS(g, search.DefaultSAPSParams(), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranking:", res.Path)
	// Output:
	// ranking: [0 1 2 3 4 5 6 7]
}

// ExampleHeldKarp solves the same instance exactly; SAPS and the exact DP
// agree on the optimum.
func ExampleHeldKarp() {
	g := buildOrdered(8)
	exact, err := search.HeldKarp(g, 0, search.ObjectiveAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranking:", exact.Path)
	// Output:
	// ranking: [0 1 2 3 4 5 6 7]
}

// ExampleTAPS runs the paper's threshold algorithm with early termination.
func ExampleTAPS() {
	g := buildOrdered(6)
	res, err := search.TAPS(g, search.TAPSParams{Objective: search.ObjectiveConsecutive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranking:", res.Path)
	fmt.Println("stopped before scanning all 720 paths:", res.Depth < 720)
	// Output:
	// ranking: [0 1 2 3 4 5]
	// stopped before scanning all 720 paths: true
}

// ExampleInsertionPolish refines a scrambled ranking to a local optimum.
func ExampleInsertionPolish() {
	g := buildOrdered(6)
	scrambled := []int{5, 3, 1, 0, 4, 2}
	res, err := search.InsertionPolish(g, scrambled, search.ObjectiveAllPairs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranking:", res.Path)
	// Output:
	// ranking: [0 1 2 3 4 5]
}
