package search

import "fmt"

// Objective selects what "preference probability of a Hamiltonian path"
// means in Step 4 (Section V-D).
//
// The paper defines Pr[P] = prod over (v_i, v_j) in P of w_ij for an HP of
// the *transitive closure* G_P^*. Because the closure of a path contains an
// edge for every ordered pair along it, this product has two readings:
//
//   - ObjectiveAllPairs: the product runs over all C(n,2) ordered pairs the
//     ranking implies — the weighted linear-ordering (Kemeny-like)
//     objective. This reading is sound: with calibrated pairwise weights its
//     maximizer is the consensus ranking, and it matches the paper's stated
//     SAPS complexity O(N n^2 + n^3 + n^2 log n) (O(n)-delta moves over N
//     iterations and n starts, plus n score-ranked initializations of O(n^2)
//     each). It is the default.
//
//   - ObjectiveConsecutive: the product runs over only the n-1 consecutive
//     edges of the path — the literal reading of the formula. This
//     objective is exploitable on sparse budgets: a path can chain strongly
//     weighted long jumps and near-0.5 "filler" edges into a high-product
//     but badly ordered ranking ("sawtooth paths"), so optimizing it can
//     reduce ranking accuracy. It is kept for fidelity and for the
//     objective ablation benchmark; TAPS's list structure (n-1 lists, one
//     per path edge) is defined for it.
//
// See DESIGN.md ("objective reading") for the full analysis.
type Objective int

const (
	// ObjectiveAllPairs scores a ranking by the product of w over all
	// ordered pairs it implies.
	ObjectiveAllPairs Objective = iota
	// ObjectiveConsecutive scores a ranking by the product of w over its
	// n-1 consecutive edges.
	ObjectiveConsecutive
)

func (o Objective) String() string {
	switch o {
	case ObjectiveAllPairs:
		return "all-pairs"
	case ObjectiveConsecutive:
		return "consecutive"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

func (o Objective) valid() bool {
	return o == ObjectiveAllPairs || o == ObjectiveConsecutive
}

// scorePath returns the log preference probability of path under the
// objective.
func scorePath(logw [][]float64, path []int, o Objective) float64 {
	if o == ObjectiveConsecutive {
		return pathLogProb(logw, path)
	}
	sum := 0.0
	for a := 0; a < len(path); a++ {
		for b := a + 1; b < len(path); b++ {
			sum += logw[path[a]][path[b]]
		}
	}
	return sum
}
