package search

import (
	"fmt"
	"math"
	"math/bits"

	"crowdrank/internal/graph"
)

// HeldKarp finds the exact best ranking by dynamic programming over vertex
// subsets. It refuses n > maxN (pass 0 for the default limit of 20, which
// covers the paper's 20-image AMT setting).
//
// Under ObjectiveConsecutive the recurrence is the classical Held-Karp:
// dp[S][j] is the best log-probability of a path visiting exactly S and
// ending at j — O(2^n n^2) time, O(2^n n) memory.
//
// Under ObjectiveAllPairs the objective decomposes over "who is appended
// last": appending k after the set S adds sum over s in S of log w(s, k)
// regardless of S's internal order, so dp[S] alone suffices — O(2^n n^2)
// time, O(2^n) memory.
func HeldKarp(g *graph.PreferenceGraph, maxN int, obj Objective) (*Result, error) {
	if maxN <= 0 {
		maxN = 20
	}
	if maxN > 24 {
		return nil, fmt.Errorf("search: HeldKarp limit %d too large (memory is O(2^n n))", maxN)
	}
	if !obj.valid() {
		return nil, fmt.Errorf("search: unknown objective %d", obj)
	}
	logw, err := logWeights(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if n > maxN {
		return nil, fmt.Errorf("search: HeldKarp limited to n <= %d, got n=%d", maxN, n)
	}
	if n == 1 {
		return newResult([]int{0}, 0, 1), nil
	}
	if obj == ObjectiveAllPairs {
		return heldKarpAllPairs(logw, n)
	}
	return heldKarpConsecutive(logw, n)
}

func heldKarpConsecutive(logw [][]float64, n int) (*Result, error) {
	size := 1 << uint(n)
	negInf := math.Inf(-1)
	dp := make([]float64, size*n)
	parent := make([]int16, size*n)
	for i := range dp {
		dp[i] = negInf
		parent[i] = -1
	}
	for v := 0; v < n; v++ {
		dp[(1<<uint(v))*n+v] = 0
	}

	evals := 0
	for s := 1; s < size; s++ {
		base := s * n
		for j := 0; j < n; j++ {
			cur := dp[base+j]
			if math.IsInf(cur, -1) || s&(1<<uint(j)) == 0 {
				continue
			}
			for k := 0; k < n; k++ {
				if s&(1<<uint(k)) != 0 {
					continue
				}
				ns := s | 1<<uint(k)
				cand := cur + logw[j][k]
				evals++
				if cand > dp[ns*n+k] {
					dp[ns*n+k] = cand
					parent[ns*n+k] = int16(j)
				}
			}
		}
	}

	full := size - 1
	bestEnd := 0
	bestLog := dp[full*n]
	for j := 1; j < n; j++ {
		if dp[full*n+j] > bestLog {
			bestLog = dp[full*n+j]
			bestEnd = j
		}
	}

	// Reconstruct the path back-to-front.
	path := make([]int, n)
	s, j := full, bestEnd
	for idx := n - 1; idx >= 0; idx-- {
		path[idx] = j
		pj := parent[s*n+j]
		s &^= 1 << uint(j)
		if pj < 0 {
			break
		}
		j = int(pj)
	}
	return newResult(path, bestLog, evals), nil
}

func heldKarpAllPairs(logw [][]float64, n int) (*Result, error) {
	size := 1 << uint(n)
	negInf := math.Inf(-1)
	dp := make([]float64, size)
	last := make([]int16, size)
	for i := range dp {
		dp[i] = negInf
		last[i] = -1
	}
	dp[0] = 0

	evals := 0
	for s := 0; s < size-1; s++ {
		cur := dp[s]
		if math.IsInf(cur, -1) {
			continue
		}
		for k := 0; k < n; k++ {
			if s&(1<<uint(k)) != 0 {
				continue
			}
			// Appending k after every member of s adds sum of log w(s_i, k).
			add := 0.0
			rest := s
			for rest != 0 {
				v := bits.TrailingZeros(uint(rest))
				rest &= rest - 1
				add += logw[v][k]
			}
			ns := s | 1<<uint(k)
			cand := cur + add
			evals++
			if cand > dp[ns] {
				dp[ns] = cand
				last[ns] = int16(k)
			}
		}
	}

	full := size - 1
	path := make([]int, n)
	s := full
	for idx := n - 1; idx >= 0; idx-- {
		k := last[s]
		if k < 0 {
			return nil, fmt.Errorf("search: HeldKarp reconstruction failed (internal error)")
		}
		path[idx] = int(k)
		s &^= 1 << uint(k)
	}
	return newResult(path, dp[full], evals), nil
}
