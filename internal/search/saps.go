package search

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"

	"crowdrank/internal/graph"
)

// InitStrategy selects how SAPS builds the initial path for each start
// vertex (Algorithm 2, line 3 offers two constructions).
type InitStrategy int

const (
	// InitScoreRanked orders vertices by the difference between their total
	// outgoing and incoming edge weights (a Borda-like score), rotating the
	// order so the requested start vertex leads its block. This is the
	// "ranking the nodes based on the difference of their out-/in-edge
	// weights in G_P^*" construction and the default.
	InitScoreRanked InitStrategy = iota + 1
	// InitNearestNeighbor grows the path greedily from the start vertex,
	// always stepping to the unvisited vertex with the highest edge weight.
	InitNearestNeighbor
)

// SAPSParams tunes the simulated-annealing path search. The zero value is
// not usable; call DefaultSAPSParams.
type SAPSParams struct {
	// Iterations is N, the annealing iterations per start vertex.
	Iterations int
	// Temperature is the initial temperature T.
	Temperature float64
	// Cooling is the per-iteration cooling rate c in (0, 1).
	Cooling float64
	// Starts is the number of start vertices to anneal from; 0 means all n
	// (the paper's "for all v in V"). Start vertices are taken in random
	// order when Starts < n. The first start always uses the score-ranked
	// initial path regardless of Init, so the search never does worse than
	// that construction.
	Starts int
	// Init selects the initial-path construction for the remaining starts.
	Init InitStrategy
	// Objective selects the path-preference reading (see Objective).
	Objective Objective
	// Parallelism fans the independent starts out over this many
	// goroutines (each start anneals in isolation, so the fan-out is
	// embarrassingly parallel). Results are deterministic for a fixed seed
	// regardless of scheduling: each start derives its own PCG stream from
	// the caller's source up front, and ties between equally good paths
	// resolve by start order. 0 or 1 means sequential.
	Parallelism int
}

// DefaultSAPSParams returns the SAPS configuration used for the experiment
// reproduction.
func DefaultSAPSParams() SAPSParams {
	return SAPSParams{
		Iterations:  200,
		Temperature: 1.0,
		Cooling:     0.97,
		Starts:      8,
		Init:        InitScoreRanked,
		Objective:   ObjectiveAllPairs,
	}
}

func (p SAPSParams) validate() error {
	if p.Iterations < 1 {
		return fmt.Errorf("search: SAPS Iterations must be >= 1, got %d", p.Iterations)
	}
	if p.Temperature <= 0 {
		return fmt.Errorf("search: SAPS Temperature must be positive, got %v", p.Temperature)
	}
	if p.Cooling <= 0 || p.Cooling >= 1 {
		return fmt.Errorf("search: SAPS Cooling %v outside (0,1)", p.Cooling)
	}
	if p.Starts < 0 {
		return fmt.Errorf("search: SAPS Starts must be >= 0, got %d", p.Starts)
	}
	if p.Parallelism < 0 {
		return fmt.Errorf("search: SAPS Parallelism must be >= 0, got %d", p.Parallelism)
	}
	switch p.Init {
	case InitNearestNeighbor, InitScoreRanked:
	default:
		return fmt.Errorf("search: unknown SAPS init strategy %d", p.Init)
	}
	if !p.Objective.valid() {
		return fmt.Errorf("search: unknown SAPS objective %d", p.Objective)
	}
	return nil
}

// sapsState carries the annealing state for one start: the current path and
// its cost d (the negated objective, minimized).
type sapsState struct {
	logw  [][]float64
	obj   Objective
	path  []int
	cost  float64
	evals int
}

// SAPS runs the simulated-annealing path search of Algorithms 2-3: from
// each start vertex it builds an initial path, then for N iterations
// proposes a Rotate, a Reverse, and a RandomSwap in turn, accepting
// improvements always and deteriorations with the Boltzmann probability
// exp(-delta/T), cooling T by the factor c each iteration. The best path
// over all starts (by the configured objective) is returned.
func SAPS(g *graph.PreferenceGraph, p SAPSParams, rng *rand.Rand) (*Result, error) {
	return SAPSContext(context.Background(), g, p, rng)
}

// SAPSContext is SAPS with cancellation: the annealing loops poll ctx and
// abandon the search with ctx's error as soon as it is cancelled or its
// deadline passes. An already-cancelled context returns promptly without
// annealing.
func SAPSContext(ctx context.Context, g *graph.PreferenceGraph, p SAPSParams, rng *rand.Rand) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("search: nil random source")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	logw, err := logWeights(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if n == 1 {
		return newResult([]int{0}, 0, 1), nil
	}
	if n == 2 {
		best := []int{0, 1}
		if logw[1][0] > logw[0][1] {
			best = []int{1, 0}
		}
		return newResult(best, scorePath(logw, best, p.Objective), 2), nil
	}

	starts := p.Starts
	if starts == 0 || starts > n {
		starts = n
	}
	startOrder := rng.Perm(n)[:starts]
	scoreOrder := scoreRankedOrder(g) // shared by all score-ranked inits

	// Derive every start's random stream up front so parallel scheduling
	// cannot change the result.
	seeds := make([][2]uint64, starts)
	for i := range seeds {
		seeds[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}

	type startResult struct {
		path  []int
		cost  float64
		evals int
	}
	results := make([]startResult, starts)

	runStart := func(s int) {
		v := startOrder[s]
		st := &sapsState{logw: logw, obj: p.Objective}
		// The first start uses the plain score-ranked order so the search
		// result is never worse than that construction; later starts
		// diversify via the configured strategy seeded at v.
		switch {
		case s == 0:
			st.path = append([]int(nil), scoreOrder...)
		case p.Init == InitScoreRanked:
			st.path = rotatedOrder(scoreOrder, v)
		default:
			st.path = nearestNeighborPath(logw, v)
		}
		st.cost = -scorePath(logw, st.path, p.Objective)
		local := rand.New(rand.NewPCG(seeds[s][0], seeds[s][1]))
		best := append([]int(nil), st.path...)
		bestCost := st.cost
		temp := p.Temperature
		for iter := 0; iter < p.Iterations; iter++ {
			if ctx.Err() != nil {
				break // cancelled; the aggregate below returns ctx's error
			}
			st.proposeRotate(local, temp)
			st.proposeReverse(local, temp)
			st.proposeSwap(local, temp)
			if st.cost < bestCost {
				bestCost = st.cost
				best = append(best[:0], st.path...)
			}
			temp *= p.Cooling
		}
		results[s] = startResult{path: best, cost: bestCost, evals: st.evals}
	}

	workers := p.Parallelism
	if workers <= 1 || starts == 1 {
		for s := 0; s < starts; s++ {
			runStart(s)
		}
	} else {
		if workers > starts {
			workers = starts
		}
		var wg sync.WaitGroup
		next := make(chan int)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for s := range next {
					runStart(s)
				}
			}()
		}
		for s := 0; s < starts; s++ {
			next <- s
		}
		close(next)
		wg.Wait()
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var bestPath []int
	bestCost := math.Inf(1)
	evals := 0
	for s := 0; s < starts; s++ {
		evals += results[s].evals
		if results[s].cost < bestCost {
			bestCost = results[s].cost
			bestPath = results[s].path
		}
	}
	return newResult(bestPath, -bestCost, evals), nil
}

// scoreRankedOrder ranks every vertex by (sum of outgoing) - (sum of
// incoming) edge weights, descending.
func scoreRankedOrder(g *graph.PreferenceGraph) []int {
	n := g.N()
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			score[i] += g.Weight(i, j) - g.Weight(j, i)
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] > score[order[b]] })
	return order
}

// rotatedOrder rotates order so vertex v leads.
func rotatedOrder(order []int, v int) []int {
	n := len(order)
	pos := 0
	for i, u := range order {
		if u == v {
			pos = i
			break
		}
	}
	out := make([]int, n)
	for i := range order {
		out[i] = order[(pos+i)%n]
	}
	return out
}

// nearestNeighborPath grows a path greedily from v by maximum edge weight.
func nearestNeighborPath(logw [][]float64, v int) []int {
	n := len(logw)
	path := make([]int, 0, n)
	used := make([]bool, n)
	cur := v
	path = append(path, cur)
	used[cur] = true
	for len(path) < n {
		next, best := -1, math.Inf(-1)
		for u := 0; u < n; u++ {
			if used[u] {
				continue
			}
			if logw[cur][u] > best {
				best = logw[cur][u]
				next = u
			}
		}
		path = append(path, next)
		used[next] = true
		cur = next
	}
	return path
}

// accept implements Algorithm 3's updateHP decision for a proposed cost
// delta at temperature temp.
func accept(delta, temp float64, rng *rand.Rand) bool {
	if delta < 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-delta/temp)
}

// asym returns log w(u,v) - log w(v,u), the objective gain of ordering u
// before v rather than v before u.
func (s *sapsState) asym(u, v int) float64 {
	return s.logw[u][v] - s.logw[v][u]
}

// proposeRotate applies Rotate(P, first, middle, last): the block
// [middle..last] moves in front of [first..middle-1].
func (s *sapsState) proposeRotate(rng *rand.Rand, temp float64) {
	n := len(s.path)
	if n < 3 {
		return
	}
	first := rng.IntN(n - 1)
	last := first + 1 + rng.IntN(n-first-1)
	middle := first + 1 + rng.IntN(last-first)
	s.evals++

	var delta float64
	if s.obj == ObjectiveConsecutive {
		delta = s.rotateDeltaConsecutive(first, middle, last)
	} else {
		// Only cross pairs (x in the first block, y in the second) flip;
		// cost = -score, so flipping an ordered pair (x before y) changes
		// the cost by +asym(x, y).
		for a := first; a < middle; a++ {
			x := s.path[a]
			for b := middle; b <= last; b++ {
				delta += s.asym(x, s.path[b])
			}
		}
	}
	if !accept(delta, temp, rng) {
		return
	}
	rotate(s.path[first:last+1], middle-first)
	s.cost += delta
}

func (s *sapsState) rotateDeltaConsecutive(first, middle, last int) float64 {
	n := len(s.path)
	x1 := s.path[first]
	xk := s.path[middle-1]
	y1 := s.path[middle]
	ym := s.path[last]
	// Cost is -sum of logw over consecutive edges: a removed edge (u, v)
	// contributes +logw[u][v] to the delta, an added edge -logw.
	delta := s.logw[xk][y1] // removed (xk -> y1)
	delta -= s.logw[ym][x1] // added (ym -> x1)
	if first > 0 {
		a := s.path[first-1]
		delta += s.logw[a][x1]
		delta -= s.logw[a][y1]
	}
	if last < n-1 {
		b := s.path[last+1]
		delta += s.logw[ym][b]
		delta -= s.logw[xk][b]
	}
	return delta
}

// rotate moves seg[k:] in front of seg[:k] in place.
func rotate(seg []int, k int) {
	reverseInts(seg[:k])
	reverseInts(seg[k:])
	reverseInts(seg)
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// proposeReverse applies Reverse(P, first, last): the segment is reversed.
func (s *sapsState) proposeReverse(rng *rand.Rand, temp float64) {
	n := len(s.path)
	if n < 2 {
		return
	}
	first := rng.IntN(n - 1)
	last := first + 1 + rng.IntN(n-first-1)
	s.evals++

	var delta float64
	if s.obj == ObjectiveConsecutive {
		x1 := s.path[first]
		xk := s.path[last]
		if first > 0 {
			a := s.path[first-1]
			delta += s.logw[a][x1] - s.logw[a][xk]
		}
		if last < n-1 {
			b := s.path[last+1]
			delta += s.logw[xk][b] - s.logw[x1][b]
		}
		for t := first; t < last; t++ {
			delta += s.logw[s.path[t]][s.path[t+1]] - s.logw[s.path[t+1]][s.path[t]]
		}
	} else {
		// Every ordered pair inside the segment flips.
		for a := first; a < last; a++ {
			x := s.path[a]
			for b := a + 1; b <= last; b++ {
				delta += s.asym(x, s.path[b])
			}
		}
	}
	if !accept(delta, temp, rng) {
		return
	}
	reverseInts(s.path[first : last+1])
	s.cost += delta
}

// proposeSwap applies RandomSwap(P, i, j): two random positions exchange
// their vertices.
func (s *sapsState) proposeSwap(rng *rand.Rand, temp float64) {
	n := len(s.path)
	if n < 2 {
		return
	}
	i := rng.IntN(n)
	j := rng.IntN(n)
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	s.evals++

	var delta float64
	if s.obj == ObjectiveConsecutive {
		delta = s.swapDeltaConsecutive(i, j)
	} else {
		x, y := s.path[i], s.path[j]
		delta = s.asym(x, y)
		for k := i + 1; k < j; k++ {
			z := s.path[k]
			delta += s.asym(x, z) + s.asym(z, y)
		}
	}
	if !accept(delta, temp, rng) {
		return
	}
	s.path[i], s.path[j] = s.path[j], s.path[i]
	s.cost += delta
}

// swapDeltaConsecutive computes the consecutive-objective cost change of
// swapping positions i < j. Cost is -sum of logw over consecutive edges, so
// removed edges contribute +logw and added edges -logw.
func (s *sapsState) swapDeltaConsecutive(i, j int) float64 {
	n := len(s.path)
	xi, xj := s.path[i], s.path[j]
	delta := 0.0
	if j == i+1 {
		delta += s.logw[xi][xj] - s.logw[xj][xi]
		if i > 0 {
			a := s.path[i-1]
			delta += s.logw[a][xi] - s.logw[a][xj]
		}
		if j < n-1 {
			b := s.path[j+1]
			delta += s.logw[xj][b] - s.logw[xi][b]
		}
		return delta
	}
	if i > 0 {
		a := s.path[i-1]
		delta += s.logw[a][xi] - s.logw[a][xj]
	}
	next := s.path[i+1]
	delta += s.logw[xi][next] - s.logw[xj][next]
	prev := s.path[j-1]
	delta += s.logw[prev][xj] - s.logw[prev][xi]
	if j < n-1 {
		b := s.path[j+1]
		delta += s.logw[xj][b] - s.logw[xi][b]
	}
	return delta
}
