package search

import (
	"math"
	"testing"
)

// TestSAPSParallelMatchesSequential verifies that fanning the starts over
// goroutines does not change the result for a fixed seed.
func TestSAPSParallelMatchesSequential(t *testing.T) {
	g := randomTournament(t, 40, newRNG(77))
	base := DefaultSAPSParams()
	base.Starts = 8
	base.Iterations = 100

	sequential := base
	sequential.Parallelism = 1
	seq, err := SAPS(g, sequential, newRNG(5))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 16} {
		parallel := base
		parallel.Parallelism = workers
		par, err := SAPS(g, parallel, newRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(par.LogProb-seq.LogProb) > 1e-12 {
			t.Fatalf("parallelism=%d: LogProb %v != sequential %v", workers, par.LogProb, seq.LogProb)
		}
		for i := range seq.Path {
			if par.Path[i] != seq.Path[i] {
				t.Fatalf("parallelism=%d: path differs at %d: %v vs %v",
					workers, i, par.Path, seq.Path)
			}
		}
	}
}

// TestSAPSParallelValidation rejects negative parallelism.
func TestSAPSParallelValidation(t *testing.T) {
	g := randomTournament(t, 5, newRNG(1))
	p := DefaultSAPSParams()
	p.Parallelism = -1
	if _, err := SAPS(g, p, newRNG(1)); err == nil {
		t.Error("negative parallelism should fail")
	}
}

// TestSAPSParallelRace exercises the parallel path under the race detector
// (run with go test -race).
func TestSAPSParallelRace(t *testing.T) {
	g := randomTournament(t, 30, newRNG(3))
	p := DefaultSAPSParams()
	p.Starts = 16
	p.Iterations = 50
	p.Parallelism = 8
	if _, err := SAPS(g, p, newRNG(9)); err != nil {
		t.Fatal(err)
	}
}
