package search

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInsertionPolishValidation(t *testing.T) {
	g := randomTournament(t, 5, newRNG(1))
	if _, err := InsertionPolish(g, []int{0, 1, 2}, ObjectiveAllPairs, 0); err == nil {
		t.Error("short path should fail")
	}
	if _, err := InsertionPolish(g, []int{0, 1, 2, 3, 3}, ObjectiveAllPairs, 0); err == nil {
		t.Error("non-permutation should fail")
	}
	if _, err := InsertionPolish(g, []int{0, 1, 2, 3, 4}, 99, 0); err == nil {
		t.Error("unknown objective should fail")
	}
}

func TestInsertionPolishNeverWorsens(t *testing.T) {
	for _, obj := range []Objective{ObjectiveAllPairs, ObjectiveConsecutive} {
		for trial := 0; trial < 20; trial++ {
			rng := newRNG(uint64(trial + 3000))
			n := 4 + rng.IntN(12)
			g := randomTournament(t, n, rng)
			logw, err := logWeights(g)
			if err != nil {
				t.Fatal(err)
			}
			start := rng.Perm(n)
			before := scorePath(logw, start, obj)
			res, err := InsertionPolish(g, start, obj, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.LogProb < before-1e-9 {
				t.Fatalf("%v: polish worsened %v -> %v", obj, before, res.LogProb)
			}
			// Returned path must be a permutation achieving the score.
			if math.Abs(scorePath(logw, res.Path, obj)-res.LogProb) > 1e-9 {
				t.Fatalf("%v: reported score mismatch", obj)
			}
		}
	}
}

func TestInsertionPolishReachesOptimumOnOrdered(t *testing.T) {
	// On a strongly ordered tournament the polish must sort any start into
	// the identity order under the all-pairs objective.
	g := orderedTournament(t, 10, 0.9)
	rng := newRNG(9)
	start := rng.Perm(10)
	res, err := InsertionPolish(g, start, ObjectiveAllPairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Path {
		if v != i {
			t.Fatalf("polish failed to sort: %v", res.Path)
		}
	}
}

func TestInsertionPolishMatchesExactOnSmall(t *testing.T) {
	// Polish from the score-ranked order should usually reach the exact
	// optimum on small instances under the all-pairs objective.
	hits := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		rng := newRNG(uint64(trial + 4000))
		n := 5 + rng.IntN(4)
		g := randomTournament(t, n, rng)
		exact, err := HeldKarp(g, 0, ObjectiveAllPairs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := InsertionPolish(g, scoreRankedOrder(g), ObjectiveAllPairs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.LogProb > exact.LogProb+1e-9 {
			t.Fatalf("polish beat the exact optimum: %v > %v", res.LogProb, exact.LogProb)
		}
		if math.Abs(res.LogProb-exact.LogProb) < 1e-9 {
			hits++
		}
	}
	if hits < trials*2/3 {
		t.Errorf("polish reached the optimum only %d/%d times", hits, trials)
	}
}

func TestInsertionPolishIsLocalOptimum(t *testing.T) {
	// After polishing, no single insertion may improve the all-pairs score.
	rng := newRNG(77)
	n := 12
	g := randomTournament(t, n, rng)
	logw, err := logWeights(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := InsertionPolish(g, rng.Perm(n), ObjectiveAllPairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := res.LogProb
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			cand := append([]int(nil), res.Path...)
			moveElement(cand, from, to)
			if scorePath(logw, cand, ObjectiveAllPairs) > base+1e-9 {
				t.Fatalf("insertion (%d -> %d) improves a 'local optimum'", from, to)
			}
		}
	}
}

func TestMoveElement(t *testing.T) {
	s := []int{0, 1, 2, 3, 4}
	moveElement(s, 0, 3) // [1 2 3 0 4]
	want := []int{1, 2, 3, 0, 4}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("moveElement right = %v", s)
		}
	}
	moveElement(s, 3, 0) // back to [0 1 2 3 4]
	for i := range s {
		if s[i] != i {
			t.Fatalf("moveElement left = %v", s)
		}
	}
	moveElement(s, 2, 2) // no-op
	for i := range s {
		if s[i] != i {
			t.Fatalf("moveElement no-op = %v", s)
		}
	}
}

func TestInsertionPolishQuickPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%15) + 3
		rng := newRNG(seed)
		g := randomTournament(t, n, rng)
		res, err := InsertionPolish(g, rng.Perm(n), ObjectiveConsecutive, 4)
		if err != nil || len(res.Path) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range res.Path {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
