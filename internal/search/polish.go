package search

import (
	"fmt"

	"crowdrank/internal/graph"
)

// InsertionPolish refines a ranking by repeated single-object insertion
// moves — remove one object and reinsert it at the position that maximizes
// the objective — sweeping until no improving insertion exists (a local
// optimum of the classic linear-ordering neighborhood, which is strictly
// larger than SAPS's swap moves for this objective). maxSweeps bounds the
// passes (0 means the default of 16); the result never scores below the
// input.
//
// Under ObjectiveAllPairs an insertion's delta telescopes over the crossed
// positions, so one full sweep costs O(n^2); under ObjectiveConsecutive
// each candidate position is evaluated by its local edge window, keeping a
// sweep at O(n^2) as well.
//
//lint:ignore ctxloop bounded local search: at most maxSweeps O(n^2) sweeps over an already-found path
func InsertionPolish(g *graph.PreferenceGraph, path []int, obj Objective, maxSweeps int) (*Result, error) {
	if !obj.valid() {
		return nil, fmt.Errorf("search: unknown objective %d", obj)
	}
	logw, err := logWeights(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if len(path) != n {
		return nil, fmt.Errorf("search: path length %d does not match graph size %d", len(path), n)
	}
	seen := make([]bool, n)
	for _, v := range path {
		if v < 0 || v >= n || seen[v] {
			return nil, fmt.Errorf("search: path is not a permutation")
		}
		seen[v] = true
	}
	if maxSweeps <= 0 {
		maxSweeps = 16
	}

	cur := append([]int(nil), path...)
	evals := 0

	bestInsertion := func(from int) (int, float64) {
		bestTo, bestDelta := from, 0.0
		if obj == ObjectiveAllPairs {
			// Walking the object left or right crosses one element per
			// step; the deltas telescope.
			x := cur[from]
			delta := 0.0
			for to := from - 1; to >= 0; to-- {
				y := cur[to]
				delta += logw[x][y] - logw[y][x] // (y before x) flips to (x before y)
				evals++
				if delta > bestDelta+1e-15 {
					bestDelta, bestTo = delta, to
				}
			}
			delta = 0.0
			for to := from + 1; to < n; to++ {
				y := cur[to]
				delta += logw[y][x] - logw[x][y] // (x before y) flips to (y before x)
				evals++
				if delta > bestDelta+1e-15 {
					bestDelta, bestTo = delta, to
				}
			}
			return bestTo, bestDelta
		}
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			delta := consecutiveInsertionDelta(logw, cur, from, to)
			evals++
			if delta > bestDelta+1e-15 {
				bestDelta, bestTo = delta, to
			}
		}
		return bestTo, bestDelta
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for from := 0; from < n; from++ {
			if to, delta := bestInsertion(from); to != from && delta > 0 {
				moveElement(cur, from, to)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return newResult(cur, scorePath(logw, cur, obj), evals), nil
}

// consecutiveInsertionDelta computes the exact consecutive-objective change
// of moving path[from] to position `to` by re-scoring the affected edge
// window. Insertion deltas do not telescope under the consecutive
// objective, so the window (|from-to|+2 edges) is evaluated directly.
func consecutiveInsertionDelta(logw [][]float64, path []int, from, to int) float64 {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	winLo, winHi := lo-1, hi+1
	if winLo < 0 {
		winLo = 0
	}
	if winHi > len(path)-1 {
		winHi = len(path) - 1
	}
	before := 0.0
	for k := winLo; k < winHi; k++ {
		before += logw[path[k]][path[k+1]]
	}
	scratch := append([]int(nil), path[winLo:winHi+1]...)
	moveElement(scratch, from-winLo, to-winLo)
	after := 0.0
	for k := 0; k+1 < len(scratch); k++ {
		after += logw[scratch[k]][scratch[k+1]]
	}
	return after - before
}

// moveElement moves s[from] to position to, shifting the range between.
func moveElement(s []int, from, to int) {
	if from == to {
		return
	}
	v := s[from]
	if from < to {
		copy(s[from:to], s[from+1:to+1])
	} else {
		copy(s[to+1:from+1], s[to:from])
	}
	s[to] = v
}
