package platform_test

import (
	"fmt"
	"log"
	"math/rand/v2"

	"crowdrank/internal/graph"
	"crowdrank/internal/platform"
)

// yesOracle answers every comparison in favor of the lower id.
type yesOracle struct{ pool int }

func (o yesOracle) Answer(_, i, j int) bool { return i < j }
func (o yesOracle) Workers() int            { return o.pool }

// ExampleRunNonInteractive shows the Section II crowdsourcing round: pack
// comparisons into HITs, assign each HIT to w workers, release once, and
// collect every answer.
func ExampleRunNonInteractive() {
	pairs := []graph.Pair{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}}
	hits, err := platform.PackHITs(pairs, 2) // c = 2 comparisons per HIT
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	assigned, err := platform.AssignWorkers(hits, 6, 3, rng) // w = 3 of m = 6
	if err != nil {
		log.Fatal(err)
	}
	round, err := platform.RunNonInteractive(hits, assigned, yesOracle{pool: 6}, 0.025)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("HITs:", len(hits))
	fmt.Println("votes:", len(round.Votes))
	fmt.Printf("spent: $%.3f\n", round.Spent)
	// Output:
	// HITs: 2
	// votes: 9
	// spent: $0.225
}

// ExampleBudget shows the paper's budget arithmetic.
func ExampleBudget() {
	b := platform.Budget{Total: 12.5, Reward: 0.025, WorkersPerTask: 10}
	l, err := b.MaxTasks()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("affordable comparisons:", l)
	fmt.Printf("cost of all %d: $%.2f\n", l, b.Cost(l))
	// Output:
	// affordable comparisons: 50
	// cost of all 50: $12.50
}
