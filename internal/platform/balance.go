package platform

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// AssignWorkersBalanced draws, for every HIT, w distinct workers from the
// pool of m while keeping the total HIT load per worker as even as
// possible: each assignment picks the w least-loaded workers, breaking ties
// uniformly at random. Balanced load matters on real marketplaces — it
// bounds per-worker spend and keeps the truth-discovery task counts |T_k|
// comparable across workers, which stabilizes the chi-square weights of
// Equation 5.
func AssignWorkersBalanced(hits []HIT, m, w int, rng *rand.Rand) ([][]int, error) {
	if w < 1 {
		return nil, fmt.Errorf("platform: need at least one worker per HIT, got w=%d", w)
	}
	if w > m {
		return nil, fmt.Errorf("platform: w=%d workers per HIT exceeds pool of m=%d", w, m)
	}
	if rng == nil {
		return nil, fmt.Errorf("platform: nil random source")
	}
	load := make([]int, m)
	assigned := make([][]int, len(hits))
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	for h := range hits {
		// Random shuffle then stable sort by load: equal-load workers stay
		// in random relative order, so ties break uniformly.
		rng.Shuffle(m, func(i, j int) { order[i], order[j] = order[j], order[i] })
		sort.SliceStable(order, func(a, b int) bool { return load[order[a]] < load[order[b]] })
		pick := make([]int, w)
		copy(pick, order[:w])
		for _, worker := range pick {
			load[worker]++
		}
		assigned[h] = pick
	}
	return assigned, nil
}

// LoadSpread reports the minimum and maximum number of HITs assigned to any
// worker in an assignment over a pool of m workers.
func LoadSpread(assigned [][]int, m int) (lo, hi int, err error) {
	if m < 1 {
		return 0, 0, fmt.Errorf("platform: pool size must be positive, got %d", m)
	}
	load := make([]int, m)
	for h, workers := range assigned {
		for _, w := range workers {
			if w < 0 || w >= m {
				return 0, 0, fmt.Errorf("platform: HIT %d assigned to unknown worker %d", h, w)
			}
			load[w]++
		}
	}
	lo, hi = load[0], load[0]
	for _, l := range load[1:] {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return lo, hi, nil
}
