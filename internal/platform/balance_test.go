package platform

import (
	"testing"
)

func TestAssignWorkersBalancedSpread(t *testing.T) {
	hits, err := PackHITs(somePairs(120), 1)
	if err != nil {
		t.Fatal(err)
	}
	const m, w = 12, 3
	assigned, err := AssignWorkersBalanced(hits, m, w, newRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := LoadSpread(assigned, m)
	if err != nil {
		t.Fatal(err)
	}
	// 120 HITs * 3 workers / 12 workers = exactly 30 each.
	if lo != 30 || hi != 30 {
		t.Errorf("balanced load spread = [%d, %d], want [30, 30]", lo, hi)
	}
	for h, workers := range assigned {
		if len(workers) != w {
			t.Fatalf("HIT %d has %d workers", h, len(workers))
		}
		seen := map[int]bool{}
		for _, worker := range workers {
			if seen[worker] {
				t.Fatalf("HIT %d assigned worker %d twice", h, worker)
			}
			seen[worker] = true
		}
	}
}

func TestAssignWorkersBalancedBeatsRandom(t *testing.T) {
	hits, err := PackHITs(somePairs(100), 1)
	if err != nil {
		t.Fatal(err)
	}
	const m, w = 15, 4
	balanced, err := AssignWorkersBalanced(hits, m, w, newRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	random, err := AssignWorkers(hits, m, w, newRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	bLo, bHi, err := LoadSpread(balanced, m)
	if err != nil {
		t.Fatal(err)
	}
	rLo, rHi, err := LoadSpread(random, m)
	if err != nil {
		t.Fatal(err)
	}
	if bHi-bLo > rHi-rLo {
		t.Errorf("balanced spread %d wider than random spread %d", bHi-bLo, rHi-rLo)
	}
	if bHi-bLo > 1 {
		t.Errorf("balanced spread = %d, want <= 1", bHi-bLo)
	}
}

func TestAssignWorkersBalancedValidation(t *testing.T) {
	hits, _ := PackHITs(somePairs(3), 1)
	if _, err := AssignWorkersBalanced(hits, 2, 3, newRNG(1)); err == nil {
		t.Error("w > m should fail")
	}
	if _, err := AssignWorkersBalanced(hits, 2, 0, newRNG(1)); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := AssignWorkersBalanced(hits, 2, 1, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestLoadSpreadValidation(t *testing.T) {
	if _, _, err := LoadSpread(nil, 0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, _, err := LoadSpread([][]int{{5}}, 2); err == nil {
		t.Error("unknown worker should fail")
	}
}
