package platform

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"crowdrank/internal/graph"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 8)) }

// fixedOracle answers deterministically: prefers the lower object id.
type fixedOracle struct{ workers int }

func (o fixedOracle) Answer(_, i, j int) bool { return i < j }
func (o fixedOracle) Workers() int            { return o.workers }

func somePairs(k int) []graph.Pair {
	out := make([]graph.Pair, k)
	for i := range out {
		out[i] = graph.Pair{I: i, J: i + 1}
	}
	return out
}

func TestBudgetMaxTasks(t *testing.T) {
	b := Budget{Total: 12.5, Reward: 0.025, WorkersPerTask: 10}
	l, err := b.MaxTasks()
	if err != nil || l != 50 {
		t.Fatalf("MaxTasks = %d, %v; want 50", l, err)
	}
	if got := b.Cost(50); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("Cost(50) = %v", got)
	}
	if _, err := (Budget{Total: -1, Reward: 1, WorkersPerTask: 1}).MaxTasks(); err == nil {
		t.Error("negative budget should fail")
	}
	if _, err := (Budget{Total: 1, Reward: 0, WorkersPerTask: 1}).MaxTasks(); err == nil {
		t.Error("zero reward should fail")
	}
	if _, err := (Budget{Total: 1, Reward: 1, WorkersPerTask: 0}).MaxTasks(); err == nil {
		t.Error("zero workers should fail")
	}
}

func TestPackHITs(t *testing.T) {
	pairs := somePairs(7)
	hits, err := PackHITs(pairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || len(hits[0].Pairs) != 3 || len(hits[2].Pairs) != 1 {
		t.Fatalf("HITs = %+v", hits)
	}
	total := 0
	for i, h := range hits {
		if h.ID != i {
			t.Errorf("HIT %d has ID %d", i, h.ID)
		}
		total += len(h.Pairs)
	}
	if total != 7 {
		t.Errorf("packed %d pairs", total)
	}
	if _, err := PackHITs(pairs, 0); err == nil {
		t.Error("perHIT=0 should fail")
	}
	if hits, err := PackHITs(nil, 3); err != nil || len(hits) != 0 {
		t.Errorf("empty pairs: %v, %v", hits, err)
	}
}

func TestAssignWorkers(t *testing.T) {
	hits, _ := PackHITs(somePairs(6), 2)
	assigned, err := AssignWorkers(hits, 10, 4, newRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) != len(hits) {
		t.Fatal("assignment length mismatch")
	}
	for _, workers := range assigned {
		if len(workers) != 4 {
			t.Fatalf("HIT got %d workers", len(workers))
		}
		seen := map[int]bool{}
		for _, w := range workers {
			if w < 0 || w >= 10 || seen[w] {
				t.Fatal("invalid or duplicate worker in one HIT")
			}
			seen[w] = true
		}
	}
	if _, err := AssignWorkers(hits, 3, 4, newRNG(1)); err == nil {
		t.Error("w > m should fail")
	}
	if _, err := AssignWorkers(hits, 3, 0, newRNG(1)); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := AssignWorkers(hits, 3, 2, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestRunNonInteractive(t *testing.T) {
	hits, _ := PackHITs(somePairs(5), 2)
	assigned, _ := AssignWorkers(hits, 6, 3, newRNG(2))
	round, err := RunNonInteractive(hits, assigned, fixedOracle{workers: 6}, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Votes) != 5*3 {
		t.Fatalf("votes = %d, want 15", len(round.Votes))
	}
	wantSpent := float64(5*3) * 0.025
	if math.Abs(round.Spent-wantSpent) > 1e-9 {
		t.Errorf("spent = %v, want %v", round.Spent, wantSpent)
	}
	for _, v := range round.Votes {
		if !v.PrefersI { // fixedOracle always prefers the lower id, and pairs are (i, i+1)
			t.Fatalf("vote %+v should prefer I", v)
		}
	}
	if _, err := RunNonInteractive(hits, assigned[:1], fixedOracle{workers: 6}, 0.025); err == nil {
		t.Error("assignment/hit length mismatch should fail")
	}
	if _, err := RunNonInteractive(hits, assigned, nil, 0.025); err == nil {
		t.Error("nil oracle should fail")
	}
	if _, err := RunNonInteractive(hits, assigned, fixedOracle{workers: 6}, -1); err == nil {
		t.Error("negative reward should fail")
	}
	bad := [][]int{{9}, {0}, {0}}
	if _, err := RunNonInteractive(hits, bad, fixedOracle{workers: 6}, 0.025); err == nil {
		t.Error("unknown worker should fail")
	}
}

func TestInteractiveSessionBudgetEnforcement(t *testing.T) {
	budget := Budget{Total: 1.0, Reward: 0.1, WorkersPerTask: 2} // 5 tasks affordable
	s, err := NewInteractiveSession(fixedOracle{workers: 5}, budget, 10*time.Second, newRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	asked := 0
	for s.CanAfford() {
		votes, err := s.Ask(asked%4, (asked+1)%4+1)
		if err != nil {
			t.Fatal(err)
		}
		if len(votes) != 2 {
			t.Fatalf("got %d votes per round", len(votes))
		}
		asked++
		if asked > 100 {
			t.Fatal("budget never exhausted")
		}
	}
	if asked != 5 {
		t.Errorf("asked %d rounds, want 5", asked)
	}
	if s.Rounds() != 5 || math.Abs(s.Spent()-1.0) > 1e-9 {
		t.Errorf("rounds=%d spent=%v", s.Rounds(), s.Spent())
	}
	if s.SimulatedLatency() != 50*time.Second {
		t.Errorf("latency = %v, want 50s", s.SimulatedLatency())
	}
	if len(s.Votes()) != 10 {
		t.Errorf("total votes = %d", len(s.Votes()))
	}
	if math.Abs(s.Remaining()) > 1e-9 {
		t.Errorf("remaining = %v", s.Remaining())
	}
	if _, err := s.Ask(0, 1); err == nil {
		t.Error("over-budget Ask should fail")
	}
}

func TestInteractiveSessionValidation(t *testing.T) {
	budget := Budget{Total: 1, Reward: 0.1, WorkersPerTask: 2}
	if _, err := NewInteractiveSession(nil, budget, 0, newRNG(1)); err == nil {
		t.Error("nil oracle should fail")
	}
	if _, err := NewInteractiveSession(fixedOracle{workers: 3}, budget, 0, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := NewInteractiveSession(fixedOracle{workers: 3}, Budget{Total: 1, Reward: 0, WorkersPerTask: 1}, 0, newRNG(1)); err == nil {
		t.Error("bad budget should fail")
	}
	if _, err := NewInteractiveSession(fixedOracle{workers: 3}, budget, -time.Second, newRNG(1)); err == nil {
		t.Error("negative latency should fail")
	}
	s, err := NewInteractiveSession(fixedOracle{workers: 1}, budget, 0, newRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ask(0, 0); err == nil {
		t.Error("self comparison should fail")
	}
	if _, err := s.Ask(0, 1); err == nil {
		t.Error("w > m should fail at Ask time")
	}
}
