// Package platform simulates the crowdsourcing marketplace of Section II: a
// requester packs pairwise comparisons into HITs of c comparisons each,
// assigns every HIT to w of the m available workers, pays reward r per
// comparison under budget B, and collects the answers. Two collection modes
// are provided:
//
//   - the non-interactive one-shot round the paper proposes (all HITs
//     released at once, answers accepted as-is), and
//   - an interactive session (one query at a time with per-round latency
//     accounting) used to drive the CrowdBT baseline the paper compares
//     against.
package platform

import (
	"fmt"
	"math/rand/v2"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
)

// Oracle answers pairwise comparison queries on behalf of a worker pool.
// Answer reports whether worker prefers O_i over O_j. Implementations live
// in internal/simulate (ground-truth crowds and PubFig-style human pools).
type Oracle interface {
	Answer(worker, i, j int) bool
	Workers() int
}

// HIT is one human intelligence task: a batch of pairwise comparisons given
// to a single worker as a unit.
type HIT struct {
	ID    int
	Pairs []graph.Pair
}

// Budget models the requester's money (Section II): each pairwise
// comparison is answered by WorkersPerTask workers at Reward per answer.
type Budget struct {
	Total          float64
	Reward         float64
	WorkersPerTask int
}

// MaxTasks returns l = floor(Total / (WorkersPerTask * Reward)), the number
// of unique comparisons the budget affords.
func (b Budget) MaxTasks() (int, error) {
	if b.Total < 0 {
		return 0, fmt.Errorf("platform: negative budget %v", b.Total)
	}
	if b.Reward <= 0 {
		return 0, fmt.Errorf("platform: reward must be positive, got %v", b.Reward)
	}
	if b.WorkersPerTask < 1 {
		return 0, fmt.Errorf("platform: need at least one worker per task, got %d", b.WorkersPerTask)
	}
	return int(b.Total / (float64(b.WorkersPerTask) * b.Reward)), nil
}

// Cost returns the money spent crowdsourcing l unique comparisons.
func (b Budget) Cost(l int) float64 {
	return float64(l) * float64(b.WorkersPerTask) * b.Reward
}

// PackHITs splits the comparison tasks into HITs of at most perHIT
// comparisons each, preserving order.
func PackHITs(pairs []graph.Pair, perHIT int) ([]HIT, error) {
	if perHIT < 1 {
		return nil, fmt.Errorf("platform: HIT size must be >= 1, got %d", perHIT)
	}
	var hits []HIT
	for start := 0; start < len(pairs); start += perHIT {
		end := start + perHIT
		if end > len(pairs) {
			end = len(pairs)
		}
		batch := make([]graph.Pair, end-start)
		copy(batch, pairs[start:end])
		hits = append(hits, HIT{ID: len(hits), Pairs: batch})
	}
	return hits, nil
}

// AssignWorkers draws, for every HIT, w distinct workers from the pool of m.
// The same comparison can reach different workers through different HITs;
// within one HIT a worker answers each comparison once.
func AssignWorkers(hits []HIT, m, w int, rng *rand.Rand) ([][]int, error) {
	if w < 1 {
		return nil, fmt.Errorf("platform: need at least one worker per HIT, got w=%d", w)
	}
	if w > m {
		return nil, fmt.Errorf("platform: w=%d workers per HIT exceeds pool of m=%d", w, m)
	}
	if rng == nil {
		return nil, fmt.Errorf("platform: nil random source")
	}
	assigned := make([][]int, len(hits))
	for h := range hits {
		perm := rng.Perm(m)
		assigned[h] = append([]int(nil), perm[:w]...)
	}
	return assigned, nil
}

// RoundResult is the outcome of one crowdsourcing round.
type RoundResult struct {
	Votes []crowd.Vote
	// Spent is the money consumed: one reward per (comparison, worker).
	Spent float64
	// Elapsed measures the wall-clock time of answer collection (useful
	// only for the simulated oracles; network latency is modeled separately
	// by InteractiveSession).
	Elapsed time.Duration
}

// RunNonInteractive executes the paper's one-shot setting: all HITs are
// released at once to their assigned workers and every answer is collected.
// reward is the payment per comparison per worker.
func RunNonInteractive(hits []HIT, assigned [][]int, oracle Oracle, reward float64) (*RoundResult, error) {
	if oracle == nil {
		return nil, fmt.Errorf("platform: nil oracle")
	}
	if len(assigned) != len(hits) {
		return nil, fmt.Errorf("platform: %d worker assignments for %d HITs", len(assigned), len(hits))
	}
	if reward < 0 {
		return nil, fmt.Errorf("platform: negative reward %v", reward)
	}
	m := oracle.Workers()
	start := time.Now()
	var votes []crowd.Vote
	for h, hit := range hits {
		for _, worker := range assigned[h] {
			if worker < 0 || worker >= m {
				return nil, fmt.Errorf("platform: HIT %d assigned to unknown worker %d", hit.ID, worker)
			}
			for _, pr := range hit.Pairs {
				votes = append(votes, crowd.Vote{
					Worker:   worker,
					I:        pr.I,
					J:        pr.J,
					PrefersI: oracle.Answer(worker, pr.I, pr.J),
				})
			}
		}
	}
	spent := 0.0
	for h := range hits {
		spent += float64(len(hits[h].Pairs)) * float64(len(assigned[h])) * reward
	}
	return &RoundResult{Votes: votes, Spent: spent, Elapsed: time.Since(start)}, nil
}

// InteractiveSession drives round-by-round crowdsourcing for interactive
// baselines such as CrowdBT: the requester submits one comparison at a time
// and waits for the crowd's answers before choosing the next. RoundLatency
// models the marketplace turnaround per round; it accumulates into
// SimulatedLatency rather than actually sleeping, so experiments report the
// interactive cost without waiting for it.
type InteractiveSession struct {
	oracle       Oracle
	budget       Budget
	roundLatency time.Duration
	rng          *rand.Rand

	votes            []crowd.Vote
	spent            float64
	rounds           int
	simulatedLatency time.Duration
}

// NewInteractiveSession starts an interactive session against the oracle.
func NewInteractiveSession(oracle Oracle, budget Budget, roundLatency time.Duration, rng *rand.Rand) (*InteractiveSession, error) {
	if oracle == nil {
		return nil, fmt.Errorf("platform: nil oracle")
	}
	if rng == nil {
		return nil, fmt.Errorf("platform: nil random source")
	}
	if _, err := budget.MaxTasks(); err != nil {
		return nil, err
	}
	if roundLatency < 0 {
		return nil, fmt.Errorf("platform: negative round latency %v", roundLatency)
	}
	return &InteractiveSession{oracle: oracle, budget: budget, roundLatency: roundLatency, rng: rng}, nil
}

// Remaining returns the budget left.
func (s *InteractiveSession) Remaining() float64 { return s.budget.Total - s.spent }

// CanAfford reports whether one more comparison (answered by the configured
// number of workers) fits in the remaining budget.
func (s *InteractiveSession) CanAfford() bool {
	return s.Remaining() >= float64(s.budget.WorkersPerTask)*s.budget.Reward-1e-9
}

// Ask crowdsources one comparison (i, j) to WorkersPerTask random distinct
// workers, charging the budget and accruing one round of latency. It
// returns the collected votes.
func (s *InteractiveSession) Ask(i, j int) ([]crowd.Vote, error) {
	if i == j || i < 0 || j < 0 {
		return nil, fmt.Errorf("platform: invalid comparison (%d,%d)", i, j)
	}
	if !s.CanAfford() {
		return nil, fmt.Errorf("platform: budget exhausted after %d rounds (spent %.4f of %.4f)",
			s.rounds, s.spent, s.budget.Total)
	}
	m := s.oracle.Workers()
	w := s.budget.WorkersPerTask
	if w > m {
		return nil, fmt.Errorf("platform: w=%d exceeds worker pool m=%d", w, m)
	}
	perm := s.rng.Perm(m)[:w]
	batch := make([]crowd.Vote, 0, w)
	for _, worker := range perm {
		batch = append(batch, crowd.Vote{
			Worker:   worker,
			I:        i,
			J:        j,
			PrefersI: s.oracle.Answer(worker, i, j),
		})
	}
	s.votes = append(s.votes, batch...)
	s.spent += float64(w) * s.budget.Reward
	s.rounds++
	s.simulatedLatency += s.roundLatency
	return batch, nil
}

// Votes returns all votes collected so far.
func (s *InteractiveSession) Votes() []crowd.Vote {
	out := make([]crowd.Vote, len(s.votes))
	copy(out, s.votes)
	return out
}

// Rounds returns the number of interactive rounds performed.
func (s *InteractiveSession) Rounds() int { return s.rounds }

// Spent returns the money consumed so far.
func (s *InteractiveSession) Spent() float64 { return s.spent }

// SimulatedLatency returns the accumulated marketplace turnaround time the
// interactive protocol would have incurred.
func (s *InteractiveSession) SimulatedLatency() time.Duration { return s.simulatedLatency }
