package truth_test

import (
	"fmt"
	"log"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
	"crowdrank/internal/truth"
)

// ExampleDiscover runs truth discovery on a tiny conflicting vote set:
// three workers agree, one dissents, and the dissenter's quality drops
// while the majority's preference becomes the truth.
func ExampleDiscover() {
	votes := []crowd.Vote{
		{Worker: 0, I: 0, J: 1, PrefersI: true},
		{Worker: 1, I: 0, J: 1, PrefersI: true},
		{Worker: 2, I: 0, J: 1, PrefersI: true},
		{Worker: 3, I: 0, J: 1, PrefersI: false}, // dissenter
		{Worker: 0, I: 1, J: 2, PrefersI: true},
		{Worker: 1, I: 1, J: 2, PrefersI: true},
		{Worker: 2, I: 1, J: 2, PrefersI: true},
		{Worker: 3, I: 1, J: 2, PrefersI: false}, // dissenter again
	}
	res, err := truth.Discover(3, 4, votes, truth.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	x01 := res.Preference[graph.Pair{I: 0, J: 1}]
	fmt.Printf("preference 0<1 decisively above 1/2: %v\n", x01 > 0.9)
	fmt.Printf("dissenter quality below the majority's: %v\n",
		res.Quality[3] < res.Quality[0])
	fmt.Printf("dissenter flagged at threshold 0.75: %v\n",
		len(res.SuspectWorkers(0.75)) == 1 && res.SuspectWorkers(0.75)[0] == 3)
	// Output:
	// preference 0<1 decisively above 1/2: true
	// dissenter quality below the majority's: true
	// dissenter flagged at threshold 0.75: true
}
