package truth

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
)

func vote(w, i, j int, prefersI bool) crowd.Vote {
	return crowd.Vote{Worker: w, I: i, J: j, PrefersI: prefersI}
}

func TestDiscoverValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := Discover(1, 1, []crowd.Vote{vote(0, 0, 1, true)}, p); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Discover(3, 0, []crowd.Vote{vote(0, 0, 1, true)}, p); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := Discover(3, 1, nil, p); err == nil {
		t.Error("no votes should fail")
	}
	if _, err := Discover(3, 1, []crowd.Vote{vote(2, 0, 1, true)}, p); err == nil {
		t.Error("invalid worker should fail")
	}
	bad := p
	bad.Alpha = 0
	if _, err := Discover(3, 1, []crowd.Vote{vote(0, 0, 1, true)}, bad); err == nil {
		t.Error("alpha=0 should fail")
	}
	bad = p
	bad.MaxIterations = 0
	if _, err := Discover(3, 1, []crowd.Vote{vote(0, 0, 1, true)}, bad); err == nil {
		t.Error("MaxIterations=0 should fail")
	}
	bad = p
	bad.QualityFloor = 0
	if _, err := Discover(3, 1, []crowd.Vote{vote(0, 0, 1, true)}, bad); err == nil {
		t.Error("QualityFloor=0 should fail")
	}
	bad = p
	bad.Tolerance = -1
	if _, err := Discover(3, 1, []crowd.Vote{vote(0, 0, 1, true)}, bad); err == nil {
		t.Error("negative tolerance should fail")
	}
}

func TestDiscoverUnanimous(t *testing.T) {
	votes := []crowd.Vote{
		vote(0, 0, 1, true), vote(1, 0, 1, true), vote(2, 0, 1, true),
		vote(0, 1, 2, true), vote(1, 1, 2, true), vote(2, 1, 2, true),
	}
	res, err := Discover(3, 3, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for pr, x := range res.Preference {
		if x != 1 {
			t.Errorf("unanimous pair %v has preference %v, want 1", pr, x)
		}
	}
	if !res.Converged {
		t.Error("unanimous votes should converge")
	}
	for w := 0; w < 3; w++ {
		if res.Quality[w] < 0.99 {
			t.Errorf("unanimous worker %d quality = %v", w, res.Quality[w])
		}
		if res.TaskCounts[w] != 2 {
			t.Errorf("task count[%d] = %d", w, res.TaskCounts[w])
		}
	}
}

func TestDiscoverIdentifiesBadWorker(t *testing.T) {
	// Workers 0-3 agree on every pair; worker 4 always dissents. The
	// dissenter must get a lower quality and a lower CRH weight.
	var votes []crowd.Vote
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}, {1, 3}, {0, 3}}
	for _, pr := range pairs {
		for w := 0; w < 4; w++ {
			votes = append(votes, vote(w, pr[0], pr[1], true))
		}
		votes = append(votes, vote(4, pr[0], pr[1], false))
	}
	res, err := Discover(4, 5, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if res.Quality[4] >= res.Quality[w] {
			t.Errorf("dissenter quality %v not below worker %d quality %v",
				res.Quality[4], w, res.Quality[w])
		}
		if res.Weight[4] >= res.Weight[w] {
			t.Errorf("dissenter weight %v not below worker %d weight %v",
				res.Weight[4], w, res.Weight[w])
		}
	}
	// Majority truth must prevail decisively on every pair.
	for pr, x := range res.Preference {
		if x < 0.8 {
			t.Errorf("pair %v preference %v should be near 1", pr, x)
		}
	}
}

func TestDiscoverInactiveWorker(t *testing.T) {
	votes := []crowd.Vote{vote(0, 0, 1, true), vote(1, 0, 1, true)}
	res, err := Discover(2, 3, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality[2] != 0 || res.Weight[2] != 0 || res.TaskCounts[2] != 0 {
		t.Errorf("inactive worker should have zero quality/weight: q=%v w=%v",
			res.Quality[2], res.Weight[2])
	}
}

func TestDiscoverSplitVote(t *testing.T) {
	// Two equally active workers disagree on a single pair: the estimate
	// must remain at maximal uncertainty.
	votes := []crowd.Vote{vote(0, 0, 1, true), vote(1, 0, 1, false)}
	res, err := Discover(2, 2, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	x := res.Preference[graph.Pair{I: 0, J: 1}]
	if math.Abs(x-0.5) > 1e-9 {
		t.Errorf("split vote preference = %v, want 0.5", x)
	}
	if math.Abs(res.Quality[0]-res.Quality[1]) > 1e-9 {
		t.Errorf("symmetric workers should have equal quality: %v vs %v",
			res.Quality[0], res.Quality[1])
	}
}

func TestDiscoverConvergesWithinTen(t *testing.T) {
	// The paper reports convergence within ~10 iterations for most cases.
	rng := rand.New(rand.NewPCG(5, 6))
	n, m := 20, 10
	var votes []crowd.Vote
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for w := 0; w < m; w++ {
				correct := rng.Float64() > 0.1 // 10% error rate
				votes = append(votes, vote(w, i, j, correct))
			}
		}
	}
	p := DefaultParams()
	p.MaxIterations = 50
	res, err := Discover(n, m, votes, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("should converge")
	}
	if res.Iterations > 25 {
		t.Errorf("took %d iterations, expected quick convergence", res.Iterations)
	}
}

func TestDiscoverWorkerPermutationEquivariant(t *testing.T) {
	// Relabeling workers must permute qualities identically.
	votes := []crowd.Vote{
		vote(0, 0, 1, true), vote(1, 0, 1, true), vote(2, 0, 1, false),
		vote(0, 1, 2, true), vote(1, 1, 2, false), vote(2, 1, 2, true),
	}
	res1, err := Discover(3, 3, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Swap workers 0 and 2.
	swapped := make([]crowd.Vote, len(votes))
	for i, v := range votes {
		sw := v
		switch v.Worker {
		case 0:
			sw.Worker = 2
		case 2:
			sw.Worker = 0
		}
		swapped[i] = sw
	}
	res2, err := Discover(3, 3, swapped, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res1.Quality[0]-res2.Quality[2]) > 1e-12 ||
		math.Abs(res1.Quality[2]-res2.Quality[0]) > 1e-12 {
		t.Errorf("quality not equivariant: %v vs %v", res1.Quality, res2.Quality)
	}
	for pr, x := range res1.Preference {
		if math.Abs(res2.Preference[pr]-x) > 1e-12 {
			t.Errorf("preference changed under worker relabeling at %v", pr)
		}
	}
}

func TestDiscoverRangesQuick(t *testing.T) {
	// Properties on random inputs: preferences and qualities stay in [0,1],
	// weights are normalized to max 1.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 3 + rng.IntN(8)
		m := 2 + rng.IntN(6)
		var votes []crowd.Vote
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					continue // leave some pairs uncompared
				}
				for w := 0; w < m; w++ {
					if rng.Float64() < 0.7 {
						votes = append(votes, vote(w, i, j, rng.Float64() < 0.8))
					}
				}
			}
		}
		if len(votes) == 0 {
			return true
		}
		res, err := Discover(n, m, votes, DefaultParams())
		if err != nil {
			return false
		}
		maxWeight := 0.0
		for w := 0; w < m; w++ {
			if res.Quality[w] < 0 || res.Quality[w] > 1 {
				return false
			}
			if res.Weight[w] > maxWeight {
				maxWeight = res.Weight[w]
			}
		}
		if math.Abs(maxWeight-1) > 1e-9 {
			return false
		}
		for _, x := range res.Preference {
			if x < 0 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildPreferenceGraph(t *testing.T) {
	pref := map[graph.Pair]float64{
		{I: 0, J: 1}: 1,   // 1-edge, only forward direction exists
		{I: 1, J: 2}: 0.7, // both directions
		{I: 0, J: 2}: 0,   // only reverse direction exists
	}
	g, err := BuildPreferenceGraph(3, pref)
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) != 1 || g.HasEdge(1, 0) {
		t.Error("1-edge should be one-directional")
	}
	if g.Weight(1, 2) != 0.7 || math.Abs(g.Weight(2, 1)-0.3) > 1e-12 {
		t.Error("conflicting pair should have both directions")
	}
	if g.HasEdge(0, 2) || g.Weight(2, 0) != 1 {
		t.Error("zero preference should produce only the reverse edge")
	}
	if _, err := BuildPreferenceGraph(3, map[graph.Pair]float64{{I: 0, J: 1}: 1.5}); err == nil {
		t.Error("out-of-range preference should fail")
	}
}

func TestSuspectWorkers(t *testing.T) {
	// Workers 0-2 agree, worker 3 dissents on every pair, worker 4 is idle.
	var votes []crowd.Vote
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}, {0, 3}}
	for _, pr := range pairs {
		for w := 0; w < 3; w++ {
			votes = append(votes, vote(w, pr[0], pr[1], true))
		}
		votes = append(votes, vote(3, pr[0], pr[1], false))
	}
	res, err := Discover(4, 5, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	suspects := res.SuspectWorkers(0.75)
	if len(suspects) != 1 || suspects[0] != 3 {
		t.Errorf("suspects = %v, want [3]", suspects)
	}
	// Idle worker 4 must not be flagged despite quality 0.
	for _, s := range suspects {
		if s == 4 {
			t.Error("idle worker flagged")
		}
	}
	// A permissive threshold flags nobody.
	if got := res.SuspectWorkers(0.0001); len(got) != 0 {
		t.Errorf("threshold 0.0001 flagged %v", got)
	}
}
