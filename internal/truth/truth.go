// Package truth implements Step 1 of result inference (Section V-A): joint
// truth discovery over the crowd's pairwise preferences. It iterates two
// coupled updates until convergence:
//
//   - the true preference of each task is the quality-weighted average of
//     the workers' votes (Equation 4), and
//   - each worker's quality is proportional to a chi-square percentile
//     divided by the worker's total squared deviation from the estimated
//     truths (Equation 5, the CRH weight of Li et al.).
//
// The output direct preferences x̂_ij become the edge weights of the
// preference graph G_P, and the worker qualities feed Step 2's smoothing.
package truth

import (
	"fmt"
	"math"
	"sort"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
	"crowdrank/internal/stat"
)

// Params tunes the iterative truth-discovery loop. The zero value is not
// usable; call DefaultParams and adjust.
type Params struct {
	// Alpha is the chi-square confidence-interval parameter of Equation 5;
	// the percentile used is alpha/2. The paper does not fix a value; 0.05
	// (a 95% interval) is the convention of the cited CRH work.
	Alpha float64
	// MaxIterations caps the loop. The paper observes convergence within
	// ~10 iterations on most inputs.
	MaxIterations int
	// Tolerance declares convergence when both the preferences and the
	// qualities change by less than this amount (L-infinity) between
	// consecutive iterations.
	Tolerance float64
	// QualityFloor keeps worker qualities strictly positive so that the
	// weighted average (Equation 4) stays defined and smoothing's
	// sigma_k = -log(q_k) stays finite.
	QualityFloor float64
}

// DefaultParams returns the parameter set used throughout the paper's
// experiments reproduction.
func DefaultParams() Params {
	return Params{
		Alpha:         0.05,
		MaxIterations: 20,
		Tolerance:     1e-6,
		QualityFloor:  1e-4,
	}
}

func (p Params) validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("truth: alpha %v outside (0,1)", p.Alpha)
	}
	if p.MaxIterations < 1 {
		return fmt.Errorf("truth: MaxIterations must be >= 1, got %d", p.MaxIterations)
	}
	if p.Tolerance < 0 {
		return fmt.Errorf("truth: negative tolerance %v", p.Tolerance)
	}
	if p.QualityFloor <= 0 || p.QualityFloor >= 1 {
		return fmt.Errorf("truth: QualityFloor %v outside (0,1)", p.QualityFloor)
	}
	return nil
}

// Result holds the discovered truths and worker qualities.
type Result struct {
	// Preference maps each canonical pair (I < J) to x̂_IJ, the estimated
	// probability that O_I ≺ O_J.
	Preference map[graph.Pair]float64
	// Weight holds each worker's CRH aggregation weight (Equation 5),
	// normalized so the best worker has weight 1. These weights drive the
	// weighted average of Equation 4; their *ratios* are meaningful but
	// their absolute scale is not.
	Weight []float64
	// Quality holds each worker's estimated quality in (0, 1]: the
	// complement of the worker's mean squared deviation from the discovered
	// truths, q_k = 1 - sqErr_k/|T_k|. Unlike Weight it is bounded and
	// calibrated (a worker agreeing with every truth has quality ~1), which
	// is what Step 2's error model sigma_k = -log(q_k) requires — raw CRH
	// weight ratios can span many orders of magnitude and would make the
	// smoothing error explode. Workers who cast no votes have quality 0 and
	// take no further part in inference.
	Quality []float64
	// TaskCounts holds |T_k|, the number of votes cast by each worker.
	TaskCounts []int
	// Iterations is the number of update rounds performed.
	Iterations int
	// Converged reports whether the tolerance criterion was met before
	// MaxIterations.
	Converged bool
}

// observation is a decoded vote: a pair index, the worker, and the paper's
// 0/1 vote value with respect to the canonical pair orientation.
type observation struct {
	pair   int
	worker int
	value  float64
}

// Discover runs iterative truth discovery over the votes of m workers on n
// objects. Every vote is validated; the vote set must be non-empty.
func Discover(n, m int, votes []crowd.Vote, p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("truth: need at least two objects, got n=%d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("truth: need at least one worker, got m=%d", m)
	}
	if len(votes) == 0 {
		return nil, fmt.Errorf("truth: no votes to aggregate")
	}
	for idx, v := range votes {
		if err := v.Validate(n, m); err != nil {
			return nil, fmt.Errorf("truth: vote %d: %w", idx, err)
		}
	}

	// Index votes once: per canonical pair, the (worker, value) list; per
	// worker, the list of pair indices and values.
	pairs := crowd.Pairs(votes)
	pairIndex := make(map[graph.Pair]int, len(pairs))
	for i, pr := range pairs {
		pairIndex[pr] = i
	}
	observations := make([]observation, len(votes))
	taskCounts := make([]int, m)
	for i, v := range votes {
		observations[i] = observation{pair: pairIndex[v.Pair()], worker: v.Worker, value: v.Value()}
		taskCounts[v.Worker]++
	}

	// Chi-square percentiles are needed once per distinct task count.
	chiByCount := make(map[int]float64)
	for _, c := range taskCounts {
		if c == 0 {
			continue
		}
		if _, ok := chiByCount[c]; ok {
			continue
		}
		q, err := stat.ChiSquareQuantile(p.Alpha/2, float64(c))
		if err != nil {
			return nil, fmt.Errorf("truth: chi-square percentile for df=%d: %w", c, err)
		}
		chiByCount[c] = q
	}

	weight := make([]float64, m)
	for w := range weight {
		if taskCounts[w] > 0 {
			weight[w] = 1 // paper: start with equal quality
		}
	}
	pref := make([]float64, len(pairs))
	prevPref := make([]float64, len(pairs))
	prevWeight := make([]float64, m)

	iterations := 0
	converged := false
	for iterations < p.MaxIterations {
		iterations++
		copy(prevPref, pref)
		copy(prevWeight, weight)

		updatePreferences(observations, weight, pref)
		updateWeights(observations, pref, taskCounts, chiByCount, weight, p.QualityFloor)

		if iterations > 1 && maxDelta(pref, prevPref) < p.Tolerance && maxDelta(weight, prevWeight) < p.Tolerance {
			converged = true
			break
		}
	}

	preference := make(map[graph.Pair]float64, len(pairs))
	for i, pr := range pairs {
		preference[pr] = pref[i]
	}
	return &Result{
		Preference: preference,
		Weight:     weight,
		Quality:    boundedQualities(observations, pref, taskCounts, p.QualityFloor),
		TaskCounts: taskCounts,
		Iterations: iterations,
		Converged:  converged,
	}, nil
}

// boundedQualities derives the calibrated per-worker quality
// q_k = 1 - sqErr_k/|T_k| in [floor, 1], the complement of the mean squared
// deviation from the discovered truths.
func boundedQualities(observations []observation, pref []float64, taskCounts []int, floor float64) []float64 {
	quality := make([]float64, len(taskCounts))
	sqErr := make([]float64, len(taskCounts))
	for _, o := range observations {
		d := o.value - pref[o.pair]
		sqErr[o.worker] += d * d
	}
	for w := range quality {
		if taskCounts[w] == 0 {
			continue
		}
		q := 1 - sqErr[w]/float64(taskCounts[w])
		if q < floor {
			q = floor
		}
		if q > 1 {
			q = 1
		}
		quality[w] = q
	}
	return quality
}

// updatePreferences applies Equation 4: the weight-averaged vote per pair.
func updatePreferences(observations []observation, weight, pref []float64) {
	num := make([]float64, len(pref))
	den := make([]float64, len(pref))
	for _, o := range observations {
		q := weight[o.worker]
		num[o.pair] += o.value * q
		den[o.pair] += q
	}
	for i := range pref {
		if den[i] > 0 {
			pref[i] = num[i] / den[i]
		} else {
			pref[i] = 0.5 // no usable votes: maximal uncertainty
		}
	}
}

// updateWeights applies Equation 5: w_k ∝ χ²(α/2, |T_k|) / Σ (x^k - x̂)²,
// then normalizes the weights so the best worker has weight 1. The squared
// error is floored at a quarter of one full disagreement so a
// perfectly-agreeing worker's weight stays finite without dwarfing everyone
// else by orders of magnitude.
func updateWeights(observations []observation, pref []float64, taskCounts []int, chiByCount map[int]float64, weight []float64, floor float64) {
	sqErr := make([]float64, len(weight))
	for _, o := range observations {
		d := o.value - pref[o.pair]
		sqErr[o.worker] += d * d
	}
	maxW := 0.0
	for w := range weight {
		if taskCounts[w] == 0 {
			weight[w] = 0
			continue
		}
		denom := math.Max(sqErr[w], 0.25)
		weight[w] = chiByCount[taskCounts[w]] / denom
		if weight[w] > maxW {
			maxW = weight[w]
		}
	}
	if maxW <= 0 {
		// Degenerate: every active worker has zero chi-square mass. Reset
		// to equal weight rather than dividing by zero.
		for w := range weight {
			if taskCounts[w] > 0 {
				weight[w] = 1
			}
		}
		return
	}
	for w := range weight {
		if taskCounts[w] == 0 {
			continue
		}
		weight[w] /= maxW
		if weight[w] < floor {
			weight[w] = floor
		}
	}
}

func maxDelta(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > max {
			max = d
		}
	}
	return max
}

// SuspectWorkers returns the workers whose estimated quality falls below
// threshold (excluding workers who cast no votes), sorted by ascending
// quality — the requester-side spam/adversary report. A threshold around
// 0.75 flags coin-flippers and adversaries on typical workloads; see the
// workerquality example.
func (r *Result) SuspectWorkers(threshold float64) []int {
	var suspects []int
	for w, q := range r.Quality {
		if r.TaskCounts[w] > 0 && q < threshold {
			suspects = append(suspects, w)
		}
	}
	sort.Slice(suspects, func(a, b int) bool {
		return r.Quality[suspects[a]] < r.Quality[suspects[b]]
	})
	return suspects
}

// BuildPreferenceGraph converts discovered direct preferences into the
// weighted directed preference graph G_P: for each canonical pair (i, j)
// with preference x̂, edge i->j gets weight x̂ and edge j->i gets 1-x̂; a
// weight of zero means no edge, per the paper's convention. Unanimous
// preferences therefore produce the 1-edges that Step 2 smooths.
func BuildPreferenceGraph(n int, preference map[graph.Pair]float64) (*graph.PreferenceGraph, error) {
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		return nil, fmt.Errorf("truth: %w", err)
	}
	// Insert in sorted pair order so the graph's adjacency lists (and thus
	// every downstream float summation and randomness consumption order)
	// are deterministic regardless of map iteration.
	pairs := make([]graph.Pair, 0, len(preference))
	for pr := range preference {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].I != pairs[b].I {
			return pairs[a].I < pairs[b].I
		}
		return pairs[a].J < pairs[b].J
	})
	for _, pr := range pairs {
		x := preference[pr]
		if x < 0 || x > 1 || math.IsNaN(x) {
			return nil, fmt.Errorf("truth: preference %v for pair %v outside [0,1]", x, pr)
		}
		if err := g.SetWeight(pr.I, pr.J, x); err != nil {
			return nil, fmt.Errorf("truth: %w", err)
		}
		if err := g.SetWeight(pr.J, pr.I, 1-x); err != nil {
			return nil, fmt.Errorf("truth: %w", err)
		}
	}
	return g, nil
}
