package qs

import (
	"math/rand/v2"
	"testing"

	"crowdrank/internal/crowd"
	"crowdrank/internal/kendall"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 41)) }

func vote(w, i, j int, prefersI bool) crowd.Vote {
	return crowd.Vote{Worker: w, I: i, J: j, PrefersI: prefersI}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestRankValidation(t *testing.T) {
	if _, err := Rank(3, []crowd.Vote{vote(0, 0, 1, true)}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := Rank(3, nil, newRNG(1)); err == nil {
		t.Error("no votes should fail")
	}
}

func TestRankFullMajorityRecoversOrder(t *testing.T) {
	// All pairs compared, strong majority: quicksort must recover the
	// identity order.
	n := 12
	var votes []crowd.Vote
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for w := 0; w < 5; w++ {
				votes = append(votes, vote(w, i, j, w != 0)) // 4-1 majority
			}
		}
	}
	r, err := Rank(n, votes, newRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r {
		if v != i {
			t.Fatalf("full-information QS ranking %v should be identity", r)
		}
	}
}

func TestRankIsPermutation(t *testing.T) {
	votes := []crowd.Vote{vote(0, 0, 1, true), vote(0, 3, 4, false)}
	r, err := Rank(6, votes, newRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := kendall.ValidatePermutation(r); err != nil {
		t.Fatalf("not a permutation: %v", err)
	}
}

func TestRankDegradesWithMissingPairs(t *testing.T) {
	// With only 20% of pairs compared, accuracy must sit well below the
	// full-information case (the paper's core finding about QS).
	rng := newRNG(4)
	n := 30
	meanAcc := func(coverage float64) float64 {
		total := 0.0
		const trials = 15
		for trial := 0; trial < trials; trial++ {
			var votes []crowd.Vote
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Float64() > coverage {
						continue
					}
					for w := 0; w < 5; w++ {
						votes = append(votes, vote(w, i, j, true))
					}
				}
			}
			if len(votes) == 0 {
				continue
			}
			r, err := Rank(n, votes, rng)
			if err != nil {
				t.Fatal(err)
			}
			acc, err := kendall.Accuracy(r, identity(n))
			if err != nil {
				t.Fatal(err)
			}
			total += acc
		}
		return total / trials
	}
	full, sparse := meanAcc(1.0), meanAcc(0.2)
	if full < 0.99 {
		t.Errorf("full coverage accuracy = %v", full)
	}
	if sparse > full-0.1 {
		t.Errorf("sparse QS (%v) should lose clearly to full QS (%v)", sparse, full)
	}
}

func TestRankDeterministicPerSeed(t *testing.T) {
	votes := []crowd.Vote{vote(0, 0, 1, true), vote(1, 1, 2, true)}
	a, _ := Rank(4, votes, newRNG(9))
	b, _ := Rank(4, votes, newRNG(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different rankings: %v vs %v", a, b)
		}
	}
}
