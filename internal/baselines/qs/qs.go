// Package qs implements the QuickSort crowdsourced-ranking baseline
// (Section VI-A2): ranking preferences are modeled as a Condorcet graph
// scored by majority voting (Montague & Aslam, "Condorcet fusion for
// improved retrieval"), and the full ranking is produced by a randomized
// quicksort whose comparator follows the majority edge. Pairs the budget
// never compared are decided by a coin flip, which is why QS degrades
// sharply at small selection ratios (Table I, Figure 6).
package qs

import (
	"fmt"
	"math/rand/v2"

	"crowdrank/internal/baselines/mv"
	"crowdrank/internal/crowd"
	"crowdrank/internal/feq"
)

// Rank aggregates the workers' pairwise preferences into a full ranking of
// n objects by Condorcet-graph quicksort. rng drives pivot selection and
// the coin flips for uncompared pairs.
func Rank(n int, votes []crowd.Vote, rng *rand.Rand) ([]int, error) {
	if rng == nil {
		return nil, fmt.Errorf("qs: nil random source")
	}
	majority, err := mv.NewPairwiseMajority(n, votes)
	if err != nil {
		return nil, fmt.Errorf("qs: %w", err)
	}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	sorter := &condorcetSorter{majority: majority, rng: rng}
	sorter.quicksort(items)
	return items, nil
}

type condorcetSorter struct {
	majority *mv.PairwiseMajority
	rng      *rand.Rand
}

// before reports whether i should rank before j: the majority direction
// when the pair was compared (a tie or an uncompared pair falls back to a
// coin flip, as the Condorcet graph has no edge to follow).
func (s *condorcetSorter) before(i, j int) bool {
	p, compared := s.majority.Preference(i, j)
	if !compared || feq.Eq(p, 0.5) {
		return s.rng.IntN(2) == 0
	}
	return p > 0.5
}

// quicksort sorts items in place with random pivots. The comparator is not
// transitive (majority cycles and coin flips), so this is the classical
// "sort a tournament" procedure: the output is a Hamiltonian path of the
// comparison relation restricted to pivot comparisons, not a total order
// certificate.
func (s *condorcetSorter) quicksort(items []int) {
	if len(items) <= 1 {
		return
	}
	pivotIdx := s.rng.IntN(len(items))
	pivot := items[pivotIdx]
	var left, right []int
	for idx, it := range items {
		if idx == pivotIdx {
			continue
		}
		if s.before(it, pivot) {
			left = append(left, it)
		} else {
			right = append(right, it)
		}
	}
	s.quicksort(left)
	s.quicksort(right)
	out := items[:0]
	out = append(out, left...)
	out = append(out, pivot)
	out = append(out, right...)
}
