package mv

import (
	"math"
	"math/rand/v2"
	"testing"

	"crowdrank/internal/crowd"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 21)) }

func vote(w, i, j int, prefersI bool) crowd.Vote {
	return crowd.Vote{Worker: w, I: i, J: j, PrefersI: prefersI}
}

// fullVotes generates votes on every pair of n objects from m workers who
// follow the identity order with the given per-vote error rate.
func fullVotes(n, m int, errRate float64, rng *rand.Rand) []crowd.Vote {
	var votes []crowd.Vote
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for w := 0; w < m; w++ {
				correct := rng.Float64() >= errRate
				votes = append(votes, vote(w, i, j, correct))
			}
		}
	}
	return votes
}

func TestNewPairwiseMajorityValidation(t *testing.T) {
	if _, err := NewPairwiseMajority(1, []crowd.Vote{vote(0, 0, 1, true)}); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewPairwiseMajority(3, nil); err == nil {
		t.Error("no votes should fail")
	}
	if _, err := NewPairwiseMajority(3, []crowd.Vote{vote(0, 0, 0, true)}); err == nil {
		t.Error("self pair should fail")
	}
	if _, err := NewPairwiseMajority(3, []crowd.Vote{vote(0, 0, 5, true)}); err == nil {
		t.Error("out-of-range pair should fail")
	}
}

func TestPreferenceOrientation(t *testing.T) {
	votes := []crowd.Vote{
		vote(0, 0, 1, true), vote(1, 0, 1, true), vote(2, 0, 1, false),
	}
	pm, err := NewPairwiseMajority(2, votes)
	if err != nil {
		t.Fatal(err)
	}
	fwd, ok := pm.Preference(0, 1)
	if !ok || math.Abs(fwd-2.0/3) > 1e-12 {
		t.Errorf("Preference(0,1) = %v, %v", fwd, ok)
	}
	rev, ok := pm.Preference(1, 0)
	if !ok || math.Abs(rev-1.0/3) > 1e-12 {
		t.Errorf("Preference(1,0) = %v, %v", rev, ok)
	}
	if _, ok := pm.Preference(0, 1); !ok || pm.N() != 2 {
		t.Error("metadata wrong")
	}
	if pm.Compared(1, 0) != true {
		t.Error("Compared should be orientation-agnostic")
	}
}

func TestWeightedMajority(t *testing.T) {
	// One heavyweight truthful worker outvotes two lightweight liars.
	votes := []crowd.Vote{
		vote(0, 0, 1, true), vote(1, 0, 1, false), vote(2, 0, 1, false),
	}
	quality := []float64{0.9, 0.1, 0.1}
	pm, err := NewWeightedMajority(2, votes, quality)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := pm.Preference(0, 1); p <= 0.5 {
		t.Errorf("weighted preference = %v, want > 0.5", p)
	}
	if _, err := NewWeightedMajority(2, votes, nil); err == nil {
		t.Error("nil quality should fail")
	}
	if _, err := NewWeightedMajority(2, votes, []float64{1}); err == nil {
		t.Error("short quality table should fail")
	}
	if _, err := NewWeightedMajority(2, votes, []float64{1, -1, 1}); err == nil {
		t.Error("negative quality should fail")
	}
}

func TestCopelandRecoversCleanOrder(t *testing.T) {
	rng := newRNG(1)
	votes := fullVotes(10, 5, 0, rng)
	pm, err := NewPairwiseMajority(10, votes)
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := pm.CopelandRanking(newRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ranking {
		if v != i {
			t.Fatalf("Copeland ranking %v should be the identity", ranking)
		}
	}
}

func TestBordaRecoversNoisyOrder(t *testing.T) {
	rng := newRNG(3)
	votes := fullVotes(12, 9, 0.15, rng)
	pm, err := NewPairwiseMajority(12, votes)
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := pm.BordaRanking(newRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// Count pairwise agreements with the identity order.
	agree := 0
	pos := make([]int, 12)
	for r, o := range ranking {
		pos[o] = r
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if pos[i] < pos[j] {
				agree++
			}
		}
	}
	if frac := float64(agree) / 66; frac < 0.9 {
		t.Errorf("Borda agreement with truth = %v, want >= 0.9", frac)
	}
	if _, err := pm.BordaRanking(nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := pm.CopelandRanking(nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestRankingsArePermutations(t *testing.T) {
	rng := newRNG(5)
	votes := fullVotes(8, 3, 0.4, rng)
	pm, err := NewPairwiseMajority(8, votes)
	if err != nil {
		t.Fatal(err)
	}
	for name, rank := range map[string]func(*rand.Rand) ([]int, error){
		"copeland": pm.CopelandRanking,
		"borda":    pm.BordaRanking,
	} {
		r, err := rank(newRNG(6))
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, 8)
		for _, v := range r {
			if v < 0 || v >= 8 || seen[v] {
				t.Fatalf("%s ranking not a permutation: %v", name, r)
			}
			seen[v] = true
		}
	}
}
