// Package mv implements the simple aggregation heuristics the paper's
// introduction contrasts with (majority voting and weighted majority
// voting), plus the classical Borda and Copeland rules they induce on
// pairwise data. These serve as sanity baselines and as building blocks for
// the QuickSort baseline's Condorcet graph.
package mv

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"crowdrank/internal/crowd"
	"crowdrank/internal/graph"
)

// PairwiseMajority summarizes the crowd's votes per canonical pair.
type PairwiseMajority struct {
	n int
	// pref[p] is the (possibly weighted) fraction of votes preferring the
	// lower-indexed object of pair p.
	pref map[graph.Pair]float64
}

// NewPairwiseMajority aggregates votes by plain majority voting: every
// worker counts equally.
func NewPairwiseMajority(n int, votes []crowd.Vote) (*PairwiseMajority, error) {
	return newMajority(n, votes, nil)
}

// NewWeightedMajority aggregates votes weighted by the provided per-worker
// qualities (weighted majority voting).
func NewWeightedMajority(n int, votes []crowd.Vote, quality []float64) (*PairwiseMajority, error) {
	if quality == nil {
		return nil, fmt.Errorf("mv: nil quality weights; use NewPairwiseMajority for unweighted voting")
	}
	return newMajority(n, votes, quality)
}

func newMajority(n int, votes []crowd.Vote, quality []float64) (*PairwiseMajority, error) {
	if n < 2 {
		return nil, fmt.Errorf("mv: need at least two objects, got n=%d", n)
	}
	if len(votes) == 0 {
		return nil, fmt.Errorf("mv: no votes")
	}
	sums := make(map[graph.Pair]float64)
	weights := make(map[graph.Pair]float64)
	for idx, v := range votes {
		if v.I < 0 || v.I >= n || v.J < 0 || v.J >= n || v.I == v.J {
			return nil, fmt.Errorf("mv: vote %d has invalid pair (%d,%d)", idx, v.I, v.J)
		}
		w := 1.0
		if quality != nil {
			if v.Worker < 0 || v.Worker >= len(quality) {
				return nil, fmt.Errorf("mv: vote %d from worker %d outside quality table", idx, v.Worker)
			}
			w = quality[v.Worker]
			if w < 0 {
				return nil, fmt.Errorf("mv: negative quality %v for worker %d", w, v.Worker)
			}
		}
		p := v.Pair()
		sums[p] += v.Value() * w
		weights[p] += w
	}
	pref := make(map[graph.Pair]float64, len(sums))
	for p, s := range sums {
		if weights[p] > 0 {
			pref[p] = s / weights[p]
		} else {
			pref[p] = 0.5
		}
	}
	return &PairwiseMajority{n: n, pref: pref}, nil
}

// N returns the number of objects.
func (pm *PairwiseMajority) N() int { return pm.n }

// Preference returns the aggregated probability that i is preferred to j
// and whether the pair was compared at all.
func (pm *PairwiseMajority) Preference(i, j int) (float64, bool) {
	p, ok := pm.pref[graph.Pair{I: i, J: j}.Canon()]
	if !ok {
		return 0.5, false
	}
	if i > j {
		p = 1 - p
	}
	return p, true
}

// Compared reports whether the pair (i, j) received any votes.
func (pm *PairwiseMajority) Compared(i, j int) bool {
	_, ok := pm.pref[graph.Pair{I: i, J: j}.Canon()]
	return ok
}

// CopelandRanking ranks objects by their Copeland score: +1 for every
// pairwise majority win, -1 for every loss (ties and uncompared pairs score
// 0). Equal scores are broken uniformly at random.
func (pm *PairwiseMajority) CopelandRanking(rng *rand.Rand) ([]int, error) {
	if rng == nil {
		return nil, fmt.Errorf("mv: nil random source")
	}
	score := make([]float64, pm.n)
	for p, pref := range pm.pref {
		switch {
		case pref > 0.5:
			score[p.I]++
			score[p.J]--
		case pref < 0.5:
			score[p.I]--
			score[p.J]++
		}
	}
	return rankByScore(score, rng), nil
}

// BordaRanking ranks objects by the sum of their pairwise support: each
// compared pair contributes its preference fraction. Equal scores are
// broken uniformly at random.
func (pm *PairwiseMajority) BordaRanking(rng *rand.Rand) ([]int, error) {
	if rng == nil {
		return nil, fmt.Errorf("mv: nil random source")
	}
	score := make([]float64, pm.n)
	for p, pref := range pm.pref {
		score[p.I] += pref
		score[p.J] += 1 - pref
	}
	return rankByScore(score, rng), nil
}

// rankByScore orders objects by descending score with random tie-breaking.
func rankByScore(score []float64, rng *rand.Rand) []int {
	order := rng.Perm(len(score)) // random base order breaks ties uniformly
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] > score[order[b]] })
	return order
}
