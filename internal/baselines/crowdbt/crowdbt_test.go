package crowdbt

import (
	"math/rand/v2"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/kendall"
	"crowdrank/internal/platform"
	"crowdrank/internal/simulate"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 51)) }

func vote(w, i, j int, prefersI bool) crowd.Vote {
	return crowd.Vote{Worker: w, I: i, J: j, PrefersI: prefersI}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// identityVotes builds full-coverage votes following the identity order
// with per-worker error rates.
func identityVotes(n int, errRates []float64, rng *rand.Rand) []crowd.Vote {
	var votes []crowd.Vote
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for w, e := range errRates {
				votes = append(votes, vote(w, i, j, rng.Float64() >= e))
			}
		}
	}
	return votes
}

func TestFitValidation(t *testing.T) {
	p := DefaultParams()
	good := []crowd.Vote{vote(0, 0, 1, true)}
	if _, err := Fit(1, 1, good, p); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Fit(2, 0, good, p); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := Fit(2, 1, nil, p); err == nil {
		t.Error("no votes should fail")
	}
	if _, err := Fit(2, 1, []crowd.Vote{vote(3, 0, 1, true)}, p); err == nil {
		t.Error("invalid vote should fail")
	}
	for _, mutate := range []func(*Params){
		func(p *Params) { p.LearningRate = 0 },
		func(p *Params) { p.Epochs = 0 },
		func(p *Params) { p.Lambda = -1 },
		func(p *Params) { p.EtaPrior = -1 },
		func(p *Params) { p.EtaPriorMean = 0 },
		func(p *Params) { p.EtaPriorMean = 1 },
	} {
		bad := DefaultParams()
		mutate(&bad)
		if _, err := Fit(2, 1, good, bad); err == nil {
			t.Errorf("invalid params %+v should fail", bad)
		}
	}
}

func TestFitRecoversCleanOrder(t *testing.T) {
	rng := newRNG(1)
	votes := identityVotes(10, []float64{0.05, 0.05, 0.05, 0.05}, rng)
	model, err := Fit(10, 4, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := kendall.Accuracy(model.Ranking(), identity(10))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("clean-order accuracy = %v", acc)
	}
	if model.Epochs != DefaultParams().Epochs {
		t.Errorf("Epochs = %d", model.Epochs)
	}
}

func TestFitIdentifiesAdversarialWorker(t *testing.T) {
	// Three honest workers and one adversary who always inverts: the
	// adversary's eta must come out lowest.
	rng := newRNG(2)
	votes := identityVotes(8, []float64{0.05, 0.05, 0.05, 0.95}, rng)
	model, err := Fit(8, 4, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		if model.Reliability[3] >= model.Reliability[w] {
			t.Errorf("adversary eta %v not below honest worker %d eta %v",
				model.Reliability[3], w, model.Reliability[w])
		}
	}
	// And the score ranking must still be correct: the model should learn
	// to flip the adversary rather than the order.
	acc, err := kendall.Accuracy(model.Ranking(), identity(8))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("accuracy with adversary = %v", acc)
	}
}

func TestFitLikelihoodImproves(t *testing.T) {
	rng := newRNG(3)
	votes := identityVotes(6, []float64{0.1, 0.2}, rng)
	short := DefaultParams()
	short.Epochs = 1
	long := DefaultParams()
	long.Epochs = 100
	m1, err := Fit(6, 2, votes, short)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(6, 2, votes, long)
	if err != nil {
		t.Fatal(err)
	}
	if m2.LogLikelihood < m1.LogLikelihood {
		t.Errorf("likelihood decreased with more epochs: %v -> %v",
			m1.LogLikelihood, m2.LogLikelihood)
	}
}

func TestActiveRunsToBudget(t *testing.T) {
	rng := newRNG(4)
	n, m := 12, 6
	truth, err := simulate.GroundTruth(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := simulate.NewCrowd(m, simulate.Gaussian, simulate.MediumQuality, rng)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := simulate.NewGroundTruthOracle(pool, truth, rng)
	if err != nil {
		t.Fatal(err)
	}
	budget := platform.Budget{Total: 40, Reward: 1, WorkersPerTask: 2} // 20 rounds
	session, err := platform.NewInteractiveSession(oracle, budget, time.Minute, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultActiveParams()
	p.Fit.Epochs = 30
	model, err := Active(session, n, m, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if session.Rounds() != 20 {
		t.Errorf("rounds = %d, want 20", session.Rounds())
	}
	if session.SimulatedLatency() != 20*time.Minute {
		t.Errorf("latency = %v", session.SimulatedLatency())
	}
	if err := kendall.ValidatePermutation(model.Ranking()); err != nil {
		t.Fatalf("ranking invalid: %v", err)
	}
}

func TestActiveValidation(t *testing.T) {
	rng := newRNG(5)
	pool, _ := simulate.NewCrowdFromSigmas([]float64{0.1})
	truth := []int{0, 1}
	oracle, _ := simulate.NewGroundTruthOracle(pool, truth, rng)
	budget := platform.Budget{Total: 2, Reward: 1, WorkersPerTask: 1}
	session, _ := platform.NewInteractiveSession(oracle, budget, 0, rng)

	if _, err := Active(nil, 2, 1, DefaultActiveParams(), rng); err == nil {
		t.Error("nil session should fail")
	}
	if _, err := Active(session, 2, 1, DefaultActiveParams(), nil); err == nil {
		t.Error("nil rng should fail")
	}
	bad := DefaultActiveParams()
	bad.CandidatePairs = 0
	if _, err := Active(session, 2, 1, bad, rng); err == nil {
		t.Error("CandidatePairs=0 should fail")
	}
	bad = DefaultActiveParams()
	bad.RefitEvery = 0
	if _, err := Active(session, 2, 1, bad, rng); err == nil {
		t.Error("RefitEvery=0 should fail")
	}
	bad = DefaultActiveParams()
	bad.ExplorationEpsilon = 2
	if _, err := Active(session, 2, 1, bad, rng); err == nil {
		t.Error("epsilon>1 should fail")
	}
	if _, err := Active(session, 1, 1, DefaultActiveParams(), rng); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestSigmoid(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Error("sigmoid(0) != 0.5")
	}
	if sigmoid(50) < 0.999 || sigmoid(-50) > 0.001 {
		t.Error("sigmoid saturation wrong")
	}
	// Stability: extreme arguments must not produce NaN.
	for _, x := range []float64{-1e9, 1e9} {
		s := sigmoid(x)
		if s < 0 || s > 1 || s != s {
			t.Errorf("sigmoid(%v) = %v", x, s)
		}
	}
}
