// Package crowdbt implements the CrowdBT baseline (Chen, Bennett,
// Collins-Thompson, Horvitz, "Pairwise ranking aggregation in a crowdsourced
// setting", WSDM 2013), the paper's representative of the learning-based
// truth-discovery category.
//
// CrowdBT extends the Bradley-Terry model with a per-worker reliability
// eta_k: the probability that worker k's vote follows the true pairwise
// order. The vote likelihood is
//
//	P(k says i ≻ j) = eta_k * sigma(s_i - s_j) + (1 - eta_k) * sigma(s_j - s_i)
//
// with sigma the logistic function and s the latent object scores. Fit
// maximizes the regularized log-likelihood by gradient ascent; Active runs
// the paper's *interactive* protocol — one comparison crowdsourced per
// round, chosen by an uncertainty utility — against a platform session,
// which is what makes CrowdBT slow at scale (Table I's 26,012 seconds for
// 300 objects; the effect, not the absolute number, is reproduced here).
package crowdbt

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"crowdrank/internal/crowd"
	"crowdrank/internal/platform"
)

// Params tunes the batch maximum-likelihood fit.
type Params struct {
	// LearningRate is the initial gradient step size.
	LearningRate float64
	// Epochs is the number of full passes over the votes.
	Epochs int
	// Lambda is the L2 regularization strength on the scores (the virtual
	// node regularization of the original paper collapses to an L2 pull
	// toward zero in the offline setting).
	Lambda float64
	// EtaPrior pulls reliabilities toward EtaPriorMean with this strength,
	// mirroring CrowdBT's Beta prior on eta.
	EtaPrior     float64
	EtaPriorMean float64
}

// DefaultParams returns a fit configuration that converges on all the
// reproduction workloads.
func DefaultParams() Params {
	return Params{
		LearningRate: 2.0,
		Epochs:       200,
		Lambda:       1e-3,
		EtaPrior:     0.05,
		EtaPriorMean: 0.9,
	}
}

func (p Params) validate() error {
	if p.LearningRate <= 0 {
		return fmt.Errorf("crowdbt: LearningRate must be positive, got %v", p.LearningRate)
	}
	if p.Epochs < 1 {
		return fmt.Errorf("crowdbt: Epochs must be >= 1, got %d", p.Epochs)
	}
	if p.Lambda < 0 {
		return fmt.Errorf("crowdbt: negative Lambda %v", p.Lambda)
	}
	if p.EtaPrior < 0 {
		return fmt.Errorf("crowdbt: negative EtaPrior %v", p.EtaPrior)
	}
	if p.EtaPriorMean <= 0 || p.EtaPriorMean >= 1 {
		return fmt.Errorf("crowdbt: EtaPriorMean %v outside (0,1)", p.EtaPriorMean)
	}
	return nil
}

// Model holds the fitted latent scores and worker reliabilities.
type Model struct {
	// Scores are the Bradley-Terry latent scores, one per object.
	Scores []float64
	// Reliability holds eta_k per worker, in (0, 1).
	Reliability []float64
	// LogLikelihood is the final (unregularized) data log-likelihood.
	LogLikelihood float64
	// Epochs is the number of passes performed.
	Epochs int
}

// Ranking returns the objects ordered by descending score (best first).
// Ties preserve object-id order.
func (m *Model) Ranking() []int {
	order := make([]int, len(m.Scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return m.Scores[order[a]] > m.Scores[order[b]] })
	return order
}

func sigmoid(x float64) float64 {
	// Numerically stable logistic.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Fit estimates scores and reliabilities from a fixed vote set by gradient
// ascent on the regularized log-likelihood.
func Fit(n, m int, votes []crowd.Vote, p Params) (*Model, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("crowdbt: need at least two objects, got n=%d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("crowdbt: need at least one worker, got m=%d", m)
	}
	if len(votes) == 0 {
		return nil, fmt.Errorf("crowdbt: no votes")
	}
	for idx, v := range votes {
		if err := v.Validate(n, m); err != nil {
			return nil, fmt.Errorf("crowdbt: vote %d: %w", idx, err)
		}
	}

	model := &Model{
		Scores:      make([]float64, n),
		Reliability: make([]float64, m),
	}
	for k := range model.Reliability {
		model.Reliability[k] = p.EtaPriorMean
	}

	// Gradients are averaged over votes (mean log-likelihood ascent) so the
	// step size is independent of the data volume; an unnormalized sum
	// gradient diverges once thousands of votes accumulate.
	gradS := make([]float64, n)
	gradEta := make([]float64, m)
	perObject := make([]float64, n)
	perWorker := make([]float64, m)
	for _, v := range votes {
		perObject[v.I]++
		perObject[v.J]++
		perWorker[v.Worker]++
	}
	for epoch := 0; epoch < p.Epochs; epoch++ {
		lr := p.LearningRate / (1 + 0.02*float64(epoch))
		for i := range gradS {
			gradS[i] = -p.Lambda * model.Scores[i]
		}
		for k := range gradEta {
			gradEta[k] = p.EtaPrior * (p.EtaPriorMean - model.Reliability[k])
		}
		ll := accumulateGradients(votes, model, gradS, gradEta)
		for i := range model.Scores {
			denom := math.Max(perObject[i], 1)
			model.Scores[i] += lr * gradS[i] / denom
		}
		for k := range model.Reliability {
			denom := math.Max(perWorker[k], 1)
			eta := model.Reliability[k] + lr*gradEta[k]/denom
			model.Reliability[k] = clamp(eta, 0.01, 0.99)
		}
		model.LogLikelihood = ll
		model.Epochs = epoch + 1
	}
	return model, nil
}

// accumulateGradients adds the data gradients of the log-likelihood into
// gradS and gradEta and returns the data log-likelihood.
func accumulateGradients(votes []crowd.Vote, model *Model, gradS, gradEta []float64) float64 {
	ll := 0.0
	for _, v := range votes {
		winner, loser := v.I, v.J
		if !v.PrefersI {
			winner, loser = v.J, v.I
		}
		eta := model.Reliability[v.Worker]
		pWin := sigmoid(model.Scores[winner] - model.Scores[loser])
		prob := eta*pWin + (1-eta)*(1-pWin)
		if prob < 1e-12 {
			prob = 1e-12
		}
		ll += math.Log(prob)
		// d prob / d (s_winner - s_loser) = (2 eta - 1) pWin (1 - pWin)
		common := (2*eta - 1) * pWin * (1 - pWin) / prob
		gradS[winner] += common
		gradS[loser] -= common
		// d prob / d eta = 2 pWin - 1
		gradEta[v.Worker] += (2*pWin - 1) / prob
	}
	return ll
}

func clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// ActiveParams tunes the interactive protocol.
type ActiveParams struct {
	// Fit configures the periodic model refits.
	Fit Params
	// CandidatePairs bounds the number of random candidate pairs scored
	// per round; the original expected-information-gain scan is O(n^2) per
	// round, which the candidate sample approximates.
	CandidatePairs int
	// RefitEvery refits the model after this many crowdsourced pairs (a
	// full refit per round is the faithful-but-slowest choice; 1 keeps it
	// faithful).
	RefitEvery int
	// ExplorationEpsilon is the probability of crowdsourcing a uniformly
	// random pair instead of the utility maximizer (CrowdBT's
	// exploration-exploitation mix).
	ExplorationEpsilon float64
}

// DefaultActiveParams returns the interactive configuration used by the
// baseline comparisons.
func DefaultActiveParams() ActiveParams {
	return ActiveParams{
		Fit:                DefaultParams(),
		CandidatePairs:     64,
		RefitEvery:         1,
		ExplorationEpsilon: 0.1,
	}
}

// Active runs the interactive CrowdBT protocol against a platform session
// until the budget is exhausted: each round it selects the comparison with
// the highest utility (the model's uncertainty pWin*(1-pWin) over a
// candidate sample), crowdsources it, and refits. It returns the final
// model; the session records rounds, spend, and simulated latency.
func Active(session *platform.InteractiveSession, n, m int, p ActiveParams, rng *rand.Rand) (*Model, error) {
	if session == nil {
		return nil, fmt.Errorf("crowdbt: nil session")
	}
	if rng == nil {
		return nil, fmt.Errorf("crowdbt: nil random source")
	}
	if err := p.Fit.validate(); err != nil {
		return nil, err
	}
	if p.CandidatePairs < 1 {
		return nil, fmt.Errorf("crowdbt: CandidatePairs must be >= 1, got %d", p.CandidatePairs)
	}
	if p.RefitEvery < 1 {
		return nil, fmt.Errorf("crowdbt: RefitEvery must be >= 1, got %d", p.RefitEvery)
	}
	if p.ExplorationEpsilon < 0 || p.ExplorationEpsilon > 1 {
		return nil, fmt.Errorf("crowdbt: ExplorationEpsilon %v outside [0,1]", p.ExplorationEpsilon)
	}
	if n < 2 {
		return nil, fmt.Errorf("crowdbt: need at least two objects, got n=%d", n)
	}

	model := &Model{Scores: make([]float64, n), Reliability: make([]float64, m)}
	for k := range model.Reliability {
		model.Reliability[k] = p.Fit.EtaPriorMean
	}

	asked := 0
	for session.CanAfford() {
		i, j := selectPair(model, n, p, rng)
		if _, err := session.Ask(i, j); err != nil {
			return nil, fmt.Errorf("crowdbt: %w", err)
		}
		asked++
		if asked%p.RefitEvery == 0 {
			fitted, err := Fit(n, m, session.Votes(), p.Fit)
			if err != nil {
				return nil, fmt.Errorf("crowdbt: refit after %d rounds: %w", asked, err)
			}
			model = fitted
		}
	}
	if len(session.Votes()) > 0 && asked%p.RefitEvery != 0 {
		fitted, err := Fit(n, m, session.Votes(), p.Fit)
		if err != nil {
			return nil, fmt.Errorf("crowdbt: final fit: %w", err)
		}
		model = fitted
	}
	return model, nil
}

// selectPair picks the next comparison: with probability ExplorationEpsilon
// a uniformly random pair, otherwise the candidate pair whose outcome the
// model is least certain about.
func selectPair(model *Model, n int, p ActiveParams, rng *rand.Rand) (int, int) {
	randomPair := func() (int, int) {
		i := rng.IntN(n)
		j := rng.IntN(n - 1)
		if j >= i {
			j++
		}
		return i, j
	}
	if rng.Float64() < p.ExplorationEpsilon {
		return randomPair()
	}
	bestI, bestJ := randomPair()
	bestUtility := -1.0
	for c := 0; c < p.CandidatePairs; c++ {
		i, j := randomPair()
		pWin := sigmoid(model.Scores[i] - model.Scores[j])
		utility := pWin * (1 - pWin)
		if utility > bestUtility {
			bestUtility = utility
			bestI, bestJ = i, j
		}
	}
	return bestI, bestJ
}
