package btl

import (
	"math"
	"math/rand/v2"
	"testing"

	"crowdrank/internal/crowd"
	"crowdrank/internal/kendall"
)

func vote(w, i, j int, prefersI bool) crowd.Vote {
	return crowd.Vote{Worker: w, I: i, J: j, PrefersI: prefersI}
}

func TestFitValidation(t *testing.T) {
	good := []crowd.Vote{vote(0, 0, 1, true)}
	if _, err := Fit(1, good, DefaultParams()); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Fit(3, nil, DefaultParams()); err == nil {
		t.Error("no votes should fail")
	}
	if _, err := Fit(3, []crowd.Vote{vote(0, 0, 0, true)}, DefaultParams()); err == nil {
		t.Error("self pair should fail")
	}
	for _, mutate := range []func(*Params){
		func(p *Params) { p.MaxIterations = 0 },
		func(p *Params) { p.Tolerance = -1 },
		func(p *Params) { p.Smoothing = -1 },
	} {
		bad := DefaultParams()
		mutate(&bad)
		if _, err := Fit(3, good, bad); err == nil {
			t.Errorf("invalid params %+v should fail", bad)
		}
	}
}

func TestFitRecoversOrder(t *testing.T) {
	// Full coverage, 10% error rate: BTL should recover the identity order
	// nearly perfectly.
	rng := rand.New(rand.NewPCG(1, 2))
	n := 15
	var votes []crowd.Vote
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for rep := 0; rep < 10; rep++ {
				votes = append(votes, vote(rep, i, j, rng.Float64() >= 0.1))
			}
		}
	}
	model, err := Fit(n, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !model.Converged {
		t.Error("MM should converge on this input")
	}
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	acc, err := kendall.Accuracy(model.Ranking(), identity)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
	// Strengths are normalized and ordered with the ranking.
	sum := 0.0
	for _, s := range model.Strengths {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("strengths sum to %v", sum)
	}
}

func TestFitStrengthRatiosMatchWinRates(t *testing.T) {
	// Two objects, 3:1 win ratio -> theta_0/theta_1 ~ 3.
	var votes []crowd.Vote
	for rep := 0; rep < 300; rep++ {
		votes = append(votes, vote(0, 0, 1, rep%4 != 0))
	}
	p := DefaultParams()
	p.Smoothing = 0
	model, err := Fit(2, votes, p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := model.Strengths[0] / model.Strengths[1]
	if math.Abs(ratio-3) > 0.05 {
		t.Errorf("strength ratio = %v, want ~3", ratio)
	}
}

func TestFitUnanimousWinnerStaysFinite(t *testing.T) {
	// Object 0 wins every vote: smoothing must keep all strengths positive
	// and the winner on top.
	var votes []crowd.Vote
	for rep := 0; rep < 20; rep++ {
		votes = append(votes, vote(0, 0, 1, true), vote(0, 0, 2, true))
	}
	model, err := Fit(3, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if model.Ranking()[0] != 0 {
		t.Errorf("ranking = %v", model.Ranking())
	}
	for i, s := range model.Strengths {
		if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
			t.Errorf("strength[%d] = %v", i, s)
		}
	}
}

func TestFitIsolatedObject(t *testing.T) {
	// Object 3 never compared: must keep a finite strength and the fit must
	// not crash.
	votes := []crowd.Vote{vote(0, 0, 1, true), vote(0, 1, 2, true)}
	model, err := Fit(4, votes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if model.Strengths[3] <= 0 {
		t.Errorf("isolated object strength = %v", model.Strengths[3])
	}
	if len(model.Ranking()) != 4 {
		t.Error("ranking must cover all objects")
	}
}
