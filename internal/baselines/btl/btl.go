// Package btl implements the plain Bradley-Terry-Luce model (Bradley &
// Terry 1952, reference [19] of the paper) fitted by minorize-maximize
// iterations: every object gets a positive strength theta_i with
// P(i beats j) = theta_i / (theta_i + theta_j), and votes are aggregated
// without any worker-reliability modeling. It serves as the scientific
// control between the naive majority baselines and CrowdBT — the
// difference between BTL and CrowdBT isolates the value of modeling worker
// quality.
package btl

import (
	"fmt"
	"math"
	"sort"

	"crowdrank/internal/crowd"
)

// Params tunes the MM fit.
type Params struct {
	// MaxIterations caps the minorize-maximize loop.
	MaxIterations int
	// Tolerance declares convergence when strengths change by less than
	// this (L-infinity, after normalization).
	Tolerance float64
	// Smoothing adds this pseudo-count of wins in each direction of every
	// compared pair, keeping strengths finite when an object wins or loses
	// every comparison.
	Smoothing float64
}

// DefaultParams returns a fit configuration suitable for the reproduction
// workloads.
func DefaultParams() Params {
	return Params{MaxIterations: 200, Tolerance: 1e-9, Smoothing: 0.1}
}

func (p Params) validate() error {
	if p.MaxIterations < 1 {
		return fmt.Errorf("btl: MaxIterations must be >= 1, got %d", p.MaxIterations)
	}
	if p.Tolerance < 0 {
		return fmt.Errorf("btl: negative tolerance %v", p.Tolerance)
	}
	if p.Smoothing < 0 {
		return fmt.Errorf("btl: negative smoothing %v", p.Smoothing)
	}
	return nil
}

// Model holds the fitted strengths.
type Model struct {
	// Strengths are the BTL theta parameters, normalized to sum to 1.
	Strengths []float64
	// Iterations performed and whether the tolerance was met.
	Iterations int
	Converged  bool
}

// Ranking returns the objects by descending strength (ties by object id).
func (m *Model) Ranking() []int {
	order := make([]int, len(m.Strengths))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return m.Strengths[order[a]] > m.Strengths[order[b]]
	})
	return order
}

// Fit estimates BTL strengths from the votes with the classical MM
// update theta_i <- W_i / sum_j (n_ij / (theta_i + theta_j)), where W_i is
// object i's total wins and n_ij the number of comparisons between i and j.
func Fit(n int, votes []crowd.Vote, p Params) (*Model, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("btl: need at least two objects, got n=%d", n)
	}
	if len(votes) == 0 {
		return nil, fmt.Errorf("btl: no votes")
	}

	// wins[i][j] = number of votes preferring i over j (smoothed).
	type pairKey struct{ i, j int }
	wins := make(map[pairKey]float64)
	for idx, v := range votes {
		if v.I < 0 || v.I >= n || v.J < 0 || v.J >= n || v.I == v.J {
			return nil, fmt.Errorf("btl: vote %d has invalid pair (%d,%d)", idx, v.I, v.J)
		}
		winner, loser := v.I, v.J
		if !v.PrefersI {
			winner, loser = v.J, v.I
		}
		wins[pairKey{winner, loser}]++
	}
	if p.Smoothing > 0 {
		seen := make(map[pairKey]bool, len(wins))
		for k := range wins {
			lo, hi := k.i, k.j
			if lo > hi {
				lo, hi = hi, lo
			}
			seen[pairKey{lo, hi}] = true
		}
		for k := range seen {
			wins[pairKey{k.i, k.j}] += p.Smoothing
			wins[pairKey{k.j, k.i}] += p.Smoothing
		}
	}

	// Adjacency for the MM update.
	type opponent struct {
		j     int
		games float64 // n_ij
	}
	totalWins := make([]float64, n)
	opponents := make([][]opponent, n)
	gameCount := make(map[pairKey]float64)
	for k, w := range wins {
		totalWins[k.i] += w
		lo, hi := k.i, k.j
		if lo > hi {
			lo, hi = hi, lo
		}
		gameCount[pairKey{lo, hi}] += w
	}
	for k, games := range gameCount {
		opponents[k.i] = append(opponents[k.i], opponent{j: k.j, games: games})
		opponents[k.j] = append(opponents[k.j], opponent{j: k.i, games: games})
	}

	theta := make([]float64, n)
	for i := range theta {
		theta[i] = 1.0 / float64(n)
	}
	next := make([]float64, n)
	model := &Model{Strengths: theta}

	for iter := 0; iter < p.MaxIterations; iter++ {
		model.Iterations = iter + 1
		for i := 0; i < n; i++ {
			denom := 0.0
			for _, op := range opponents[i] {
				denom += op.games / (theta[i] + theta[op.j])
			}
			if denom <= 0 {
				next[i] = theta[i] // isolated object: keep its strength
				continue
			}
			next[i] = totalWins[i] / denom
			if next[i] < 1e-12 {
				next[i] = 1e-12
			}
		}
		normalize(next)
		delta := 0.0
		for i := range theta {
			d := math.Abs(next[i] - theta[i])
			if d > delta {
				delta = d
			}
		}
		copy(theta, next)
		if delta < p.Tolerance {
			model.Converged = true
			break
		}
	}
	return model, nil
}

func normalize(theta []float64) {
	sum := 0.0
	for _, v := range theta {
		sum += v
	}
	if sum <= 0 {
		return
	}
	for i := range theta {
		theta[i] /= sum
	}
}
