// Package rc implements the RepeatChoice rank-aggregation baseline (Ailon,
// "Aggregation of partial rankings, p-ratings and top-m lists",
// Algorithmica 2010), the paper's representative of the rank-aggregation
// category (Section VI-A2).
//
// RepeatChoice aggregates partial rankings by repeatedly choosing a random
// input voter and using that voter's preferences to refine the current
// blocks of tied objects. In the crowdsourced setting each worker
// contributes only a sparse set of pairwise preferences (a partial
// tournament), so a block is refined by ordering its members by the chosen
// worker's win counts restricted to the block; objects the worker never
// compared stay tied for later voters. When voters run out, remaining ties
// break uniformly at random.
//
// With a small selection ratio each worker has seen so few pairs that the
// refinement signal is weak — which is exactly why the paper finds RC no
// better than a random guess under sparse budgets (Table I, Figure 6).
package rc

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"crowdrank/internal/crowd"
)

// Rank aggregates the workers' pairwise preferences into a full ranking of
// n objects by RepeatChoice. rng drives the voter order and all
// tie-breaking.
func Rank(n int, votes []crowd.Vote, rng *rand.Rand) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("rc: need at least one object, got n=%d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("rc: nil random source")
	}
	if len(votes) == 0 {
		return nil, fmt.Errorf("rc: no votes")
	}
	for idx, v := range votes {
		if v.I < 0 || v.I >= n || v.J < 0 || v.J >= n || v.I == v.J {
			return nil, fmt.Errorf("rc: vote %d has invalid pair (%d,%d)", idx, v.I, v.J)
		}
	}

	byWorker := crowd.ByWorker(votes)
	workers := crowd.Workers(votes)
	rng.Shuffle(len(workers), func(i, j int) { workers[i], workers[j] = workers[j], workers[i] })

	blocks := [][]int{initialBlock(n)}
	for _, w := range workers {
		if allSingletons(blocks) {
			break
		}
		blocks = refine(blocks, byWorker[w])
	}

	// Break residual ties uniformly at random.
	ranking := make([]int, 0, n)
	for _, b := range blocks {
		if len(b) > 1 {
			rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		}
		ranking = append(ranking, b...)
	}
	return ranking, nil
}

func initialBlock(n int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = i
	}
	return b
}

func allSingletons(blocks [][]int) bool {
	for _, b := range blocks {
		if len(b) > 1 {
			return false
		}
	}
	return true
}

// refine splits every multi-object block according to one voter's pairwise
// preferences: members are ordered by net wins (wins minus losses) within
// the block, and members with equal net wins form a new sub-block.
func refine(blocks [][]int, workerVotes []crowd.Vote) [][]int {
	// Index this worker's preferences for O(1) lookup.
	type ordered struct{ winner, loser int }
	prefs := make(map[ordered]bool, len(workerVotes))
	for _, v := range workerVotes {
		if v.PrefersI {
			prefs[ordered{winner: v.I, loser: v.J}] = true
		} else {
			prefs[ordered{winner: v.J, loser: v.I}] = true
		}
	}

	var out [][]int
	for _, b := range blocks {
		if len(b) <= 1 {
			out = append(out, b)
			continue
		}
		net := make(map[int]int, len(b))
		informed := make(map[int]bool, len(b))
		for ai := 0; ai < len(b); ai++ {
			for bi := ai + 1; bi < len(b); bi++ {
				x, y := b[ai], b[bi]
				switch {
				case prefs[ordered{winner: x, loser: y}]:
					net[x]++
					net[y]--
					informed[x], informed[y] = true, true
				case prefs[ordered{winner: y, loser: x}]:
					net[y]++
					net[x]--
					informed[x], informed[y] = true, true
				}
			}
		}
		if len(informed) == 0 {
			out = append(out, b)
			continue
		}
		sorted := append([]int(nil), b...)
		sort.SliceStable(sorted, func(i, j int) bool { return net[sorted[i]] > net[sorted[j]] })
		// Group equal net-win members into sub-blocks.
		start := 0
		for i := 1; i <= len(sorted); i++ {
			if i == len(sorted) || net[sorted[i]] != net[sorted[start]] {
				out = append(out, sorted[start:i])
				start = i
			}
		}
	}
	return out
}
