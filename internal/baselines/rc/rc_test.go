package rc

import (
	"math/rand/v2"
	"testing"

	"crowdrank/internal/crowd"
	"crowdrank/internal/kendall"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 31)) }

func vote(w, i, j int, prefersI bool) crowd.Vote {
	return crowd.Vote{Worker: w, I: i, J: j, PrefersI: prefersI}
}

func TestRankValidation(t *testing.T) {
	if _, err := Rank(0, []crowd.Vote{vote(0, 0, 1, true)}, newRNG(1)); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Rank(3, nil, newRNG(1)); err == nil {
		t.Error("no votes should fail")
	}
	if _, err := Rank(3, []crowd.Vote{vote(0, 0, 1, true)}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := Rank(3, []crowd.Vote{vote(0, 0, 4, true)}, newRNG(1)); err == nil {
		t.Error("invalid pair should fail")
	}
}

func TestRankIsPermutation(t *testing.T) {
	votes := []crowd.Vote{
		vote(0, 0, 1, true), vote(0, 2, 3, false), vote(1, 1, 2, true),
	}
	r, err := Rank(5, votes, newRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := kendall.ValidatePermutation(r); err != nil {
		t.Fatalf("output not a permutation: %v (%v)", r, err)
	}
}

func TestRankRecoversOrderFromDenseVoters(t *testing.T) {
	// RC works when individual voters carry dense preferences: give each
	// of 4 perfect workers every pair of 8 objects in identity order.
	var votes []crowd.Vote
	n := 8
	for w := 0; w < 4; w++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				votes = append(votes, vote(w, i, j, true))
			}
		}
	}
	r, err := Rank(n, votes, newRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r {
		if v != i {
			t.Fatalf("dense perfect voters: ranking %v should be the identity", r)
		}
	}
}

func TestRankDegradesUnderSparseVotes(t *testing.T) {
	// The paper's finding: with sparse per-worker coverage RC is close to a
	// random guess. Give 30 workers one random pair each over 30 objects
	// and check the result is far from perfect (and still a permutation).
	rng := newRNG(4)
	n := 30
	truthAcc := 0.0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		var votes []crowd.Vote
		for w := 0; w < 30; w++ {
			i, j := rng.IntN(n), rng.IntN(n)
			if i == j {
				j = (i + 1) % n
			}
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			votes = append(votes, vote(w, lo, hi, true)) // truthful: identity order
		}
		r, err := Rank(n, votes, rng)
		if err != nil {
			t.Fatal(err)
		}
		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		acc, err := kendall.Accuracy(r, identity)
		if err != nil {
			t.Fatal(err)
		}
		truthAcc += acc
	}
	mean := truthAcc / trials
	if mean > 0.75 {
		t.Errorf("sparse RC accuracy %v unexpectedly high; paper reports near-random", mean)
	}
	if mean < 0.3 {
		t.Errorf("sparse RC accuracy %v below random-guess floor", mean)
	}
}

func TestRankDeterministicPerSeed(t *testing.T) {
	votes := []crowd.Vote{
		vote(0, 0, 1, true), vote(1, 1, 2, false), vote(2, 0, 2, true),
	}
	a, err := Rank(4, votes, newRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rank(4, votes, newRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different rankings: %v vs %v", a, b)
		}
	}
}
