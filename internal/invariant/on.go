//go:build crowdrank_invariants

package invariant

import "crowdrank/internal/graph"

// Enabled reports whether the build carries the crowdrank_invariants tag
// and the Check wrappers are live.
const Enabled = true

// CheckTaskGraph panics if the generated task graph violates the Section IV
// assignment invariants.
func CheckTaskGraph(g *graph.TaskGraph, l int) { must(VerifyTaskGraph(g, l)) }

// CheckSmoothed panics if the smoothed preference graph violates the
// Section V-B invariants.
func CheckSmoothed(g *graph.PreferenceGraph) { must(VerifySmoothed(g)) }

// CheckTournament panics if the propagated closure violates the Section V-C
// tournament invariants.
func CheckTournament(g *graph.PreferenceGraph) { must(VerifyTournament(g)) }

// CheckRanking panics if the search result is not a permutation of the n
// objects.
func CheckRanking(n int, ranking []int) { must(VerifyRanking(n, ranking)) }

func must(err error) {
	if err != nil {
		panic("crowdrank invariant violated: " + err.Error())
	}
}
