//go:build !crowdrank_invariants

package invariant

import "crowdrank/internal/graph"

// Enabled reports whether the build carries the crowdrank_invariants tag
// and the Check wrappers are live.
const Enabled = false

// The untagged Check wrappers have empty bodies: they inline to nothing, so
// normal builds pay zero cost for the assertion hooks wired into the
// pipeline stages. The Verify functions in verify.go remain available as
// the explicit, error-returning oracle (tests and fuzz targets use them).

// CheckTaskGraph is a no-op without the crowdrank_invariants build tag.
func CheckTaskGraph(*graph.TaskGraph, int) {}

// CheckSmoothed is a no-op without the crowdrank_invariants build tag.
func CheckSmoothed(*graph.PreferenceGraph) {}

// CheckTournament is a no-op without the crowdrank_invariants build tag.
func CheckTournament(*graph.PreferenceGraph) {}

// CheckRanking is a no-op without the crowdrank_invariants build tag.
func CheckRanking(int, []int) {}
