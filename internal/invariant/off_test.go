//go:build !crowdrank_invariants

package invariant_test

import (
	"testing"

	"crowdrank/internal/invariant"
)

// Without the build tag the Check wrappers must compile to no-ops: Enabled is
// false and even blatantly corrupt input passes through silently. The
// explicit Verify functions remain the way to get an error (verify_test.go).

func TestEnabledIsFalseWithoutTag(t *testing.T) {
	if invariant.Enabled {
		t.Fatal("invariant.Enabled = true in an untagged build")
	}
}

func TestCheckWrappersAreNoOpsWithoutTag(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("untagged Check wrapper panicked: %v", r)
		}
	}()
	invariant.CheckTaskGraph(nil, -1)
	invariant.CheckSmoothed(nil)
	invariant.CheckTournament(nil)
	invariant.CheckRanking(2, []int{5, 5, 5})
}
