// Package invariant is the runtime assertion layer for the paper's
// structural guarantees. Each pipeline stage has a Verify function that
// checks the property the downstream stages rely on and returns a
// descriptive error naming the offending vertex or pair:
//
//   - VerifyTaskGraph — after task assignment (Section IV): the task graph
//     is connected (Theorem 4.2's necessary condition), has exactly the
//     budgeted number of edges, and is near-regular (Theorem 4.1/4.4: the
//     ideal flat degree sequence is floor(2l/n) or floor(2l/n)+1, and the
//     stub-pairing construction keeps every vertex within DegreeSlack of
//     it).
//   - VerifySmoothed — after preference smoothing (Section V-B): no
//     1-edges survive, every compared pair carries positive weight in both
//     directions, and — when the comparison support is connected — the
//     smoothed graph is strongly connected (the Theorem 5.1 precondition).
//   - VerifyTournament — after preference propagation (Section V-C): the
//     closure is a complete pairwise-normalized tournament, w_ij in (0, 1)
//     and w_ij + w_ji = 1 within Tol for every pair.
//   - VerifyRanking — after best-ranking search (Section V-D): the result
//     is a permutation of the n objects.
//
// The Verify functions are always compiled and are the oracle used by the
// fuzz targets. The Check wrappers wired into the pipeline stages are
// build-tag gated: under -tags crowdrank_invariants they panic on the first
// violation; in normal builds they have empty bodies and compile to
// nothing, so production inference pays zero cost.
package invariant

import (
	"fmt"
	"math"

	"crowdrank/internal/graph"
)

// Tol is the absolute tolerance for the tournament normalization
// w_ij + w_ji = 1. Propagation computes w_ji as 1 - w_ij, so violations
// beyond rounding indicate corrupted state, not float noise.
const Tol = 1e-9

// DegreeSlack is how far a vertex degree may stray from the ideal flat
// sequence {floor(2l/n), floor(2l/n)+1}. The generator builds a Hamiltonian
// path first and then pairs degree stubs; conflict resolution can leave a
// vertex one below or one above its flat target, which taskgen's own spread
// tests document as the real guarantee.
const DegreeSlack = 1

// VerifyTaskGraph checks the Section IV assignment invariants: connectivity,
// the exact edge budget l, and near-regular degrees — every vertex within
// DegreeSlack of the ideal flat sequence floor(2l/n)..floor(2l/n)+1.
func VerifyTaskGraph(g *graph.TaskGraph, l int) error {
	if g == nil {
		return fmt.Errorf("invariant: nil task graph")
	}
	if g.M() != l {
		return fmt.Errorf("invariant: task graph has %d edges, budget is %d", g.M(), l)
	}
	if !g.Connected() {
		return fmt.Errorf("invariant: task graph is disconnected; no full ranking can be inferred (Theorem 4.2)")
	}
	n := g.N()
	base := 2 * l / n
	lo, hi := base-DegreeSlack, base+1+DegreeSlack
	if lo < 1 && n > 1 {
		lo = 1 // a connected graph on n > 1 vertices has no isolated vertex
	}
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d < lo || d > hi {
			return fmt.Errorf("invariant: vertex %d has degree %d, outside the near-regular range [%d, %d] (Theorem 4.1)", v, d, lo, hi)
		}
	}
	return nil
}

// VerifySmoothed checks the Section V-B smoothing invariants: every directed
// edge has a positive-weight reverse (no unanswered reverse preferences
// remain), no edge keeps weight exactly 1 (all 1-edges were relaxed), and
// when the comparison support is connected the graph is strongly connected,
// which is what Theorem 5.1 needs from this stage.
func VerifySmoothed(g *graph.PreferenceGraph) error {
	if g == nil {
		return fmt.Errorf("invariant: nil preference graph")
	}
	n := g.N()
	for i := 0; i < n; i++ {
		for _, j := range g.Out(i) {
			w := g.Weight(i, j)
			if w >= 1 {
				return fmt.Errorf("invariant: smoothed edge (%d,%d) kept weight %v; smoothing must relax every 1-edge below 1", i, j, w)
			}
			if g.Weight(j, i) <= 0 {
				return fmt.Errorf("invariant: smoothed pair (%d,%d) is one-directional: w[%d][%d]=%v but w[%d][%d]=0", i, j, i, j, w, j, i)
			}
		}
	}
	if supportConnected(g) && !g.StronglyConnected() {
		return fmt.Errorf("invariant: smoothed graph has connected comparison support but is not strongly connected (Theorem 5.1 precondition)")
	}
	return nil
}

// supportConnected reports whether the undirected comparison-support graph
// (an edge wherever either direction carries positive weight) is connected.
func supportConnected(g *graph.PreferenceGraph) bool {
	n := g.N()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lists := range [2][]int{g.Out(v), g.In(v)} {
			for _, u := range lists {
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
		}
	}
	return count == n
}

// VerifyTournament checks the Section V-C closure invariants: completeness
// (every ordered pair carries positive weight, Theorem 5.1's Hamiltonicity
// condition) and pairwise normalization w_ij + w_ji = 1 within Tol, with
// both weights strictly inside (0, 1).
func VerifyTournament(g *graph.PreferenceGraph) error {
	if g == nil {
		return fmt.Errorf("invariant: nil preference graph")
	}
	n := g.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			wij, wji := g.Weight(i, j), g.Weight(j, i)
			if wij <= 0 || wij >= 1 || wji <= 0 || wji >= 1 {
				return fmt.Errorf("invariant: closure pair (%d,%d) has weights (%v, %v) outside (0,1); the tournament must be complete", i, j, wij, wji)
			}
			if sum := wij + wji; math.Abs(sum-1) > Tol {
				return fmt.Errorf("invariant: closure pair (%d,%d) violates pairwise normalization: w_ij + w_ji = %v, |sum-1| = %.3g > %.0e", i, j, sum, math.Abs(sum-1), Tol)
			}
		}
	}
	return nil
}

// VerifyRanking checks the Section V-D search invariant: the ranking is a
// permutation of the n objects (every object placed exactly once).
func VerifyRanking(n int, ranking []int) error {
	if len(ranking) != n {
		return fmt.Errorf("invariant: ranking has %d entries for %d objects", len(ranking), n)
	}
	seen := make([]bool, n)
	for pos, v := range ranking {
		if v < 0 || v >= n {
			return fmt.Errorf("invariant: ranking position %d holds out-of-range object %d (n=%d)", pos, v, n)
		}
		if seen[v] {
			return fmt.Errorf("invariant: ranking places object %d twice (second occurrence at position %d)", v, pos)
		}
		seen[v] = true
	}
	return nil
}
