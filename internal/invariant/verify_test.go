package invariant_test

import (
	"strings"
	"testing"

	"crowdrank/internal/graph"
	"crowdrank/internal/invariant"
)

// cycleTaskGraph builds the n-cycle: connected, 2-regular, l = n edges.
func cycleTaskGraph(t *testing.T, n int) *graph.TaskGraph {
	t.Helper()
	g, err := graph.NewTaskGraph(n)
	if err != nil {
		t.Fatalf("NewTaskGraph(%d): %v", n, err)
	}
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

// completeTournament builds a valid normalized tournament on n objects.
func completeTournament(t *testing.T, n int) *graph.PreferenceGraph {
	t.Helper()
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		t.Fatalf("NewPreferenceGraph(%d): %v", n, err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.SetWeight(i, j, 0.6); err != nil {
				t.Fatalf("SetWeight(%d,%d): %v", i, j, err)
			}
			if err := g.SetWeight(j, i, 0.4); err != nil {
				t.Fatalf("SetWeight(%d,%d): %v", j, i, err)
			}
		}
	}
	return g
}

func TestVerifyTaskGraph(t *testing.T) {
	tests := []struct {
		name    string
		build   func(t *testing.T) (*graph.TaskGraph, int)
		wantErr string // empty means the graph must verify
	}{
		{
			name: "valid cycle",
			build: func(t *testing.T) (*graph.TaskGraph, int) {
				return cycleTaskGraph(t, 6), 6
			},
		},
		{
			name: "valid near-regular path",
			build: func(t *testing.T) (*graph.TaskGraph, int) {
				// Path 0-1-2-3: degrees [1,2,2,1], base = 1, overflow = 2.
				g, err := graph.NewTaskGraph(4)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
					if err := g.AddEdge(e[0], e[1]); err != nil {
						t.Fatal(err)
					}
				}
				return g, 3
			},
		},
		{
			name: "nil graph",
			build: func(t *testing.T) (*graph.TaskGraph, int) {
				return nil, 0
			},
			wantErr: "nil task graph",
		},
		{
			name: "wrong edge budget",
			build: func(t *testing.T) (*graph.TaskGraph, int) {
				return cycleTaskGraph(t, 6), 7
			},
			wantErr: "6 edges, budget is 7",
		},
		{
			name: "disconnected two cycles",
			build: func(t *testing.T) (*graph.TaskGraph, int) {
				// Two disjoint triangles: every degree is 2 (regular!) but
				// no ranking spanning both components can be inferred.
				g, err := graph.NewTaskGraph(6)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
					if err := g.AddEdge(e[0], e[1]); err != nil {
						t.Fatal(err)
					}
				}
				return g, 6
			},
			wantErr: "disconnected",
		},
		{
			name: "irregular star",
			build: func(t *testing.T) (*graph.TaskGraph, int) {
				// Star on 6 vertices: center degree 5, leaves degree 1;
				// base = 2*5/6 = 1, so degree 5 is far outside [1, 2].
				g, err := graph.NewTaskGraph(6)
				if err != nil {
					t.Fatal(err)
				}
				for v := 1; v < 6; v++ {
					if err := g.AddEdge(0, v); err != nil {
						t.Fatal(err)
					}
				}
				return g, 5
			},
			wantErr: "vertex 0 has degree 5",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, l := tc.build(t)
			err := invariant.VerifyTaskGraph(g, l)
			checkVerdict(t, err, tc.wantErr)
		})
	}
}

func TestVerifySmoothed(t *testing.T) {
	tests := []struct {
		name    string
		build   func(t *testing.T) *graph.PreferenceGraph
		wantErr string
	}{
		{
			name: "valid bidirectional triangle",
			build: func(t *testing.T) *graph.PreferenceGraph {
				return completeTournament(t, 3)
			},
		},
		{
			name: "nil graph",
			build: func(t *testing.T) *graph.PreferenceGraph {
				return nil
			},
			wantErr: "nil preference graph",
		},
		{
			name: "surviving 1-edge",
			build: func(t *testing.T) *graph.PreferenceGraph {
				g := completeTournament(t, 3)
				if err := g.SetWeight(1, 2, 1); err != nil {
					t.Fatal(err)
				}
				return g
			},
			wantErr: "edge (1,2) kept weight 1",
		},
		{
			name: "one-directional pair",
			build: func(t *testing.T) *graph.PreferenceGraph {
				g := completeTournament(t, 3)
				if err := g.SetWeight(2, 0, 0); err != nil {
					t.Fatal(err)
				}
				return g
			},
			wantErr: "pair (0,2) is one-directional",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.VerifySmoothed(tc.build(t))
			checkVerdict(t, err, tc.wantErr)
		})
	}
}

func TestVerifyTournament(t *testing.T) {
	tests := []struct {
		name    string
		build   func(t *testing.T) *graph.PreferenceGraph
		wantErr string
	}{
		{
			name: "valid tournament",
			build: func(t *testing.T) *graph.PreferenceGraph {
				return completeTournament(t, 4)
			},
		},
		{
			name: "nil graph",
			build: func(t *testing.T) *graph.PreferenceGraph {
				return nil
			},
			wantErr: "nil preference graph",
		},
		{
			name: "missing pair breaks completeness",
			build: func(t *testing.T) *graph.PreferenceGraph {
				g := completeTournament(t, 4)
				if err := g.SetWeight(1, 3, 0); err != nil {
					t.Fatal(err)
				}
				return g
			},
			wantErr: "pair (1,3)",
		},
		{
			name: "normalization broken w_ij + w_ji != 1",
			build: func(t *testing.T) *graph.PreferenceGraph {
				g := completeTournament(t, 4)
				// 0.7 + 0.4 = 1.1: well past Tol.
				if err := g.SetWeight(0, 2, 0.7); err != nil {
					t.Fatal(err)
				}
				return g
			},
			wantErr: "pair (0,2) violates pairwise normalization",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.VerifyTournament(tc.build(t))
			checkVerdict(t, err, tc.wantErr)
		})
	}
}

func TestVerifyRanking(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		ranking []int
		wantErr string
	}{
		{name: "valid permutation", n: 4, ranking: []int{2, 0, 3, 1}},
		{name: "empty valid", n: 0, ranking: nil},
		{name: "too short", n: 4, ranking: []int{2, 0, 3}, wantErr: "3 entries for 4 objects"},
		{name: "out of range", n: 4, ranking: []int{2, 0, 4, 1}, wantErr: "position 2 holds out-of-range object 4"},
		{name: "negative object", n: 3, ranking: []int{0, -1, 2}, wantErr: "out-of-range object -1"},
		{name: "duplicate object", n: 4, ranking: []int{2, 0, 3, 2}, wantErr: "object 2 twice (second occurrence at position 3)"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.VerifyRanking(tc.n, tc.ranking)
			checkVerdict(t, err, tc.wantErr)
		})
	}
}

// checkVerdict asserts err matches want: nil when want is empty, otherwise an
// error whose message contains want (so violations name the offending pair).
func checkVerdict(t *testing.T, err error, want string) {
	t.Helper()
	if want == "" {
		if err != nil {
			t.Fatalf("unexpected violation: %v", err)
		}
		return
	}
	if err == nil {
		t.Fatalf("violation not caught, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the offense, want substring %q", err, want)
	}
}
