//go:build crowdrank_invariants

package invariant_test

import (
	"strings"
	"testing"

	"crowdrank/internal/invariant"
)

// With the crowdrank_invariants tag the Check wrappers are live: Enabled is
// true and a violation panics with a message naming the offense.

func TestEnabledIsTrueUnderTag(t *testing.T) {
	if !invariant.Enabled {
		t.Fatal("invariant.Enabled = false in a -tags crowdrank_invariants build")
	}
}

func TestCheckRankingPanicsOnViolation(t *testing.T) {
	msg := recoverMessage(t, func() {
		invariant.CheckRanking(3, []int{0, 1, 1})
	})
	if !strings.Contains(msg, "crowdrank invariant violated") {
		t.Fatalf("panic message %q missing the invariant prefix", msg)
	}
	if !strings.Contains(msg, "object 1 twice") {
		t.Fatalf("panic message %q does not name the duplicated object", msg)
	}
}

func TestCheckTaskGraphPanicsOnViolation(t *testing.T) {
	msg := recoverMessage(t, func() {
		invariant.CheckTaskGraph(nil, 0)
	})
	if !strings.Contains(msg, "nil task graph") {
		t.Fatalf("panic message %q does not describe the violation", msg)
	}
}

func TestCheckRankingAcceptsValidPermutation(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("CheckRanking panicked on a valid permutation: %v", r)
		}
	}()
	invariant.CheckRanking(3, []int{2, 0, 1})
}

func recoverMessage(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("violation did not panic under -tags crowdrank_invariants")
			}
			var ok bool
			msg, ok = r.(string)
			if !ok {
				t.Fatalf("panic value %v (%T) is not a string", r, r)
			}
		}()
		f()
	}()
	return msg
}
