// Package kendall implements the ranking-quality metrics of Section VI-A5:
// the Kendall tau distance (both the naive O(n^2) definition and Knight's
// O(n log n) merge-count algorithm), the derived accuracy 1 - d used
// throughout the paper's evaluation, and Spearman correlation measures for
// cross-checking.
//
// A ranking is a permutation pi of {0, ..., n-1} listed best-first:
// pi[0] is the most-preferred object.
package kendall

import (
	"fmt"
	"math"
)

// ValidatePermutation returns an error unless pi is a permutation of
// {0, ..., len(pi)-1}.
func ValidatePermutation(pi []int) error {
	seen := make([]bool, len(pi))
	for idx, v := range pi {
		if v < 0 || v >= len(pi) {
			return fmt.Errorf("kendall: position %d holds %d, outside [0,%d)", idx, v, len(pi))
		}
		if seen[v] {
			return fmt.Errorf("kendall: object %d appears more than once", v)
		}
		seen[v] = true
	}
	return nil
}

// positions inverts a permutation: positions(pi)[object] = rank of object.
func positions(pi []int) []int {
	pos := make([]int, len(pi))
	for rank, obj := range pi {
		pos[obj] = rank
	}
	return pos
}

// DistanceNaive returns the normalized Kendall tau distance between rankings
// a and b by direct O(n^2) pair counting: the fraction of the C(n,2) object
// pairs on which the two rankings disagree. It is the reference
// implementation used to validate Distance.
func DistanceNaive(a, b []int) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	posA, posB := positions(a), positions(b)
	discordant := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			orderA := posA[i] < posA[j]
			orderB := posB[i] < posB[j]
			if orderA != orderB {
				discordant++
			}
		}
	}
	return float64(discordant) / float64(n*(n-1)/2), nil
}

// Distance returns the normalized Kendall tau distance between rankings a
// and b in O(n log n) using Knight's method: relabel b's objects by their
// rank in a, then count inversions of the resulting sequence with a
// merge sort.
func Distance(a, b []int) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	posA := positions(a)
	seq := make([]int, n)
	for rank, obj := range b {
		seq[rank] = posA[obj]
	}
	inv := countInversions(seq)
	return float64(inv) / float64(n*(n-1)/2), nil
}

// Accuracy returns 1 - Distance(a, b), the paper's reported accuracy.
func Accuracy(a, b []int) (float64, error) {
	d, err := Distance(a, b)
	if err != nil {
		return 0, err
	}
	return 1 - d, nil
}

// Tau returns the Kendall tau rank correlation coefficient in [-1, 1]:
// tau = 1 - 2*Distance. Identical rankings give +1, reversed give -1.
func Tau(a, b []int) (float64, error) {
	d, err := Distance(a, b)
	if err != nil {
		return 0, err
	}
	return 1 - 2*d, nil
}

func checkPair(a, b []int) error {
	if len(a) != len(b) {
		return fmt.Errorf("kendall: length mismatch %d vs %d", len(a), len(b))
	}
	if err := ValidatePermutation(a); err != nil {
		return fmt.Errorf("kendall: first ranking invalid: %w", err)
	}
	if err := ValidatePermutation(b); err != nil {
		return fmt.Errorf("kendall: second ranking invalid: %w", err)
	}
	return nil
}

// countInversions counts pairs (i, j), i < j, with seq[i] > seq[j] using an
// iterative bottom-up merge sort. seq is mutated.
func countInversions(seq []int) int64 {
	n := len(seq)
	buf := make([]int, n)
	var inversions int64
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n-width; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			inversions += mergeCount(seq, buf, lo, mid, hi)
		}
	}
	return inversions
}

// mergeCount merges seq[lo:mid] and seq[mid:hi] (each sorted) into sorted
// order, returning the number of inversions across the boundary.
func mergeCount(seq, buf []int, lo, mid, hi int) int64 {
	copy(buf[lo:hi], seq[lo:hi])
	var inversions int64
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		switch {
		case i >= mid:
			seq[k] = buf[j]
			j++
		case j >= hi:
			seq[k] = buf[i]
			i++
		case buf[i] <= buf[j]:
			seq[k] = buf[i]
			i++
		default:
			seq[k] = buf[j]
			j++
			inversions += int64(mid - i)
		}
	}
	return inversions
}

// SpearmanFootrule returns the normalized Spearman footrule distance: the
// sum over objects of |rank_a - rank_b| divided by its maximum value
// (floor(n^2/2)), yielding a distance in [0, 1].
func SpearmanFootrule(a, b []int) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	posA, posB := positions(a), positions(b)
	total := 0
	for obj := 0; obj < n; obj++ {
		d := posA[obj] - posB[obj]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return float64(total) / float64(n*n/2), nil
}

// SpearmanRho returns Spearman's rank correlation coefficient in [-1, 1].
func SpearmanRho(a, b []int) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	n := len(a)
	if n < 2 {
		return 1, nil
	}
	posA, posB := positions(a), positions(b)
	var sumSq float64
	for obj := 0; obj < n; obj++ {
		d := float64(posA[obj] - posB[obj])
		sumSq += d * d
	}
	nf := float64(n)
	return 1 - 6*sumSq/(nf*(nf*nf-1)), nil
}

// PairwiseAgreement returns the fraction of the provided object pairs whose
// relative order agrees between the two rankings. It generalizes Accuracy to
// a subset of pairs, useful when scoring against sparse preference data.
func PairwiseAgreement(a, b []int, pairs [][2]int) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	if len(pairs) == 0 {
		return 0, fmt.Errorf("kendall: no pairs to score")
	}
	posA, posB := positions(a), positions(b)
	agree := 0
	for _, p := range pairs {
		i, j := p[0], p[1]
		if i < 0 || j < 0 || i >= len(a) || j >= len(a) || i == j {
			return 0, fmt.Errorf("kendall: invalid pair (%d,%d)", i, j)
		}
		if (posA[i] < posA[j]) == (posB[i] < posB[j]) {
			agree++
		}
	}
	return float64(agree) / float64(len(pairs)), nil
}

// TopKOverlap returns |top-k(a) ∩ top-k(b)| / k, a top-k quality measure for
// the paper's future-work extension to top-k ranking.
func TopKOverlap(a, b []int, k int) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	if k <= 0 || k > len(a) {
		return 0, fmt.Errorf("kendall: k=%d outside [1,%d]", k, len(a))
	}
	inA := make(map[int]bool, k)
	for _, obj := range a[:k] {
		inA[obj] = true
	}
	overlap := 0
	for _, obj := range b[:k] {
		if inA[obj] {
			overlap++
		}
	}
	return float64(overlap) / float64(k), nil
}

// MeanReciprocalDisplacement is an auxiliary diagnostic: the mean over
// objects of 1/(1+|rank_a-rank_b|). It rewards near-misses more smoothly
// than Kendall distance and is handy for debugging inference regressions.
func MeanReciprocalDisplacement(a, b []int) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	posA, posB := positions(a), positions(b)
	var sum float64
	for obj := range a {
		sum += 1 / (1 + math.Abs(float64(posA[obj]-posB[obj])))
	}
	return sum / float64(len(a)), nil
}
