package kendall

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustDistance(t *testing.T, a, b []int) float64 {
	t.Helper()
	d, err := Distance(a, b)
	if err != nil {
		t.Fatalf("Distance(%v,%v): %v", a, b, err)
	}
	return d
}

func TestDistanceKnownValues(t *testing.T) {
	tests := []struct {
		name string
		a, b []int
		want float64
	}{
		{"identical", []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, 0},
		{"reversed", []int{0, 1, 2, 3}, []int{3, 2, 1, 0}, 1},
		{"oneSwap", []int{0, 1, 2}, []int{1, 0, 2}, 1.0 / 3},
		{"twoObjects", []int{0, 1}, []int{1, 0}, 1},
		{"single", []int{0}, []int{0}, 0},
		{"middle", []int{0, 1, 2, 3}, []int{0, 2, 1, 3}, 1.0 / 6},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := mustDistance(t, tc.a, tc.b); !almost(got, tc.want) {
				t.Errorf("Distance = %v, want %v", got, tc.want)
			}
		})
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDistanceErrors(t *testing.T) {
	if _, err := Distance([]int{0, 1}, []int{0}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Distance([]int{0, 0}, []int{0, 1}); err == nil {
		t.Error("duplicate object should fail")
	}
	if _, err := Distance([]int{0, 2}, []int{0, 1}); err == nil {
		t.Error("out-of-range object should fail")
	}
}

func randomPerm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

func TestKnightMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.IntN(40)
		a, b := randomPerm(rng, n), randomPerm(rng, n)
		fast := mustDistance(t, a, b)
		slow, err := DistanceNaive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(fast, slow) {
			t.Fatalf("n=%d: Knight=%v naive=%v (a=%v b=%v)", n, fast, slow, a, b)
		}
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(20)
		a, b, c := randomPerm(rng, n), randomPerm(rng, n), randomPerm(rng, n)
		dab := mustDistance(t, a, b)
		dba := mustDistance(t, b, a)
		dac := mustDistance(t, a, c)
		dcb := mustDistance(t, c, b)
		if !almost(dab, dba) {
			t.Fatalf("symmetry violated: %v vs %v", dab, dba)
		}
		if dab < 0 || dab > 1 {
			t.Fatalf("distance out of [0,1]: %v", dab)
		}
		if mustDistance(t, a, a) != 0 {
			t.Fatal("identity distance nonzero")
		}
		if dab > dac+dcb+1e-12 {
			t.Fatalf("triangle inequality violated: d(a,b)=%v > %v", dab, dac+dcb)
		}
	}
}

func TestTauAndAccuracyRelations(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(30)
		a, b := randomPerm(rng, n), randomPerm(rng, n)
		d := mustDistance(t, a, b)
		acc, err := Accuracy(a, b)
		if err != nil {
			t.Fatal(err)
		}
		tau, err := Tau(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(acc, 1-d) {
			t.Fatalf("accuracy != 1-d: %v vs %v", acc, 1-d)
		}
		if !almost(tau, 1-2*d) {
			t.Fatalf("tau != 1-2d: %v vs %v", tau, 1-2*d)
		}
	}
}

func TestSpearmanFootrule(t *testing.T) {
	a := []int{0, 1, 2, 3}
	if d, _ := SpearmanFootrule(a, a); d != 0 {
		t.Errorf("footrule self-distance = %v", d)
	}
	rev := []int{3, 2, 1, 0}
	if d, _ := SpearmanFootrule(a, rev); d != 1 {
		t.Errorf("footrule reversal = %v, want 1", d)
	}
}

func TestSpearmanRho(t *testing.T) {
	a := []int{0, 1, 2, 3, 4}
	if rho, _ := SpearmanRho(a, a); !almost(rho, 1) {
		t.Errorf("rho self = %v", rho)
	}
	rev := []int{4, 3, 2, 1, 0}
	if rho, _ := SpearmanRho(a, rev); !almost(rho, -1) {
		t.Errorf("rho reversal = %v", rho)
	}
}

func TestPairwiseAgreement(t *testing.T) {
	a := []int{0, 1, 2, 3}
	b := []int{1, 0, 2, 3}
	pairs := [][2]int{{0, 1}, {2, 3}, {0, 3}}
	got, err := PairwiseAgreement(a, b, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 2.0/3) {
		t.Errorf("agreement = %v, want 2/3", got)
	}
	if _, err := PairwiseAgreement(a, b, nil); err == nil {
		t.Error("empty pairs should fail")
	}
	if _, err := PairwiseAgreement(a, b, [][2]int{{0, 0}}); err == nil {
		t.Error("degenerate pair should fail")
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []int{0, 1, 2, 3, 4}
	b := []int{1, 0, 4, 3, 2}
	if got, _ := TopKOverlap(a, b, 2); !almost(got, 1) {
		t.Errorf("top-2 overlap = %v, want 1", got)
	}
	if got, _ := TopKOverlap(a, b, 3); !almost(got, 2.0/3) {
		t.Errorf("top-3 overlap = %v, want 2/3", got)
	}
	if _, err := TopKOverlap(a, b, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := TopKOverlap(a, b, 6); err == nil {
		t.Error("k>n should fail")
	}
}

func TestMeanReciprocalDisplacement(t *testing.T) {
	a := []int{0, 1, 2}
	if got, _ := MeanReciprocalDisplacement(a, a); !almost(got, 1) {
		t.Errorf("MRD self = %v", got)
	}
	b := []int{2, 1, 0}
	// displacements 2, 0, 2 -> mean of 1/3, 1, 1/3
	if got, _ := MeanReciprocalDisplacement(a, b); !almost(got, (1.0/3+1+1.0/3)/3) {
		t.Errorf("MRD = %v", got)
	}
}

func TestValidatePermutationQuick(t *testing.T) {
	// Every rng.Perm output validates; every shifted copy fails.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		rng := rand.New(rand.NewPCG(seed, 1))
		p := rng.Perm(n)
		if ValidatePermutation(p) != nil {
			return false
		}
		bad := append([]int(nil), p...)
		bad[0] = n // out of range
		return ValidatePermutation(bad) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDistanceRandomExpectation(t *testing.T) {
	// Independent random permutations should have distance near 0.5.
	rng := rand.New(rand.NewPCG(21, 22))
	sum := 0.0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		a, b := randomPerm(rng, 50), randomPerm(rng, 50)
		sum += mustDistance(t, a, b)
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean distance of random perms = %v, want ~0.5", mean)
	}
}

func TestKnightLargeScale(t *testing.T) {
	// O(n log n) implementation must handle large rankings quickly and
	// agree with the closed-form distance of a full reversal.
	n := 100000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = i
		b[n-1-i] = i
	}
	d := mustDistance(t, a, b)
	if d != 1 {
		t.Errorf("reversal distance = %v", d)
	}
}
