package kendall_test

import (
	"fmt"
	"log"

	"crowdrank/internal/kendall"
)

// ExampleDistance shows the normalized Kendall tau distance on hand-built
// rankings.
func ExampleDistance() {
	identical, err := kendall.Distance([]int{0, 1, 2, 3}, []int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	reversed, err := kendall.Distance([]int{0, 1, 2, 3}, []int{3, 2, 1, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical: %.2f\n", identical)
	fmt.Printf("reversed: %.2f\n", reversed)
	// Output:
	// identical: 0.00
	// reversed: 1.00
}

// ExampleAccuracy shows the paper's accuracy measure 1 - d.
func ExampleAccuracy() {
	acc, err := kendall.Accuracy([]int{0, 1, 2}, []int{1, 0, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy: %.4f\n", acc)
	// Output:
	// accuracy: 0.6667
}

// ExampleTopKOverlap scores a ranking prefix against the true top-k.
func ExampleTopKOverlap() {
	inferred := []int{4, 2, 0, 1, 3}
	truth := []int{2, 4, 1, 0, 3}
	overlap, err := kendall.TopKOverlap(inferred, truth, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-2 overlap: %.1f\n", overlap)
	// Output:
	// top-2 overlap: 1.0
}
