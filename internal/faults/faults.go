// Package faults is a deterministic, seedable fault injector for the
// simulated crowdsourcing marketplace. The paper's Section II setting
// assumes every planned comparison comes back answered and well-formed;
// real marketplaces lose HITs to worker dropout, stragglers, partial
// submissions, double submissions, and garbage answers. This package
// models those failure modes so the collection and inference layers can be
// exercised — and quantified — under realistic loss.
//
// Every decision is a pure function of (Profile.Seed, hit, worker,
// attempt): injecting the same profile into the same round always produces
// the same faults, regardless of the order decisions are queried in. That
// makes fault experiments reproducible and lets the discrete-event
// marketplace (internal/des) and the one-shot platform compose with the
// injector freely.
package faults

import (
	"fmt"
	"math/rand/v2"

	"crowdrank/internal/crowd"
	"crowdrank/internal/feq"
)

// Profile sets the per-assignment fault probabilities. All rates are
// independent probabilities in [0, 1]; the zero value injects nothing.
type Profile struct {
	// Dropout is the probability a (HIT, worker) assignment is claimed but
	// never returned — the worker abandons it silently.
	Dropout float64
	// Straggler is the probability an assignment takes StragglerFactor
	// times its normal service time. Under a collection deadline a
	// straggled answer usually arrives too late to count.
	Straggler float64
	// StragglerFactor multiplies the straggler's service time; values <= 1
	// mean the default of 8.
	StragglerFactor float64
	// Partial is the probability a multi-comparison HIT comes back with
	// only a prefix of its answers (the worker quit mid-HIT). HITs with a
	// single comparison cannot be partial.
	Partial float64
	// Duplicate is the probability a delivered answer is submitted twice
	// (double-click resubmissions).
	Duplicate float64
	// Malformed is the probability a delivered answer is garbage: an
	// out-of-range object id, a self-pair i==j, or an out-of-range worker
	// id, the shapes vote sanitization must survive.
	Malformed float64
	// Seed drives every fault decision; a fixed seed reproduces the exact
	// fault pattern.
	Seed uint64
}

// Validate checks that every rate is a probability.
func (p Profile) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"Dropout", p.Dropout},
		{"Straggler", p.Straggler},
		{"Partial", p.Partial},
		{"Duplicate", p.Duplicate},
		{"Malformed", p.Malformed},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	return nil
}

// Zero reports whether the profile injects no faults at all.
func (p Profile) Zero() bool {
	return feq.Zero(p.Dropout) && feq.Zero(p.Straggler) && feq.Zero(p.Partial) &&
		feq.Zero(p.Duplicate) && feq.Zero(p.Malformed)
}

// stragglerFactor returns the effective service-time multiplier.
func (p Profile) stragglerFactor() float64 {
	if p.StragglerFactor <= 1 {
		return 8
	}
	return p.StragglerFactor
}

// Outcome classifies what happens to one (HIT, worker) assignment.
type Outcome int

const (
	// Delivered: the assignment returns normally (possibly partially).
	Delivered Outcome = iota
	// Dropped: claimed but never returned.
	Dropped
	// Straggled: returned, but after StragglerFactor times the normal
	// service time.
	Straggled
)

// String names the outcome for logs and reports.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Straggled:
		return "straggled"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Injector makes deterministic fault decisions for one simulated round over
// n objects and m workers.
type Injector struct {
	profile Profile
	n, m    int
}

// NewInjector validates the profile and binds it to the round's object and
// worker universes (used to fabricate out-of-range ids for malformed votes).
func NewInjector(p Profile, n, m int) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("faults: need at least one object, got n=%d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("faults: need at least one worker, got m=%d", m)
	}
	return &Injector{profile: p, n: n, m: m}, nil
}

// Profile returns the injector's fault profile.
func (in *Injector) Profile() Profile { return in.profile }

// StragglerFactor returns the effective straggler service-time multiplier.
func (in *Injector) StragglerFactor() float64 { return in.profile.stragglerFactor() }

// splitmix64 is the standard 64-bit finalizer used to derive independent
// streams from a packed decision key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stream derives the decision RNG for (kind, hit, worker, attempt). Each
// decision gets its own stream, so query order never changes outcomes.
func (in *Injector) stream(kind uint64, hit, worker, attempt int) *rand.Rand {
	key := splitmix64(in.profile.Seed ^ kind*0xd1342543de82ef95)
	key = splitmix64(key ^ uint64(hit)*0xa0761d6478bd642f)
	key = splitmix64(key ^ uint64(worker)*0xe7037ed1a0b428db)
	key = splitmix64(key ^ uint64(attempt)*0x8ebc6af09c88c6e3)
	return rand.New(rand.NewPCG(key, splitmix64(key)))
}

const (
	kindOutcome uint64 = iota + 1
	kindPartial
	kindMangle
)

// Outcome decides whether the attempt-th posting of HIT hit to worker
// returns normally, never, or late.
func (in *Injector) Outcome(hit, worker, attempt int) Outcome {
	if feq.Zero(in.profile.Dropout) && feq.Zero(in.profile.Straggler) {
		return Delivered
	}
	r := in.stream(kindOutcome, hit, worker, attempt)
	u := r.Float64()
	if u < in.profile.Dropout {
		return Dropped
	}
	if u < in.profile.Dropout+in.profile.Straggler {
		return Straggled
	}
	return Delivered
}

// KeptPairs decides how many of the HIT's pairs comparisons actually come
// back: all of them normally, or a strict non-empty prefix when the partial
// fault fires. Single-comparison HITs always return whole.
func (in *Injector) KeptPairs(hit, worker, attempt, pairs int) int {
	if pairs <= 1 || feq.Zero(in.profile.Partial) {
		return pairs
	}
	r := in.stream(kindPartial, hit, worker, attempt)
	if r.Float64() >= in.profile.Partial {
		return pairs
	}
	return 1 + r.IntN(pairs-1)
}

// Mangle applies the delivered-but-garbage faults to one answered vote: it
// may corrupt the vote into a malformed shape (out-of-range object id,
// self-pair, out-of-range worker id) and may duplicate the submission. k
// distinguishes the comparisons within one assignment. The returned slice
// has one or two votes; corrupted counts as 1 when the vote was mangled.
func (in *Injector) Mangle(hit, worker, attempt, k int, v crowd.Vote) (out []crowd.Vote, corrupted, duplicated bool) {
	if feq.Zero(in.profile.Malformed) && feq.Zero(in.profile.Duplicate) {
		return []crowd.Vote{v}, false, false
	}
	r := in.stream(kindMangle, hit, worker, attempt*1_000_003+k)
	if in.profile.Malformed > 0 && r.Float64() < in.profile.Malformed {
		corrupted = true
		switch r.IntN(4) {
		case 0: // object id beyond the universe
			v.I = in.n + r.IntN(in.n+1)
		case 1: // negative object id
			v.J = -1 - r.IntN(3)
		case 2: // self-pair
			v.J = v.I
		default: // worker id beyond the pool
			v.Worker = in.m + r.IntN(in.m+1)
		}
	}
	out = []crowd.Vote{v}
	if in.profile.Duplicate > 0 && r.Float64() < in.profile.Duplicate {
		duplicated = true
		out = append(out, v)
	}
	return out, corrupted, duplicated
}
