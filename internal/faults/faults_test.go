package faults

import (
	"testing"

	"crowdrank/internal/crowd"
)

func TestProfileValidate(t *testing.T) {
	good := Profile{Dropout: 0.2, Straggler: 0.1, Partial: 0.3, Duplicate: 0.05, Malformed: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []Profile{
		{Dropout: -0.1},
		{Straggler: 1.5},
		{Partial: 2},
		{Duplicate: -1},
		{Malformed: 1.01},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should be rejected: %+v", i, p)
		}
	}
	if !(Profile{}).Zero() {
		t.Error("zero profile should report Zero")
	}
	if good.Zero() {
		t.Error("non-zero profile should not report Zero")
	}
}

func TestNewInjectorValidation(t *testing.T) {
	if _, err := NewInjector(Profile{Dropout: 2}, 10, 5); err == nil {
		t.Error("invalid rate should be rejected")
	}
	if _, err := NewInjector(Profile{}, 0, 5); err == nil {
		t.Error("n=0 should be rejected")
	}
	if _, err := NewInjector(Profile{}, 10, 0); err == nil {
		t.Error("m=0 should be rejected")
	}
}

// TestDeterminism checks that every decision is a pure function of the
// (seed, hit, worker, attempt) key, independent of query order.
func TestDeterminism(t *testing.T) {
	p := Profile{Dropout: 0.3, Straggler: 0.2, Partial: 0.4, Duplicate: 0.1, Malformed: 0.1, Seed: 42}
	a, err := NewInjector(p, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(p, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	v := crowd.Vote{Worker: 3, I: 1, J: 2, PrefersI: true}
	// Query b in reverse order; outcomes must still match a's.
	type decision struct {
		out   Outcome
		kept  int
		votes int
	}
	var fromA []decision
	for hit := 0; hit < 50; hit++ {
		for worker := 0; worker < 10; worker++ {
			mangled, _, _ := a.Mangle(hit, worker, 0, 0, v)
			fromA = append(fromA, decision{
				out:   a.Outcome(hit, worker, 0),
				kept:  a.KeptPairs(hit, worker, 0, 5),
				votes: len(mangled),
			})
		}
	}
	idx := len(fromA)
	for hit := 49; hit >= 0; hit-- {
		for worker := 9; worker >= 0; worker-- {
			idx--
			want := fromA[idx]
			i := hit*10 + worker
			if i != idx { // fromA is in forward order
				t.Fatalf("index math wrong: %d vs %d", i, idx)
			}
			mangled, _, _ := b.Mangle(hit, worker, 0, 0, v)
			got := decision{
				out:   b.Outcome(hit, worker, 0),
				kept:  b.KeptPairs(hit, worker, 0, 5),
				votes: len(mangled),
			}
			if got != want {
				t.Fatalf("decision (%d,%d) differs across query order: %+v vs %+v", hit, worker, got, want)
			}
		}
	}
}

func TestZeroProfileIsIdentity(t *testing.T) {
	in, err := NewInjector(Profile{Seed: 7}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := crowd.Vote{Worker: 1, I: 2, J: 3, PrefersI: false}
	for hit := 0; hit < 100; hit++ {
		if out := in.Outcome(hit, hit%5, 0); out != Delivered {
			t.Fatalf("zero profile dropped hit %d: %v", hit, out)
		}
		if kept := in.KeptPairs(hit, hit%5, 0, 4); kept != 4 {
			t.Fatalf("zero profile truncated hit %d to %d pairs", hit, kept)
		}
		mangled, corrupted, duplicated := in.Mangle(hit, hit%5, 0, 0, v)
		if corrupted || duplicated || len(mangled) != 1 || mangled[0] != v {
			t.Fatalf("zero profile mangled vote: %+v", mangled)
		}
	}
}

// TestRatesApproximatelyHonored draws many decisions and checks empirical
// frequencies against the configured rates.
func TestRatesApproximatelyHonored(t *testing.T) {
	p := Profile{Dropout: 0.2, Straggler: 0.1, Partial: 0.3, Duplicate: 0.15, Malformed: 0.25, Seed: 99}
	in, err := NewInjector(p, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	var dropped, straggled, partial, dup, bad int
	v := crowd.Vote{Worker: 5, I: 10, J: 11, PrefersI: true}
	for i := 0; i < trials; i++ {
		switch in.Outcome(i, i%20, 0) {
		case Dropped:
			dropped++
		case Straggled:
			straggled++
		}
		if in.KeptPairs(i, i%20, 0, 6) < 6 {
			partial++
		}
		mangled, corrupted, duplicated := in.Mangle(i, i%20, 0, 0, v)
		if corrupted {
			bad++
			// Corrupted votes must actually fail validation.
			if err := mangled[0].Validate(50, 20); err == nil {
				t.Fatalf("corrupted vote %+v still validates", mangled[0])
			}
		}
		if duplicated {
			dup++
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		f := float64(got) / trials
		if f < want-0.02 || f > want+0.02 {
			t.Errorf("%s rate %.3f, want ~%.3f", name, f, want)
		}
	}
	check("dropout", dropped, p.Dropout)
	check("straggler", straggled, p.Straggler)
	check("partial", partial, p.Partial)
	check("duplicate", dup, p.Duplicate)
	check("malformed", bad, p.Malformed)
}

func TestKeptPairsBounds(t *testing.T) {
	in, err := NewInjector(Profile{Partial: 1, Seed: 3}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for hit := 0; hit < 200; hit++ {
		kept := in.KeptPairs(hit, 0, 0, 5)
		if kept < 1 || kept >= 5 {
			t.Fatalf("partial keep %d outside [1,4]", kept)
		}
	}
	// Single-pair HITs cannot be partial.
	if kept := in.KeptPairs(0, 0, 0, 1); kept != 1 {
		t.Fatalf("single-pair HIT truncated to %d", kept)
	}
}

func TestOutcomeStringer(t *testing.T) {
	for _, tc := range []struct {
		o    Outcome
		want string
	}{
		{Delivered, "delivered"}, {Dropped, "dropped"}, {Straggled, "straggled"}, {Outcome(9), "Outcome(9)"},
	} {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.o), got, tc.want)
		}
	}
}
