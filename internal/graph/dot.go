package graph

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the task graph in Graphviz DOT format, one line per
// undirected edge, for debugging task assignments visually.
func (g *TaskGraph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "task_graph"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		if _, err := fmt.Fprintf(w, "  v%d [label=\"%d (d=%d)\"];\n", v, v, g.Degree(v)); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  v%d -- v%d;\n", e.I, e.J); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDOT renders the preference graph in Graphviz DOT format with edge
// weights as labels. Edges are emitted in sorted order so output is
// deterministic.
func (g *PreferenceGraph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "preference_graph"
	}
	if _, err := fmt.Fprintf(w, "digraph %s {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		shape := "ellipse"
		switch {
		case g.IsInNode(v):
			shape = "doublecircle" // forced-last object (in-node)
		case g.IsOutNode(v):
			shape = "box" // forced-first object (out-node)
		}
		if _, err := fmt.Fprintf(w, "  v%d [label=\"%d\", shape=%s];\n", v, v, shape); err != nil {
			return err
		}
	}
	type edge struct {
		i, j   int
		weight float64
	}
	var edges []edge
	for i := 0; i < g.n; i++ {
		for _, j := range g.out[i] {
			edges = append(edges, edge{i: i, j: j, weight: g.w[i][j]})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "  v%d -> v%d [label=\"%.3f\"];\n", e.i, e.j, e.weight); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
