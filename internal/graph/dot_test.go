package graph

import (
	"strings"
	"testing"
)

func TestTaskGraphWriteDOT(t *testing.T) {
	g := mustTaskGraph(t, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph task_graph {", "v0 -- v1;", "v1 -- v2;", "(d=2)", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestPreferenceGraphWriteDOT(t *testing.T) {
	g := mustPrefGraph(t, 3)
	setW(t, g, 0, 1, 0.75)
	setW(t, g, 1, 2, 1)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "gp"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph gp {",
		`v0 -> v1 [label="0.750"];`,
		`v1 -> v2 [label="1.000"];`,
		"shape=box",          // v0 is an out-node
		"shape=doublecircle", // v2 is an in-node
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var sb2 strings.Builder
	if err := g.WriteDOT(&sb2, "gp"); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("DOT output not deterministic")
	}
}
