package graph

// StronglyConnected reports whether the preference graph is strongly
// connected. Preference smoothing (Section V-B) relies on this property: a
// strongly connected smoothed graph guarantees that the transitive closure is
// complete and therefore Hamiltonian (Theorem 5.1).
//
// The check runs Tarjan's algorithm iteratively (no recursion, so it scales
// to large n without stack overflow) and reports whether exactly one
// strongly connected component covers the whole graph.
func (g *PreferenceGraph) StronglyConnected() bool {
	if g.n == 0 {
		return false
	}
	return len(g.StronglyConnectedComponents()) == 1
}

// StronglyConnectedComponents returns the strongly connected components of
// the preference graph in reverse topological order (Tarjan's order). Each
// component is a list of vertex indices.
func (g *PreferenceGraph) StronglyConnectedComponents() [][]int {
	const unvisited = -1

	index := make([]int, g.n)
	lowLink := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}

	var (
		components [][]int
		stack      []int
		nextIndex  int
	)

	// frame holds the explicit DFS state: vertex v and the position within
	// its out-neighbor list.
	type frame struct {
		v, next int
	}

	for start := 0; start < g.n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = nextIndex
		lowLink[start] = nextIndex
		nextIndex++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.next < len(g.out[v]) {
				u := g.out[v][f.next]
				f.next++
				if index[u] == unvisited {
					index[u] = nextIndex
					lowLink[u] = nextIndex
					nextIndex++
					stack = append(stack, u)
					onStack[u] = true
					frames = append(frames, frame{v: u})
				} else if onStack[u] && index[u] < lowLink[v] {
					lowLink[v] = index[u]
				}
				continue
			}

			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if lowLink[v] < lowLink[parent] {
					lowLink[parent] = lowLink[v]
				}
			}
			if lowLink[v] == index[v] {
				var comp []int
				for {
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[u] = false
					comp = append(comp, u)
					if u == v {
						break
					}
				}
				components = append(components, comp)
			}
		}
	}
	return components
}

// Reachable returns, for each vertex, the set of vertices reachable by
// directed paths of any length (excluding the trivial empty path). The
// result is a boolean reachability matrix: reach[i][j] is true when a path
// i -> ... -> j exists. This is the unweighted skeleton of the transitive
// closure G_P^*.
func (g *PreferenceGraph) Reachable() [][]bool {
	reach := make([][]bool, g.n)
	backing := make([]bool, g.n*g.n)
	for i := range reach {
		reach[i], backing = backing[:g.n:g.n], backing[g.n:]
	}
	// BFS from each vertex. With m directed edges the cost is O(n(n+m)),
	// fine for the paper's scales and simpler than bitset Floyd-Warshall.
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.out[v] {
				if !reach[s][u] {
					reach[s][u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return reach
}

// HasHamiltonianPathReachability reports whether the *reachability* closure
// of the graph admits a Hamiltonian path, using the tournament-order test:
// the closure has an HP iff the vertices can be ordered so that each vertex
// reaches the next. For a transitively closed relation this holds iff the
// condensation (DAG of SCCs) is a total order under reachability.
func (g *PreferenceGraph) HasHamiltonianPathReachability() bool {
	if g.n == 1 {
		return true
	}
	comps := g.StronglyConnectedComponents()
	// Build reachability between components via the vertex reachability
	// matrix. Components in Tarjan's output are in reverse topological
	// order; a closure has an HP iff consecutive components (in topological
	// order) are connected by at least one edge.
	reach := g.Reachable()
	// Map vertex -> component id.
	compOf := make([]int, g.n)
	for id, comp := range comps {
		for _, v := range comp {
			compOf[v] = id
		}
	}
	k := len(comps)
	// topological order = reverse of Tarjan output order.
	order := make([]int, k)
	for i := range order {
		order[i] = k - 1 - i
	}
	for idx := 1; idx < k; idx++ {
		prev := comps[order[idx-1]]
		cur := comps[order[idx]]
		connected := false
		for _, a := range prev {
			for _, b := range cur {
				if reach[a][b] {
					connected = true
					break
				}
			}
			if connected {
				break
			}
		}
		if !connected {
			// Tarjan's reverse order is one valid topological order, but
			// when two components are incomparable the chosen order may
			// fail while another succeeds; incomparable components mean no
			// Hamiltonian chain exists anyway, so check comparability.
			a, b := prev[0], cur[0]
			if !reach[a][b] && !reach[b][a] {
				return false
			}
			// Comparable but ordered the other way: reachability in a DAG
			// of SCCs is antisymmetric, so b reaches a, meaning this
			// topological order was wrong only if the condensation is not
			// a chain. Fall back to the full chain test.
			return condensationIsChain(comps, reach)
		}
		_ = compOf
	}
	return true
}

// condensationIsChain reports whether the SCC condensation forms a total
// order under reachability (every pair of components comparable).
func condensationIsChain(comps [][]int, reach [][]bool) bool {
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			a, b := comps[i][0], comps[j][0]
			if !reach[a][b] && !reach[b][a] {
				return false
			}
		}
	}
	return true
}
