package graph_test

import (
	"fmt"
	"log"

	"crowdrank/internal/graph"
)

// ExamplePreferenceGraph builds the Figure 1(b)-style preference graph and
// inspects its in-/out-nodes — the structures Theorem 4.3 ties to ranking
// feasibility.
func ExamplePreferenceGraph() {
	g, err := graph.NewPreferenceGraph(4)
	if err != nil {
		log.Fatal(err)
	}
	// v2 receives only incoming edges; v3 only outgoing.
	for _, e := range []struct {
		i, j int
		w    float64
	}{
		{0, 2, 1}, {1, 2, 1}, {3, 2, 1},
		{3, 0, 1}, {0, 1, 0.7}, {1, 0, 0.3},
	} {
		if err := g.SetWeight(e.i, e.j, e.w); err != nil {
			log.Fatal(err)
		}
	}
	inNodes, outNodes := g.InOutNodes()
	fmt.Println("in-nodes:", inNodes)
	fmt.Println("out-nodes:", outNodes)
	fmt.Println("1-edges:", len(g.OneEdges()))
	fmt.Println("strongly connected:", g.StronglyConnected())
	// Output:
	// in-nodes: [2]
	// out-nodes: [3]
	// 1-edges: 4
	// strongly connected: false
}

// ExampleTaskGraph builds a task graph and checks the fairness invariant.
func ExampleTaskGraph() {
	g, err := graph.NewTaskGraph(4)
	if err != nil {
		log.Fatal(err)
	}
	// A 4-cycle: every vertex has degree 2, so the assignment is fair
	// (Theorem 4.1).
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("regular:", g.IsRegular())
	fmt.Println("connected:", g.Connected())
	fmt.Println("contains HP 0-1-2-3:", g.IsHamiltonianPath([]int{0, 1, 2, 3}))
	// Output:
	// regular: true
	// connected: true
	// contains HP 0-1-2-3: true
}
