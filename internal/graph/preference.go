package graph

import (
	"fmt"
	"math"
	"sort"

	"crowdrank/internal/feq"
)

// PreferenceGraph is the weighted, directed preference graph G_P of Section
// III. The weight w_ij in (0, 1] is the truth confidence that O_i is
// preferred to O_j. A weight of zero means the edge does not exist, matching
// the paper's convention ("when w_ij = 0, there is no edge").
//
// The representation is a dense matrix plus adjacency lists: inference needs
// O(1) weight lookups while propagation iterates outgoing edges, and the
// paper's scale (n <= a few thousand) keeps the matrix comfortably in memory.
type PreferenceGraph struct {
	n   int
	w   [][]float64
	out [][]int // out[i] = sorted-by-insertion list of j with w[i][j] > 0
	in  [][]int // in[j] = list of i with w[i][j] > 0
}

// NewPreferenceGraph creates an edgeless preference graph over n vertices.
func NewPreferenceGraph(n int) (*PreferenceGraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: preference graph needs at least one vertex, got n=%d", n)
	}
	w := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range w {
		w[i], backing = backing[:n:n], backing[n:]
	}
	return &PreferenceGraph{
		n:   n,
		w:   w,
		out: make([][]int, n),
		in:  make([][]int, n),
	}, nil
}

// N returns the number of vertices.
func (g *PreferenceGraph) N() int { return g.n }

// Weight returns w_ij, or 0 when the edge i->j does not exist.
func (g *PreferenceGraph) Weight(i, j int) float64 {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return 0
	}
	return g.w[i][j]
}

// HasEdge reports whether the directed edge i->j exists (w_ij > 0).
func (g *PreferenceGraph) HasEdge(i, j int) bool { return g.Weight(i, j) > 0 }

// SetWeight sets w_ij. Weights must lie in [0, 1]; setting 0 removes the
// edge. Self-loops are rejected.
func (g *PreferenceGraph) SetWeight(i, j int, weight float64) error {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", i, j, g.n)
	}
	if i == j {
		return fmt.Errorf("graph: self-loop (%d,%d) is not a valid preference", i, j)
	}
	if weight < 0 || weight > 1 || math.IsNaN(weight) {
		return fmt.Errorf("graph: weight %v for edge (%d,%d) outside [0,1]", weight, i, j)
	}
	had := g.w[i][j] > 0
	g.w[i][j] = weight
	has := weight > 0
	switch {
	case has && !had:
		g.out[i] = append(g.out[i], j)
		g.in[j] = append(g.in[j], i)
	case !has && had:
		g.out[i] = removeInt(g.out[i], j)
		g.in[j] = removeInt(g.in[j], i)
	}
	return nil
}

func removeInt(s []int, v int) []int {
	for idx, x := range s {
		if x == v {
			s[idx] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Out returns the out-neighbors of i (vertices j with w_ij > 0). The slice
// is shared with internal state; callers must not modify it.
func (g *PreferenceGraph) Out(i int) []int {
	if i < 0 || i >= g.n {
		return nil
	}
	return g.out[i]
}

// In returns the in-neighbors of j. The slice is shared with internal state;
// callers must not modify it.
func (g *PreferenceGraph) In(j int) []int {
	if j < 0 || j >= g.n {
		return nil
	}
	return g.in[j]
}

// OutDegree and InDegree report edge counts per vertex.
func (g *PreferenceGraph) OutDegree(i int) int { return len(g.Out(i)) }

// InDegree returns the number of incoming edges of j.
func (g *PreferenceGraph) InDegree(j int) int { return len(g.In(j)) }

// EdgeCount returns the number of directed edges with positive weight.
func (g *PreferenceGraph) EdgeCount() int {
	total := 0
	for i := 0; i < g.n; i++ {
		total += len(g.out[i])
	}
	return total
}

// IsInNode reports whether v has only incoming edges (Section III). In-nodes
// force their object to rank last, so Theorem 4.3 makes two of them fatal
// for a full ranking.
func (g *PreferenceGraph) IsInNode(v int) bool {
	return g.InDegree(v) > 0 && g.OutDegree(v) == 0
}

// IsOutNode reports whether v has only outgoing edges.
func (g *PreferenceGraph) IsOutNode(v int) bool {
	return g.OutDegree(v) > 0 && g.InDegree(v) == 0
}

// InOutNodes returns the in-nodes and out-nodes of the graph.
func (g *PreferenceGraph) InOutNodes() (inNodes, outNodes []int) {
	for v := 0; v < g.n; v++ {
		if g.IsInNode(v) {
			inNodes = append(inNodes, v)
		}
		if g.IsOutNode(v) {
			outNodes = append(outNodes, v)
		}
	}
	return inNodes, outNodes
}

// OneEdges returns every directed edge of weight exactly 1 (the "1-edges" of
// Section V-B: unanimous preferences that smoothing must relax). The result
// is sorted so that callers consuming randomness per edge stay
// deterministic.
func (g *PreferenceGraph) OneEdges() []Pair {
	var edges []Pair
	for i := 0; i < g.n; i++ {
		for _, j := range g.out[i] {
			if feq.One(g.w[i][j]) {
				edges = append(edges, Pair{I: i, J: j})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].I != edges[b].I {
			return edges[a].I < edges[b].I
		}
		return edges[a].J < edges[b].J
	})
	return edges
}

// PathWeight returns the product of edge weights along path, the paper's
// per-path preference measure w_ij^P. It returns 0 when any hop is missing.
func (g *PreferenceGraph) PathWeight(path []int) float64 {
	if len(path) < 2 {
		return 0
	}
	product := 1.0
	for idx := 1; idx < len(path); idx++ {
		w := g.Weight(path[idx-1], path[idx])
		if w <= 0 {
			return 0
		}
		product *= w
	}
	return product
}

// IsHamiltonianPath reports whether path visits every vertex exactly once
// along positive-weight edges.
func (g *PreferenceGraph) IsHamiltonianPath(path []int) bool {
	if len(path) != g.n {
		return false
	}
	seen := make(map[int]bool, len(path))
	for idx, v := range path {
		if v < 0 || v >= g.n || seen[v] {
			return false
		}
		seen[v] = true
		if idx > 0 && g.Weight(path[idx-1], v) <= 0 {
			return false
		}
	}
	return true
}

// IsComplete reports whether every ordered pair (i, j), i != j, carries a
// positive weight — the state Theorem 5.1 relies on to guarantee an HP.
func (g *PreferenceGraph) IsComplete() bool {
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if i != j && g.w[i][j] <= 0 {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the preference graph.
func (g *PreferenceGraph) Clone() *PreferenceGraph {
	c, err := NewPreferenceGraph(g.n)
	if err != nil {
		//lint:ignore panics cloning a graph that was itself constructed via NewPreferenceGraph cannot fail; an error here is memory corruption
		panic("graph: clone of invalid graph: " + err.Error())
	}
	for i := 0; i < g.n; i++ {
		copy(c.w[i], g.w[i])
		c.out[i] = append([]int(nil), g.out[i]...)
		c.in[i] = append([]int(nil), g.in[i]...)
	}
	return c
}

// WeightsMatrix returns a deep copy of the full n x n weight matrix.
func (g *PreferenceGraph) WeightsMatrix() [][]float64 {
	out := make([][]float64, g.n)
	backing := make([]float64, g.n*g.n)
	for i := range out {
		out[i], backing = backing[:g.n:g.n], backing[g.n:]
		copy(out[i], g.w[i])
	}
	return out
}
