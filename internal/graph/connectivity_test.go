package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// hasHPBrute checks by permutation enumeration whether the reachability
// closure of g admits a Hamiltonian path: an ordering where each vertex
// reaches the next.
func hasHPBrute(g *PreferenceGraph) bool {
	n := g.N()
	reach := g.Reachable()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var try func(depth int) bool
	used := make([]bool, n)
	path := make([]int, 0, n)
	try = func(depth int) bool {
		if depth == n {
			return true
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if depth > 0 && !reach[path[depth-1]][v] {
				continue
			}
			used[v] = true
			path = append(path, v)
			if try(depth + 1) {
				return true
			}
			path = path[:len(path)-1]
			used[v] = false
		}
		return false
	}
	return try(0)
}

// TestHasHamiltonianPathReachabilityQuick cross-checks the SCC-based test
// against brute-force enumeration on random small digraphs.
func TestHasHamiltonianPathReachabilityQuick(t *testing.T) {
	f := func(seed uint64, nRaw, density uint8) bool {
		n := int(nRaw%6) + 1
		rng := rand.New(rand.NewPCG(seed, 91))
		g, err := NewPreferenceGraph(n)
		if err != nil {
			return false
		}
		p := float64(density%90) / 100
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < p {
					if g.SetWeight(i, j, 0.5) != nil {
						return false
					}
				}
			}
		}
		return g.HasHamiltonianPathReachability() == hasHPBrute(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
