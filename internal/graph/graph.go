// Package graph implements the paper's graph model (Section III): the
// unweighted undirected task graph G_T, the weighted directed preference
// graph G_P, transitive closures, Hamiltonian-path machinery, and strong
// connectivity. These structures underlie both task assignment (Section IV)
// and result inference (Section V).
package graph

import (
	"fmt"
	"sort"
)

// Pair identifies an unordered pairwise comparison task (O_i, O_j). The
// canonical form keeps I < J so that a Pair can be used as a map key.
type Pair struct {
	I, J int
}

// Canon returns the pair with its endpoints ordered so I < J.
func (p Pair) Canon() Pair {
	if p.I > p.J {
		return Pair{I: p.J, J: p.I}
	}
	return p
}

// Valid reports whether the pair connects two distinct non-negative vertices.
func (p Pair) Valid() bool {
	return p.I >= 0 && p.J >= 0 && p.I != p.J
}

func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.I, p.J) }

// TaskGraph is the unweighted, undirected task graph G_T: one vertex per
// object and one edge per pairwise comparison task.
type TaskGraph struct {
	n   int
	m   int
	adj []map[int]bool
}

// NewTaskGraph creates an edgeless task graph over n >= 1 vertices.
func NewTaskGraph(n int) (*TaskGraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: task graph needs at least one vertex, got n=%d", n)
	}
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &TaskGraph{n: n, adj: adj}, nil
}

// N returns the number of vertices.
func (g *TaskGraph) N() int { return g.n }

// M returns the number of edges.
func (g *TaskGraph) M() int { return g.m }

// HasEdge reports whether the comparison (i, j) is already a task.
func (g *TaskGraph) HasEdge(i, j int) bool {
	if i < 0 || j < 0 || i >= g.n || j >= g.n || i == j {
		return false
	}
	return g.adj[i][j]
}

// AddEdge inserts the undirected edge (i, j). It rejects self-loops,
// out-of-range vertices, and duplicate edges, because each task must be a
// distinct comparison of two distinct objects.
func (g *TaskGraph) AddEdge(i, j int) error {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", i, j, g.n)
	}
	if i == j {
		return fmt.Errorf("graph: self-loop (%d,%d) is not a valid comparison", i, j)
	}
	if g.adj[i][j] {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", i, j)
	}
	g.adj[i][j] = true
	g.adj[j][i] = true
	g.m++
	return nil
}

// RemoveEdge deletes the undirected edge (i, j) if present, reporting
// whether an edge was removed. Task generation uses it for degree-preserving
// double-edge swaps when repairing stub pairings.
func (g *TaskGraph) RemoveEdge(i, j int) bool {
	if !g.HasEdge(i, j) {
		return false
	}
	delete(g.adj[i], j)
	delete(g.adj[j], i)
	g.m--
	return true
}

// Degree returns the degree of vertex i.
func (g *TaskGraph) Degree(i int) int {
	if i < 0 || i >= g.n {
		return 0
	}
	return len(g.adj[i])
}

// Degrees returns the degree of every vertex.
func (g *TaskGraph) Degrees() []int {
	ds := make([]int, g.n)
	for i := range ds {
		ds[i] = len(g.adj[i])
	}
	return ds
}

// MinMaxDegree returns d_min and d_max over all vertices (Theorem 4.4 inputs).
func (g *TaskGraph) MinMaxDegree() (dmin, dmax int) {
	if g.n == 0 {
		return 0, 0
	}
	dmin, dmax = g.Degree(0), g.Degree(0)
	for i := 1; i < g.n; i++ {
		d := g.Degree(i)
		if d < dmin {
			dmin = d
		}
		if d > dmax {
			dmax = d
		}
	}
	return dmin, dmax
}

// Edges returns the edge list as canonical pairs in sorted (I, then J)
// order, so two graphs with the same edge set produce identical listings.
func (g *TaskGraph) Edges() []Pair {
	out := make([]Pair, 0, g.m)
	for i := 0; i < g.n; i++ {
		for j := range g.adj[i] {
			if i < j {
				out = append(out, Pair{I: i, J: j})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Neighbors returns the sorted neighbor list of vertex i.
func (g *TaskGraph) Neighbors(i int) []int {
	if i < 0 || i >= g.n {
		return nil
	}
	out := make([]int, 0, len(g.adj[i]))
	for j := range g.adj[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// Connected reports whether the task graph is connected. A disconnected task
// graph can never yield a full ranking (Theorem 4.2), so callers treat this
// as a validity check.
func (g *TaskGraph) Connected() bool {
	if g.n == 0 {
		return false
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// IsRegular reports whether every vertex has the same degree, the Theorem 4.1
// fairness condition.
func (g *TaskGraph) IsRegular() bool {
	dmin, dmax := g.MinMaxDegree()
	return dmin == dmax
}

// ContainsPath reports whether the vertex sequence path is a path in the
// task graph (each consecutive pair adjacent, no repeated vertex).
func (g *TaskGraph) ContainsPath(path []int) bool {
	seen := make(map[int]bool, len(path))
	for idx, v := range path {
		if v < 0 || v >= g.n || seen[v] {
			return false
		}
		seen[v] = true
		if idx > 0 && !g.adj[path[idx-1]][v] {
			return false
		}
	}
	return true
}

// IsHamiltonianPath reports whether path visits every vertex exactly once
// along task-graph edges.
func (g *TaskGraph) IsHamiltonianPath(path []int) bool {
	return len(path) == g.n && g.ContainsPath(path)
}

// Clone returns a deep copy of the task graph.
func (g *TaskGraph) Clone() *TaskGraph {
	c, err := NewTaskGraph(g.n)
	if err != nil {
		//lint:ignore panics cloning a graph that was itself constructed via NewTaskGraph cannot fail; an error here is memory corruption
		panic("graph: clone of invalid graph: " + err.Error())
	}
	for _, e := range g.Edges() {
		if err := c.AddEdge(e.I, e.J); err != nil {
			//lint:ignore panics re-adding edges of a valid graph to an empty clone cannot collide or go out of range
			panic("graph: clone failed: " + err.Error())
		}
	}
	return c
}
