package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustPrefGraph(t *testing.T, n int) *PreferenceGraph {
	t.Helper()
	g, err := NewPreferenceGraph(n)
	if err != nil {
		t.Fatalf("NewPreferenceGraph(%d): %v", n, err)
	}
	return g
}

func setW(t *testing.T, g *PreferenceGraph, i, j int, w float64) {
	t.Helper()
	if err := g.SetWeight(i, j, w); err != nil {
		t.Fatalf("SetWeight(%d,%d,%v): %v", i, j, w, err)
	}
}

func TestPreferenceGraphBasics(t *testing.T) {
	if _, err := NewPreferenceGraph(0); err == nil {
		t.Error("n=0 should fail")
	}
	g := mustPrefGraph(t, 3)
	if g.N() != 3 || g.EdgeCount() != 0 {
		t.Fatal("fresh graph wrong")
	}
	setW(t, g, 0, 1, 0.7)
	if g.Weight(0, 1) != 0.7 || g.Weight(1, 0) != 0 {
		t.Error("weight storage is directed")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge existence is directed")
	}
	if g.Weight(-1, 0) != 0 || g.Weight(0, 9) != 0 {
		t.Error("out of range weight should be 0")
	}
	if err := g.SetWeight(1, 1, 0.5); err == nil {
		t.Error("self loop should fail")
	}
	if err := g.SetWeight(0, 1, 1.5); err == nil {
		t.Error("weight > 1 should fail")
	}
	if err := g.SetWeight(0, 1, -0.1); err == nil {
		t.Error("negative weight should fail")
	}
	if err := g.SetWeight(0, 9, 0.5); err == nil {
		t.Error("out of range should fail")
	}
}

func TestPreferenceGraphEdgeRemovalViaZero(t *testing.T) {
	g := mustPrefGraph(t, 3)
	setW(t, g, 0, 1, 0.7)
	setW(t, g, 0, 2, 0.4)
	setW(t, g, 0, 1, 0) // the paper: weight 0 means no edge
	if g.HasEdge(0, 1) {
		t.Error("zero weight should remove the edge")
	}
	if g.OutDegree(0) != 1 {
		t.Errorf("OutDegree(0) = %d, want 1", g.OutDegree(0))
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
	out := g.Out(0)
	if len(out) != 1 || out[0] != 2 {
		t.Errorf("Out(0) = %v", out)
	}
}

func TestInOutNodes(t *testing.T) {
	// Figure 1(b)-like: v2 has only incoming edges.
	g := mustPrefGraph(t, 4)
	setW(t, g, 0, 2, 1)
	setW(t, g, 1, 2, 1)
	setW(t, g, 3, 2, 1)
	setW(t, g, 0, 1, 0.5)
	setW(t, g, 1, 0, 0.5)
	setW(t, g, 3, 0, 1)
	if !g.IsInNode(2) {
		t.Error("v2 should be an in-node")
	}
	if g.IsOutNode(2) || g.IsInNode(0) {
		t.Error("misclassified nodes")
	}
	if !g.IsOutNode(3) {
		t.Error("v3 should be an out-node")
	}
	inN, outN := g.InOutNodes()
	if len(inN) != 1 || inN[0] != 2 || len(outN) != 1 || outN[0] != 3 {
		t.Errorf("InOutNodes = %v, %v", inN, outN)
	}
}

func TestOneEdges(t *testing.T) {
	g := mustPrefGraph(t, 3)
	setW(t, g, 0, 1, 1)
	setW(t, g, 1, 2, 0.8)
	setW(t, g, 2, 1, 0.2)
	ones := g.OneEdges()
	if len(ones) != 1 || ones[0] != (Pair{I: 0, J: 1}) {
		t.Errorf("OneEdges = %v", ones)
	}
}

func TestPathWeightAndHP(t *testing.T) {
	g := mustPrefGraph(t, 3)
	setW(t, g, 0, 1, 0.5)
	setW(t, g, 1, 2, 0.4)
	if w := g.PathWeight([]int{0, 1, 2}); w != 0.2 {
		t.Errorf("PathWeight = %v, want 0.2", w)
	}
	if w := g.PathWeight([]int{0, 2}); w != 0 {
		t.Errorf("missing edge should zero the path, got %v", w)
	}
	if w := g.PathWeight([]int{0}); w != 0 {
		t.Errorf("degenerate path weight = %v", w)
	}
	if !g.IsHamiltonianPath([]int{0, 1, 2}) {
		t.Error("0-1-2 should be an HP")
	}
	if g.IsHamiltonianPath([]int{2, 1, 0}) {
		t.Error("reverse edges missing, not an HP")
	}
}

func TestIsComplete(t *testing.T) {
	g := mustPrefGraph(t, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				setW(t, g, i, j, 0.5)
			}
		}
	}
	if !g.IsComplete() {
		t.Error("fully weighted graph should be complete")
	}
	setW(t, g, 0, 1, 0)
	if g.IsComplete() {
		t.Error("graph with removed edge is not complete")
	}
}

func TestCloneAndWeightsMatrix(t *testing.T) {
	g := mustPrefGraph(t, 3)
	setW(t, g, 0, 1, 0.9)
	c := g.Clone()
	setW(t, c, 1, 2, 0.3)
	if g.HasEdge(1, 2) {
		t.Error("clone should be independent")
	}
	m := g.WeightsMatrix()
	m[0][1] = 0.1
	if g.Weight(0, 1) != 0.9 {
		t.Error("WeightsMatrix should be a copy")
	}
}

func TestStronglyConnected(t *testing.T) {
	g := mustPrefGraph(t, 3)
	setW(t, g, 0, 1, 0.5)
	setW(t, g, 1, 2, 0.5)
	if g.StronglyConnected() {
		t.Error("one-way chain is not strongly connected")
	}
	setW(t, g, 2, 0, 0.5)
	if !g.StronglyConnected() {
		t.Error("cycle should be strongly connected")
	}
	comps := g.StronglyConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Errorf("SCCs = %v", comps)
	}
}

func TestSCCStructure(t *testing.T) {
	// Two 2-cycles joined by a one-way edge: 2 SCCs.
	g := mustPrefGraph(t, 4)
	setW(t, g, 0, 1, 0.5)
	setW(t, g, 1, 0, 0.5)
	setW(t, g, 2, 3, 0.5)
	setW(t, g, 3, 2, 0.5)
	setW(t, g, 1, 2, 0.5)
	comps := g.StronglyConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("want 2 SCCs, got %v", comps)
	}
	sizes := map[int]bool{len(comps[0]): true, len(comps[1]): true}
	if !sizes[2] || len(comps[0])+len(comps[1]) != 4 {
		t.Errorf("SCC sizes wrong: %v", comps)
	}
}

func TestReachable(t *testing.T) {
	g := mustPrefGraph(t, 4)
	setW(t, g, 0, 1, 0.5)
	setW(t, g, 1, 2, 0.5)
	reach := g.Reachable()
	if !reach[0][1] || !reach[0][2] || reach[0][3] {
		t.Errorf("reach[0] = %v", reach[0])
	}
	if reach[2][0] {
		t.Error("backward reach should be false")
	}
}

func TestHasHamiltonianPathReachability(t *testing.T) {
	// Chain: yes.
	g := mustPrefGraph(t, 3)
	setW(t, g, 0, 1, 0.5)
	setW(t, g, 1, 2, 0.5)
	if !g.HasHamiltonianPathReachability() {
		t.Error("chain closure should have an HP")
	}
	// Two incomparable components: no.
	h := mustPrefGraph(t, 4)
	setW(t, h, 0, 1, 0.5)
	setW(t, h, 2, 3, 0.5)
	if h.HasHamiltonianPathReachability() {
		t.Error("disconnected order should not have an HP")
	}
	// Fork: 0->1, 0->2 with 1,2 incomparable: no.
	f := mustPrefGraph(t, 3)
	setW(t, f, 0, 1, 0.5)
	setW(t, f, 0, 2, 0.5)
	if f.HasHamiltonianPathReachability() {
		t.Error("fork with incomparable leaves should not have an HP")
	}
	// Single vertex: trivially yes.
	s := mustPrefGraph(t, 1)
	if !s.HasHamiltonianPathReachability() {
		t.Error("singleton should have an HP")
	}
}

func TestStronglyConnectedQuickAgainstReachability(t *testing.T) {
	// Property: Tarjan's single-SCC answer matches pairwise reachability.
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%8) + 2
		edges := int(mRaw) % (n * (n - 1))
		rng := rand.New(rand.NewPCG(seed, 17))
		g, err := NewPreferenceGraph(n)
		if err != nil {
			return false
		}
		for e := 0; e < edges; e++ {
			i, j := rng.IntN(n), rng.IntN(n)
			if i == j {
				continue
			}
			if err := g.SetWeight(i, j, 0.5); err != nil {
				return false
			}
		}
		reach := g.Reachable()
		all := true
		for i := 0; i < n && all; i++ {
			for j := 0; j < n; j++ {
				if i != j && !reach[i][j] {
					all = false
					break
				}
			}
		}
		return g.StronglyConnected() == all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
