package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustTaskGraph(t *testing.T, n int) *TaskGraph {
	t.Helper()
	g, err := NewTaskGraph(n)
	if err != nil {
		t.Fatalf("NewTaskGraph(%d): %v", n, err)
	}
	return g
}

func TestPairCanon(t *testing.T) {
	if (Pair{I: 3, J: 1}).Canon() != (Pair{I: 1, J: 3}) {
		t.Error("Canon should order endpoints")
	}
	if (Pair{I: 1, J: 3}).Canon() != (Pair{I: 1, J: 3}) {
		t.Error("Canon should keep ordered pairs")
	}
	if !(Pair{I: 0, J: 1}).Valid() {
		t.Error("(0,1) should be valid")
	}
	if (Pair{I: 1, J: 1}).Valid() {
		t.Error("self pair should be invalid")
	}
	if (Pair{I: -1, J: 1}).Valid() {
		t.Error("negative pair should be invalid")
	}
	if (Pair{I: 1, J: 2}).String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestTaskGraphBasics(t *testing.T) {
	if _, err := NewTaskGraph(0); err == nil {
		t.Error("n=0 should fail")
	}
	g := mustTaskGraph(t, 4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("fresh graph: N=%d M=%d", g.N(), g.M())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge should fail")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("reversed duplicate should fail")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Error("self loop should fail")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Error("out of range should fail")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge should exist both ways")
	}
	if g.HasEdge(0, 2) {
		t.Error("absent edge reported")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Error("degree wrong")
	}
	if g.Degree(-1) != 0 || g.Degree(10) != 0 {
		t.Error("out-of-range degree should be 0")
	}
}

func TestTaskGraphRemoveEdge(t *testing.T) {
	g := mustTaskGraph(t, 3)
	if g.RemoveEdge(0, 1) {
		t.Error("removing absent edge should return false")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveEdge(1, 0) {
		t.Error("removal should succeed via either orientation")
	}
	if g.M() != 0 || g.HasEdge(0, 1) {
		t.Error("edge not fully removed")
	}
	// Re-add must work after removal.
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("re-add after removal: %v", err)
	}
}

func TestTaskGraphEdgesSortedAndStable(t *testing.T) {
	g := mustTaskGraph(t, 5)
	for _, e := range [][2]int{{3, 1}, {0, 4}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	edges := g.Edges()
	want := []Pair{{0, 2}, {0, 4}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestTaskGraphConnectivityAndPaths(t *testing.T) {
	g := mustTaskGraph(t, 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.Connected() {
		t.Error("graph with isolated vertex is not connected")
	}
	g.AddEdge(2, 3)
	if !g.Connected() {
		t.Error("path graph should be connected")
	}
	if !g.IsHamiltonianPath([]int{0, 1, 2, 3}) {
		t.Error("0-1-2-3 should be an HP")
	}
	if g.IsHamiltonianPath([]int{0, 1, 2}) {
		t.Error("short path is not an HP")
	}
	if g.IsHamiltonianPath([]int{0, 2, 1, 3}) {
		t.Error("non-adjacent hops should fail")
	}
	if g.IsHamiltonianPath([]int{0, 1, 1, 3}) {
		t.Error("repeated vertex should fail")
	}
	if !g.ContainsPath([]int{1, 2, 3}) {
		t.Error("1-2-3 should be a path")
	}
}

func TestTaskGraphRegularityAndDegrees(t *testing.T) {
	g := mustTaskGraph(t, 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	if !g.IsRegular() {
		t.Error("cycle should be regular")
	}
	dmin, dmax := g.MinMaxDegree()
	if dmin != 2 || dmax != 2 {
		t.Errorf("cycle degrees: %d..%d", dmin, dmax)
	}
	ds := g.Degrees()
	for i, d := range ds {
		if d != 2 {
			t.Errorf("degree[%d] = %d", i, d)
		}
	}
	g.AddEdge(0, 2)
	if g.IsRegular() {
		t.Error("after chord the graph is irregular")
	}
	nbrs := g.Neighbors(0)
	if len(nbrs) != 3 || nbrs[0] != 1 || nbrs[1] != 2 || nbrs[2] != 3 {
		t.Errorf("Neighbors(0) = %v", nbrs)
	}
	if g.Neighbors(-1) != nil {
		t.Error("out-of-range neighbors should be nil")
	}
}

func TestTaskGraphClone(t *testing.T) {
	g := mustTaskGraph(t, 4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.M() != 2 || c.M() != 3 {
		t.Error("clone should be independent")
	}
}

func TestTaskGraphQuickInvariants(t *testing.T) {
	// Adding k random valid edges keeps M consistent with the edge list and
	// degrees summing to 2M.
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%20) + 2
		k := int(kRaw) % (n * (n - 1) / 2)
		rng := rand.New(rand.NewPCG(seed, 3))
		g, err := NewTaskGraph(n)
		if err != nil {
			return false
		}
		added := 0
		for added < k {
			i, j := rng.IntN(n), rng.IntN(n)
			if i == j || g.HasEdge(i, j) {
				continue
			}
			if err := g.AddEdge(i, j); err != nil {
				return false
			}
			added++
		}
		if g.M() != k || len(g.Edges()) != k {
			return false
		}
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
