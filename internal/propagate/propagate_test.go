package propagate

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"crowdrank/internal/graph"
)

func buildGraph(t *testing.T, n int, edges map[[2]int]float64) *graph.PreferenceGraph {
	t.Helper()
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for e, w := range edges {
		if err := g.SetWeight(e[0], e[1], w); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestClosureValidation(t *testing.T) {
	g := buildGraph(t, 2, map[[2]int]float64{{0, 1}: 0.8, {1, 0}: 0.2})
	if _, _, err := Closure(nil, DefaultParams()); err == nil {
		t.Error("nil graph should fail")
	}
	for _, mutate := range []func(*Params){
		func(p *Params) { p.Alpha = -0.1 },
		func(p *Params) { p.Alpha = 1.1 },
		func(p *Params) { p.MaxHops = 0 },
		func(p *Params) { p.PruneEpsilon = -1 },
		func(p *Params) { p.PriorStrength = -1 },
		func(p *Params) { p.WeightFloor = 0 },
		func(p *Params) { p.WeightFloor = 0.5 },
	} {
		p := DefaultParams()
		mutate(&p)
		if _, _, err := Closure(g, p); err == nil {
			t.Errorf("invalid params %+v should fail", p)
		}
	}
}

func TestClosureIsCompleteAndNormalized(t *testing.T) {
	// Sparse chain: completeness must hold regardless (Theorem 5.1).
	g := buildGraph(t, 5, map[[2]int]float64{
		{0, 1}: 0.9, {1, 0}: 0.1,
		{1, 2}: 0.8, {2, 1}: 0.2,
		{2, 3}: 0.95, {3, 2}: 0.05,
		{3, 4}: 0.7, {4, 3}: 0.3,
	})
	p := DefaultParams()
	cl, stats, err := Closure(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.IsComplete() {
		t.Fatal("closure must be complete")
	}
	n := cl.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			fwd, rev := cl.Weight(i, j), cl.Weight(j, i)
			if math.Abs(fwd+rev-1) > 1e-12 {
				t.Errorf("pair (%d,%d): %v + %v != 1", i, j, fwd, rev)
			}
			if fwd < p.WeightFloor || fwd > 1-p.WeightFloor {
				t.Errorf("pair (%d,%d) weight %v escapes the floor", i, j, fwd)
			}
		}
	}
	if stats.HopsUsed != p.MaxHops {
		t.Errorf("HopsUsed = %d", stats.HopsUsed)
	}
}

func TestClosureTransitivityDirection(t *testing.T) {
	// 0 beats 1, 1 beats 2; the inferred (0,2) preference must be > 0.5.
	g := buildGraph(t, 3, map[[2]int]float64{
		{0, 1}: 0.9, {1, 0}: 0.1,
		{1, 2}: 0.9, {2, 1}: 0.1,
	})
	cl, _, err := Closure(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if w := cl.Weight(0, 2); w <= 0.5 {
		t.Errorf("transitive pair weight = %v, want > 0.5", w)
	}
}

func TestClosureHopsOneKeepsDirectOnly(t *testing.T) {
	g := buildGraph(t, 3, map[[2]int]float64{
		{0, 1}: 0.9, {1, 0}: 0.1,
		{1, 2}: 0.9, {2, 1}: 0.1,
	})
	p := DefaultParams()
	p.MaxHops = 1
	cl, stats, err := Closure(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Pair (0,2) has no direct evidence and no propagation: 0.5.
	if w := cl.Weight(0, 2); w != 0.5 {
		t.Errorf("uninformed pair at hops=1 = %v, want 0.5", w)
	}
	if stats.UninformedPairs != 1 {
		t.Errorf("UninformedPairs = %d, want 1", stats.UninformedPairs)
	}
	// Direct pairs keep their normalized direct value.
	if w := cl.Weight(0, 1); math.Abs(w-0.9) > 1e-12 {
		t.Errorf("direct pair = %v, want 0.9", w)
	}
}

func TestClosureAlphaExtremes(t *testing.T) {
	g := buildGraph(t, 3, map[[2]int]float64{
		{0, 1}: 0.9, {1, 0}: 0.1,
		{1, 2}: 0.9, {2, 1}: 0.1,
		{0, 2}: 0.2, {2, 0}: 0.8, // direct evidence contradicting transitivity
	})
	// alpha=1: direct only; the contradicting direct evidence wins.
	p := DefaultParams()
	p.Alpha = 1
	cl, _, err := Closure(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if w := cl.Weight(0, 2); math.Abs(w-0.2) > 1e-12 {
		t.Errorf("alpha=1: weight = %v, want 0.2", w)
	}
	// alpha=0: indirect only; transitivity wins.
	p.Alpha = 0
	cl, _, err = Closure(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if w := cl.Weight(0, 2); w <= 0.5 {
		t.Errorf("alpha=0: weight = %v, want > 0.5", w)
	}
}

func TestClosurePriorShrinksWeakEvidence(t *testing.T) {
	// A single weak transitive chain versus many strong ones: with the
	// prior enabled, the weakly evidenced pair must sit closer to 0.5 than
	// without it.
	g := buildGraph(t, 4, map[[2]int]float64{
		{0, 1}: 0.9, {1, 0}: 0.1,
		{1, 2}: 0.9, {2, 1}: 0.1,
		{2, 3}: 0.9, {3, 2}: 0.1,
	})
	noPrior := DefaultParams()
	noPrior.PriorStrength = 0
	clNo, _, err := Closure(g, noPrior)
	if err != nil {
		t.Fatal(err)
	}
	withPrior := DefaultParams()
	withPrior.PriorStrength = 5
	clYes, _, err := Closure(g, withPrior)
	if err != nil {
		t.Fatal(err)
	}
	// (0,3) is reachable only by the single 3-hop chain: weak evidence.
	weakNo := clNo.Weight(0, 3)
	weakYes := clYes.Weight(0, 3)
	if !(weakYes < weakNo && weakYes > 0.5) {
		t.Errorf("prior should shrink weak pair toward 0.5: %v -> %v", weakNo, weakYes)
	}
}

func TestClosureUninformedPairFallsBackToHalf(t *testing.T) {
	// Two disconnected components: cross pairs have no evidence at all.
	g := buildGraph(t, 4, map[[2]int]float64{
		{0, 1}: 0.9, {1, 0}: 0.1,
		{2, 3}: 0.8, {3, 2}: 0.2,
	})
	cl, stats, err := Closure(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		if w := cl.Weight(pr[0], pr[1]); w != 0.5 {
			t.Errorf("cross pair %v = %v, want 0.5", pr, w)
		}
	}
	if stats.UninformedPairs != 4 {
		t.Errorf("UninformedPairs = %d, want 4", stats.UninformedPairs)
	}
}

func TestClosureHopsClampedToNMinusOne(t *testing.T) {
	g := buildGraph(t, 3, map[[2]int]float64{{0, 1}: 0.9, {1, 2}: 0.9})
	p := DefaultParams()
	p.MaxHops = 50
	_, stats, err := Closure(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HopsUsed != 2 {
		t.Errorf("HopsUsed = %d, want 2 (n-1)", stats.HopsUsed)
	}
}

func TestClosurePropertiesQuick(t *testing.T) {
	// Property: for random strongly-mixed graphs the closure is complete,
	// pairwise-normalized and floor-respecting.
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		n := int(nRaw%10) + 2
		g, err := graph.NewPreferenceGraph(n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					continue
				}
				w := 0.05 + 0.9*rng.Float64()
				if g.SetWeight(i, j, w) != nil || g.SetWeight(j, i, 1-w) != nil {
					return false
				}
			}
		}
		p := DefaultParams()
		cl, _, err := Closure(g, p)
		if err != nil {
			return false
		}
		if !cl.IsComplete() {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				fwd := cl.Weight(i, j)
				if math.Abs(fwd+cl.Weight(j, i)-1) > 1e-9 {
					return false
				}
				if fwd < p.WeightFloor || fwd > 1-p.WeightFloor {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestClosureAlwaysHamiltonian(t *testing.T) {
	// Theorem 5.1: the closure of any (even disconnected) preference graph
	// admits a Hamiltonian path because it is complete.
	g := buildGraph(t, 6, map[[2]int]float64{
		{0, 1}: 1,
		{3, 4}: 0.6, {4, 3}: 0.4,
	})
	cl, _, err := Closure(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !cl.HasHamiltonianPathReachability() {
		t.Error("complete closure must admit a Hamiltonian path")
	}
}
