package propagate

import (
	"math"
	"math/rand/v2"
	"testing"

	"crowdrank/internal/graph"
)

// enumerateWalkSum computes, by explicit recursion, the sum over all walks
// from src to dst with 2..maxHops hops of the product of edge weights,
// excluding walks that revisit src as an intermediate or pass through dst
// before the end is irrelevant — the implementation counts walks whose
// intermediates may repeat (except the source), so the reference must
// match that definition exactly.
func enumerateWalkSum(g *graph.PreferenceGraph, src, dst, maxHops int) float64 {
	var recurse func(cur int, hops int, product float64) float64
	recurse = func(cur int, hops int, product float64) float64 {
		total := 0.0
		if hops >= 2 && cur == dst {
			total += product
		}
		if hops == maxHops {
			return total
		}
		for _, next := range g.Out(cur) {
			if next == src {
				continue // the implementation never revisits the source
			}
			total += recurse(next, hops+1, product*g.Weight(cur, next))
		}
		return total
	}
	// First hop: leave src once; walks of length >= 2 only.
	total := 0.0
	for _, next := range g.Out(src) {
		if next == src {
			continue
		}
		total += recurse(next, 1, g.Weight(src, next))
	}
	return total
}

// TestWalkSumsMatchEnumeration verifies the matrix-power accumulation in
// walkSums against brute-force walk enumeration on random small graphs.
func TestWalkSumsMatchEnumeration(t *testing.T) {
	rng := rand.New(rand.NewPCG(123, 7))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.IntN(4)
		g, err := graph.NewPreferenceGraph(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.Float64() < 0.4 {
					continue
				}
				if err := g.SetWeight(i, j, 0.1+0.8*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, hops := range []int{2, 3, 4} {
			indirect, _ := walkSums(g, g.WeightsMatrix(), hops, 0, 1)
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					want := enumerateWalkSum(g, src, dst, hops)
					got := indirect[src][dst]
					if math.Abs(got-want) > 1e-9*(1+want) {
						t.Fatalf("trial %d hops %d (%d->%d): walkSums %v, enumeration %v",
							trial, hops, src, dst, got, want)
					}
				}
			}
		}
	}
}

// TestWalkSumsExcludesDirectEdge verifies that a lone direct edge
// contributes nothing to the indirect sums (indirect evidence means 2+
// hops).
func TestWalkSumsExcludesDirectEdge(t *testing.T) {
	g, err := graph.NewPreferenceGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	indirect, pairs := walkSums(g, g.WeightsMatrix(), 3, 0, 1)
	if indirect[0][1] != 0 || pairs != 0 {
		t.Errorf("lone direct edge leaked into indirect sums: %v (pairs=%d)", indirect[0][1], pairs)
	}
}

// TestWalkSumsPruning verifies that PruneEpsilon only removes
// below-threshold contributions.
func TestWalkSumsPruning(t *testing.T) {
	g, err := graph.NewPreferenceGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	// Chain 0 -> 1 -> 2 with a tiny first hop.
	if err := g.SetWeight(0, 1, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight(1, 2, 0.9); err != nil {
		t.Fatal(err)
	}
	unpruned, _ := walkSums(g, g.WeightsMatrix(), 2, 0, 1)
	if unpruned[0][2] == 0 {
		t.Fatal("unpruned walk should exist")
	}
	pruned, _ := walkSums(g, g.WeightsMatrix(), 2, 1e-3, 1)
	if pruned[0][2] != 0 {
		t.Errorf("pruning should drop the tiny-product walk, got %v", pruned[0][2])
	}
}

// TestWalkSumsParallelMatchesSequential verifies the row-sharded
// computation is bit-identical to the sequential one.
func TestWalkSumsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	n := 80
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() < 0.7 {
				continue
			}
			if err := g.SetWeight(i, j, 0.1+0.8*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	seq, _ := walkSums(g, g.WeightsMatrix(), 3, 0, 1)
	par, _ := walkSums(g, g.WeightsMatrix(), 3, 0, 8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if seq[i][j] != par[i][j] {
				t.Fatalf("parallel walkSums differ at (%d,%d): %v vs %v", i, j, par[i][j], seq[i][j])
			}
		}
	}
}

// TestClosureParallelismOption exercises the public option end to end.
func TestClosureParallelismOption(t *testing.T) {
	g := buildGraph(t, 5, map[[2]int]float64{
		{0, 1}: 0.9, {1, 0}: 0.1,
		{1, 2}: 0.8, {2, 1}: 0.2,
		{2, 3}: 0.7, {3, 2}: 0.3,
		{3, 4}: 0.9, {4, 3}: 0.1,
	})
	p := DefaultParams()
	seqCl, _, err := Closure(g, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 4
	parCl, _, err := Closure(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if seqCl.Weight(i, j) != parCl.Weight(i, j) {
				t.Fatalf("closure differs at (%d,%d)", i, j)
			}
		}
	}
	bad := DefaultParams()
	bad.Parallelism = -1
	if _, _, err := Closure(g, bad); err == nil {
		t.Error("negative parallelism should fail")
	}
}
