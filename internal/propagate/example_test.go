package propagate_test

import (
	"fmt"
	"log"

	"crowdrank/internal/graph"
	"crowdrank/internal/propagate"
)

// ExampleClosure shows transitivity at work: 0 beats 1 and 1 beats 2 are
// observed directly; the closure infers 0 over 2 and completes every pair.
func ExampleClosure() {
	g, err := graph.NewPreferenceGraph(3)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range []struct {
		i, j int
		w    float64
	}{
		{0, 1, 0.9}, {1, 0, 0.1},
		{1, 2, 0.9}, {2, 1, 0.1},
	} {
		if err := g.SetWeight(e.i, e.j, e.w); err != nil {
			log.Fatal(err)
		}
	}
	closure, stats, err := propagate.Closure(g, propagate.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("complete:", closure.IsComplete())
	fmt.Println("transitive pair 0<2 above 1/2:", closure.Weight(0, 2) > 0.5)
	fmt.Println("uninformed pairs:", stats.UninformedPairs)
	// Output:
	// complete: true
	// transitive pair 0<2 above 1/2: true
	// uninformed pairs: 0
}
