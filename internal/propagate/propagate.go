// Package propagate implements Step 3 of result inference (Section V-C):
// computing indirect pairwise preferences by transitivity and blending them
// with the direct preferences into the transitive closure G_P^*.
//
// For a path P(v_i, ..., v_j) the inferred weight is the product of the edge
// weights along P; multiple paths between the same endpoints are summed with
// equal importance. Enumerating all simple paths of length up to n-1 is
// exponential, so this implementation accumulates bounded-hop walk products
// (matrix powers of the weight matrix) up to MaxHops hops: because every
// weight lies in (0, 1), longer chains contribute geometrically less, and
// the dominant transitive evidence lives in the short chains. MaxHops is an
// option and an ablation benchmark covers its effect.
//
// The final preference is w̌_ij = alpha*w_ij + (1-alpha)*w*_ij, followed by
// the pairwise normalization w_ij <- w_ij / (w_ij + w_ji) so that
// w_ij + w_ji = 1 (the probability constraint of Ailon et al.). The result
// is a complete weighted tournament, so it always admits a Hamiltonian path
// (Theorem 5.1).
package propagate

import (
	"fmt"
	"sync"

	"crowdrank/internal/graph"
	"crowdrank/internal/invariant"
)

// Params tunes propagation. The zero value is not usable; call
// DefaultParams.
type Params struct {
	// Alpha weighs direct versus indirect preference in the blend
	// w̌ = alpha*direct + (1-alpha)*indirect. The paper leaves it
	// user-specified; 0.5 is the neutral default.
	Alpha float64
	// MaxHops bounds the transitive chains considered (2..MaxHops hops).
	// MaxHops = 1 disables propagation (direct preferences only).
	MaxHops int
	// PruneEpsilon drops walk products below this magnitude during
	// accumulation; 0 keeps everything.
	PruneEpsilon float64
	// PriorStrength shrinks each pair's indirect ratio toward 1/2 in
	// proportion to how little walk evidence supports it: the ratio is
	// damped by total/(total + PriorStrength*meanTotal), where total is the
	// pair's two-directional walk mass and meanTotal the average over
	// informed pairs. Without shrinkage, a pair supported by one or two
	// noisy walks can receive an extreme weight, and the Step 4 product
	// objective chains such "wormhole" edges into high-probability but
	// wrong rankings. 0 disables shrinkage.
	PriorStrength float64
	// WeightFloor keeps every normalized weight inside
	// [WeightFloor, 1-WeightFloor] so the closure is strictly complete and
	// log-weights stay finite for Step 4's search.
	WeightFloor float64
	// Parallelism shards the walk-sum accumulation (each source row is
	// independent) over this many goroutines. The result is identical to
	// the sequential computation — rows never share accumulators. 0 or 1
	// means sequential.
	Parallelism int
}

// DefaultParams returns the propagation parameters used in the reproduction.
func DefaultParams() Params {
	return Params{
		Alpha:         0.5,
		MaxHops:       3,
		PruneEpsilon:  0,
		PriorStrength: 1.0,
		WeightFloor:   1e-4,
	}
}

func (p Params) validate() error {
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("propagate: alpha %v outside [0,1]", p.Alpha)
	}
	if p.MaxHops < 1 {
		return fmt.Errorf("propagate: MaxHops must be >= 1, got %d", p.MaxHops)
	}
	if p.PruneEpsilon < 0 {
		return fmt.Errorf("propagate: negative PruneEpsilon %v", p.PruneEpsilon)
	}
	if p.PriorStrength < 0 {
		return fmt.Errorf("propagate: negative PriorStrength %v", p.PriorStrength)
	}
	if p.WeightFloor <= 0 || p.WeightFloor >= 0.5 {
		return fmt.Errorf("propagate: WeightFloor %v outside (0, 0.5)", p.WeightFloor)
	}
	if p.Parallelism < 0 {
		return fmt.Errorf("propagate: negative Parallelism %d", p.Parallelism)
	}
	return nil
}

// Stats reports propagation diagnostics.
type Stats struct {
	// IndirectPairs counts ordered pairs that received indirect evidence.
	IndirectPairs int
	// UninformedPairs counts unordered pairs with no direct or indirect
	// evidence in either direction, which fall back to 0.5/0.5.
	UninformedPairs int
	// HopsUsed echoes the effective hop bound.
	HopsUsed int
}

// Closure computes the normalized transitive closure G_P^* of the smoothed
// preference graph g. The returned graph is complete: every ordered pair
// (i, j), i != j, has weight in [WeightFloor, 1-WeightFloor] and
// w_ij + w_ji = 1.
func Closure(g *graph.PreferenceGraph, p Params) (*graph.PreferenceGraph, Stats, error) {
	if err := p.validate(); err != nil {
		return nil, Stats{}, err
	}
	if g == nil {
		return nil, Stats{}, fmt.Errorf("propagate: nil preference graph")
	}
	n := g.N()
	direct := g.WeightsMatrix()

	hops := p.MaxHops
	if hops > n-1 {
		hops = n - 1
	}
	if hops < 1 {
		hops = 1
	}
	indirect, indirectPairs := walkSums(g, direct, hops, p.PruneEpsilon, p.Parallelism)

	closure, err := graph.NewPreferenceGraph(n)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("propagate: %w", err)
	}
	var stats Stats
	stats.IndirectPairs = indirectPairs
	stats.HopsUsed = hops

	// Mean two-directional walk mass over informed pairs, the reference
	// scale for PriorStrength shrinkage.
	meanMass := 0.0
	informed := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mass := indirect[i][j] + indirect[j][i]
			if mass > 0 {
				meanMass += mass
				informed++
			}
		}
	}
	if informed > 0 {
		meanMass /= float64(informed)
	}

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Direct and indirect evidence live on different scales: direct
			// weights are probabilities (w_ij + w_ji = 1 after smoothing)
			// while walk sums grow with the number of contributing paths.
			// Normalize each source per pair before blending so alpha
			// keeps its meaning; the paper's final normalization
			// w_ij / (w_ij + w_ji) makes the two formulations agree up to
			// this per-source scaling. See DESIGN.md.
			dTotal := direct[i][j] + direct[j][i]
			iTotal := indirect[i][j] + indirect[j][i]
			var indRatio float64
			if iTotal > 0 {
				indRatio = indirect[i][j] / iTotal
				if p.PriorStrength > 0 && meanMass > 0 {
					conf := iTotal / (iTotal + p.PriorStrength*meanMass)
					indRatio = 0.5 + conf*(indRatio-0.5)
				}
			}
			var wij float64
			switch {
			case dTotal > 0 && iTotal > 0:
				wij = p.Alpha*direct[i][j]/dTotal + (1-p.Alpha)*indRatio
			case dTotal > 0:
				wij = direct[i][j] / dTotal
			case iTotal > 0:
				wij = indRatio
			default:
				stats.UninformedPairs++
				wij = 0.5
			}
			wij = clampWeight(wij, p.WeightFloor)
			if err := closure.SetWeight(i, j, wij); err != nil {
				return nil, Stats{}, fmt.Errorf("propagate: %w", err)
			}
			if err := closure.SetWeight(j, i, 1-wij); err != nil {
				return nil, Stats{}, fmt.Errorf("propagate: %w", err)
			}
		}
	}
	// Stage-boundary assertion (no-op unless built with
	// -tags crowdrank_invariants): the closure is a complete tournament
	// with w_ij + w_ji = 1, the state Theorem 5.1 relies on.
	invariant.CheckTournament(closure)
	return closure, stats, nil
}

func clampWeight(w, floor float64) float64 {
	switch {
	case w < floor:
		return floor
	case w > 1-floor:
		return 1 - floor
	default:
		return w
	}
}

// walkSums accumulates, for every ordered pair (i, j), the sum over
// 2..hops-hop walks of the product of edge weights: indirect[i][j] =
// sum_{h=2..hops} (W^h)_ij, with diagonal contributions discarded at every
// step so cycles through the source do not feed back. The multiplication
// exploits sparsity by skipping zero entries of the current power.
func walkSums(g *graph.PreferenceGraph, direct [][]float64, hops int, prune float64, parallelism int) ([][]float64, int) {
	n := g.N()
	indirect := newMatrix(n)
	if hops < 2 {
		return indirect, 0
	}

	cur := newMatrix(n) // current power W^h, starting at W^1 = direct
	for i := 0; i < n; i++ {
		copy(cur[i], direct[i])
	}
	next := newMatrix(n)

	// Each source row i is independent of every other row, so the per-hop
	// update shards trivially across goroutines with identical results.
	updateRow := func(i int) {
		row := next[i]
		for j := range row {
			row[j] = 0
		}
		curRow := cur[i]
		for k := 0; k < n; k++ {
			w := curRow[k]
			if w <= prune || k == i {
				continue
			}
			for _, j := range g.Out(k) {
				if j == i {
					continue
				}
				row[j] += w * direct[k][j]
			}
		}
		for j := 0; j < n; j++ {
			indirect[i][j] += row[j]
		}
	}

	for h := 2; h <= hops; h++ {
		if parallelism <= 1 || n < 64 {
			for i := 0; i < n; i++ {
				updateRow(i)
			}
		} else {
			workers := parallelism
			if workers > n {
				workers = n
			}
			var wg sync.WaitGroup
			rowCh := make(chan int)
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func() {
					defer wg.Done()
					for i := range rowCh {
						updateRow(i)
					}
				}()
			}
			for i := 0; i < n; i++ {
				rowCh <- i
			}
			close(rowCh)
			wg.Wait()
		}
		cur, next = next, cur
	}

	pairs := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && indirect[i][j] > 0 {
				pairs++
			}
		}
	}
	return indirect, pairs
}

func newMatrix(n int) [][]float64 {
	rows := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range rows {
		rows[i], backing = backing[:n:n], backing[n:]
	}
	return rows
}
