package smooth

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"crowdrank/internal/graph"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1)) }

func buildGraph(t *testing.T, n int, edges map[[2]int]float64) *graph.PreferenceGraph {
	t.Helper()
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for e, w := range edges {
		if err := g.SetWeight(e[0], e[1], w); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSmoothValidation(t *testing.T) {
	g := buildGraph(t, 2, map[[2]int]float64{{0, 1}: 1})
	q := []float64{0.9}
	if _, _, err := Smooth(nil, q, nil, newRNG(1), DefaultParams()); err == nil {
		t.Error("nil graph should fail")
	}
	if _, _, err := Smooth(g, q, nil, nil, DefaultParams()); err == nil {
		t.Error("nil rng should fail")
	}
	bad := DefaultParams()
	bad.MinDelta = 0
	if _, _, err := Smooth(g, q, nil, newRNG(1), bad); err == nil {
		t.Error("MinDelta=0 should fail")
	}
	bad = DefaultParams()
	bad.MaxDelta = 0.6
	if _, _, err := Smooth(g, q, nil, newRNG(1), bad); err == nil {
		t.Error("MaxDelta >= 0.5 should fail")
	}
	bad = DefaultParams()
	bad.MaxDelta = bad.MinDelta / 2
	if _, _, err := Smooth(g, q, nil, newRNG(1), bad); err == nil {
		t.Error("MaxDelta < MinDelta should fail")
	}
}

func TestSmoothRelaxesOneEdges(t *testing.T) {
	// A unanimous chain 0 -> 1 -> 2 plus one conflicted pair (0,2).
	g := buildGraph(t, 3, map[[2]int]float64{
		{0, 1}: 1,
		{1, 2}: 1,
		{0, 2}: 0.8,
		{2, 0}: 0.2,
	})
	workers := map[graph.Pair][]int{
		{I: 0, J: 1}: {0, 1},
		{I: 1, J: 2}: {0, 1},
		{I: 0, J: 2}: {0, 1},
	}
	quality := []float64{0.95, 0.9}
	sm, stats, err := Smooth(g, quality, workers, newRNG(7), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if stats.OneEdges != 2 || stats.Smoothed != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.MeanDelta <= 0 || stats.MeanDelta >= 0.5 {
		t.Errorf("MeanDelta = %v", stats.MeanDelta)
	}
	if len(sm.OneEdges()) != 0 {
		t.Error("no 1-edges should remain")
	}
	// Each former 1-edge must keep its majority direction and gain a
	// positive reverse edge summing to 1.
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		fwd, rev := sm.Weight(e[0], e[1]), sm.Weight(e[1], e[0])
		if fwd <= 0.5 || rev <= 0 || fwd+rev != 1 {
			t.Errorf("edge %v: fwd=%v rev=%v", e, fwd, rev)
		}
	}
	// The conflicted pair must be untouched.
	if sm.Weight(0, 2) != 0.8 || sm.Weight(2, 0) != 0.2 {
		t.Error("non-1-edges must not be smoothed")
	}
	// The input graph must not be mutated.
	if g.Weight(0, 1) != 1 {
		t.Error("Smooth must operate on a copy")
	}
}

func TestSmoothMakesStronglyConnected(t *testing.T) {
	// A unanimous directed path is not strongly connected; after smoothing
	// it must be (the Theorem 5.1 prerequisite).
	n := 8
	g, err := graph.NewPreferenceGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	workers := make(map[graph.Pair][]int)
	for i := 0; i+1 < n; i++ {
		if err := g.SetWeight(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
		workers[graph.Pair{I: i, J: i + 1}] = []int{0, 1, 2}
	}
	if g.StronglyConnected() {
		t.Fatal("precondition: one-way chain should not be strongly connected")
	}
	quality := []float64{0.9, 0.8, 0.99}
	sm, _, err := Smooth(g, quality, workers, newRNG(3), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !sm.StronglyConnected() {
		t.Error("smoothed unanimous chain must be strongly connected")
	}
}

func TestSmoothHighQualityWorkersSmallDelta(t *testing.T) {
	// Perfect workers (q=1) have sigma = 0, so the delta clamps at MinDelta.
	g := buildGraph(t, 2, map[[2]int]float64{{0, 1}: 1})
	workers := map[graph.Pair][]int{{I: 0, J: 1}: {0, 1, 2}}
	quality := []float64{1, 1, 1}
	p := DefaultParams()
	sm, stats, err := Smooth(g, quality, workers, newRNG(5), p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanDelta != p.MinDelta {
		t.Errorf("perfect workers: delta = %v, want MinDelta %v", stats.MeanDelta, p.MinDelta)
	}
	if sm.Weight(0, 1) != 1-p.MinDelta {
		t.Errorf("weight = %v", sm.Weight(0, 1))
	}
}

func TestSmoothLowQualityWorkersLargerDelta(t *testing.T) {
	// Statistically, lower quality -> larger average adjustment.
	mean := func(q float64) float64 {
		total := 0.0
		const trials = 200
		for s := 0; s < trials; s++ {
			g := buildGraph(t, 2, map[[2]int]float64{{0, 1}: 1})
			workers := map[graph.Pair][]int{{I: 0, J: 1}: {0}}
			_, stats, err := Smooth(g, []float64{q}, workers, newRNG(uint64(s)), DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			total += stats.MeanDelta
		}
		return total / trials
	}
	if hi, lo := mean(0.99), mean(0.5); hi >= lo {
		t.Errorf("delta(q=0.99)=%v should be below delta(q=0.5)=%v", hi, lo)
	}
}

func TestSmoothNoWorkersFallsBackToMinDelta(t *testing.T) {
	g := buildGraph(t, 2, map[[2]int]float64{{0, 1}: 1})
	p := DefaultParams()
	sm, _, err := Smooth(g, nil, nil, newRNG(2), p)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Weight(1, 0) != p.MinDelta {
		t.Errorf("fallback delta = %v", sm.Weight(1, 0))
	}
}

func TestSmoothBadQuality(t *testing.T) {
	g := buildGraph(t, 2, map[[2]int]float64{{0, 1}: 1})
	workers := map[graph.Pair][]int{{I: 0, J: 1}: {0}}
	if _, _, err := Smooth(g, []float64{0}, workers, newRNG(1), DefaultParams()); err == nil {
		t.Error("quality 0 should fail")
	}
	if _, _, err := Smooth(g, []float64{1.5}, workers, newRNG(1), DefaultParams()); err == nil {
		t.Error("quality > 1 should fail")
	}
	if _, _, err := Smooth(g, []float64{0.5}, map[graph.Pair][]int{{I: 0, J: 1}: {7}}, newRNG(1), DefaultParams()); err == nil {
		t.Error("worker outside quality table should fail")
	}
}

func TestSmoothWeightsStayValidQuick(t *testing.T) {
	// Property: for random unanimous graphs and qualities, all smoothed
	// weights lie in (0,1), pairs sum to 1, and the majority direction is
	// preserved.
	f := func(seed uint64, nRaw uint8) bool {
		rng := newRNG(seed)
		n := int(nRaw%10) + 2
		g, err := graph.NewPreferenceGraph(n)
		if err != nil {
			return false
		}
		workers := make(map[graph.Pair][]int)
		quality := []float64{0.3 + 0.7*rng.Float64(), 0.3 + 0.7*rng.Float64()}
		for i := 0; i+1 < n; i++ {
			if err := g.SetWeight(i, i+1, 1); err != nil {
				return false
			}
			workers[graph.Pair{I: i, J: i + 1}] = []int{0, 1}
		}
		sm, _, err := Smooth(g, quality, workers, rng, DefaultParams())
		if err != nil {
			return false
		}
		for i := 0; i+1 < n; i++ {
			fwd, rev := sm.Weight(i, i+1), sm.Weight(i+1, i)
			if fwd <= 0.5 || fwd >= 1 || rev <= 0 || rev >= 0.5 || fwd+rev != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
