package smooth_test

import (
	"fmt"
	"log"
	"math/rand/v2"

	"crowdrank/internal/graph"
	"crowdrank/internal/smooth"
)

// ExampleSmooth relaxes the 1-edges of a unanimous chain so the graph
// becomes strongly connected — the Theorem 5.1 prerequisite for a full
// ranking to exist.
func ExampleSmooth() {
	g, err := graph.NewPreferenceGraph(3)
	if err != nil {
		log.Fatal(err)
	}
	// Unanimous chain 0 -> 1 -> 2: two 1-edges, no way back.
	if err := g.SetWeight(0, 1, 1); err != nil {
		log.Fatal(err)
	}
	if err := g.SetWeight(1, 2, 1); err != nil {
		log.Fatal(err)
	}
	workers := map[graph.Pair][]int{
		{I: 0, J: 1}: {0, 1},
		{I: 1, J: 2}: {0, 1},
	}
	quality := []float64{0.98, 0.95}
	rng := rand.New(rand.NewPCG(1, 2))

	smoothed, stats, err := smooth.Smooth(g, quality, workers, rng, smooth.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before: strongly connected =", g.StronglyConnected())
	fmt.Println("1-edges smoothed:", stats.Smoothed)
	fmt.Println("after: strongly connected =", smoothed.StronglyConnected())
	fmt.Println("majority direction kept:", smoothed.Weight(0, 1) > 0.5)
	// Output:
	// before: strongly connected = false
	// 1-edges smoothed: 2
	// after: strongly connected = true
	// majority direction kept: true
}
