// Package smooth implements Step 2 of result inference (Section V-B):
// preference smoothing. Task assignment cannot guarantee a Hamiltonian path
// in the preference graph because unanimous votes create "1-edges" — edges
// of weight exactly 1 whose reverse preference is unknown — and in-/out-
// nodes made of 1-edges are the cause of HP failure (Theorem 4.3).
//
// Smoothing estimates the unknown reverse preference of every 1-edge from
// the error model of the workers who answered that task: worker k's error is
// N(0, sigma_k^2) with sigma_k = -log(q_k), so high-quality workers perturb
// the unanimous edge only slightly. After smoothing, every compared pair
// carries positive weight in both directions, which makes the smoothed graph
// strongly connected whenever the task graph is connected — the property
// Theorem 5.1 needs.
package smooth

import (
	"fmt"
	"math"
	"math/rand/v2"

	"crowdrank/internal/graph"
	"crowdrank/internal/invariant"
)

// Params tunes smoothing. The zero value is not usable; call DefaultParams.
type Params struct {
	// MinDelta is the smallest adjustment applied to a 1-edge. The paper's
	// raw formula can produce a zero adjustment when every answering worker
	// has quality 1 (sigma = -log 1 = 0), which would leave the 1-edge
	// unsmoothed and the graph possibly not strongly connected; the floor
	// guarantees progress. Documented as a deviation in DESIGN.md.
	MinDelta float64
	// MaxDelta caps the adjustment below 1/2 so the smoothed edge keeps its
	// original majority direction (w_ij stays > w_ji).
	MaxDelta float64
}

// DefaultParams returns the smoothing parameters used in the reproduction.
func DefaultParams() Params {
	return Params{MinDelta: 1e-3, MaxDelta: 0.499}
}

func (p Params) validate() error {
	if p.MinDelta <= 0 || p.MinDelta >= 0.5 {
		return fmt.Errorf("smooth: MinDelta %v outside (0, 0.5)", p.MinDelta)
	}
	if p.MaxDelta < p.MinDelta || p.MaxDelta >= 0.5 {
		return fmt.Errorf("smooth: MaxDelta %v outside [MinDelta, 0.5)", p.MaxDelta)
	}
	return nil
}

// Stats reports what smoothing did.
type Stats struct {
	// OneEdges is the number of 1-edges found (Figure 4's discussion links
	// this count to the Step 1 vs Step 2 time split).
	OneEdges int
	// Smoothed is the number of 1-edges adjusted (always equal to OneEdges
	// on valid input).
	Smoothed int
	// MeanDelta is the average adjustment applied.
	MeanDelta float64
}

// Smooth returns a smoothed copy of the preference graph g. quality[k] is
// worker k's estimated quality in (0, 1] (from Step 1); workersByPair maps
// each canonical compared pair to the workers who answered it. rng drives
// the error draws, so a fixed source makes smoothing reproducible.
func Smooth(g *graph.PreferenceGraph, quality []float64, workersByPair map[graph.Pair][]int, rng *rand.Rand, p Params) (*graph.PreferenceGraph, Stats, error) {
	if err := p.validate(); err != nil {
		return nil, Stats{}, err
	}
	if g == nil {
		return nil, Stats{}, fmt.Errorf("smooth: nil preference graph")
	}
	if rng == nil {
		return nil, Stats{}, fmt.Errorf("smooth: nil random source")
	}

	smoothed := g.Clone()
	oneEdges := smoothed.OneEdges()
	var stats Stats
	stats.OneEdges = len(oneEdges)
	var totalDelta float64

	for _, e := range oneEdges {
		workers := workersByPair[graph.Pair{I: e.I, J: e.J}.Canon()]
		delta, err := errorEstimate(workers, quality, rng, p)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("smooth: edge %v: %w", e, err)
		}
		// w_ij <- w_ij - delta, w_ji <- w_ji + delta (Section V-B).
		if err := smoothed.SetWeight(e.I, e.J, 1-delta); err != nil {
			return nil, Stats{}, fmt.Errorf("smooth: edge %v: %w", e, err)
		}
		if err := smoothed.SetWeight(e.J, e.I, delta); err != nil {
			return nil, Stats{}, fmt.Errorf("smooth: reverse of edge %v: %w", e, err)
		}
		stats.Smoothed++
		totalDelta += delta
	}
	if stats.Smoothed > 0 {
		stats.MeanDelta = totalDelta / float64(stats.Smoothed)
	}
	// Stage-boundary assertion (no-op unless built with
	// -tags crowdrank_invariants): no surviving 1-edges, bidirectional
	// pairs, and strong connectivity on connected support (Theorem 5.1).
	invariant.CheckSmoothed(smoothed)
	return smoothed, stats, nil
}

// errorEstimate computes the smoothing adjustment for one 1-edge: the mean
// of |err_k| over the answering workers, where err_k ~ N(0, sigma_k^2) and
// sigma_k = -log(q_k). The magnitude is clamped into [MinDelta, MaxDelta];
// the absolute value is taken because a signed draw could push a weight
// outside (0, 1), and the clamp keeps the unanimous direction dominant.
func errorEstimate(workers []int, quality []float64, rng *rand.Rand, p Params) (float64, error) {
	if len(workers) == 0 {
		// No recorded workers for this edge (possible when the caller
		// smooths a hand-built graph): fall back to the minimum adjustment.
		return p.MinDelta, nil
	}
	var sum float64
	for _, w := range workers {
		if w < 0 || w >= len(quality) {
			return 0, fmt.Errorf("worker %d outside quality table of size %d", w, len(quality))
		}
		q := quality[w]
		if q <= 0 || q > 1 {
			return 0, fmt.Errorf("worker %d has quality %v outside (0,1]", w, q)
		}
		sigma := -math.Log(q)
		sum += math.Abs(rng.NormFloat64() * sigma)
	}
	delta := sum / float64(len(workers))
	switch {
	case delta < p.MinDelta:
		delta = p.MinDelta
	case delta > p.MaxDelta:
		delta = p.MaxDelta
	}
	return delta, nil
}
