package replica

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Stream wire format. A replication stream is a chunked HTTP response
// carrying a sequence of frames, each introduced by a one-byte kind:
//
//	'R' (record):    uint64 seq | uint32 len | uint32 crc32c | payload
//	'H' (heartbeat): uint64 leaderNextSeq | uint64 epoch
//
// All integers little-endian, matching the journal's own record framing.
// Record payloads are journal batch records verbatim (the v1/v2 format
// internal/serve writes), checksummed again for the wire so a corrupted
// proxy hop cannot land a bad record in a follower's journal. Heartbeats
// flow while the leader is idle: they carry the leader's next sequence
// (the follower derives its lag from it) and the leader's current epoch
// (how a follower learns about promotions it did not itself perform).
const (
	frameRecord    = 'R'
	frameHeartbeat = 'H'

	// maxFramePayload bounds one record frame on the receiving side, a
	// backstop against a corrupt or hostile length prefix. Generous: the
	// journal's own record cap is far below this.
	maxFramePayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame is one decoded stream frame. Record frames carry seq and payload;
// heartbeats carry next (the leader's next sequence) and epoch.
type frame struct {
	kind    byte
	seq     uint64 // record frames: the record's sequence number
	next    uint64 // heartbeats: the leader's next sequence
	epoch   uint64 // heartbeats: the leader's epoch
	payload []byte
}

// writeRecordFrame emits one 'R' frame.
func writeRecordFrame(w *bufio.Writer, seq uint64, payload []byte) error {
	var hdr [17]byte
	hdr[0] = frameRecord
	binary.LittleEndian.PutUint64(hdr[1:9], seq)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeHeartbeatFrame emits one 'H' frame.
func writeHeartbeatFrame(w *bufio.Writer, next, epoch uint64) error {
	var hdr [17]byte
	hdr[0] = frameHeartbeat
	binary.LittleEndian.PutUint64(hdr[1:9], next)
	binary.LittleEndian.PutUint64(hdr[9:17], epoch)
	_, err := w.Write(hdr[:])
	return err
}

// readFrame decodes the next frame off the stream. io.EOF means the
// leader closed the stream cleanly between frames; any torn frame is
// reported as ErrUnexpectedEOF or a checksum error.
func readFrame(r *bufio.Reader) (frame, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return frame{}, err
	}
	var body [16]byte
	if _, err := io.ReadFull(r, body[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, fmt.Errorf("replica: torn %q frame header: %w", kind, err)
	}
	switch kind {
	case frameHeartbeat:
		return frame{
			kind:  kind,
			next:  binary.LittleEndian.Uint64(body[0:8]),
			epoch: binary.LittleEndian.Uint64(body[8:16]),
		}, nil
	case frameRecord:
		seq := binary.LittleEndian.Uint64(body[0:8])
		length := binary.LittleEndian.Uint32(body[8:12])
		want := binary.LittleEndian.Uint32(body[12:16])
		if length == 0 || length > maxFramePayload {
			return frame{}, fmt.Errorf("replica: implausible record frame length %d at seq %d", length, seq)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return frame{}, fmt.Errorf("replica: torn record frame at seq %d: %w", seq, err)
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return frame{}, fmt.Errorf("replica: record frame at seq %d failed checksum (recorded %08x, computed %08x)", seq, want, got)
		}
		return frame{kind: kind, seq: seq, payload: payload}, nil
	default:
		return frame{}, fmt.Errorf("replica: unknown frame kind %q", kind)
	}
}
