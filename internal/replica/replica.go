// Package replica layers warm-standby replication over the crowdrankd
// serving engine: one leader accepts ingest and streams its journal to
// followers, which replay continuously into their own journal+snapshot
// store, serve reads, and stand ready for promotion.
//
// Failover is epoch-fenced. Every node carries a durably-stored epoch;
// POST /promote bumps it on the chosen follower, and any node holding the
// leader role that observes a higher epoch — on a stream request, an
// ingest carrying the X-Crowdrank-Epoch header, or a heartbeat — steps
// down and poisons its own journal (the same seam a disk fault uses), so
// a deposed leader can never acknowledge another batch. Combined with the
// idempotency ack window replicating inside the stream, a client retrying
// a keyed batch across a failover gets exactly-once application end to
// end: the batch lands on whichever node is leader, and a replay of the
// same key on the new leader answers from the replicated window.
//
// The paper's setting makes this worth the machinery: the crowdsourcing
// budget B is spent in one non-interactive round, so votes lost to a dead
// collector are money lost — a warm standby keeps the collection round
// alive through a machine failure with zero acknowledged-vote loss once
// the follower has caught up.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdrank/internal/serve"
)

// Header names of the replication protocol. Clients echo the highest
// epoch they have seen on every request, which is what fences a deposed
// leader that missed the promotion; follower 503s carry the leader hint
// clients re-route on.
const (
	// LeaderHeader carries the advertised base URL of the node believed
	// to be the current leader, on follower rejections and health answers.
	LeaderHeader = "X-Crowdrank-Leader"
	// EpochHeader carries the fencing epoch: nodes set it on responses,
	// clients replay the highest value seen on subsequent requests.
	EpochHeader = "X-Crowdrank-Epoch"
)

// Role is a node's current replication role.
type Role string

const (
	RoleLeader   Role = "leader"
	RoleFollower Role = "follower"
)

// ErrDeposed marks a node fenced out of the leader role by a higher
// epoch. It poisons the journal, so it also surfaces as the journal's
// poison cause on /healthz and in refused ingests.
var ErrDeposed = errors.New("replica: deposed by a higher epoch")

// Config configures a Node. Zero-valued fields take the documented
// defaults.
type Config struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.1:8077"),
	// handed to clients as the leader hint when this node leads. Empty
	// omits the hint.
	Self string
	// Leader is the base URL to replicate from. Non-empty starts the node
	// as a follower of that URL; empty starts it as the leader.
	Leader string
	// EpochDir is the directory holding the durable epoch file. Empty
	// keeps the epoch in memory only — tests and in-memory nodes; any
	// journaled deployment should persist it (the daemon defaults it to
	// the journal directory).
	EpochDir string
	// MaxLag is the follower readiness threshold: /readyz answers ok only
	// while the follower is connected and at most this many records
	// behind the leader. 0 means the default 16.
	MaxLag uint64
	// HeartbeatEvery is how often an idle leader stream emits a heartbeat
	// frame (lag + epoch); the follower treats a stream silent for ~4
	// heartbeats as dead and re-dials. 0 means the default 500ms.
	HeartbeatEvery time.Duration
	// PollInterval is how often the leader's stream handler re-checks the
	// journal for new records once it has caught up. 0 means the default
	// 20ms.
	PollInterval time.Duration
	// SnapshotTimeout bounds the snapshot fetch that bootstraps a fresh
	// follower. 0 means the default 60s.
	SnapshotTimeout time.Duration
	// HTTPClient issues the follower's stream and snapshot requests; nil
	// uses a plain &http.Client{} (stream lifetimes are governed by
	// contexts and the heartbeat watchdog, not a global timeout).
	HTTPClient *http.Client
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	c.Self = strings.TrimRight(strings.TrimSpace(c.Self), "/")
	c.Leader = strings.TrimRight(strings.TrimSpace(c.Leader), "/")
	if c.MaxLag == 0 {
		c.MaxLag = 16
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.PollInterval == 0 {
		c.PollInterval = 20 * time.Millisecond
	}
	if c.SnapshotTimeout == 0 {
		c.SnapshotTimeout = 60 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.HeartbeatEvery < 0 || c.PollInterval < 0 || c.SnapshotTimeout < 0 {
		return c, fmt.Errorf("replica: intervals must be positive")
	}
	if c.Leader != "" && c.Leader == c.Self {
		return c, fmt.Errorf("replica: node cannot replicate from itself (%s)", c.Self)
	}
	return c, nil
}

// Node is one replication-aware daemon: a serve.Server plus the
// leader/follower machinery. Create with Open, wire Handler into an HTTP
// server, stop with Close.
type Node struct {
	cfg   Config
	srv   *serve.Server
	inner http.Handler
	met   *metrics
	logf  func(string, ...any)
	hc    *http.Client

	// mu guards the fencing state: role, epoch, and the best-known leader
	// URL move together.
	mu        sync.Mutex
	role      Role
	epoch     uint64
	leaderURL string

	// Follower stream telemetry, written by the replication loop.
	leaderNext atomic.Uint64 // leader's next sequence as last heard
	connected  atomic.Bool   // stream currently attached
	resync     atomic.Bool   // fell behind leader compaction; operator must re-bootstrap

	bootstrapped bool // this Open installed a snapshot from the leader

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool
}

// Open constructs the node: loads the durable epoch, bootstraps a fresh
// follower from the leader's snapshot when the local store is empty,
// builds the serving engine over the (possibly just-installed) journal,
// and — on followers — starts the replication loop. ctx bounds only the
// startup work (snapshot fetch, journal replay); the replication loop
// runs until Close.
func Open(ctx context.Context, cfg Config, scfg serve.Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var epoch uint64
	if cfg.EpochDir != "" {
		if epoch, err = LoadEpoch(cfg.EpochDir); err != nil {
			return nil, err
		}
	}
	n := &Node{
		cfg:       cfg,
		logf:      cfg.Logf,
		hc:        cfg.HTTPClient,
		role:      RoleLeader,
		epoch:     epoch,
		leaderURL: cfg.Self,
	}
	if cfg.Leader != "" {
		n.role = RoleFollower
		n.leaderURL = cfg.Leader
		if scfg.JournalPath != "" {
			if err := n.bootstrap(ctx, scfg.JournalPath); err != nil {
				return nil, err
			}
		}
	}
	srv, err := serve.NewContext(ctx, scfg)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	n.inner = srv.Handler()
	n.met = newMetrics(srv.Metrics(), n)
	if n.bootstrapped {
		n.met.bootstraps.Inc()
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	if n.Role() == RoleFollower {
		n.wg.Add(1)
		go n.replicate(n.ctx)
	}
	return n, nil
}

// Server exposes the underlying serving engine (rank, ingest, snapshot
// APIs in library form).
func (n *Node) Server() *serve.Server { return n.srv }

// Role returns the node's current replication role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch returns the node's current fencing epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// LeaderHint returns the best-known leader URL: the node itself while it
// leads, the upstream it follows otherwise, empty when a deposed node
// does not know who superseded it.
func (n *Node) LeaderHint() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderURL
}

// localNextSeq is the next journal sequence this node would write.
func (n *Node) localNextSeq() uint64 {
	if jnl := n.srv.Journal(); jnl != nil {
		return jnl.NextSeq()
	}
	return uint64(n.srv.StatsSnapshot().Batches)
}

// Lag is how many records the follower is behind the leader's last-heard
// position; 0 on the leader and before the first heartbeat.
func (n *Node) Lag() uint64 {
	if n.Role() != RoleFollower {
		return 0
	}
	ahead, local := n.leaderNext.Load(), n.localNextSeq()
	if ahead <= local {
		return 0
	}
	return ahead - local
}

// Status is the replication block of /healthz.
type Status struct {
	Role  Role   `json:"role"`
	Epoch uint64 `json:"epoch"`
	// Leader is the best-known leader URL (empty when a deposed node does
	// not know its successor).
	Leader string `json:"leader,omitempty"`
	// LocalNextSeq is this node's journal position; LeaderNextSeq the
	// leader's as last heard on the stream; Lag their distance.
	LocalNextSeq  uint64 `json:"local_next_seq"`
	LeaderNextSeq uint64 `json:"leader_next_seq,omitempty"`
	Lag           uint64 `json:"lag"`
	// Connected is true while the follower's replication stream is
	// attached; ResyncRequired means the leader compacted past this
	// follower's position and the data dir must be re-bootstrapped.
	Connected      bool `json:"connected"`
	ResyncRequired bool `json:"resync_required,omitempty"`
}

// Status assembles the current replication status.
func (n *Node) Status() Status {
	n.mu.Lock()
	role, epoch, leader := n.role, n.epoch, n.leaderURL
	n.mu.Unlock()
	return Status{
		Role:           role,
		Epoch:          epoch,
		Leader:         leader,
		LocalNextSeq:   n.localNextSeq(),
		LeaderNextSeq:  n.leaderNext.Load(),
		Lag:            n.Lag(),
		Connected:      n.connected.Load(),
		ResyncRequired: n.resync.Load(),
	}
}

// Ready reports whether this node should receive traffic: the engine
// must be healthy (journal not poisoned, not shutting down), and a
// follower must additionally be attached to the leader with lag at most
// MaxLag — a stale follower answering reads would silently serve old
// rankings.
func (n *Node) Ready() error {
	if err := n.srv.Ready(); err != nil {
		return err
	}
	if n.Role() != RoleFollower {
		return nil
	}
	if n.resync.Load() {
		return fmt.Errorf("replica: follower fell behind leader compaction; wipe the data dir and re-bootstrap")
	}
	if !n.connected.Load() {
		return fmt.Errorf("replica: replication stream to %s not connected", n.LeaderHint())
	}
	if lag := n.Lag(); lag > n.cfg.MaxLag {
		return fmt.Errorf("replica: follower lag %d exceeds readiness threshold %d", lag, n.cfg.MaxLag)
	}
	return nil
}

// Promote makes this node the leader under a freshly-bumped, durably
// stored epoch. Idempotent on a node that already leads. The epoch hits
// disk before the role changes: a promotion that cannot be recorded is
// refused, because an unrecorded epoch could not fence the old leader
// after a crash.
func (n *Node) Promote() (Status, error) {
	n.mu.Lock()
	if n.role == RoleLeader {
		n.mu.Unlock()
		return n.Status(), nil
	}
	next := n.epoch + 1
	if n.cfg.EpochDir != "" {
		//lint:ignore lockcheck the epoch must be durable BEFORE the role changes, and both must move atomically against observeEpoch — a promotion racing a deposal outside one critical section could lead at a fenced epoch
		if err := StoreEpoch(n.cfg.EpochDir, next); err != nil {
			n.mu.Unlock()
			return Status{}, fmt.Errorf("replica: refusing promotion: epoch %d not durable: %w", next, err)
		}
	}
	n.epoch = next
	n.role = RoleLeader
	n.leaderURL = n.cfg.Self
	n.mu.Unlock()
	n.connected.Store(false)
	n.met.promotions.Inc()
	n.logf("replica: promoted to leader at epoch %d", next)
	return n.Status(), nil
}

// observeEpoch folds one epoch observed on a request, response, or
// heartbeat into the node. Seeing an epoch beyond our own while leading
// is the fencing signal: somebody promoted a new leader, so this node
// steps down and poisons its journal — after which no append, and
// therefore no acknowledgement, can ever succeed here again (restart the
// process as a follower of the new leader to rejoin). Returns true when
// this call deposed the node.
func (n *Node) observeEpoch(e uint64) (deposed bool) {
	if e == 0 {
		return false
	}
	n.mu.Lock()
	if e <= n.epoch {
		n.mu.Unlock()
		return false
	}
	wasLeader := n.role == RoleLeader
	n.epoch = e
	if wasLeader {
		n.role = RoleFollower
		// The higher epoch proves a successor exists but not where; the
		// hint stays empty until an operator re-points this node.
		n.leaderURL = ""
	}
	dir := n.cfg.EpochDir
	n.mu.Unlock()
	if dir != "" {
		if err := StoreEpoch(dir, e); err != nil {
			n.logf("replica: recording adopted epoch %d: %v", e, err)
		}
	}
	if !wasLeader {
		return false
	}
	n.met.stepdowns.Inc()
	cause := fmt.Errorf("%w: saw epoch %d beyond this node's lease", ErrDeposed, e)
	if jnl := n.srv.Journal(); jnl != nil {
		jnl.Poison(cause)
	}
	n.logf("replica: stepping down: %v", cause)
	return true
}

// observeEpochHeader folds the epoch header of a request or response.
func (n *Node) observeEpochHeader(h http.Header) bool {
	raw := h.Get(EpochHeader)
	if raw == "" {
		return false
	}
	e, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return false
	}
	return n.observeEpoch(e)
}

// setLeader records a fresher leader hint (from a 503 redirect).
func (n *Node) setLeader(url string) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" || url == n.cfg.Self {
		return
	}
	n.mu.Lock()
	if n.role == RoleFollower && n.leaderURL != url {
		n.logf("replica: following leader hint to %s", url)
		n.leaderURL = url
	}
	n.mu.Unlock()
}

// Handler wraps the serving engine's HTTP API with the replication
// protocol:
//
//	GET  /replicate/stream    leader: chunked frame stream from ?from=
//	GET  /replicate/snapshot  leader: state snapshot for follower bootstrap
//	POST /promote             promote this node under a bumped epoch
//	POST /votes               leader-only; followers 503 with a leader hint
//	GET  /healthz             engine stats plus the replication status block
//	GET  /readyz              role- and lag-aware readiness
//
// Every other route falls through to the engine unchanged (rank requests
// are served by any role — followers are warm read replicas).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replicate/stream", n.handleStream)
	mux.HandleFunc("GET /replicate/snapshot", n.handleSnapshot)
	mux.HandleFunc("POST /promote", n.handlePromote)
	mux.HandleFunc("POST /votes", n.handleVotes)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /readyz", n.handleReadyz)
	mux.Handle("/", n.inner)
	return mux
}

func (n *Node) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		n.logf("replica: writing %d response: %v", status, err)
	}
}

func (n *Node) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	n.writeJSON(w, status, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// setEpochHeader stamps the node's current epoch on a response, which is
// how clients and peers accumulate the highest epoch in circulation.
func (n *Node) setEpochHeader(w http.ResponseWriter) {
	w.Header().Set(EpochHeader, strconv.FormatUint(n.Epoch(), 10))
}

// rejectNotLeader answers a write addressed to a non-leader: 503, the
// best leader hint, and a short Retry-After so clients re-resolve fast.
func (n *Node) rejectNotLeader(w http.ResponseWriter) {
	if hint := n.LeaderHint(); hint != "" && hint != n.cfg.Self {
		w.Header().Set(LeaderHeader, hint)
	}
	w.Header().Set("Retry-After", "1")
	n.writeError(w, http.StatusServiceUnavailable, "this node is a %s; ingest goes to the leader", n.Role())
}

func (n *Node) handleVotes(w http.ResponseWriter, r *http.Request) {
	if n.observeEpochHeader(r.Header) {
		// This very request fenced us: a promotion happened elsewhere and
		// the client knows a higher epoch than we did. The journal is now
		// poisoned; nothing can be acknowledged here.
		n.setEpochHeader(w)
		n.writeError(w, http.StatusServiceUnavailable, "%v: ingest is fenced", ErrDeposed)
		return
	}
	n.setEpochHeader(w)
	if n.Role() != RoleLeader {
		n.rejectNotLeader(w)
		return
	}
	n.inner.ServeHTTP(w, r)
}

func (n *Node) handlePromote(w http.ResponseWriter, _ *http.Request) {
	st, err := n.Promote()
	if err != nil {
		n.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	n.setEpochHeader(w)
	n.writeJSON(w, http.StatusOK, st)
}

// healthResponse is the engine's stats with the replication block nested
// under "replica".
type healthResponse struct {
	serve.Stats
	Replica Status `json:"replica"`
}

func (n *Node) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	n.setEpochHeader(w)
	n.writeJSON(w, http.StatusOK, healthResponse{Stats: n.srv.StatsSnapshot(), Replica: n.Status()})
}

func (n *Node) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	n.setEpochHeader(w)
	if err := n.Ready(); err != nil {
		n.writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	n.writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": string(n.Role())})
}

// Close stops the replication loop and shuts the serving engine down.
// Idempotent.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	n.cancel()
	n.wg.Wait()
	return n.srv.Close()
}
