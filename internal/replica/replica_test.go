package replica

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdrank/internal/crowd"
	"crowdrank/internal/serve"
)

const (
	testN = 8
	testM = 4
)

// testVotes derives a small deterministic batch for batch number b.
func testVotes(b int) []crowd.Vote {
	votes := make([]crowd.Vote, 3)
	for k := range votes {
		i := (b + k) % testN
		votes[k] = crowd.Vote{
			Worker:   (b + k) % testM,
			I:        i,
			J:        (i + 1) % testN,
			PrefersI: (b+k)%2 == 0,
		}
	}
	return votes
}

// startNode opens a Node over dir and serves its Handler on a real
// listener, returning the node and its base URL. Cleanup runs LIFO, so a
// follower started after its leader shuts down first.
func startNode(t *testing.T, dir, leaderURL string, tweak func(*Config, *serve.Config)) (*Node, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + ln.Addr().String()
	scfg := serve.DefaultConfig(testN, testM)
	scfg.JournalPath = dir
	scfg.Seed = 42
	scfg.Logf = t.Logf
	rcfg := Config{
		Self:           self,
		Leader:         leaderURL,
		EpochDir:       dir,
		HeartbeatEvery: 50 * time.Millisecond,
		PollInterval:   5 * time.Millisecond,
		Logf:           t.Logf,
	}
	if tweak != nil {
		tweak(&rcfg, &scfg)
	}
	n, err := Open(context.Background(), rcfg, scfg)
	if err != nil {
		//lint:ignore errcheck error-path cleanup of a listener the server never took over
		_ = ln.Close()
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewUnstartedServer(n.Handler())
	//lint:ignore errcheck the placeholder listener httptest allocated is being replaced, not used
	_ = ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(func() {
		//lint:ignore errcheck test teardown; a double-close error carries nothing actionable
		_ = n.Close()
	})
	t.Cleanup(ts.Close)
	return n, self
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func ingestKeyed(t *testing.T, n *Node, first, count int) []string {
	t.Helper()
	keys := make([]string, 0, count)
	for b := first; b < first+count; b++ {
		key := fmt.Sprintf("batch-%04d", b)
		if _, err := n.Server().IngestKeyed(context.Background(), key, testVotes(b)); err != nil {
			t.Fatalf("ingest %s: %v", key, err)
		}
		keys = append(keys, key)
	}
	return keys
}

func TestEpochStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if e, err := LoadEpoch(dir); err != nil || e != 0 {
		t.Fatalf("fresh dir: epoch %d err %v, want 0 nil", e, err)
	}
	if err := StoreEpoch(dir, 7); err != nil {
		t.Fatal(err)
	}
	if e, err := LoadEpoch(dir); err != nil || e != 7 {
		t.Fatalf("after store: epoch %d err %v, want 7 nil", e, err)
	}
	if err := StoreEpoch(dir, 9); err != nil {
		t.Fatal(err)
	}
	if e, _ := LoadEpoch(dir); e != 9 {
		t.Fatalf("after second store: epoch %d, want 9", e)
	}
}

func TestFollowerTailsLeaderAndRejectsIngest(t *testing.T) {
	leader, leaderURL := startNode(t, t.TempDir(), "", nil)
	ingestKeyed(t, leader, 0, 10)
	follower, _ := startNode(t, t.TempDir(), leaderURL, nil)

	waitFor(t, "follower catch-up", func() bool {
		st := follower.Status()
		return st.Connected && st.Lag == 0 && st.LocalNextSeq == leader.localNextSeq()
	})
	if got, want := follower.Server().VoteCount(), leader.Server().VoteCount(); got != want {
		t.Fatalf("follower has %d votes, leader %d", got, want)
	}
	if err := follower.Ready(); err != nil {
		t.Fatalf("caught-up follower should be ready: %v", err)
	}

	// Live tail: later batches arrive without a reconnect.
	ingestKeyed(t, leader, 10, 5)
	waitFor(t, "tail replication", func() bool {
		return follower.Server().VoteCount() == leader.Server().VoteCount()
	})

	// Ingest addressed to the follower is rejected with a leader hint.
	resp, err := http.Post(followerURL(follower)+"/votes", "application/json", strings.NewReader(`{"votes":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; nothing actionable on close
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower ingest answered %d, want 503", resp.StatusCode)
	}
	if hint := resp.Header.Get(LeaderHeader); hint != leaderURL {
		t.Fatalf("leader hint %q, want %q", hint, leaderURL)
	}
}

// followerURL recovers the node's advertised URL for direct HTTP pokes.
func followerURL(n *Node) string { return n.cfg.Self }

func TestFailoverReplaysAcksAndFencesOldLeader(t *testing.T) {
	dirA := t.TempDir()
	a, aURL := startNode(t, dirA, "", nil)
	keys := ingestKeyed(t, a, 0, 8)
	b, _ := startNode(t, t.TempDir(), aURL, nil)
	waitFor(t, "follower catch-up", func() bool {
		st := b.Status()
		return st.Connected && st.Lag == 0 && st.LocalNextSeq == a.localNextSeq()
	})

	st, err := b.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if st.Role != RoleLeader || st.Epoch != 1 {
		t.Fatalf("promoted status %+v, want leader at epoch 1", st)
	}
	if e, _ := LoadEpoch(b.cfg.EpochDir); e != 1 {
		t.Fatalf("promoted epoch on disk = %d, want 1", e)
	}
	// Promotion is idempotent: no second bump.
	if st, err = b.Promote(); err != nil || st.Epoch != 1 {
		t.Fatalf("re-promote: %+v %v, want epoch still 1", st, err)
	}

	// Exactly-once across failover: a batch acked by the old leader
	// replays from the NEW leader's replicated ack window.
	res, err := b.Server().IngestKeyed(context.Background(), keys[3], testVotes(3))
	if err != nil {
		t.Fatalf("retry on new leader: %v", err)
	}
	if !res.Replayed {
		t.Fatalf("retried key %s re-applied on the new leader instead of replaying: %+v", keys[3], res)
	}

	// Fence the deposed leader: an ingest carrying the new epoch makes A
	// step down and poison its journal.
	req, err := http.NewRequest(http.MethodPost, aURL+"/votes", strings.NewReader(`{"votes":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(EpochHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; nothing actionable on close
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced ingest answered %d, want 503", resp.StatusCode)
	}
	if a.Role() != RoleFollower {
		t.Fatalf("old leader role %s after fencing, want follower", a.Role())
	}
	if e, _ := LoadEpoch(dirA); e != 1 {
		t.Fatalf("deposed leader recorded epoch %d, want adopted 1", e)
	}
	// The poison fences even epoch-less ingest from old clients.
	if _, err := a.Server().IngestKeyed(context.Background(), "late", testVotes(99)); err == nil {
		t.Fatal("deposed leader accepted an ingest; journal should be poisoned")
	}
	if err := a.Ready(); err == nil {
		t.Fatal("deposed leader reports ready")
	}
}

func TestStreamRequestWithHigherEpochDeposesLeader(t *testing.T) {
	a, aURL := startNode(t, t.TempDir(), "", nil)
	resp, err := http.Get(aURL + "/replicate/stream?from=0&epoch=5")
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; nothing actionable on close
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream with higher epoch answered %d, want 503", resp.StatusCode)
	}
	if a.Role() != RoleFollower || a.Epoch() != 5 {
		t.Fatalf("leader survived a higher-epoch stream probe: role=%s epoch=%d", a.Role(), a.Epoch())
	}
}

func TestFreshFollowerBootstrapsFromSnapshot(t *testing.T) {
	a, aURL := startNode(t, t.TempDir(), "", nil)
	ingestKeyed(t, a, 0, 12)
	if _, err := a.Server().Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestKeyed(t, a, 12, 4) // tail past the snapshot

	// The compacted prefix is gone: streaming from 0 must be refused.
	resp, err := http.Get(aURL + "/replicate/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; nothing actionable on close
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stream below the compaction horizon answered %d, want 410", resp.StatusCode)
	}

	b, _ := startNode(t, t.TempDir(), aURL, nil)
	if !b.bootstrapped {
		t.Fatal("fresh follower did not bootstrap from the leader snapshot")
	}
	waitFor(t, "bootstrap + tail catch-up", func() bool {
		return b.Server().VoteCount() == a.Server().VoteCount() && b.Lag() == 0
	})
	if got, want := b.localNextSeq(), a.localNextSeq(); got != want {
		t.Fatalf("follower at seq %d, leader at %d", got, want)
	}
}

func TestHealthzCarriesReplicaBlockAndAckCapacity(t *testing.T) {
	a, aURL := startNode(t, t.TempDir(), "", nil)
	ingestKeyed(t, a, 0, 2)
	resp, err := http.Get(aURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; nothing actionable on close
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"replica"`, `"role":"leader"`, `"epoch":0`, `"ack_window":2`, `"ack_window_capacity":65536`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("healthz body missing %s:\n%s", want, body)
		}
	}
	if got := resp.Header.Get(EpochHeader); got != "0" {
		t.Errorf("healthz epoch header %q, want 0", got)
	}
}
