package replica

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// epochFile is the name of the durable epoch record inside EpochDir. The
// file holds one decimal number and is replaced atomically (write temp,
// fsync, rename, fsync dir) so a crash mid-store leaves either the old or
// the new epoch, never a torn one.
const epochFile = "epoch"

// LoadEpoch reads the durable fencing epoch from dir. A directory that
// never recorded one yields 0 — the epoch every cluster starts at.
func LoadEpoch(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, epochFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("replica: reading epoch: %w", err)
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: epoch file %s is not a number: %w", filepath.Join(dir, epochFile), err)
	}
	return e, nil
}

// StoreEpoch durably records epoch in dir. Promotion and step-down both
// go through here: a fencing decision that is not on disk before it takes
// effect could be forgotten by a crash and un-fence a deposed leader.
func StoreEpoch(dir string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("replica: creating epoch dir: %w", err)
	}
	final := filepath.Join(dir, epochFile)
	tmp, err := os.CreateTemp(dir, epochFile+".tmp*")
	if err != nil {
		return fmt.Errorf("replica: creating epoch temp file: %w", err)
	}
	defer func() {
		//lint:ignore errcheck best-effort cleanup of a temp file that was already renamed or abandoned
		_ = os.Remove(tmp.Name())
	}()
	if _, err := tmp.WriteString(strconv.FormatUint(epoch, 10) + "\n"); err != nil {
		//lint:ignore errcheck error-path cleanup; the write error is already being returned
		_ = tmp.Close()
		return fmt.Errorf("replica: writing epoch: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		//lint:ignore errcheck error-path cleanup; the fsync error is already being returned
		_ = tmp.Close()
		return fmt.Errorf("replica: syncing epoch: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("replica: closing epoch temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("replica: installing epoch: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("replica: opening epoch dir for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		//lint:ignore errcheck error-path cleanup of a read-only handle; the sync error is already being returned
		_ = d.Close()
		return fmt.Errorf("replica: syncing epoch dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("replica: closing epoch dir: %w", err)
	}
	return nil
}
