package replica

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"crowdrank/internal/journal"
	"crowdrank/internal/snapshot"
)

// handleStream is the leader side of replication: a chunked response
// carrying every journal record from ?from= onward, tailing live appends,
// with heartbeats while idle. The ?epoch= the follower sends is a fencing
// probe in both directions: a requester ahead of us deposes us; a
// requester behind us learns our epoch from the header and heartbeats.
func (n *Node) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		n.writeError(w, http.StatusBadRequest, "from must be a sequence number, got %q", q.Get("from"))
		return
	}
	var reqEpoch uint64
	if raw := q.Get("epoch"); raw != "" {
		if reqEpoch, err = strconv.ParseUint(raw, 10, 64); err != nil {
			n.writeError(w, http.StatusBadRequest, "epoch must be a number, got %q", raw)
			return
		}
	}
	if n.observeEpoch(reqEpoch) {
		n.setEpochHeader(w)
		n.writeError(w, http.StatusServiceUnavailable, "%v: stream refused", ErrDeposed)
		return
	}
	n.setEpochHeader(w)
	if n.Role() != RoleLeader {
		n.rejectNotLeader(w)
		return
	}
	jnl := n.srv.Journal()
	if jnl == nil {
		n.writeError(w, http.StatusConflict, "leader runs in-memory; replication requires a journal")
		return
	}
	if first := jnl.FirstSeq(); from < first {
		n.writeError(w, http.StatusGone,
			"records before seq %d were compacted away; bootstrap from /replicate/snapshot", first)
		return
	}
	rd, err := jnl.OpenReader(from)
	if err != nil {
		if errors.Is(err, journal.ErrSeqGap) {
			n.writeError(w, http.StatusGone, "%v", err)
			return
		}
		n.writeError(w, http.StatusRequestedRangeNotSatisfiable, "%v", err)
		return
	}
	defer func() {
		//lint:ignore errcheck the reader only held a read handle; nothing to lose on close
		_ = rd.Close()
	}()

	flusher, ok := w.(http.Flusher)
	if !ok {
		n.writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	// The daemon's http.Server carries a WriteTimeout sized for request/
	// response traffic; a replication stream outlives it by design, so
	// each write extends its own deadline instead.
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	writeSlack := 4 * n.cfg.HeartbeatEvery
	if writeSlack < 10*time.Second {
		writeSlack = 10 * time.Second
	}
	var lastBeat time.Time // zero forces an immediate first heartbeat
	for {
		select {
		case <-r.Context().Done():
			return
		default:
		}
		// A leader that stepped down mid-stream stops feeding followers;
		// dropping the connection makes them re-dial and discover the
		// truth (503 + hint, or the new leader via their own config).
		if n.Role() != RoleLeader {
			return
		}
		//lint:ignore errcheck a failed deadline extension surfaces as a failed write below
		_ = rc.SetWriteDeadline(time.Now().Add(writeSlack))
		wrote := false
		for i := 0; i < 256; i++ { // drain a burst, then flush
			payload, seq, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Compacted under the reader or a local read fault; the
				// follower re-dials and is told to resync if need be.
				n.logf("replica: stream at seq %d: %v", rd.Seq(), err)
				return
			}
			if err := writeRecordFrame(bw, seq, payload); err != nil {
				return
			}
			n.met.streamed.Inc()
			wrote = true
		}
		now := time.Now()
		beat := now.Sub(lastBeat) >= n.cfg.HeartbeatEvery
		if beat {
			if err := writeHeartbeatFrame(bw, jnl.NextSeq(), n.Epoch()); err != nil {
				return
			}
			lastBeat = now
		}
		if wrote || beat {
			if err := bw.Flush(); err != nil {
				return
			}
			flusher.Flush()
		}
		if !wrote {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(n.cfg.PollInterval):
			}
		}
	}
}

// handleSnapshot serves the leader's full state as one encoded snapshot,
// the bootstrap path for a fresh follower whose journal position the
// leader has already compacted away (or that has no state at all).
func (n *Node) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	n.setEpochHeader(w)
	if n.Role() != RoleLeader {
		n.rejectNotLeader(w)
		return
	}
	data := snapshot.Encode(n.srv.StateSnapshot())
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	if _, err := w.Write(data); err != nil {
		n.logf("replica: writing bootstrap snapshot: %v", err)
	}
}

// bootstrap installs the leader's snapshot into an empty data dir, so the
// follower's serving engine starts from the leader's state and the
// stream only has to carry the tail. A dir that already holds journal or
// snapshot files is left alone — the existing state resumes from its own
// position.
func (n *Node) bootstrap(ctx context.Context, dir string) error {
	empty, err := storeIsEmpty(dir)
	if err != nil {
		return err
	}
	if !empty {
		return nil
	}
	sctx, cancel := context.WithTimeout(ctx, n.cfg.SnapshotTimeout)
	defer cancel()
	url := n.cfg.Leader + "/replicate/snapshot"
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("replica: building bootstrap request: %w", err)
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return fmt.Errorf("replica: fetching bootstrap snapshot from %s: %w", n.cfg.Leader, err)
	}
	defer func() {
		//lint:ignore errcheck response body close after a full read carries nothing actionable
		_ = resp.Body.Close()
	}()
	n.observeEpochHeader(resp.Header)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //nolint:errcheck // best-effort error context
		return fmt.Errorf("replica: bootstrap snapshot from %s answered %d: %s",
			n.cfg.Leader, resp.StatusCode, bytes.TrimSpace(body))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: reading bootstrap snapshot: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("replica: creating data dir: %w", err)
	}
	path, st, err := snapshot.InstallRaw(dir, data)
	if err != nil {
		return fmt.Errorf("replica: installing bootstrap snapshot: %w", err)
	}
	n.bootstrapped = true
	n.logf("replica: bootstrapped from %s: %s (seq %d, %d votes)", n.cfg.Leader, path, st.Seq, len(st.Votes))
	return nil
}

// storeIsEmpty reports whether dir holds no journal segments and no
// snapshots (a missing dir counts as empty).
func storeIsEmpty(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("replica: inspecting data dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "journal") || strings.HasPrefix(name, "snapshot.") {
			return false, nil
		}
	}
	return true, nil
}

// replicate is the follower loop: dial the leader's stream, apply frames,
// re-dial with backoff on any disconnect, until Close or promotion.
func (n *Node) replicate(ctx context.Context) {
	defer n.wg.Done()
	const minBackoff, maxBackoff = 50 * time.Millisecond, 2 * time.Second
	backoff := minBackoff
	for {
		if ctx.Err() != nil || n.Role() != RoleFollower {
			return
		}
		progressed, err := n.streamOnce(ctx)
		n.connected.Store(false)
		if ctx.Err() != nil || n.Role() != RoleFollower {
			return
		}
		n.met.reconnects.Inc()
		if err != nil {
			n.logf("replica: stream: %v", err)
		}
		if progressed {
			backoff = minBackoff
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// streamOnce runs one stream connection to completion. progressed means
// at least one frame arrived, which resets the caller's backoff.
func (n *Node) streamOnce(ctx context.Context) (progressed bool, err error) {
	leader := n.LeaderHint()
	if leader == "" {
		return false, fmt.Errorf("replica: no known leader to replicate from")
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	url := fmt.Sprintf("%s/replicate/stream?from=%d&epoch=%d", leader, n.localNextSeq(), n.Epoch())
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, url, nil)
	if err != nil {
		return false, fmt.Errorf("replica: building stream request: %w", err)
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("replica: dialing %s: %w", leader, err)
	}
	defer func() {
		//lint:ignore errcheck stream body close on disconnect carries nothing actionable
		_ = resp.Body.Close()
	}()
	n.observeEpochHeader(resp.Header)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The leader compacted past our position: the stream can never
		// carry the gap. Flag it loudly (readyz stays 503) instead of
		// hammering the leader; the operator wipes the dir and restarts.
		n.resync.Store(true)
		return false, fmt.Errorf("replica: leader %s compacted past our position %d; wipe the data dir and re-bootstrap", leader, n.localNextSeq())
	case http.StatusServiceUnavailable:
		if hint := resp.Header.Get(LeaderHeader); hint != "" {
			n.setLeader(hint)
		}
		return false, fmt.Errorf("replica: %s is not the leader", leader)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //nolint:errcheck // best-effort error context
		return false, fmt.Errorf("replica: stream request to %s answered %d: %s",
			leader, resp.StatusCode, bytes.TrimSpace(body))
	}

	// Heartbeat watchdog: the leader promises a frame at least every
	// HeartbeatEvery, so a stream silent for several beats is dead (a
	// black-holed connection would otherwise block the read forever) and
	// gets cancelled under us.
	staleAfter := 4*n.cfg.HeartbeatEvery + 2*time.Second
	lastFrame := time.Now()
	beats := make(chan struct{}, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		t := time.NewTicker(n.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-sctx.Done():
				return
			case <-beats:
				lastFrame = time.Now()
			case <-t.C:
				if time.Since(lastFrame) > staleAfter {
					cancel()
					return
				}
			}
		}
	}()

	br := bufio.NewReader(resp.Body)
	for {
		if n.Role() != RoleFollower {
			return progressed, nil
		}
		fr, err := readFrame(br)
		if err != nil {
			if err == io.EOF {
				return progressed, fmt.Errorf("replica: leader %s closed the stream", leader)
			}
			return progressed, err
		}
		progressed = true
		select {
		case beats <- struct{}{}:
		default:
		}
		switch fr.kind {
		case frameRecord:
			if err := n.applyRecord(fr.seq, fr.payload); err != nil {
				return progressed, err
			}
		case frameHeartbeat:
			n.noteLeaderNext(fr.next)
			if fr.epoch < n.Epoch() {
				// The node we stream from is behind the cluster epoch — a
				// deposed leader still running. Stop feeding from it.
				return progressed, fmt.Errorf("replica: %s streams at stale epoch %d (cluster is at %d)", leader, fr.epoch, n.Epoch())
			}
			n.observeEpoch(fr.epoch)
		}
		n.connected.Store(true)
	}
}

// applyRecord lands one streamed record in the local journal and state.
func (n *Node) applyRecord(seq uint64, payload []byte) error {
	local := n.localNextSeq()
	if seq < local {
		// Already have it (reconnect overlap); the leader's position still
		// moves our lag accounting.
		n.noteLeaderNext(seq + 1)
		return nil
	}
	if seq > local {
		n.resync.Store(true)
		return fmt.Errorf("replica: stream jumped to seq %d but local journal is at %d: %w", seq, local, journal.ErrSeqGap)
	}
	if err := n.srv.ApplyReplicated(seq, payload); err != nil {
		return err
	}
	n.met.applied.Inc()
	n.noteLeaderNext(seq + 1)
	return nil
}

// noteLeaderNext ratchets the last-heard leader position (monotonic; a
// reconnect must not move lag backwards).
func (n *Node) noteLeaderNext(next uint64) {
	for {
		cur := n.leaderNext.Load()
		if next <= cur || n.leaderNext.CompareAndSwap(cur, next) {
			return
		}
	}
}
