package replica

import "crowdrank/internal/obs"

// metrics is the replication layer's bundle, registered on the same
// registry as the serving engine so one /metrics scrape covers both.
type metrics struct {
	streamed   *obs.Counter // leader: records sent to followers
	applied    *obs.Counter // follower: records applied locally
	reconnects *obs.Counter // follower: stream re-dials
	stepdowns  *obs.Counter // leader deposed by a higher epoch
	promotions *obs.Counter // this node promoted to leader
	bootstraps *obs.Counter // fresh followers seeded from a leader snapshot
}

func newMetrics(reg *obs.Registry, n *Node) *metrics {
	m := &metrics{
		streamed:   reg.Counter("crowdrankd_replica_records_streamed_total", "Journal records sent to followers over replication streams."),
		applied:    reg.Counter("crowdrankd_replica_records_applied_total", "Replicated records applied to the local journal and state."),
		reconnects: reg.Counter("crowdrankd_replica_stream_reconnects_total", "Times the follower re-dialed the leader's replication stream."),
		stepdowns:  reg.Counter("crowdrankd_replica_stepdowns_total", "Times this node was deposed from the leader role by a higher epoch."),
		promotions: reg.Counter("crowdrankd_replica_promotions_total", "Times this node was promoted to leader."),
		bootstraps: reg.Counter("crowdrankd_replica_snapshot_bootstraps_total", "Fresh followers bootstrapped from a leader snapshot."),
	}
	reg.GaugeFunc("crowdrankd_replica_role", "1 while this node is the leader, 0 as a follower.", func() float64 {
		if n.Role() == RoleLeader {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("crowdrankd_replica_epoch", "Current fencing epoch.", func() float64 {
		return float64(n.Epoch())
	})
	reg.GaugeFunc("crowdrankd_replica_lag", "Records the follower is behind the leader (0 on the leader).", func() float64 {
		return float64(n.Lag())
	})
	reg.GaugeFunc("crowdrankd_replica_connected", "1 while the follower's replication stream is attached.", func() float64 {
		if n.connected.Load() {
			return 1
		}
		return 0
	})
	return m
}
