package replica

// The chaos failover soak is the end-to-end acceptance test for the
// replication tentpole: a real client Pool talking through fault-injecting
// netfault proxies to a leader and a warm standby running as separate
// processes (re-execs of this test binary). The leader is SIGKILLed
// mid-soak with a batch submitted INTO the outage, the standby is promoted
// over HTTP, and the run must lose no acked batch, apply no batch twice,
// and converge to exactly the ranking a fault-free run produces. The
// finale restarts the dead leader from its intact data dir — still
// believing it leads at the stale epoch — and proves one fenced request
// deposes it for good.
//
// Knobs for CI and drills:
//
//	CROWDRANK_FAILOVER_BATCHES  batch count (default 24; raise for a long soak)
//	CROWDRANK_FAILOVER_SUMMARY  write a JSON run summary (incl. proxy fault
//	                            stats) to this path

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"
	"time"

	"crowdrank/internal/client"
	"crowdrank/internal/crowd"
	"crowdrank/internal/journal"
	"crowdrank/internal/netfault"
	"crowdrank/internal/serve"
)

const (
	failDirEnv       = "CROWDRANK_FAILOVER_DIR"
	failLeaderEnv    = "CROWDRANK_FAILOVER_LEADER"
	failAdvertiseEnv = "CROWDRANK_FAILOVER_ADVERTISE"
	failBatchesEnv   = "CROWDRANK_FAILOVER_BATCHES"
	failSummaryEnv   = "CROWDRANK_FAILOVER_SUMMARY"

	failN             = 16 // within ExactLimit: rankings are the exact answer
	failM             = 8
	failPairs         = failN * (failN - 1) / 2
	failVotesPerBatch = 3
	failBatchesShort  = 24
)

// failVote derives the seq-th unique submission; every vote in the soak is
// distinct, so a double-applied batch surfaces as recovered duplicates and
// a lost batch as a short vote count.
func failVote(seq int) crowd.Vote {
	p := seq % failPairs
	w := (seq / failPairs) % failM
	i, row := 0, failN-1
	for p >= row {
		p -= row
		i++
		row--
	}
	return crowd.Vote{Worker: w, I: i, J: i + 1 + p, PrefersI: seq%3 != 0}
}

func failBatch(b int) []crowd.Vote {
	votes := make([]crowd.Vote, failVotesPerBatch)
	for k := range votes {
		votes[k] = failVote(b*failVotesPerBatch + k)
	}
	return votes
}

// failServeConfig is shared by both child daemons, the fault-free
// baseline, and the offline recovery check. Snapshots are disabled so the
// follower's journal holds every replicated record — one acked batch <=>
// one journal record, which makes the offline accounting exact.
func failServeConfig() serve.Config {
	cfg := serve.DefaultConfig(failN, failM)
	cfg.Seed = 1
	cfg.SnapshotEveryBatches = -1
	cfg.SnapshotMaxJournalBytes = -1
	return cfg
}

// TestFailoverChildDaemon is not a test of its own: TestChaosFailoverExactlyOnce
// re-execs the test binary with CROWDRANK_FAILOVER_DIR set to turn this
// into one node of the replicated pair. The node advertises the URL given
// in CROWDRANK_FAILOVER_ADVERTISE (its netfault proxy, so leader hints
// route clients through the faults) and follows CROWDRANK_FAILOVER_LEADER
// when non-empty.
func TestFailoverChildDaemon(t *testing.T) {
	dir := os.Getenv(failDirEnv)
	if dir == "" {
		t.Skip("not a failover child")
	}
	scfg := failServeConfig()
	scfg.JournalPath = filepath.Join(dir, "wal")
	scfg.JournalSync = journal.SyncAlways // acks must mean durable
	rcfg := Config{
		Self:           os.Getenv(failAdvertiseEnv),
		Leader:         os.Getenv(failLeaderEnv),
		EpochDir:       dir,
		HeartbeatEvery: 50 * time.Millisecond,
		PollInterval:   5 * time.Millisecond,
	}
	// The bootstrap snapshot fetch and first stream dial go through a
	// fault-injecting proxy; retry startup instead of dying on a reset.
	var n *Node
	var err error
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, err = Open(context.Background(), rcfg, scfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover child: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("failover child: %v", err)
	}
	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("failover child: %v", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		t.Fatalf("failover child: %v", err)
	}
	// Serve until SIGKILL; there is no graceful path out of this process.
	t.Fatalf("failover child: listener exited: %v", http.Serve(ln, n.Handler()))
}

// startFailoverChild re-execs the test binary as one replicated node.
// Callers SIGKILL it via child.Process.Kill; cleanup reaps early bailouts.
func startFailoverChild(t *testing.T, dir, leader, advertise string) *exec.Cmd {
	t.Helper()
	child := exec.Command(os.Args[0], "-test.run=^TestFailoverChildDaemon$", "-test.v")
	child.Env = append(os.Environ(),
		failDirEnv+"="+dir,
		failLeaderEnv+"="+leader,
		failAdvertiseEnv+"="+advertise,
	)
	child.Stdout, child.Stderr = os.Stderr, os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = child.Process.Kill()
		_ = child.Wait() // double Wait errors harmlessly after a clean reap
	})
	addrPath := filepath.Join(dir, "addr")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("failover child in %s never wrote its address file", dir)
		}
		if _, err := os.ReadFile(addrPath); err == nil {
			return child
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// childAddr reads a child's current listen address; "" while it is down
// makes the proxy's upstream dial fail fast, which the Pool retries.
func childAddr(dir string) string {
	b, err := os.ReadFile(filepath.Join(dir, "addr"))
	if err != nil {
		return ""
	}
	return string(b)
}

// childHealth fetches one child's replication status on its DIRECT
// address, bypassing the fault proxies: this is control-plane polling the
// operator would also do against the real port.
func childHealth(dir string) (Status, error) {
	addr := childAddr(dir)
	if addr == "" {
		return Status{}, fmt.Errorf("no address file yet")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		return Status{}, err
	}
	defer func() {
		//lint:ignore errcheck test poll loop; nothing actionable on close
		_ = resp.Body.Close()
	}()
	var body struct {
		Replica Status `json:"replica"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return Status{}, err
	}
	return body.Replica, nil
}

// failAckEquivalent compares two acks for the same batch ignoring the
// replay marker and client-side key annotation: a replayed ack — even one
// served by the successor after failover — must carry the original
// acknowledgement verbatim.
func failAckEquivalent(a, b client.Ack) bool {
	a.Replayed, b.Replayed = false, false
	a.Key, b.Key = "", ""
	return a == b
}

// TestChaosFailoverExactlyOnce is the failover acceptance soak described
// in the file comment.
func TestChaosFailoverExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos failover soak skipped in -short")
	}
	batches := failBatchesShort
	if v := os.Getenv(failBatchesEnv); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 8 {
			t.Fatalf("bad %s=%q: want an integer >= 8", failBatchesEnv, v)
		}
		batches = n
	}
	if batches*failVotesPerBatch > failPairs*failM {
		t.Fatalf("%d batches exceed the %d unique votes the universe holds", batches, failPairs*failM)
	}

	// Fault-free baseline: same engine config, same votes, no network, no
	// failover — the ranking the chaos run must reproduce exactly.
	baseline, err := serve.New(failServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < batches; b++ {
		if _, err := baseline.Ingest(failBatch(b)); err != nil {
			t.Fatalf("baseline ingest %d: %v", b, err)
		}
	}
	wantRank, err := baseline.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if err := baseline.Close(); err != nil {
		t.Fatal(err)
	}

	// Two nodes, each behind its own fault proxy. The children ADVERTISE
	// their proxy URLs, so every leader hint a client follows routes
	// through the faults too.
	dirA, dirB := t.TempDir(), t.TempDir()
	faults := netfault.Config{
		Seed:          7,
		ResetProb:     0.10,
		BlackholeProb: 0.02,
		HalfOpenProb:  0.03,
		DribbleProb:   0.03,
		Latency:       time.Millisecond,
		FaultAfter:    512,
		DribbleDelay:  200 * time.Microsecond,
	}
	proxyA, err := netfault.NewProxy(func() string { return childAddr(dirA) }, faults)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test teardown of the proxy listener
		_ = proxyA.Close()
	}()
	faultsB := faults
	faultsB.Seed = 8 // an independent fault plan for the standby's proxy
	proxyB, err := netfault.NewProxy(func() string { return childAddr(dirB) }, faultsB)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test teardown of the proxy listener
		_ = proxyB.Close()
	}()

	// Start the leader, then the standby while the store is still empty:
	// the follower's journal then holds EVERY replicated record, keeping
	// the offline accounting exact. The standby replicates through the
	// leader's proxy, so the stream itself rides the faults.
	childA := startFailoverChild(t, dirA, "", proxyA.URL())
	childB := startFailoverChild(t, dirB, proxyA.URL(), proxyB.URL())
	waitStatus := func(what, dir string, cond func(Status) bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			st, err := childHealth(dir)
			if err == nil && cond(st) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (last status %+v, err %v)", what, st, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitStatus("standby stream attach", dirB, func(st Status) bool {
		return st.Role == RoleFollower && st.Connected
	})

	pool, err := client.NewPool(client.Config{
		Seed:           42,
		MaxAttempts:    60,
		BaseBackoff:    10 * time.Millisecond,
		MaxBackoff:     500 * time.Millisecond,
		AttemptTimeout: time.Second,
		// Fresh connections draw fresh fault plans, maximizing coverage.
		HTTPClient: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		Logf:       t.Logf,
	}, []string{proxyA.URL(), proxyB.URL()})
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]string, batches)
	acks := make([]client.Ack, batches)
	submit := func(b int) (client.Ack, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
		defer cancel()
		return pool.SubmitVotesKeyed(ctx, keys[b], failBatch(b))
	}
	deliver := func(b int) {
		keys[b] = pool.NewKey()
		ack, err := submit(b)
		if err != nil {
			t.Fatalf("batch %d never acked (proxyA: %s, proxyB: %s): %v", b, proxyA.Stats(), proxyB.Stats(), err)
		}
		acks[b] = ack
	}

	half := batches / 2
	for b := 0; b < half; b++ {
		deliver(b)
	}

	// Quiesce: every acked batch must be on the standby before the leader
	// dies, or the loss would be the stream's, not the failover's.
	waitStatus("standby catch-up", dirB, func(st Status) bool {
		return st.Connected && st.LocalNextSeq == uint64(half)
	})

	// SIGKILL the leader. The next batch is submitted INTO the outage, so
	// its retries span the dead leader, the promotion, and the Pool's
	// re-resolution onto the successor.
	if err := childA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dirA, "addr")); err != nil {
		t.Fatal(err)
	}
	keys[half] = pool.NewKey()
	type outcome struct {
		ack client.Ack
		err error
	}
	mid := make(chan outcome, 1)
	go func() {
		ack, err := submit(half)
		mid <- outcome{ack, err}
	}()
	time.Sleep(300 * time.Millisecond) // let retries hit the outage
	_ = childA.Wait()                  // reap before anything else

	// Operator failover: promote the standby on its direct address.
	resp, err := http.Post("http://"+childAddr(dirB)+"/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; nothing actionable on close
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote answered %d", resp.StatusCode)
	}
	waitStatus("standby promotion", dirB, func(st Status) bool {
		return st.Role == RoleLeader && st.Epoch == 1
	})

	select {
	case o := <-mid:
		if o.err != nil {
			t.Fatalf("batch %d lost across the failover (proxyA: %s, proxyB: %s): %v",
				half, proxyA.Stats(), proxyB.Stats(), o.err)
		}
		acks[half] = o.ack
	case <-time.After(2 * time.Minute):
		t.Fatalf("batch %d still unacked long after the promotion (proxyA: %s, proxyB: %s)",
			half, proxyA.Stats(), proxyB.Stats())
	}

	// Cross-failover replay: a key acked by the DEAD leader must replay
	// its original ack from the successor's replicated window.
	if r, err := submit(2); err != nil {
		t.Fatalf("cross-failover replay: %v", err)
	} else if !r.Replayed || !failAckEquivalent(r, acks[2]) {
		t.Fatalf("cross-failover replay: got %+v, want replayed copy of %+v", r, acks[2])
	}

	for b := half + 1; b < batches; b++ {
		deliver(b)
	}

	// Exactly-once sweep: EVERY key of the soak — old-leader acks and
	// new-leader acks alike — replays its original acknowledgement.
	for b := 0; b < batches; b++ {
		r, err := submit(b)
		if err != nil {
			t.Fatalf("sweep replay of batch %d: %v", b, err)
		}
		if !r.Replayed || !failAckEquivalent(r, acks[b]) {
			t.Fatalf("sweep replay of batch %d: got %+v, want replayed copy of %+v", b, r, acks[b])
		}
	}

	// Converged ranking through the faulty proxies equals the fault-free run.
	rctx, rcancel := context.WithTimeout(context.Background(), 60*time.Second)
	got, err := pool.Rank(rctx, 2*time.Second)
	rcancel()
	if err != nil {
		t.Fatalf("rank through proxies: %v", err)
	}
	if !slices.Equal(got.Ranking, wantRank.Ranking) {
		t.Fatalf("failover ranking diverged from the fault-free run:\n got %v (%s)\nwant %v (%s)",
			got.Ranking, got.Algorithm, wantRank.Ranking, wantRank.Algorithm)
	}
	if got.Votes != batches*failVotesPerBatch {
		t.Fatalf("cluster holds %d votes, want %d", got.Votes, batches*failVotesPerBatch)
	}

	// Fencing finale: restart the dead leader from its intact data dir. It
	// comes back BELIEVING IT LEADS at the stale epoch 0 — and one request
	// carrying the promoted epoch must depose it and poison its journal.
	childA = startFailoverChild(t, dirA, "", proxyA.URL())
	waitStatus("stale leader restart", dirA, func(st Status) bool {
		return st.Role == RoleLeader && st.Epoch == 0
	})
	fence, err := http.NewRequest(http.MethodPost, "http://"+childAddr(dirA)+"/votes",
		strings.NewReader(`{"votes":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	fence.Header.Set("Content-Type", "application/json")
	fence.Header.Set(EpochHeader, strconv.FormatUint(pool.Epoch(), 10))
	if pool.Epoch() != 1 {
		t.Fatalf("pool never learned the promoted epoch, has %d", pool.Epoch())
	}
	fresp, err := http.DefaultClient.Do(fence)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; nothing actionable on close
	defer fresp.Body.Close()
	if fresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale leader accepted a fenced ingest: %d", fresp.StatusCode)
	}
	waitStatus("stale leader deposed", dirA, func(st Status) bool {
		return st.Role == RoleFollower && st.Epoch == 1
	})
	// Even an epoch-less ingest from an out-of-date client is refused now:
	// the journal is poisoned.
	lresp, err := http.Post("http://"+childAddr(dirA)+"/votes", "application/json",
		strings.NewReader(`{"votes":[{"worker":0,"i":0,"j":1,"prefers_i":true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body; nothing actionable on close
	defer lresp.Body.Close()
	if lresp.StatusCode == http.StatusOK {
		t.Fatal("deposed leader acknowledged an ingest after fencing")
	}

	// Offline verification on the SUCCESSOR's journal: kill both children
	// and recover it into a fresh engine. One acked batch <=> one record,
	// every vote unique, so these checks pin zero loss and zero
	// double-application across the failover.
	_ = childA.Process.Kill()
	_ = childA.Wait()
	_ = childB.Process.Kill()
	_ = childB.Wait()
	offCfg := failServeConfig()
	offCfg.JournalPath = filepath.Join(dirB, "wal")
	off, err := serve.New(offCfg)
	if err != nil {
		t.Fatalf("offline recovery: %v", err)
	}
	if rec := off.Recovered(); rec.Records != batches {
		t.Fatalf("successor journal holds %d batch records, want exactly %d (loss or double-apply): %s",
			rec.Records, batches, rec)
	}
	if n := off.VoteCount(); n != batches*failVotesPerBatch {
		t.Fatalf("recovered %d votes, want %d", n, batches*failVotesPerBatch)
	}
	if st := off.StatsSnapshot(); st.Duplicates != 0 {
		t.Fatalf("recovery deduplicated %d votes; some batch was applied twice", st.Duplicates)
	}
	if st := off.StatsSnapshot(); st.AckWindow != batches {
		t.Fatalf("recovered ack window holds %d keys, want %d", st.AckWindow, batches)
	}
	offRank, err := off.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(offRank.Ranking, wantRank.Ranking) {
		t.Fatalf("post-recovery ranking diverged from the fault-free run:\n got %v\nwant %v",
			offRank.Ranking, wantRank.Ranking)
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}

	if path := os.Getenv(failSummaryEnv); path != "" {
		statsA, statsB := proxyA.Stats(), proxyB.Stats()
		summary, err := json.MarshalIndent(map[string]any{
			"batches":          batches,
			"votes":            batches * failVotesPerBatch,
			"leader_faults":    statsA,
			"leader_summary":   statsA.String(),
			"follower_faults":  statsB,
			"follower_summary": statsB.String(),
			"ranking":          wantRank.Ranking,
			"algorithm":        wantRank.Algorithm,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, summary, 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
	}
}
