// Package netfault injects deterministic, seeded network faults between a
// client and the crowdrankd daemon: extra latency, bandwidth throttling,
// mid-body connection resets, black holes (bytes vanish, nothing answers),
// slow-loris dribble, half-open closes, and connect-time drops.
//
// The paper's budget model assumes every purchased vote lands in the
// aggregation exactly once; in a deployed non-interactive pipeline the
// lossy hop is the network between collectors and the daemon. This package
// makes that hop hostile on purpose, so the retry/idempotency contract
// between internal/client and internal/serve is a tested guarantee rather
// than an assumption.
//
// Faults are planned per connection from a seeded PCG stream keyed by the
// accept index, so a fixed Config.Seed yields the same fault sequence on
// every run — the chaos soak in internal/client is deterministic, not
// flaky. Two entry points share the machinery:
//
//   - Wrap turns any net.Listener into one whose accepted connections
//     misbehave (used by crowdrankd's hidden -chaos flag).
//   - NewProxy listens on a loopback port and forwards to a target address
//     through the same fault plans (used by tests to sit between a real
//     client and a real daemon, surviving daemon restarts via the target
//     callback).
package netfault

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault kinds drawn per connection. At most one byte-triggered fault is
// active on a connection; latency and bandwidth shaping apply regardless.
const (
	faultNone = iota
	// faultDrop closes the connection (with RST where the transport
	// allows) before a single byte is exchanged.
	faultDrop
	// faultReset closes the connection with RST after the triggered
	// direction has carried plan.after bytes — mid-request-body or
	// mid-response, depending on the drawn direction.
	faultReset
	// faultBlackhole swallows the triggered direction after plan.after
	// bytes: writes claim success and vanish, reads stall until the
	// connection is closed. The peer only escapes via its own timeout.
	faultBlackhole
	// faultHalfOpen shuts down the write side after plan.after bytes,
	// leaving the connection half-open: the peer sees EOF mid-stream while
	// its own writes still appear to succeed.
	faultHalfOpen
	// faultDribble forwards the triggered direction one byte at a time
	// with a delay between bytes — a slow-loris sender or a stalling
	// responder.
	faultDribble
)

// errInjected marks every error produced by an injected fault, so test
// assertions can tell injected damage from real network trouble.
var errInjected = errors.New("netfault: injected fault")

// Config selects the fault mix. Probabilities are per connection and sum
// to at most 1 (validated); the remainder is a healthy connection. The
// zero value injects nothing.
type Config struct {
	// Seed drives every random draw. The same seed and accept order
	// reproduce the same fault plans; required non-zero when any
	// probability is set, per the repo's determinism conventions.
	Seed uint64

	// DropProb closes connections at accept/dial time, before any byte.
	DropProb float64
	// ResetProb injects a mid-stream RST after FaultAfter-bounded bytes.
	ResetProb float64
	// BlackholeProb swallows one direction after FaultAfter-bounded bytes.
	BlackholeProb float64
	// HalfOpenProb closes the write side only, after FaultAfter-bounded
	// bytes.
	HalfOpenProb float64
	// DribbleProb slow-dribbles one direction byte-by-byte.
	DribbleProb float64

	// Latency adds a uniform [0, Latency) delay before each forwarded
	// chunk; 0 adds none.
	Latency time.Duration
	// BytesPerSec throttles forwarding bandwidth per direction; 0 is
	// unlimited.
	BytesPerSec int
	// FaultAfter bounds the byte count at which a byte-triggered fault
	// fires (drawn uniformly from [1, FaultAfter]); 0 means 4096.
	FaultAfter int
	// DribbleDelay is the per-byte delay while dribbling; 0 means 2ms.
	DribbleDelay time.Duration
}

func (c Config) validate() error {
	p := c.DropProb + c.ResetProb + c.BlackholeProb + c.HalfOpenProb + c.DribbleProb
	for _, q := range []float64{c.DropProb, c.ResetProb, c.BlackholeProb, c.HalfOpenProb, c.DribbleProb} {
		if q < 0 || q > 1 {
			return fmt.Errorf("netfault: fault probability %v outside [0,1]", q)
		}
	}
	if p > 1 {
		return fmt.Errorf("netfault: fault probabilities sum to %v > 1", p)
	}
	if p > 0 && c.Seed == 0 {
		return fmt.Errorf("netfault: a non-zero Seed is required when faults are enabled (determinism contract)")
	}
	if c.Latency < 0 || c.BytesPerSec < 0 || c.FaultAfter < 0 || c.DribbleDelay < 0 {
		return fmt.Errorf("netfault: latency, bandwidth, and trigger settings must be non-negative")
	}
	return nil
}

func (c Config) faultAfter() int {
	if c.FaultAfter == 0 {
		return 4096
	}
	return c.FaultAfter
}

func (c Config) dribbleDelay() time.Duration {
	if c.DribbleDelay == 0 {
		return 2 * time.Millisecond
	}
	return c.DribbleDelay
}

// ParseSpec parses the compact "key=value,key=value" syntax used by
// crowdrankd's -chaos flag, e.g.
//
//	seed=7,latency=5ms,reset=0.1,blackhole=0.02,halfopen=0.02,dribble=0.05,drop=0.02,bps=65536,after=2048
//
// Keys: seed, drop, reset, blackhole, halfopen, dribble (probabilities),
// latency, dribbledelay (durations), bps, after (integers). Unknown keys
// are errors so typos cannot silently disable a fault.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("netfault: empty chaos spec")
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("netfault: spec entry %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			cfg.DropProb, err = strconv.ParseFloat(val, 64)
		case "reset":
			cfg.ResetProb, err = strconv.ParseFloat(val, 64)
		case "blackhole":
			cfg.BlackholeProb, err = strconv.ParseFloat(val, 64)
		case "halfopen":
			cfg.HalfOpenProb, err = strconv.ParseFloat(val, 64)
		case "dribble":
			cfg.DribbleProb, err = strconv.ParseFloat(val, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "dribbledelay":
			cfg.DribbleDelay, err = time.ParseDuration(val)
		case "bps":
			cfg.BytesPerSec, err = strconv.Atoi(val)
		case "after":
			cfg.FaultAfter, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("netfault: unknown chaos spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("netfault: spec %s=%s: %w", key, val, err)
		}
	}
	if err := cfg.validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Stats counts injected faults across a listener's or proxy's lifetime.
// All fields are monotonic totals.
type Stats struct {
	Conns      uint64 `json:"conns"`
	Drops      uint64 `json:"drops"`
	Resets     uint64 `json:"resets"`
	Blackholes uint64 `json:"blackholes"`
	HalfOpens  uint64 `json:"half_opens"`
	Dribbles   uint64 `json:"dribbles"`
}

func (s Stats) String() string {
	return fmt.Sprintf("conns=%d drops=%d resets=%d blackholes=%d halfopens=%d dribbles=%d",
		s.Conns, s.Drops, s.Resets, s.Blackholes, s.HalfOpens, s.Dribbles)
}

// counters is the shared mutable form of Stats.
type counters struct {
	conns, drops, resets, blackholes, halfOpens, dribbles atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Conns:      c.conns.Load(),
		Drops:      c.drops.Load(),
		Resets:     c.resets.Load(),
		Blackholes: c.blackholes.Load(),
		HalfOpens:  c.halfOpens.Load(),
		Dribbles:   c.dribbles.Load(),
	}
}

// plan is one connection's drawn behavior, fixed at accept time so the
// connection's fate is a pure function of (seed, accept index).
type plan struct {
	kind int
	// onRead applies the byte-triggered fault to the Read (client-to-
	// server) direction; otherwise it fires on Write (server-to-client) —
	// the direction split is what distinguishes "request lost before the
	// daemon saw it" from "ack lost after the daemon applied it".
	onRead       bool
	after        int
	latency      time.Duration
	bytesPerSec  int
	dribbleDelay time.Duration
}

// newPlan draws the plan for accept index idx. Each connection gets its
// own PCG stream so plans do not depend on how prior connections
// interleaved their reads and writes.
func newPlan(cfg Config, idx uint64) (plan, *rand.Rand) {
	rng := rand.New(rand.NewPCG(cfg.Seed, idx^0x6e65746661756c74)) // "netfault"
	p := plan{
		kind:         faultNone,
		after:        1 + rng.IntN(cfg.faultAfter()),
		onRead:       rng.IntN(2) == 0,
		latency:      cfg.Latency,
		bytesPerSec:  cfg.BytesPerSec,
		dribbleDelay: cfg.dribbleDelay(),
	}
	u := rng.Float64()
	for _, choice := range []struct {
		prob float64
		kind int
	}{
		{cfg.DropProb, faultDrop},
		{cfg.ResetProb, faultReset},
		{cfg.BlackholeProb, faultBlackhole},
		{cfg.HalfOpenProb, faultHalfOpen},
		{cfg.DribbleProb, faultDribble},
	} {
		if u < choice.prob {
			p.kind = choice.kind
			break
		}
		u -= choice.prob
	}
	return p, rng
}

// rstClose closes c so the peer sees a hard reset where the transport
// supports it: SO_LINGER(0) on TCP makes Close emit RST instead of FIN.
func rstClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		//lint:ignore errcheck best-effort fault realism: if linger cannot be set the close below still injects the failure, just as FIN instead of RST
		_ = tc.SetLinger(0)
	}
	//lint:ignore errcheck the connection is being destroyed on purpose; the peer observing the failure is the point
	_ = c.Close()
}

// conn wraps one accepted connection with a fault plan. Reads carry the
// client-to-server direction, writes the server-to-client direction; the
// byte-triggered fault fires on whichever direction the plan selected.
type conn struct {
	net.Conn
	plan  plan
	rng   *rand.Rand // guarded by rngMu: Read and Write race in net/http
	rngMu sync.Mutex
	stats *counters

	readBytes  atomic.Int64
	writeBytes atomic.Int64
	tripped    atomic.Bool

	// blackholed is closed when the blackhole fires; reads in the
	// swallowed direction block on it until Close.
	blackholeOnce sync.Once
	blackholed    chan struct{}
	closeOnce     sync.Once
	closed        chan struct{}
}

func newConn(inner net.Conn, p plan, stats *counters, rng *rand.Rand) *conn {
	return &conn{
		Conn:       inner,
		plan:       p,
		rng:        rng,
		stats:      stats,
		blackholed: make(chan struct{}),
		closed:     make(chan struct{}),
	}
}

// shape applies latency and bandwidth pacing for a chunk of n bytes.
func (c *conn) shape(n int) {
	if c.plan.latency > 0 {
		c.rngMu.Lock()
		d := time.Duration(c.rng.Int64N(int64(c.plan.latency)))
		c.rngMu.Unlock()
		c.sleep(d)
	}
	if c.plan.bytesPerSec > 0 && n > 0 {
		c.sleep(time.Duration(float64(n) / float64(c.plan.bytesPerSec) * float64(time.Second)))
	}
}

// sleep waits for d or until the connection is closed, so shaping can
// never pin a closed connection's goroutine.
func (c *conn) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// trigger fires the plan's byte-triggered fault once total bytes in the
// faulted direction pass the threshold. It returns a non-nil error when
// the caller must abort the current operation.
func (c *conn) trigger() error {
	if c.tripped.Swap(true) {
		return nil
	}
	switch c.plan.kind {
	case faultReset:
		c.stats.resets.Add(1)
		rstClose(c.Conn)
		return fmt.Errorf("connection reset after %d bytes: %w", c.plan.after, errInjected)
	case faultBlackhole:
		c.stats.blackholes.Add(1)
		c.blackholeOnce.Do(func() { close(c.blackholed) })
	case faultHalfOpen:
		c.stats.halfOpens.Add(1)
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			//lint:ignore errcheck best-effort half-open: on failure the connection simply stays healthy, which the soak tolerates
			_ = tc.CloseWrite()
		}
	case faultDribble:
		c.stats.dribbles.Add(1)
	}
	return nil
}

// pastTrigger reports whether the byte-triggered fault applies to this
// direction and has been (or is now being) crossed.
func (c *conn) pastTrigger(isRead bool, total int64) bool {
	if c.plan.kind == faultNone || c.plan.kind == faultDrop || c.plan.onRead != isRead {
		return false
	}
	return total >= int64(c.plan.after)
}

func (c *conn) Read(b []byte) (int, error) {
	if c.tripped.Load() && c.plan.onRead && c.plan.kind == faultBlackhole {
		return c.blackholeWait()
	}
	n, err := c.Conn.Read(b)
	c.shape(n)
	total := c.readBytes.Add(int64(n))
	if c.pastTrigger(true, total) {
		if terr := c.trigger(); terr != nil {
			return 0, terr
		}
		if c.plan.kind == faultBlackhole {
			// The bytes just read fall into the hole too.
			return c.blackholeWait()
		}
	}
	return n, err
}

// blackholeWait swallows a read: it blocks until the connection closes,
// then reports the injected loss. Nothing read after the trigger is ever
// delivered.
func (c *conn) blackholeWait() (int, error) {
	<-c.closed
	return 0, fmt.Errorf("read black-holed after %d bytes: %w", c.plan.after, errInjected)
}

func (c *conn) Write(b []byte) (int, error) {
	if c.tripped.Load() && !c.plan.onRead {
		switch c.plan.kind {
		case faultBlackhole:
			// Writes vanish but claim success — the sender believes the
			// bytes left, exactly like a peer that stopped reading behind a
			// dead NAT entry.
			return len(b), nil
		case faultReset:
			return 0, fmt.Errorf("write after injected reset: %w", errInjected)
		case faultDribble:
			return c.dribble(b)
		}
	}
	n, err := c.Conn.Write(b)
	c.shape(n)
	total := c.writeBytes.Add(int64(n))
	if c.pastTrigger(false, total) {
		if terr := c.trigger(); terr != nil {
			return n, terr
		}
	}
	return n, err
}

// dribble forwards b one byte at a time with the plan's delay — the
// sender's view is a connection that is alive but nearly stalled.
func (c *conn) dribble(b []byte) (int, error) {
	for i := range b {
		c.sleep(c.plan.dribbleDelay)
		select {
		case <-c.closed:
			return i, fmt.Errorf("dribble interrupted by close: %w", errInjected)
		default:
		}
		if _, err := c.Conn.Write(b[i : i+1]); err != nil {
			return i, err
		}
	}
	return len(b), nil
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Listener wraps an inner listener, applying a drawn fault plan to every
// accepted connection. Create with Wrap.
type Listener struct {
	inner net.Listener
	cfg   Config
	idx   atomic.Uint64
	stats counters
}

// Wrap returns a Listener injecting cfg's faults into every accepted
// connection. It validates cfg and panics on an invalid one only via the
// returned error — callers get a nil Listener and must not serve.
func Wrap(inner net.Listener, cfg Config) (*Listener, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Listener{inner: inner, cfg: cfg}, nil
}

// Accept waits for the next connection and arms its fault plan. A
// connection drawn for a connect-time drop is reset immediately and the
// next one is accepted — the caller never sees dropped connections.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		inner, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		p, rng := newPlan(l.cfg, l.idx.Add(1))
		l.stats.conns.Add(1)
		if p.kind == faultDrop {
			l.stats.drops.Add(1)
			rstClose(inner)
			continue
		}
		if p.kind == faultDribble {
			// A read-side dribble means the *peer's* writes crawl; realized
			// here by dribbling our writes only, so map read-dribbles onto
			// the write side to keep the single-conn wrapper simple.
			p.onRead = false
		}
		return newConn(inner, p, &l.stats, rng), nil
	}
}

// Close closes the inner listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Stats returns the fault totals so far.
func (l *Listener) Stats() Stats { return l.stats.snapshot() }

// Proxy is a loopback TCP proxy that forwards every accepted connection
// to a target address through the fault machinery. Tests put it between a
// real client and a real daemon; the target is a callback so the daemon
// can be killed and restarted on a new port mid-soak.
type Proxy struct {
	ln     *Listener
	target func() string
	wg     sync.WaitGroup
	done   chan struct{}
}

// NewProxy listens on 127.0.0.1:0 and forwards to target() with cfg's
// faults applied on the client side of each connection.
func NewProxy(target func() string, cfg Config) (*Proxy, error) {
	if target == nil {
		return nil, fmt.Errorf("netfault: proxy needs a target callback")
	}
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netfault: proxy listen: %w", err)
	}
	ln, err := Wrap(raw, cfg)
	if err != nil {
		//lint:ignore errcheck error-path cleanup of a listener that accepted nothing; the config error is already being returned
		_ = raw.Close()
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, done: make(chan struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// serve accepts until the proxy closes. Each connection is pumped to a
// freshly dialed target; a dial failure (daemon down mid-restart) resets
// the client, which is exactly the retryable condition the client's
// backoff exists for.
func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			return // listener broke; the soak's client will time out loudly
		}
		p.wg.Add(1)
		go p.pump(client)
	}
}

// pump shuttles bytes between the (fault-wrapped) client connection and
// the upstream until either side ends or the proxy closes.
func (p *Proxy) pump(client net.Conn) {
	defer p.wg.Done()
	defer func() {
		//lint:ignore errcheck the pump is tearing the connection down; a double close error carries no information
		_ = client.Close()
	}()
	upstream, err := net.DialTimeout("tcp", p.target(), 2*time.Second)
	if err != nil {
		rstClose(client)
		return
	}
	defer func() {
		//lint:ignore errcheck teardown of the upstream half; the client side already observed the outcome
		_ = upstream.Close()
	}()
	ends := make(chan struct{}, 2)
	copyDir := func(dst, src net.Conn) {
		//lint:ignore errcheck a copy error is a connection ending (often by injected fault); the soak asserts on end-to-end state, not per-conn errors
		_, _ = io.Copy(dst, src)
		// Unblock the opposite copy: without closing both ends the other
		// direction can sit in Read forever on a half-dead pair.
		ends <- struct{}{}
	}
	go copyDir(upstream, client)
	go copyDir(client, upstream)
	select {
	case <-ends:
	case <-p.done:
	}
	rstClose(client)
	//lint:ignore errcheck teardown; see above
	_ = upstream.Close()
	// Reap the second copier before returning so Close's Wait sees it.
	select {
	case <-ends:
	case <-p.done:
	}
}

// Addr returns the proxy's listen address ("127.0.0.1:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL for HTTP clients.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Stats returns the fault totals injected so far.
func (p *Proxy) Stats() Stats { return p.ln.Stats() }

// Close stops accepting, tears down in-flight connections, and waits for
// the pumps to exit.
func (p *Proxy) Close() error {
	close(p.done)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}
