package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections from ln and echoes bytes back until each
// connection ends. It stops when ln is closed.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	done := make(chan struct{})
	t.Cleanup(func() {
		if err := ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("closing echo listener: %v", err)
		}
		<-done
	})
	go func() {
		defer close(done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close() //nolint:errcheck
				//lint:ignore errcheck test echo loop: a copy error just means the connection ended
				_, _ = io.Copy(c, c)
			}()
		}
	}()
}

func TestParseSpecFull(t *testing.T) {
	cfg, err := ParseSpec("seed=7,latency=5ms,reset=0.1,blackhole=0.02,halfopen=0.03,dribble=0.05,drop=0.02,bps=65536,after=2048,dribbledelay=1ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Config{
		Seed: 7, DropProb: 0.02, ResetProb: 0.1, BlackholeProb: 0.02,
		HalfOpenProb: 0.03, DribbleProb: 0.05,
		Latency: 5 * time.Millisecond, BytesPerSec: 65536,
		FaultAfter: 2048, DribbleDelay: time.Millisecond,
	}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"", "empty"},
		{"seed=7,typo=1", "unknown"},
		{"seed=abc", "seed=abc"},
		{"reset=0.5", "Seed"},                    // faults without a seed
		{"seed=1,reset=0.9,drop=0.9", "sum"},     // probabilities over 1
		{"seed=1,reset=-0.1", "outside"},         // negative probability
		{"seed=1,reset=0.1,latency=-1s", "non-"}, // negative latency
		{"seed=1;reset=0.1", "invalid syntax"},   // wrong separator
	}
	for _, tc := range cases {
		if _, err := ParseSpec(tc.spec); err == nil {
			t.Errorf("ParseSpec(%q): want error containing %q, got nil", tc.spec, tc.wantSub)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSpec(%q) = %v, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestPlanDeterministicPerIndex(t *testing.T) {
	cfg := Config{Seed: 99, ResetProb: 0.3, BlackholeProb: 0.2, DribbleProb: 0.2, FaultAfter: 512}
	for idx := uint64(1); idx <= 64; idx++ {
		p1, _ := newPlan(cfg, idx)
		p2, _ := newPlan(cfg, idx)
		if p1 != p2 {
			t.Fatalf("idx %d: plans differ across runs: %+v vs %+v", idx, p1, p2)
		}
		if p1.after < 1 || p1.after > 512 {
			t.Fatalf("idx %d: after=%d outside [1,512]", idx, p1.after)
		}
	}
}

func TestPlanMixMatchesProbabilities(t *testing.T) {
	cfg := Config{Seed: 7, ResetProb: 0.5}
	resets := 0
	for idx := uint64(1); idx <= 200; idx++ {
		p, _ := newPlan(cfg, idx)
		if p.kind == faultReset {
			resets++
		} else if p.kind != faultNone {
			t.Fatalf("idx %d: drew kind %d with only reset configured", idx, p.kind)
		}
	}
	if resets < 60 || resets > 140 {
		t.Fatalf("reset draws = %d/200 for prob 0.5; seeded stream badly skewed", resets)
	}
}

// TestProxyPassThrough proves a fault-free proxy is transparent: bytes go
// through unmodified in both directions.
func TestProxyPassThrough(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, raw)
	p, err := NewProxy(func() string { return raw.Addr().String() }, Config{})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close() //nolint:errcheck

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("crowdrank"), 1000)
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write through proxy: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read back through proxy: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echoed bytes corrupted by fault-free proxy")
	}
	if s := p.Stats(); s.Conns != 1 || s.Resets+s.Drops+s.Blackholes+s.HalfOpens+s.Dribbles != 0 {
		t.Fatalf("fault-free proxy reported faults: %s", s)
	}
}

// TestProxyReset proves a reset plan terminates the connection mid-stream:
// a large echo round-trip cannot complete.
func TestProxyReset(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, raw)
	p, err := NewProxy(func() string { return raw.Addr().String() }, Config{Seed: 3, ResetProb: 1, FaultAfter: 64})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close() //nolint:errcheck

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1<<20)
	_, werr := c.Write(payload)
	var rerr error
	if werr == nil {
		_, rerr = io.ReadFull(c, make([]byte, len(payload)))
	}
	if werr == nil && rerr == nil {
		t.Fatal("1MiB echo completed despite ResetProb=1 after ≤64 bytes")
	}
	if s := p.Stats(); s.Resets != 1 {
		t.Fatalf("stats = %s, want exactly one reset", s)
	}
}

// TestListenerDrop proves connect-time drops never surface to Accept and
// reset the client instead.
func TestListenerDrop(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Wrap(raw, Config{Seed: 5, DropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan struct{})
	go func() {
		defer close(accepted)
		if c, err := ln.Accept(); err == nil {
			t.Errorf("Accept returned a connection (%v) under DropProb=1", c.RemoteAddr())
			c.Close() //nolint:errcheck
		}
	}()

	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			// The injected RST can land during the handshake itself; a failed
			// dial IS the drop being observed.
			continue
		}
		if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		// The drop closes the server side; this read must fail, not hang.
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("dial %d: read succeeded on a dropped connection", i)
		}
		c.Close() //nolint:errcheck
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	<-accepted
	s := ln.Stats()
	if s.Drops != 3 || s.Conns != 3 {
		t.Fatalf("stats = %s, want conns=3 drops=3", s)
	}
}

// TestProxyDribble proves dribbled bytes still arrive intact, just slowly,
// so a patient peer completes while an impatient one times out.
func TestProxyDribble(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, raw)
	cfg := Config{Seed: 11, DribbleProb: 1, FaultAfter: 1, DribbleDelay: 100 * time.Microsecond}
	p, err := NewProxy(func() string { return raw.Addr().String() }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if err := c.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	msg := []byte("pairwise ranking under budget constraints")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read dribbled echo: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("dribbled bytes corrupted")
	}
	if s := p.Stats(); s.Dribbles != 1 {
		t.Fatalf("stats = %s, want one dribble", s)
	}
}

// TestProxyBlackhole proves a black-holed connection stalls (no data, no
// error) until the peer's own deadline fires — the failure mode a client
// per-attempt timeout exists for.
func TestProxyBlackhole(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, raw)
	p, err := NewProxy(func() string { return raw.Addr().String() }, Config{Seed: 2, BlackholeProb: 1, FaultAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	// The hole swallows the triggered direction only after the triggering
	// chunk passes, so the first echo may still arrive; within a few
	// round-trips one read must stall to its deadline.
	stalled := false
	for i := 0; i < 5 && !stalled; i++ {
		if err := c.SetDeadline(time.Now().Add(300 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte("hello?")); err != nil {
			// A write error is acceptable: the hole may already have tripped.
			t.Logf("round %d: write into black hole: %v", i, err)
		}
		if _, err := io.ReadFull(c, make([]byte, 6)); err != nil {
			var nerr net.Error
			if !errors.As(err, &nerr) || !nerr.Timeout() {
				t.Fatalf("round %d: want a deadline timeout from the stalled read, got %v", i, err)
			}
			stalled = true
		}
	}
	if !stalled {
		t.Fatal("five round-trips completed despite BlackholeProb=1")
	}
	if s := p.Stats(); s.Blackholes != 1 {
		t.Fatalf("stats = %s, want one blackhole", s)
	}
}

// TestProxyHalfOpen proves a half-open plan ends the stream without a full
// close: the client observes EOF (or a reset from teardown) within its
// deadline rather than hanging.
func TestProxyHalfOpen(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, raw)
	p, err := NewProxy(func() string { return raw.Addr().String() }, Config{Seed: 4, HalfOpenProb: 1, FaultAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(bytes.Repeat([]byte("y"), 4096)); err != nil {
		t.Logf("write on half-open conn: %v", err)
	}
	// Drain until the stream ends; it must end, not hang to the deadline.
	//lint:ignore errcheck the terminal error is the assertion target, the byte count is irrelevant
	_, rerr := io.Copy(io.Discard, c)
	var nerr net.Error
	if errors.As(rerr, &nerr) && nerr.Timeout() {
		t.Fatalf("half-open connection hung until deadline: %v", rerr)
	}
	if s := p.Stats(); s.HalfOpens != 1 {
		t.Fatalf("stats = %s, want one half-open", s)
	}
}

// TestProxyRetarget proves the target callback is consulted per connection,
// so a restarted daemon on a new port is reachable without proxy restart.
func TestProxyRetarget(t *testing.T) {
	mk := func() net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		echoServer(t, ln)
		return ln
	}
	first := mk()
	second := mk()
	var target addrBox
	target.store(first.Addr().String())
	p, err := NewProxy(func() string { return target.load() }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	roundTrip := func(msg string) {
		t.Helper()
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close() //nolint:errcheck
		if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte(msg)); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatalf("echo via %s: %v", target.load(), err)
		}
	}
	roundTrip("before restart")
	target.store(second.Addr().String())
	roundTrip("after restart")
}

// addrBox is a tiny helper for the retarget test.
type addrBox struct {
	mu sync.Mutex
	v  string
}

func (a *addrBox) store(s string) { a.mu.Lock(); a.v = s; a.mu.Unlock() }
func (a *addrBox) load() string   { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
