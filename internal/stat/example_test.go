package stat_test

import (
	"fmt"
	"log"

	"crowdrank/internal/stat"
)

// ExampleChiSquareQuantile computes the percentile truth discovery uses in
// Equation 5: the alpha/2 quantile with |T_k| degrees of freedom.
func ExampleChiSquareQuantile() {
	q, err := stat.ChiSquareQuantile(0.025, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chi2(0.025, 10) = %.4f\n", q)
	// Output:
	// chi2(0.025, 10) = 3.2470
}

// ExampleGammaP evaluates the regularized lower incomplete gamma function,
// the CDF backbone of the chi-square machinery.
func ExampleGammaP() {
	p, err := stat.GammaP(1, 1) // Gamma(1,1) is Exp(1): P = 1 - e^-1
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(1,1) = %.6f\n", p)
	// Output:
	// P(1,1) = 0.632121
}

// ExampleNormalQuantile inverts the standard normal CDF.
func ExampleNormalQuantile() {
	fmt.Printf("z(0.975) = %.4f\n", stat.NormalQuantile(0.975))
	// Output:
	// z(0.975) = 1.9600
}

// ExampleDescribe summarizes a sample.
func ExampleDescribe() {
	s := stat.Describe([]float64{1, 2, 3, 4})
	fmt.Println(s)
	// Output:
	// n=4 mean=2.5 sd=1.118 med=2.5 min=1 max=4
}
