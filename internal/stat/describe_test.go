package stat

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	tests := []struct {
		name           string
		xs             []float64
		mean, variance float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"pair", []float64{2, 4}, 3, 1},
		{"symmetric", []float64{-1, 0, 1}, 0, 2.0 / 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.xs); !almostEqual(got, tc.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, tc.mean)
			}
			if got := Variance(tc.xs); !almostEqual(got, tc.variance, 1e-12) {
				t.Errorf("Variance = %v, want %v", got, tc.variance)
			}
			if got := StdDev(tc.xs); !almostEqual(got, math.Sqrt(tc.variance), 1e-12) {
				t.Errorf("StdDev = %v, want %v", got, math.Sqrt(tc.variance))
			}
		})
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tc := range tests {
		if got := Median(tc.xs); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax of empty slice should panic")
		}
	}()
	MinMax(nil)
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp(-5,0,3) = %v", got)
	}
	if got := Clamp(1, 0, 3); got != 1 {
		t.Errorf("Clamp(1,0,3) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp with inverted bounds should panic")
		}
	}()
	Clamp(1, 3, 0)
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("Describe = %+v", s)
	}
	if Describe(nil).N != 0 {
		t.Error("Describe(nil) should be zero")
	}
	if s.String() == "" {
		t.Error("Summary.String should be non-empty")
	}
}

func TestDescribeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Describe(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
