package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestGammaPKnownValues(t *testing.T) {
	// Reference values from the identity P(1, x) = 1 - e^-x and published
	// tables for other shapes.
	tests := []struct {
		name string
		a, x float64
		want float64
	}{
		{"exp1", 1, 1, 1 - math.Exp(-1)},
		{"exp2", 1, 2, 1 - math.Exp(-2)},
		{"halfDf", 0.5, 0.5, 0.6826894921370859}, // chi2 CDF(1, df=1)
		{"shape2", 2, 2, 1 - 3*math.Exp(-2)},     // P(2,x) = 1-(1+x)e^-x
		{"shape5mid", 5, 5, 0.5595067149347875},
		{"largeA", 100, 100, 0.5132987982791087},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := GammaP(tc.a, tc.x)
			if err != nil {
				t.Fatalf("GammaP(%v,%v): %v", tc.a, tc.x, err)
			}
			if !almostEqual(got, tc.want, 1e-10) {
				t.Errorf("GammaP(%v,%v) = %.15f, want %.15f", tc.a, tc.x, got, tc.want)
			}
		})
	}
}

func TestGammaPPlusQIsOne(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 100, 1000} {
		for _, x := range []float64{0.1, 1, 5, 50, 500, 2000} {
			p, err := GammaP(a, x)
			if err != nil {
				t.Fatalf("GammaP(%v,%v): %v", a, x, err)
			}
			q, err := GammaQ(a, x)
			if err != nil {
				t.Fatalf("GammaQ(%v,%v): %v", a, x, err)
			}
			if !almostEqual(p+q, 1, 1e-12) {
				t.Errorf("P+Q = %v for a=%v x=%v", p+q, a, x)
			}
		}
	}
}

func TestGammaPEdgeCases(t *testing.T) {
	if _, err := GammaP(0, 1); err == nil {
		t.Error("GammaP(0,1) should fail")
	}
	if _, err := GammaP(1, -1); err == nil {
		t.Error("GammaP(1,-1) should fail")
	}
	got, err := GammaP(3, 0)
	if err != nil || got != 0 {
		t.Errorf("GammaP(3,0) = %v, %v; want 0, nil", got, err)
	}
	got, err = GammaP(3, math.Inf(1))
	if err != nil || got != 1 {
		t.Errorf("GammaP(3,Inf) = %v, %v; want 1, nil", got, err)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, df, want float64
	}{
		{1, 1, 0.6826894921370859}, // P(|Z|<1)
		{4, 1, 0.9544997361036416}, // P(|Z|<2)
		{2, 2, 1 - math.Exp(-1)},   // chi2(2) is Exp(1/2)
		{10, 10, 0.5595067149347875},
	}
	for _, tc := range tests {
		got, err := ChiSquareCDF(tc.x, tc.df)
		if err != nil {
			t.Fatalf("ChiSquareCDF(%v,%v): %v", tc.x, tc.df, err)
		}
		if !almostEqual(got, tc.want, 1e-10) {
			t.Errorf("ChiSquareCDF(%v,%v) = %.15f, want %.15f", tc.x, tc.df, got, tc.want)
		}
	}
}

func TestChiSquareQuantileKnownValues(t *testing.T) {
	// Classical chi-square table values.
	tests := []struct {
		p, df, want, tol float64
	}{
		{0.95, 1, 3.841458820694124, 1e-8},
		{0.95, 10, 18.307038053275146, 1e-8},
		{0.05, 10, 3.9402991361190605, 1e-8},
		{0.025, 1, 0.0009820691171752583, 1e-10},
		{0.025, 30, 16.790772251764078, 1e-7},
		{0.5, 2, 2 * math.Ln2, 1e-9},
	}
	for _, tc := range tests {
		got, err := ChiSquareQuantile(tc.p, tc.df)
		if err != nil {
			t.Fatalf("ChiSquareQuantile(%v,%v): %v", tc.p, tc.df, err)
		}
		if !almostEqual(got, tc.want, tc.tol) {
			t.Errorf("ChiSquareQuantile(%v,%v) = %.12f, want %.12f", tc.p, tc.df, got, tc.want)
		}
	}
}

func TestChiSquareQuantileInvertsCDF(t *testing.T) {
	// Property: CDF(Quantile(p)) = p across the range truth discovery uses.
	f := func(pRaw uint16, dfRaw uint8) bool {
		p := 0.001 + 0.998*float64(pRaw)/65535
		df := float64(dfRaw%200) + 1
		x, err := ChiSquareQuantile(p, df)
		if err != nil {
			return false
		}
		back, err := ChiSquareCDF(x, df)
		if err != nil {
			return false
		}
		return almostEqual(back, p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareQuantileMonotoneInP(t *testing.T) {
	df := 17.0
	prev := 0.0
	for p := 0.01; p < 1; p += 0.01 {
		x, err := ChiSquareQuantile(p, df)
		if err != nil {
			t.Fatalf("quantile(%v): %v", p, err)
		}
		if x <= prev {
			t.Fatalf("quantile not monotone at p=%v: %v <= %v", p, x, prev)
		}
		prev = x
	}
}

func TestChiSquareQuantileLargeDf(t *testing.T) {
	// The large-df shortcut must stay close to the Newton-refined value:
	// compare Wilson-Hilferty at df=5001 against the refined value at
	// df=4999 (continuity check) and against the normal approximation
	// mean +- z*sd.
	for _, p := range []float64{0.025, 0.5, 0.975} {
		got, err := ChiSquareQuantile(p, 20000)
		if err != nil {
			t.Fatalf("quantile large df: %v", err)
		}
		z := NormalQuantile(p)
		approx := 20000 + z*math.Sqrt(2*20000)
		if math.Abs(got-approx) > 25 { // within a few units of the sd-scale approx
			t.Errorf("p=%v: got %v, normal approx %v", p, got, approx)
		}
	}
}

func TestChiSquareQuantileErrors(t *testing.T) {
	if _, err := ChiSquareQuantile(0.5, 0); err == nil {
		t.Error("df=0 should fail")
	}
	if _, err := ChiSquareQuantile(-0.1, 3); err == nil {
		t.Error("p<0 should fail")
	}
	if _, err := ChiSquareQuantile(1.1, 3); err == nil {
		t.Error("p>1 should fail")
	}
	if x, err := ChiSquareQuantile(0, 3); err != nil || x != 0 {
		t.Errorf("p=0: got %v, %v", x, err)
	}
	if x, err := ChiSquareQuantile(1, 3); err != nil || !math.IsInf(x, 1) {
		t.Errorf("p=1: got %v, %v", x, err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
		{0.0013498980316300933, -3},
	}
	for _, tc := range tests {
		got := NormalQuantile(tc.p)
		if !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %.12f, want %.12f", tc.p, got, tc.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(raw uint32) bool {
		p := 1e-6 + (1-2e-6)*float64(raw)/math.MaxUint32
		z := NormalQuantile(p)
		return almostEqual(NormalCDF(z), p, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) || !math.IsNaN(NormalQuantile(1.5)) {
		t.Error("out-of-range p should be NaN")
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integration of the PDF should reproduce the CDF.
	sum := 0.0
	step := 1e-3
	for x := -8.0; x < 2.0; x += step {
		sum += step * (NormalPDF(x) + NormalPDF(x+step)) / 2
	}
	if !almostEqual(sum, NormalCDF(2), 1e-6) {
		t.Errorf("integral = %v, CDF(2) = %v", sum, NormalCDF(2))
	}
}

func TestChiSquarePDFMatchesCDFDerivative(t *testing.T) {
	const h = 1e-6
	for _, df := range []float64{1, 3, 7.5, 20} {
		for _, x := range []float64{0.5, 2, 10, 30} {
			hi, err := ChiSquareCDF(x+h, df)
			if err != nil {
				t.Fatal(err)
			}
			lo, err := ChiSquareCDF(x-h, df)
			if err != nil {
				t.Fatal(err)
			}
			numeric := (hi - lo) / (2 * h)
			got := ChiSquarePDF(x, df)
			if math.Abs(numeric-got) > 1e-5*(1+got) {
				t.Errorf("df=%v x=%v: pdf=%v, numeric derivative=%v", df, x, got, numeric)
			}
		}
	}
}
